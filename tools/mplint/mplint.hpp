#pragma once
// mplint — the repo's own static analyzer (docs/CHECKING.md "Static
// analysis: mplint").  A small C++ tokenizer plus per-file checkers driven
// by a table of per-directory policies; it enforces, at source level and on
// a plain gcc container, the invariants the test suite can only probe
// dynamically:
//
//   determinism   raw-rand          rand()/srand()/std::random_device
//                                   outside util/rng
//                 wall-clock        clock reads in result-affecting dirs
//                 unordered-iter    iteration over unordered containers in
//                                   result-affecting dirs (ordering leaks
//                                   into results)
//   locks         mutex-annotation  std::mutex/shared_mutex/
//                                   condition_variable declarations missing
//                                   an MP_GUARDS/MP_GUARDED_BY-family
//                                   annotation (src/check/annotations.hpp)
//                 raii-lock         manual .lock()/.unlock()/.try_lock() on
//                                   a declared mutex (use std::lock_guard/
//                                   unique_lock/scoped_lock)
//                 manual-unlock     .unlock() on an RAII guard
//   hygiene       pragma-once       headers must start with #pragma once
//                 iostream-include  <iostream> in library code
//                 using-namespace-header
//                                   `using namespace` in a header
//   meta          bad-suppression   malformed/unknown/unjustified allow()
//
// Any finding (except bad-suppression) is suppressible with a justified
// comment on the same line or the line above:
//
//   // mplint: allow(manual-unlock): joining workers must not hold mutex_.
//
// The checkers are lexical and per-file by design: no type information, no
// cross-file resolution.  That keeps them dependency-free and fast, at the
// cost of documented blind spots (an unordered member declared in a header
// and iterated in its .cpp, an aliased clock type).  The clang path
// (.clang-tidy concurrency-*, -Wthread-safety via the annotation layer)
// covers those when a clang toolchain is available.

#include <string>
#include <vector>

namespace mp::lint {

// ---------------------------------------------------------------------------
// Tokens

enum class TokKind {
  kIdent,    ///< identifiers and keywords
  kNumber,   ///< pp-number (including separators and suffixes)
  kString,   ///< string literal, prefix and quotes included
  kChar,     ///< character literal
  kPunct,    ///< one punctuation character
  kComment,  ///< // or /* */ comment, markers included
  kPreproc,  ///< one full preprocessor directive (continuations joined)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;  ///< 1-based line of the token's first character
};

/// Tokenizes C++ source.  Comments and preprocessor directives are kept as
/// single tokens; everything else follows the usual lexical grammar closely
/// enough for the checkers (raw strings, digit separators, escapes).
std::vector<Token> tokenize(const std::string& source);

// ---------------------------------------------------------------------------
// Policy

/// What applies to one file, resolved from its repo-relative path.
struct Policy {
  bool lint = false;         ///< false: file is out of scope entirely
  bool header = false;       ///< .hpp — header-hygiene checks apply
  bool determinism = false;  ///< result-affecting dir: wall-clock +
                             ///< unordered-iter bans
  bool rng_home = false;     ///< util/rng — raw randomness lives here
};

/// Resolves the per-directory policy for a repo-relative path with forward
/// slashes (e.g. "src/mcts/mcts.cpp").  Paths outside src/ get lint=false.
Policy policy_for(const std::string& path);

/// Names of every check, in reporting order.
const std::vector<std::string>& check_names();

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string path;
  int line = 0;
  std::string check;
  std::string message;
};

/// "path:line: check: message" — the editor-parseable output format.
std::string format_finding(const Finding& finding);

/// Lints one file's content under the policy for `path` (repo-relative,
/// forward slashes).  Returns findings sorted by line.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Lints the repo-relative `paths` under `root`.  Unreadable files produce
/// an "io" finding rather than aborting the run.
std::vector<Finding> lint_paths(const std::string& root,
                                const std::vector<std::string>& paths);

/// Lints every *.hpp / *.cpp under root/src, sorted by path.
std::vector<Finding> lint_tree(const std::string& root);

}  // namespace mp::lint
