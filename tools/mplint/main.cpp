// mplint CLI (tools/mplint/mplint.hpp).
//
//   mplint [--root DIR] [--list-checks] [paths...]
//
// With no paths, lints every *.hpp / *.cpp under DIR/src (DIR defaults to
// the current directory).  Explicit paths are repo-relative to DIR.
// Findings go to stdout as "path:line: check: message" — editor-parseable.
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mplint/mplint.hpp"

namespace {

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: mplint [--root DIR] [--list-checks] [paths...]\n"
               "\n"
               "Lints repo sources against the per-directory policies in\n"
               "tools/mplint (determinism, lock discipline, header hygiene).\n"
               "With no paths, scans every *.hpp / *.cpp under DIR/src.\n"
               "\n"
               "  --root DIR     repo root to scan (default: .)\n"
               "  --list-checks  print the check names and exit\n"
               "  -h, --help     this message\n"
               "\n"
               "Suppress a finding with a justified comment on the same line\n"
               "or the line above:\n"
               "  // mplint: allow(<check>): <why the exception is sound>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      print_usage(stdout);
      return 0;
    }
    if (std::strcmp(arg, "--list-checks") == 0) {
      for (const std::string& name : mp::lint::check_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (std::strcmp(arg, "--root") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mplint: --root needs a directory\n");
        print_usage(stderr);
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "mplint: unknown option '%s'\n", arg);
      print_usage(stderr);
      return 2;
    }
    paths.push_back(arg);
  }

  const std::vector<mp::lint::Finding> findings =
      paths.empty() ? mp::lint::lint_tree(root)
                    : mp::lint::lint_paths(root, paths);

  bool io_error = false;
  for (const mp::lint::Finding& finding : findings) {
    std::printf("%s\n", mp::lint::format_finding(finding).c_str());
    if (finding.check == "io") io_error = true;
  }
  if (io_error) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "mplint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
