// Tokenizer for mplint (tools/mplint/mplint.hpp).  Scans C++ source into
// the coarse token stream the checkers pattern-match on: identifiers,
// numbers, string/char literals (prefixes and raw strings handled), single
// punctuation characters, whole comments, and whole preprocessor directives
// (backslash continuations joined into one token).

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "mplint/mplint.hpp"

namespace mp::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// String-literal prefixes whose following quote belongs to the literal.
bool is_string_prefix(const std::string& s) {
  return s == "u8" || s == "u" || s == "U" || s == "L";
}

bool is_raw_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> run() {
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\n') {
        ++line_;
        ++i_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preproc();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && i_ + 1 < src_.size() &&
          (src_[i_ + 1] == '/' || src_[i_ + 1] == '*')) {
        comment();
        continue;
      }
      if (ident_start(c)) {
        ident();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && i_ + 1 < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal(i_);
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      emit(TokKind::kPunct, std::string(1, c), line_);
      ++i_;
    }
    return std::move(out_);
  }

 private:
  void emit(TokKind kind, std::string text, int line) {
    out_.push_back(Token{kind, std::move(text), line});
  }

  /// One full directive: to end of line, honoring backslash continuations
  /// (joined with a single space so "#pragma once" stays matchable).
  void preproc() {
    const int start_line = line_;
    std::string text;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size() && src_[i_ + 1] == '\n') {
        text += ' ';
        i_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // the newline itself is handled by run()
      text += c;
      ++i_;
    }
    emit(TokKind::kPreproc, std::move(text), start_line);
  }

  void comment() {
    const int start_line = line_;
    std::string text;
    if (src_[i_ + 1] == '/') {
      while (i_ < src_.size() && src_[i_] != '\n') text += src_[i_++];
    } else {
      text += "/*";
      i_ += 2;
      while (i_ < src_.size()) {
        if (src_[i_] == '*' && i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
          text += "*/";
          i_ += 2;
          break;
        }
        if (src_[i_] == '\n') ++line_;
        text += src_[i_++];
      }
    }
    emit(TokKind::kComment, std::move(text), start_line);
  }

  void ident() {
    const std::size_t start = i_;
    const int start_line = line_;
    while (i_ < src_.size() && ident_char(src_[i_])) ++i_;
    std::string text = src_.substr(start, i_ - start);
    // A literal prefix glued to a quote is part of the literal.
    if (i_ < src_.size() && src_[i_] == '"') {
      if (is_raw_prefix(text)) {
        raw_string(start);
        return;
      }
      if (is_string_prefix(text)) {
        string_literal(start);
        return;
      }
    }
    if (i_ < src_.size() && src_[i_] == '\'' &&
        (is_string_prefix(text) || text == "u8")) {
      char_literal_from(start);
      return;
    }
    emit(TokKind::kIdent, std::move(text), start_line);
  }

  void number() {
    const std::size_t start = i_;
    const int start_line = line_;
    // pp-number: digits, idents, dots, separators, exponent signs.
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && i_ > start) {
        const char prev = src_[i_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++i_;
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, src_.substr(start, i_ - start), start_line);
  }

  /// From `start` (prefix included); i_ sits on the opening quote.
  void string_literal(std::size_t start) {
    const int start_line = line_;
    ++i_;  // opening quote
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        i_ += 2;
        continue;
      }
      if (c == '\n') ++line_;  // unterminated; keep line counts sane
      ++i_;
      if (c == '"') break;
    }
    emit(TokKind::kString, src_.substr(start, i_ - start), start_line);
  }

  void raw_string(std::size_t start) {
    const int start_line = line_;
    ++i_;  // opening quote
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') delim += src_[i_++];
    const std::string closer = ")" + delim + "\"";
    const std::size_t end = src_.find(closer, i_);
    const std::size_t stop =
        end == std::string::npos ? src_.size() : end + closer.size();
    for (std::size_t k = i_; k < stop; ++k) {
      if (src_[k] == '\n') ++line_;
    }
    i_ = stop;
    emit(TokKind::kString, src_.substr(start, i_ - start), start_line);
  }

  void char_literal() { char_literal_from(i_); }

  void char_literal_from(std::size_t start) {
    const int start_line = line_;
    ++i_;  // opening quote
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (c == '\\' && i_ + 1 < src_.size()) {
        i_ += 2;
        continue;
      }
      ++i_;
      if (c == '\'' || c == '\n') break;
    }
    emit(TokKind::kChar, src_.substr(start, i_ - start), start_line);
  }

  const std::string& src_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> out_;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

}  // namespace mp::lint
