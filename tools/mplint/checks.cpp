// Checkers and policy table for mplint (tools/mplint/mplint.hpp).  Every
// checker walks the comment-free token stream of one file; suppressions are
// parsed from the comment tokens up front and applied when findings are
// collected, so a justified `// mplint: allow(check): why` on the finding's
// line or the line above wins over any checker.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "mplint/mplint.hpp"

namespace mp::lint {

namespace {

// ---------------------------------------------------------------------------
// Check names

const char kRawRand[] = "raw-rand";
const char kWallClock[] = "wall-clock";
const char kUnorderedIter[] = "unordered-iter";
const char kMutexAnnotation[] = "mutex-annotation";
const char kRaiiLock[] = "raii-lock";
const char kManualUnlock[] = "manual-unlock";
const char kPragmaOnce[] = "pragma-once";
const char kIostreamInclude[] = "iostream-include";
const char kUsingNamespaceHeader[] = "using-namespace-header";
const char kBadSuppression[] = "bad-suppression";
const char kIo[] = "io";

// ---------------------------------------------------------------------------
// Policy table

/// Result-affecting directories: wall-clock reads and unordered-container
/// iteration are banned here because both can leak into placements
/// (time-dependent control flow, hash-order-dependent visit order).
const char* const kResultDirs[] = {
    "src/mcts/",    "src/rl/",   "src/gp/",    "src/qp/",     "src/legal/",
    "src/nn/",      "src/place/", "src/grid/", "src/netlist/", "src/linalg/",
    // The inference engine affects WHEN batches run, never what they
    // compute; its one legitimate timer (the coalescing wait) carries a
    // justified wall-clock allow rather than a directory exemption.
    "src/infer/",
};

/// Timing-legitimate homes, listed explicitly even where disjoint from the
/// result dirs so the policy survives future directory moves: telemetry,
/// benches, the service layer, and the Timer abstraction itself.
const char* const kClockAllow[] = {
    "src/obs/", "src/svc/", "src/net/", "src/bench/", "src/util/timer",
};

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppression {
  std::set<std::string> checks;
  bool justified = false;
};

/// Per-line allow() sets parsed from comment tokens; a suppression on line L
/// covers findings on L and L + 1 (comment-above style).
struct SuppressionMap {
  std::map<int, Suppression> by_line;

  bool covers(int line, const std::string& check) const {
    for (const int probe : {line, line - 1}) {
      const auto it = by_line.find(probe);
      if (it != by_line.end() && it->second.justified &&
          it->second.checks.count(check) > 0) {
        return true;
      }
    }
    return false;
  }
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses "mplint: allow(check-a, check-b): justification" out of one
/// comment.  Malformed markers and unknown check names become
/// bad-suppression findings (never suppressible themselves).
void parse_suppression(const Token& comment, const std::string& path,
                       SuppressionMap* map, std::vector<Finding>* findings) {
  const std::string& text = comment.text;
  const std::size_t marker = text.find("mplint:");
  if (marker == std::string::npos) return;
  const std::size_t allow = text.find("allow", marker);
  const std::size_t open = text.find('(', marker);
  const std::size_t close = text.find(')', marker);
  if (allow == std::string::npos || open == std::string::npos ||
      close == std::string::npos || close < open) {
    findings->push_back({path, comment.line, kBadSuppression,
                         "malformed mplint marker (expected "
                         "\"mplint: allow(<check>): <justification>\")"});
    return;
  }
  Suppression sup;
  std::stringstream list(text.substr(open + 1, close - open - 1));
  std::string item;
  while (std::getline(list, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    const auto& known = check_names();
    if (std::find(known.begin(), known.end(), item) == known.end()) {
      findings->push_back({path, comment.line, kBadSuppression,
                           "allow() names unknown check '" + item + "'"});
      continue;
    }
    sup.checks.insert(item);
  }
  std::string justification = text.substr(close + 1);
  // Strip trailing comment closers and leading separators before judging.
  if (ends_with(justification, "*/")) {
    justification.resize(justification.size() - 2);
  }
  justification = trim(justification);
  while (!justification.empty() &&
         (justification[0] == ':' || justification[0] == '-' ||
          justification[0] == ';')) {
    justification = trim(justification.substr(1));
  }
  sup.justified = !justification.empty();
  if (!sup.justified) {
    findings->push_back({path, comment.line, kBadSuppression,
                         "allow() without a justification (state why the "
                         "exception is sound)"});
  }
  if (!sup.checks.empty()) {
    Suppression& slot = map->by_line[comment.line];
    slot.checks.insert(sup.checks.begin(), sup.checks.end());
    // One unjustified marker must not ride on a justified one's line.
    slot.justified = sup.justified;
  }
}

// ---------------------------------------------------------------------------
// Token-stream helpers (code = comments and directives stripped)

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, char c) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

/// True when code[i] is preceded by `std ::`.
bool std_qualified(const std::vector<Token>& code, std::size_t i) {
  return i >= 3 && is_ident(code[i - 3], "std") && is_punct(code[i - 2], ':') &&
         is_punct(code[i - 1], ':');
}

// ---------------------------------------------------------------------------
// Individual checkers

const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> macros = {
      "MP_GUARDS",          "MP_GUARDED_BY",    "MP_PT_GUARDED_BY",
      "MP_CAPABILITY",      "MP_ACQUIRED_BEFORE", "MP_ACQUIRED_AFTER",
  };
  return macros;
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> types = {
      "mutex",
      "shared_mutex",
      "timed_mutex",
      "recursive_mutex",
      "recursive_timed_mutex",
      "shared_timed_mutex",
      "condition_variable",
      "condition_variable_any",
  };
  return types;
}

/// Finds declarations `std::mutex NAME ...;` (and the other lock-like types),
/// records NAME into `lock_names`, and reports declarations that carry no
/// annotation-layer macro before the terminating ';'.
void check_mutex_annotations(const std::string& path,
                             const std::vector<Token>& code,
                             std::set<std::string>* lock_names,
                             std::vector<Finding>* findings) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent ||
        mutex_types().count(code[i].text) == 0 || !std_qualified(code, i)) {
      continue;
    }
    const Token& next = code[i + 1];
    // References, pointers, template arguments, parameter types: not a
    // plain named declaration.
    if (next.kind != TokKind::kIdent) continue;
    if (i + 2 < code.size() && is_punct(code[i + 2], '(')) continue;
    lock_names->insert(next.text);
    bool annotated = false;
    int depth = 0;
    for (std::size_t j = i + 2; j < code.size(); ++j) {
      const Token& t = code[j];
      if (t.kind == TokKind::kPunct) {
        const char c = t.text[0];
        if (c == '(' || c == '{') ++depth;
        if (c == ')' || c == '}') --depth;
        if (c == ';' && depth <= 0) break;
      }
      if (t.kind == TokKind::kIdent && annotation_macros().count(t.text) > 0) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      findings->push_back(
          {path, next.line, kMutexAnnotation,
           "std::" + code[i].text + " '" + next.text +
               "' lacks a thread-safety annotation (MP_GUARDS(...) naming "
               "what it protects; see src/check/annotations.hpp)"});
    }
  }
}

/// Manual lock-primitive calls: `.lock()/.unlock()/.try_lock()` on a name
/// declared as a mutex in this file is a raii-lock finding; `.unlock()` on
/// anything else (an RAII guard) needs a justified suppression.
void check_lock_calls(const std::string& path, const std::vector<Token>& code,
                      const std::set<std::string>& lock_names,
                      std::vector<Finding>* findings) {
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    const Token& recv = code[i];
    if (recv.kind != TokKind::kIdent) continue;
    // Match `recv . verb (` and `recv -> verb (`.
    std::size_t verb_at = 0;
    if (is_punct(code[i + 1], '.')) {
      verb_at = i + 2;
    } else if (i + 4 < code.size() && is_punct(code[i + 1], '-') &&
               is_punct(code[i + 2], '>')) {
      verb_at = i + 3;
    } else {
      continue;
    }
    if (verb_at + 1 >= code.size() || !is_punct(code[verb_at + 1], '(')) {
      continue;
    }
    const std::string& verb = code[verb_at].text;
    const bool is_mutex = lock_names.count(recv.text) > 0;
    if (is_mutex &&
        (verb == "lock" || verb == "unlock" || verb == "try_lock")) {
      findings->push_back(
          {path, code[verb_at].line, kRaiiLock,
           "manual " + recv.text + "." + verb +
               "() on a mutex; hold it through std::lock_guard/"
               "std::unique_lock/std::scoped_lock instead"});
    } else if (!is_mutex && verb == "unlock") {
      findings->push_back(
          {path, code[verb_at].line, kManualUnlock,
           "manual " + recv.text +
               ".unlock() breaks the RAII critical section; justify it with "
               "// mplint: allow(manual-unlock): <why>"});
    }
  }
}

void check_raw_rand(const std::string& path, const std::vector<Token>& code,
                    std::vector<Finding>* findings) {
  static const std::set<std::string> banned = {
      "rand", "srand", "rand_r", "drand48", "random_device",
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent || banned.count(t.text) == 0) continue;
    // Member access to an unrelated `rand` field would be `.rand`; skip.
    if (i > 0 && is_punct(code[i - 1], '.')) continue;
    findings->push_back(
        {path, t.line, kRawRand,
         "'" + t.text +
             "' is non-deterministic / globally seeded; thread randomness "
             "through util::Rng (src/util/rng.hpp) instead"});
  }
}

void check_wall_clock(const std::string& path, const std::vector<Token>& code,
                      std::vector<Finding>* findings) {
  static const std::set<std::string> call_banned = {
      "time", "clock", "gettimeofday", "clock_gettime", "localtime", "gmtime",
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokKind::kIdent) continue;
    // <chrono> clocks: `X::now(` where X ends in clock/Clock.
    if (i + 3 < code.size() &&
        (ends_with(t.text, "clock") || ends_with(t.text, "Clock")) &&
        is_punct(code[i + 1], ':') && is_punct(code[i + 2], ':') &&
        is_ident(code[i + 3], "now")) {
      findings->push_back(
          {path, code[i + 3].line, kWallClock,
           t.text + "::now() in a result-affecting directory; results must "
                    "not depend on wall time (keep timing in obs/ spans or "
                    "util::Timer at the call boundary)"});
      continue;
    }
    // C time calls: `time(`, `clock(`, ... — not member accesses.
    if (call_banned.count(t.text) > 0 && i + 1 < code.size() &&
        is_punct(code[i + 1], '(') &&
        !(i > 0 && is_punct(code[i - 1], '.'))) {
      findings->push_back(
          {path, t.line, kWallClock,
           "'" + t.text + "()' reads the wall clock in a result-affecting "
                          "directory; results must not depend on time"});
    }
  }
}

/// Names declared in this file with an unordered container type (members or
/// locals, values or references).
std::set<std::string> unordered_names(const std::vector<Token>& code) {
  static const std::set<std::string> types = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",
  };
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i].kind != TokKind::kIdent || types.count(code[i].text) == 0 ||
        !is_punct(code[i + 1], '<')) {
      continue;
    }
    // Skip the balanced template argument list.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < code.size(); ++j) {
      if (is_punct(code[j], '<')) ++depth;
      if (is_punct(code[j], '>') && --depth == 0) break;
    }
    if (j >= code.size()) continue;
    ++j;
    while (j < code.size() &&
           (is_punct(code[j], '&') || is_punct(code[j], '*'))) {
      ++j;
    }
    if (j < code.size() && code[j].kind == TokKind::kIdent) {
      names.insert(code[j].text);
    }
  }
  return names;
}

void check_unordered_iter(const std::string& path,
                          const std::vector<Token>& code,
                          std::vector<Finding>* findings) {
  const std::set<std::string> names = unordered_names(code);
  if (names.empty()) return;
  for (std::size_t i = 0; i < code.size(); ++i) {
    // `NAME.begin()` family (explicit iterator loops, std:: algorithms).
    if (code[i].kind == TokKind::kIdent && names.count(code[i].text) > 0 &&
        i + 2 < code.size() && is_punct(code[i + 1], '.') &&
        (code[i + 2].text == "begin" || code[i + 2].text == "cbegin" ||
         code[i + 2].text == "end" || code[i + 2].text == "cend")) {
      findings->push_back(
          {path, code[i].line, kUnorderedIter,
           "iterating unordered container '" + code[i].text +
               "' in a result-affecting directory: visit order is hash-seed "
               "dependent and leaks into results; use std::map/std::set or "
               "sort the keys first"});
      continue;
    }
    // Range-for whose range expression mentions a known unordered name.
    if (!is_ident(code[i], "for") || i + 1 >= code.size() ||
        !is_punct(code[i + 1], '(')) {
      continue;
    }
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      if (is_punct(code[j], '(')) ++depth;
      if (is_punct(code[j], ')') && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && is_punct(code[j], ':') && colon == 0 &&
          !is_punct(code[j - 1], ':') &&
          !(j + 1 < code.size() && is_punct(code[j + 1], ':'))) {
        colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (code[j].kind == TokKind::kIdent && names.count(code[j].text) > 0) {
        findings->push_back(
            {path, code[j].line, kUnorderedIter,
             "range-for over unordered container '" + code[j].text +
                 "' in a result-affecting directory: visit order is "
                 "hash-seed dependent and leaks into results"});
        break;
      }
    }
  }
}

void check_preproc(const std::string& path, const Policy& policy,
                   const std::vector<Token>& tokens,
                   std::vector<Finding>* findings) {
  bool pragma_once = false;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kPreproc) continue;
    if (t.text.find("pragma") != std::string::npos &&
        t.text.find("once") != std::string::npos) {
      pragma_once = true;
    }
    if (t.text.find("include") != std::string::npos &&
        t.text.find("<iostream>") != std::string::npos) {
      findings->push_back(
          {path, t.line, kIostreamInclude,
           "<iostream> in library code (global stream objects + their "
           "static init); use util/log or <cstdio>"});
    }
  }
  if (policy.header && !pragma_once) {
    findings->push_back(
        {path, 1, kPragmaOnce, "header is missing #pragma once"});
  }
}

void check_using_namespace(const std::string& path,
                           const std::vector<Token>& code,
                           std::vector<Finding>* findings) {
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (is_ident(code[i], "using") && is_ident(code[i + 1], "namespace")) {
      findings->push_back(
          {path, code[i].line, kUsingNamespaceHeader,
           "'using namespace' at header scope pollutes every includer; "
           "qualify names or use scoped aliases"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const std::vector<std::string>& check_names() {
  static const std::vector<std::string> names = {
      kRawRand,          kWallClock,  kUnorderedIter,
      kMutexAnnotation,  kRaiiLock,   kManualUnlock,
      kPragmaOnce,       kIostreamInclude, kUsingNamespaceHeader,
      kBadSuppression,
  };
  return names;
}

Policy policy_for(const std::string& path) {
  Policy policy;
  if (!starts_with(path, "src/")) return policy;
  if (!ends_with(path, ".hpp") && !ends_with(path, ".cpp")) return policy;
  policy.lint = true;
  policy.header = ends_with(path, ".hpp");
  policy.rng_home = starts_with(path, "src/util/rng");
  for (const char* dir : kResultDirs) {
    if (starts_with(path, dir)) policy.determinism = true;
  }
  for (const char* dir : kClockAllow) {
    if (starts_with(path, dir)) policy.determinism = false;
  }
  return policy;
}

std::string format_finding(const Finding& finding) {
  return finding.path + ":" + std::to_string(finding.line) + ": " +
         finding.check + ": " + finding.message;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const Policy policy = policy_for(path);
  if (!policy.lint) return {};

  const std::vector<Token> tokens = tokenize(content);
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment && t.kind != TokKind::kPreproc) {
      code.push_back(t);
    }
  }

  std::vector<Finding> meta;  // bad-suppression: reported unconditionally
  SuppressionMap suppressions;
  std::set<int> comment_lines;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kComment) {
      parse_suppression(t, path, &suppressions, &meta);
      comment_lines.insert(t.line);
    }
  }
  // A marker on the first line of a comment block covers the whole block:
  // propagate each suppression down through contiguous comment lines so a
  // wrapped justification still reaches the line below the block.
  for (const int line : comment_lines) {
    const auto above = suppressions.by_line.find(line - 1);
    if (above != suppressions.by_line.end() &&
        suppressions.by_line.count(line) == 0) {
      suppressions.by_line[line] = above->second;
    }
  }

  std::vector<Finding> raw;
  std::set<std::string> lock_names;
  check_mutex_annotations(path, code, &lock_names, &raw);
  check_lock_calls(path, code, lock_names, &raw);
  check_preproc(path, policy, tokens, &raw);
  if (policy.header) check_using_namespace(path, code, &raw);
  if (!policy.rng_home) check_raw_rand(path, code, &raw);
  if (policy.determinism) {
    check_wall_clock(path, code, &raw);
    check_unordered_iter(path, code, &raw);
  }

  std::vector<Finding> findings = std::move(meta);
  for (Finding& f : raw) {
    if (!suppressions.covers(f.line, f.check)) {
      findings.push_back(std::move(f));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.check) < std::tie(b.line, b.check);
            });
  return findings;
}

std::vector<Finding> lint_paths(const std::string& root,
                                const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  for (const std::string& rel : paths) {
    const fs::path full = fs::path(root) / rel;
    std::ifstream in(full, std::ios::binary);
    if (!in) {
      findings.push_back({rel, 0, kIo, "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> file_findings = lint_source(rel, buffer.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      paths.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return lint_paths(root, paths);
}

}  // namespace mp::lint
