// Tests for the design validator.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "netlist/validate.hpp"

namespace mp::netlist {
namespace {

TEST(Validate, CleanGeneratedDesignPasses) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 6;
  spec.std_cells = 100;
  spec.nets = 160;
  spec.seed = 800;
  const Design d = benchgen::generate(spec);
  const ValidationReport report = validate_design(d);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_TRUE(report.warnings.empty())
      << (report.warnings.empty() ? "" : report.warnings[0]);
}

TEST(Validate, FlagsNonPositiveDimensions) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node bad;
  bad.name = "bad";
  bad.width = 0.0;
  bad.height = 5.0;
  d.add_node(bad);
  const ValidationReport report = validate_design(d);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("non-positive"), std::string::npos);
}

TEST(Validate, FlagsZeroRegion) {
  Design d("d", geometry::Rect());
  const ValidationReport report = validate_design(d);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, FlagsNegativeNetWeight) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  d.add_node(a);
  a.name = "b";
  d.add_node(a);
  Net n;
  n.name = "n";
  n.weight = -1.0;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);
  const ValidationReport report = validate_design(d);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, WarnsOnSinglePinNet) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  d.add_node(a);
  Net n;
  n.name = "n";
  n.pins = {{0, 0, 0}};
  d.add_net(n);
  const ValidationReport report = validate_design(d);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("fewer than 2 pins"), std::string::npos);
}

TEST(Validate, WarnsOnDisconnectedMacro) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m";
  m.kind = NodeKind::kMacro;
  m.width = 2;
  m.height = 2;
  d.add_node(m);
  const ValidationReport report = validate_design(d);
  bool found = false;
  for (const std::string& w : report.warnings) {
    found |= w.find("disconnected") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, WarnsOnEscapedNode) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node a;
  a.name = "a";
  a.width = 4;
  a.height = 4;
  a.position = {8, 8};  // sticks out
  d.add_node(a);
  const ValidationReport report = validate_design(d);
  bool found = false;
  for (const std::string& w : report.warnings) {
    found |= w.find("outside placement region") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, MacroOverlapCheckOptIn) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m1";
  m.kind = NodeKind::kMacro;
  m.width = 4;
  m.height = 4;
  m.position = {1, 1};
  d.add_node(m);
  m.name = "m2";
  m.position = {2, 2};
  d.add_node(m);
  ValidationOptions options;
  options.check_macro_overlap = false;
  options.check_connectivity = false;
  const ValidationReport off = validate_design(d, options);
  bool found_off = false;
  for (const std::string& w : off.warnings) {
    found_off |= w.find("macro overlap") != std::string::npos;
  }
  EXPECT_FALSE(found_off);
  options.check_macro_overlap = true;
  const ValidationReport on = validate_design(d, options);
  bool found_on = false;
  for (const std::string& w : on.warnings) {
    found_on |= w.find("macro overlap") != std::string::npos;
  }
  EXPECT_TRUE(found_on);
}

TEST(Validate, WarnsOnDuplicatePin) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  d.add_node(a);
  a.name = "b";
  d.add_node(a);
  Net n;
  n.name = "n";
  n.pins = {{0, 0.5, 0.5}, {0, 0.5, 0.5}, {1, 0, 0}};
  d.add_net(n);
  const ValidationReport report = validate_design(d);
  bool found = false;
  for (const std::string& w : report.warnings) {
    found |= w.find("duplicate pin") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mp::netlist
