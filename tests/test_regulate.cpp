// Tests for the incremental/ECO regulate preset (src/place/regulate_placer)
// and the schema-2 job model behind it: trust-region contracts (radius,
// frozen, HPWL <= legal input), bit-identity across thread counts and the
// shared inference engine, JobSpec v1/v2 schema versioning (v1 canonical
// bytes — and so content-hash job IDs — must not change), the shared preset
// name table every front end resolves through, and the warm-artifact ECO
// path of the service (a resubmitted regulate job must reuse the cached
// design, placement, and prepared-flow artifacts).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "benchgen/generator.hpp"
#include "infer/engine.hpp"
#include "io/bookshelf.hpp"
#include "par/par.hpp"
#include "place/placer.hpp"
#include "place/regulate_placer.hpp"
#include "svc/job.hpp"
#include "svc/service.hpp"

namespace mp {
namespace {

class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) : saved_(par::num_threads()) {
    par::set_num_threads(threads);
  }
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

place::PresetKnobs fast_knobs() {
  place::PresetKnobs knobs;
  knobs.episodes = 6;
  knobs.gamma = 6;
  knobs.grid = 8;
  knobs.channels = 8;
  knobs.blocks = 1;
  return knobs;
}

benchgen::BenchSpec tiny_bench_spec() {
  benchgen::BenchSpec spec;
  spec.name = "eco_t";
  spec.movable_macros = 8;
  spec.io_pads = 8;
  spec.std_cells = 40;
  spec.nets = 60;
  spec.seed = 5;
  return spec;
}

// A legal incumbent: the analytic baseline is cheap and ends legalized.
netlist::Design incumbent_design() {
  netlist::Design design = benchgen::generate(tiny_bench_spec());
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kAnalytic, fast_knobs());
  place::run(design, spec);
  return design;
}

// The ECO input: the incumbent placement under a perturbed netlist.
netlist::Design eco_input() {
  const netlist::Design base = incumbent_design();
  benchgen::PerturbSpec delta;
  delta.seed = 11;
  delta.add_nets = 10;
  delta.remove_nets = 4;
  return benchgen::perturb(base, delta);
}

std::vector<geometry::Point> positions(const netlist::Design& design) {
  std::vector<geometry::Point> p;
  p.reserve(design.num_nodes());
  for (std::size_t i = 0; i < design.num_nodes(); ++i) {
    p.push_back(design.node(static_cast<netlist::NodeId>(i)).position);
  }
  return p;
}

bool same_positions(const std::vector<geometry::Point>& a,
                    const std::vector<geometry::Point>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y) return false;  // bit-identical
  }
  return true;
}

// ---------------------------------------------------------------------------
// Trust-region contracts

TEST(Regulate, HpwlNeverExceedsLegalInputAndStaysLegal) {
  netlist::Design design = eco_input();
  const double input_hpwl = design.total_hpwl();
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, fast_knobs());
  const place::PlaceResult r = place::run(design, spec);
  EXPECT_TRUE(r.finalized);
  EXPECT_DOUBLE_EQ(r.input_hpwl, input_hpwl);
  EXPECT_LE(r.hpwl, input_hpwl * (1.0 + 1e-9));
  EXPECT_DOUBLE_EQ(r.hpwl, design.total_hpwl());
  // Same relative tolerance the flow's own input-legality check uses: the
  // legalizer can leave degenerate slivers at double-rounding scale.
  EXPECT_LE(design.macro_overlap_area(), 1e-9 * design.region().area());
  EXPECT_TRUE(design.all_inside_region());
}

TEST(Regulate, RadiusZeroIsTheIdentityOnALegalInput) {
  netlist::Design design = eco_input();
  const std::vector<geometry::Point> before = positions(design);
  place::PresetKnobs knobs = fast_knobs();
  knobs.regulate_radius = 0;
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);
  const place::PlaceResult r = place::run(design, spec);
  EXPECT_EQ(r.moved_groups, 0);
  EXPECT_TRUE(same_positions(before, positions(design)));
  EXPECT_DOUBLE_EQ(r.hpwl, r.input_hpwl);
}

TEST(Regulate, AllGroupsFrozenIsTheIdentity) {
  netlist::Design design = eco_input();
  const std::vector<geometry::Point> before = positions(design);
  place::PresetKnobs knobs = fast_knobs();
  for (int i = 0; i < 8; ++i) {
    knobs.regulate_frozen.push_back("macro" + std::to_string(i));
  }
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);
  const place::PlaceResult r = place::run(design, spec);
  EXPECT_EQ(r.frozen_groups, r.macro_groups);
  EXPECT_EQ(r.moved_groups, 0);
  EXPECT_TRUE(same_positions(before, positions(design)));
}

TEST(Regulate, FrozenMacrosKeepTheirInputPositions) {
  netlist::Design design = eco_input();
  place::PresetKnobs knobs = fast_knobs();
  knobs.regulate_frozen = {"macro0", "macro3"};
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);
  netlist::Design input = design;  // keep the incumbent for comparison
  const place::PlaceResult r = place::run(design, spec);
  EXPECT_GE(r.frozen_groups, 2);
  for (const char* name : {"macro0", "macro3"}) {
    const auto id = design.find_node(name);
    ASSERT_TRUE(id.has_value());
    const geometry::Point now = design.node(*id).position;
    const geometry::Point was = input.node(*id).position;
    EXPECT_EQ(now.x, was.x) << name;
    EXPECT_EQ(now.y, was.y) << name;
  }
}

TEST(Regulate, MaxMovesCapsTheMovedGroupCount) {
  netlist::Design design = eco_input();
  place::PresetKnobs knobs = fast_knobs();
  knobs.regulate_max_moves = 2;
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);
  const place::PlaceResult r = place::run(design, spec);
  EXPECT_LE(r.moved_groups, 2);
  // Everything below the tension cut counts as frozen.
  EXPECT_EQ(r.frozen_groups, r.macro_groups - 2);
}

TEST(Regulate, CommittedAnchorsStayInsideTheTrustRegion) {
  netlist::Design design = eco_input();
  place::PresetKnobs knobs = fast_knobs();
  knobs.regulate_radius = 1;
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);

  // Recompute the incumbent anchors the way the flow derives them (grid
  // cell of each group's area-weighted lower-left corner, clamped so the
  // footprint stays on-chip) from an identical prepare pass.
  netlist::Design probe = design;
  place::FlowContext context =
      place::prepare_regulate_flow(probe, spec.regulate.flow);
  std::vector<grid::CellCoord> incumbent;
  for (const cluster::Group& group : context.clustering.macro_groups) {
    const grid::CellCoord fp =
        context.spec.footprint_cells(group.width, group.height);
    grid::CellCoord c =
        context.spec.cell_of({group.centroid.x - group.width / 2.0,
                              group.centroid.y - group.height / 2.0});
    c.gx = std::max(0, std::min(c.gx, context.spec.dim() - fp.gx));
    c.gy = std::max(0, std::min(c.gy, context.spec.dim() - fp.gy));
    incumbent.push_back(c);
  }

  const place::PlaceResult r = place::run(design, spec);
  ASSERT_EQ(r.mcts_result.anchors.size(), incumbent.size());
  for (std::size_t g = 0; g < incumbent.size(); ++g) {
    EXPECT_LE(std::abs(r.mcts_result.anchors[g].gx - incumbent[g].gx), 1);
    EXPECT_LE(std::abs(r.mcts_result.anchors[g].gy - incumbent[g].gy), 1);
  }
}

// ---------------------------------------------------------------------------
// Determinism

TEST(Regulate, BitIdenticalAcrossThreadCounts) {
  // Pool sizes > 1, per the parallel self-play contract: the parameter
  // trajectory (and so the whole flow) is identical at every pool size > 1;
  // one thread is the documented serial trajectory (docs/PARALLELISM.md).
  netlist::Design two = eco_input();
  netlist::Design eight = two;
  const place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, fast_knobs());
  double hpwl_two = 0.0;
  double hpwl_eight = 0.0;
  {
    ThreadGuard guard(2);
    hpwl_two = place::run(two, spec).hpwl;
  }
  {
    ThreadGuard guard(8);
    hpwl_eight = place::run(eight, spec).hpwl;
  }
  EXPECT_EQ(hpwl_two, hpwl_eight);
  EXPECT_TRUE(same_positions(positions(two), positions(eight)));
}

TEST(Regulate, BitIdenticalAcrossEvalBatchSizes) {
  netlist::Design serial = eco_input();
  netlist::Design batched = serial;
  place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, fast_knobs());
  spec.regulate.mcts.eval_batch = 1;
  const place::PlaceResult a = place::run(serial, spec);
  spec.regulate.mcts.eval_batch = 4;
  const place::PlaceResult b = place::run(batched, spec);
  EXPECT_EQ(a.hpwl, b.hpwl);
  EXPECT_EQ(a.moved_groups, b.moved_groups);
  EXPECT_TRUE(same_positions(positions(serial), positions(batched)));
}

TEST(Regulate, BitIdenticalWithAndWithoutInferEngine) {
  netlist::Design off = eco_input();
  netlist::Design on = off;
  place::PlacerSpec spec =
      place::spec_from_preset(place::Preset::kRegulate, fast_knobs());
  const place::PlaceResult a = place::run(off, spec);
  infer::InferenceEngine engine;
  spec.regulate.mcts.infer_engine = &engine;
  const place::PlaceResult b = place::run(on, spec);
  EXPECT_EQ(a.hpwl, b.hpwl);
  EXPECT_EQ(a.moved_groups, b.moved_groups);
  EXPECT_TRUE(same_positions(positions(off), positions(on)));
}

// ---------------------------------------------------------------------------
// JobSpec schema versioning

svc::Json v1_job_json() {
  svc::Json spec = svc::Json::object();
  svc::Json synth = svc::Json::object();
  synth["movable_macros"] = svc::Json::number(8);
  synth["std_cells"] = svc::Json::number(40);
  synth["nets"] = svc::Json::number(60);
  synth["seed"] = svc::Json::number(5);
  spec["synthetic"] = synth;
  spec["episodes"] = svc::Json::number(6);
  spec["gamma"] = svc::Json::number(6);
  spec["grid"] = svc::Json::number(8);
  spec["channels"] = svc::Json::number(8);
  spec["blocks"] = svc::Json::number(1);
  return spec;
}

std::string parse_error_of(const svc::Json& json) {
  try {
    svc::parse_job_spec(json);
  } catch (const svc::JobError& e) {
    return e.what();
  }
  return "";
}

TEST(JobSchema, V1CanonicalBytesCarryNoSchemaKey) {
  // The v2 introduction must not move v1 job IDs: a v1 spec round-trips
  // with schema-less canonical bytes, so its content hash is byte-stable.
  const svc::JobSpec spec = svc::parse_job_spec(v1_job_json());
  EXPECT_EQ(spec.schema, 1);
  const std::string canonical = svc::job_canonical_string(spec);
  EXPECT_EQ(canonical.find("schema"), std::string::npos);
  EXPECT_EQ(canonical.find("regulate"), std::string::npos);
  EXPECT_EQ(canonical.find("initial_placement"), std::string::npos);
  // An explicit `"schema": 1` parses to the same spec and the same ID.
  svc::Json tagged = v1_job_json();
  tagged["schema"] = svc::Json::number(1);
  const svc::JobSpec same = svc::parse_job_spec(tagged);
  EXPECT_EQ(svc::job_canonical_string(same), canonical);
  EXPECT_EQ(svc::make_job_id(same, 1), svc::make_job_id(spec, 1));
}

TEST(JobSchema, V2RoundTripsWithRegulateBlock) {
  svc::Json json = v1_job_json();
  json["schema"] = svc::Json::number(2);
  json["preset"] = svc::Json::string("regulate");
  json["initial_placement"] = svc::Json::string("/tmp/incumbent.pl");
  svc::Json reg = svc::Json::object();
  reg["radius"] = svc::Json::number(3);
  reg["max_moves"] = svc::Json::number(5);
  svc::Json frozen = svc::Json::array();
  frozen.push_back(svc::Json::string("macro1"));
  frozen.push_back(svc::Json::string("macro4"));
  reg["frozen"] = frozen;
  json["regulate"] = reg;

  const svc::JobSpec spec = svc::parse_job_spec(json);
  EXPECT_EQ(spec.schema, 2);
  EXPECT_EQ(spec.preset, svc::FlowPreset::kRegulate);
  EXPECT_EQ(spec.initial_placement_path, "/tmp/incumbent.pl");
  EXPECT_EQ(spec.regulate_radius, 3);
  EXPECT_EQ(spec.regulate_max_moves, 5);
  ASSERT_EQ(spec.regulate_frozen.size(), 2u);
  EXPECT_EQ(spec.regulate_frozen[0], "macro1");
  EXPECT_EQ(spec.regulate_frozen[1], "macro4");

  const svc::JobSpec again = svc::parse_job_spec(svc::job_spec_to_json(spec));
  EXPECT_EQ(svc::job_canonical_string(again), svc::job_canonical_string(spec));
  EXPECT_EQ(again.schema, 2);
}

TEST(JobSchema, V2FieldsUnderSchema1AreRejectedByName) {
  svc::Json json = v1_job_json();
  json["initial_placement"] = svc::Json::string("/tmp/incumbent.pl");
  const std::string error = parse_error_of(json);
  EXPECT_NE(error.find("initial_placement"), std::string::npos) << error;
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_NE(error.find("1, 2"), std::string::npos) << error;
}

TEST(JobSchema, UnsupportedSchemaVersionIsRejected) {
  svc::Json json = v1_job_json();
  json["schema"] = svc::Json::number(3);
  const std::string error = parse_error_of(json);
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
  EXPECT_NE(error.find("1, 2"), std::string::npos) << error;
}

TEST(JobSchema, RegulatePresetRequiresSchema2AndAPlacement) {
  svc::Json json = v1_job_json();
  json["preset"] = svc::Json::string("regulate");
  EXPECT_NE(parse_error_of(json).find("schema"), std::string::npos);
  json["schema"] = svc::Json::number(2);
  EXPECT_NE(parse_error_of(json).find("initial_placement"),
            std::string::npos);
}

TEST(JobSchema, UnknownRegulateFieldIsRejectedByQualifiedName) {
  svc::Json json = v1_job_json();
  json["schema"] = svc::Json::number(2);
  svc::Json reg = svc::Json::object();
  reg["radius_cells"] = svc::Json::number(2);
  json["regulate"] = reg;
  EXPECT_NE(parse_error_of(json).find("regulate.radius_cells"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The shared preset name table

TEST(PresetTable, EveryFrontEndSpellingResolvesThroughTheTable) {
  std::set<place::Preset> canonical_seen;
  std::set<std::string> names_seen;
  for (const place::PresetAlias& alias : place::preset_aliases()) {
    EXPECT_TRUE(names_seen.insert(alias.name).second)
        << "duplicate spelling " << alias.name;
    place::Preset parsed;
    ASSERT_TRUE(place::parse_preset(alias.name, parsed)) << alias.name;
    EXPECT_EQ(parsed, alias.preset) << alias.name;
    if (alias.canonical) {
      EXPECT_TRUE(canonical_seen.insert(alias.preset).second)
          << "two canonical spellings for " << alias.name;
      EXPECT_STREQ(place::preset_name(alias.preset), alias.name);
    }
  }
  // Every preset has exactly one canonical spelling in the table.
  EXPECT_EQ(canonical_seen.size(), 6u);
  // The regulate preset answers to its CLI alias.
  place::Preset eco;
  ASSERT_TRUE(place::parse_preset("eco", eco));
  EXPECT_EQ(eco, place::Preset::kRegulate);
}

// ---------------------------------------------------------------------------
// Warm-artifact ECO path of the service

class TempPl {
 public:
  explicit TempPl(const netlist::Design& design)
      : path_("/tmp/mp_test_regulate_" + std::to_string(::getpid()) + ".pl") {
    std::ofstream os(path_);
    io::write_pl(design, os);
  }
  ~TempPl() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

svc::JobSpec eco_job_spec(const std::string& placement_path) {
  svc::JobSpec spec;
  spec.schema = 2;
  spec.use_synthetic = true;
  spec.synthetic = tiny_bench_spec();
  spec.preset = svc::FlowPreset::kRegulate;
  spec.initial_placement_path = placement_path;
  spec.episodes = 6;
  spec.gamma = 6;
  spec.grid = 8;
  spec.channels = 8;
  spec.blocks = 1;
  return spec;
}

TEST(LocalServiceEco, WarmEcoResubmissionReusesEveryCachedArtifact) {
  // The incumbent: the same synthetic design the service will regenerate,
  // placed legally and written as a standalone .pl the job references.
  const TempPl incumbent(incumbent_design());

  svc::ServiceOptions options;
  options.stream_progress = false;
  svc::LocalService service(options);
  const svc::JobSpec spec = eco_job_spec(incumbent.path());

  const std::string cold = service.submit(spec).id;
  ASSERT_TRUE(service.wait(cold, 600.0));
  const std::string warm = service.submit(spec).id;
  ASSERT_TRUE(service.wait(warm, 600.0));

  const auto a = service.status(cold);
  const auto b = service.status(warm);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->state, svc::JobState::kDone) << a->error;
  ASSERT_EQ(b->state, svc::JobState::kDone) << b->error;
  // Warm == cold, bit for bit, and the regulate contract held.
  EXPECT_EQ(a->outcome.placement_hash, b->outcome.placement_hash);
  EXPECT_DOUBLE_EQ(a->outcome.hpwl, b->outcome.hpwl);
  EXPECT_LE(a->outcome.hpwl,
            a->outcome.input_hpwl * (1.0 + 1e-9));

  // The second job loaded nothing: design, incumbent placement, and the
  // prepared regulate flow all came out of the cache.
  const svc::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.design_misses, 1);
  EXPECT_GE(stats.design_hits, 1);
  EXPECT_EQ(stats.placement_misses, 1);
  EXPECT_GE(stats.placement_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_GE(stats.prepared_hits, 1);
}

TEST(LocalServiceEco, JobJsonCarriesEcoOutcomeFields) {
  const TempPl incumbent(incumbent_design());
  svc::ServiceOptions options;
  options.stream_progress = false;
  svc::LocalService service(options);
  const std::string id = service.submit(eco_job_spec(incumbent.path())).id;
  ASSERT_TRUE(service.wait(id, 600.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->state, svc::JobState::kDone) << snap->error;
  const svc::Json job = svc::LocalService::job_to_json(*snap);
  ASSERT_TRUE(job.find("outcome") != nullptr) << job.dump();
  const svc::Json& outcome = *job.find("outcome");
  EXPECT_TRUE(outcome.has("input_hpwl")) << outcome.dump();
  EXPECT_TRUE(outcome.has("moved_groups")) << outcome.dump();
  EXPECT_GT(outcome.find("input_hpwl")->as_number(), 0.0);
}

}  // namespace
}  // namespace mp
