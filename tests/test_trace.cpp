// Tests for the Chrome trace_event / Perfetto export (obs/trace.hpp): the
// flushed file is well-formed JSON in the trace_event schema, B/E events
// nest in balanced stacks per (pid, tid) track and mirror the span tree,
// context tags map to labelled process tracks, flush is idempotent, and
// tracing stays inert when disabled.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "svc/json.hpp"

namespace mp::obs {
namespace {

std::string read_file(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  int c;
  while ((c = std::fgetc(f)) != EOF) out += static_cast<char>(c);
  std::fclose(f);
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_values();
    path_ = ::testing::TempDir() + "trace_test.json";
    std::remove(path_.c_str());
    set_trace_path(path_);
  }
  void TearDown() override {
    set_trace_path("");  // disable and discard, so other suites stay inert
    std::remove(path_.c_str());
    set_enabled(true);
    reset_values();
  }
  std::string path_;
};

TEST_F(TraceTest, DisabledTracingIsInert) {
  set_trace_path("");
  EXPECT_FALSE(trace_enabled());
  {
    Span s("trace.untraced");
  }
  EXPECT_FALSE(trace_flush());
  EXPECT_TRUE(read_file(path_).empty());
}

TEST_F(TraceTest, FlushWritesWellFormedTraceEventJson) {
  ASSERT_TRUE(trace_enabled());
  {
    Span outer("trace.outer");
    { Span inner("trace.inner"); }
    { Span inner("trace.inner"); }
  }
  ASSERT_TRUE(trace_flush());

  const svc::Json doc = svc::Json::parse(read_file(path_));
  ASSERT_TRUE(doc.is_object());
  const svc::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const svc::Json* dropped = doc.find("droppedEvents");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->as_number(), 0.0);

  // 2 boundaries per span: outer + 2x inner = 6, plus "M" metadata rows.
  int begins = 0, ends = 0, meta = 0;
  long long last_ts = -1;
  for (const svc::Json& ev : events->items()) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.find("ph")->as_string();
    if (ph == "M") {
      ++meta;
      continue;
    }
    ASSERT_TRUE(ph == "B" || ph == "E") << "unexpected phase " << ph;
    ph == "B" ? ++begins : ++ends;
    // Timestamps are monotone non-decreasing (single-threaded span stream).
    const long long ts = static_cast<long long>(ev.find("ts")->as_number());
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
  EXPECT_EQ(begins, 3);
  EXPECT_EQ(ends, 3);
  EXPECT_GE(meta, 1);  // at least the "global" track label
}

TEST_F(TraceTest, EventsNestInBalancedStacksMatchingSpanTree) {
  ASSERT_TRUE(trace_enabled());
  Context job("job-t");
  {
    Span outer("trace.outer");
    { Span inner("trace.inner"); }
  }
  std::thread worker([&] {
    ScopedContext scoped(&job);
    Span tagged("trace.tagged");
    { Span leaf("trace.leaf"); }
  });
  worker.join();
  ASSERT_TRUE(trace_flush());

  const svc::Json doc = svc::Json::parse(read_file(path_));
  // Replay each (pid, tid) track's B/E stream as a stack: every E must close
  // the innermost open B with the same name, and every stack ends empty —
  // exactly the discipline of the nested Span destructors.
  std::map<std::pair<int, int>, std::vector<std::string>> stacks;
  std::map<int, std::string> track_labels;
  std::vector<std::string> toplevel;  // roots per track, in order
  for (const svc::Json& ev : doc.find("traceEvents")->items()) {
    const std::string& ph = ev.find("ph")->as_string();
    const int pid = static_cast<int>(ev.find("pid")->as_number());
    if (ph == "M") {
      if (ev.find("name")->as_string() == "process_name") {
        track_labels[pid] = ev.find("args")->find("name")->as_string();
      }
      continue;
    }
    const int tid = static_cast<int>(ev.find("tid")->as_number());
    auto& stack = stacks[{pid, tid}];
    const std::string& name = ev.find("name")->as_string();
    if (ph == "B") {
      if (stack.empty()) toplevel.push_back(name);
      stack.push_back(name);
    } else {
      ASSERT_FALSE(stack.empty()) << "E without matching B: " << name;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    }
  }
  for (const auto& [track, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unbalanced track pid=" << track.first;
  }
  // Two tracks (untagged main thread + the tagged worker), with the span
  // roots we opened, and the context tag labelling its own process track.
  EXPECT_EQ(stacks.size(), 2u);
  EXPECT_EQ(toplevel.size(), 2u);
  bool saw_global = false, saw_job = false;
  for (const auto& [pid, label] : track_labels) {
    if (label == "global") saw_global = true;
    if (label == "job:job-t") saw_job = true;
  }
  EXPECT_TRUE(saw_global);
  EXPECT_TRUE(saw_job);
}

TEST_F(TraceTest, FlushIsIdempotentAndRewritesTheFile) {
  ASSERT_TRUE(trace_enabled());
  {
    Span s("trace.once");
  }
  ASSERT_TRUE(trace_flush());
  const std::string first = read_file(path_);
  ASSERT_TRUE(trace_flush());
  const std::string second = read_file(path_);
  // Same buffer, same serialization: a long-lived server can flush after
  // every job without corrupting or duplicating the file.
  EXPECT_EQ(first, second);
  svc::Json::parse(second);  // throws on malformed output
}

TEST_F(TraceTest, SetTracePathResetsTheBuffer) {
  ASSERT_TRUE(trace_enabled());
  {
    Span s("trace.stale");
  }
  set_trace_path(path_);  // re-arm: clears buffered events
  {
    Span s("trace.fresh");
  }
  ASSERT_TRUE(trace_flush());
  const std::string text = read_file(path_);
  EXPECT_EQ(text.find("trace.stale"), std::string::npos);
  EXPECT_NE(text.find("trace.fresh"), std::string::npos);
}

}  // namespace
}  // namespace mp::obs
