// Tests for Bookshelf round-trip and placement plotting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchgen/generator.hpp"
#include "io/bookshelf.hpp"
#include "io/plot.hpp"

namespace mp::io {
namespace {

netlist::Design small_design() {
  benchgen::BenchSpec spec;
  spec.name = "tiny";
  spec.movable_macros = 4;
  spec.preplaced_macros = 1;
  spec.io_pads = 8;
  spec.std_cells = 40;
  spec.nets = 60;
  spec.seed = 3;
  return benchgen::generate(spec);
}

TEST(Bookshelf, NodesHeaderAndCounts) {
  const netlist::Design d = small_design();
  std::ostringstream os;
  write_nodes(d, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("UCLA nodes 1.0"), std::string::npos);
  EXPECT_NE(text.find("NumNodes : " + std::to_string(d.num_nodes())),
            std::string::npos);
  EXPECT_NE(text.find("terminal"), std::string::npos);
}

TEST(Bookshelf, RoundTripPreservesStructure) {
  const netlist::Design d = small_design();
  const std::string prefix = "/tmp/mp_test_bookshelf";
  write_bookshelf(d, prefix);
  const netlist::Design back = read_bookshelf(prefix);

  EXPECT_EQ(back.num_nodes(), d.num_nodes());
  EXPECT_EQ(back.num_nets(), d.num_nets());
  // Node dimensions and positions survive.
  for (std::size_t i = 0; i < d.num_nodes(); ++i) {
    const auto id = back.find_node(d.node(static_cast<int>(i)).name);
    ASSERT_TRUE(id.has_value());
    const netlist::Node& a = d.node(static_cast<int>(i));
    const netlist::Node& b = back.node(*id);
    EXPECT_NEAR(a.width, b.width, 1e-6);
    EXPECT_NEAR(a.height, b.height, 1e-6);
    EXPECT_NEAR(a.position.x, b.position.x, 1e-6);
    EXPECT_NEAR(a.position.y, b.position.y, 1e-6);
  }
}

TEST(Bookshelf, RoundTripPreservesHpwl) {
  const netlist::Design d = small_design();
  const std::string prefix = "/tmp/mp_test_bookshelf2";
  write_bookshelf(d, prefix);
  const netlist::Design back = read_bookshelf(prefix);
  EXPECT_NEAR(back.total_hpwl(), d.total_hpwl(), d.total_hpwl() * 1e-6 + 1e-6);
}

TEST(Bookshelf, ReadMissingFileThrows) {
  EXPECT_THROW(read_bookshelf("/tmp/definitely_not_there_xyz"),
               std::runtime_error);
}

TEST(Bookshelf, MacroClassificationByArea) {
  const netlist::Design d = small_design();
  const std::string prefix = "/tmp/mp_test_bookshelf3";
  write_bookshelf(d, prefix);
  const netlist::Design back = read_bookshelf(prefix);
  // Macro count should be preserved (macros are much larger than cells).
  EXPECT_EQ(back.macros().size(), d.macros().size());
  EXPECT_EQ(back.pads().size(), d.pads().size());
}

TEST(Plot, WritesValidPpm) {
  const netlist::Design d = small_design();
  const std::string path = "/tmp/mp_test_plot.ppm";
  PlotOptions options;
  options.width_px = 64;
  options.draw_grid = true;
  plot_placement(d, path, options);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P6");
  int w = 0, h = 0, depth = 0;
  f >> w >> h >> depth;
  EXPECT_EQ(w, 64);
  EXPECT_GT(h, 0);
  EXPECT_EQ(depth, 255);
  // Payload size matches.
  f.ignore(1);
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  EXPECT_GT(end, static_cast<std::streamoff>(3 * w * h));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mp::io
