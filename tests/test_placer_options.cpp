// Tests for MctsRlOptions variants: analytic guidance on/off, hill climb,
// overflow penalty, leaf-mode selection through the full flow (all driven
// through the unified place::run facade).

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "place/placer.hpp"

namespace mp::place {
namespace {

netlist::Design bench(std::uint64_t seed) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 10;
  spec.std_cells = 200;
  spec.nets = 320;
  spec.seed = seed;
  return benchgen::generate(spec);
}

MctsRlOptions fast_options() {
  MctsRlOptions options;
  options.flow.grid_dim = 4;
  options.flow.initial_gp.max_iterations = 3;
  options.flow.final_gp.max_iterations = 4;
  options.agent.channels = 8;
  options.agent.res_blocks = 1;
  options.train.episodes = 8;
  options.train.update_window = 4;
  options.train.calibration_episodes = 5;
  options.mcts.explorations_per_move = 6;
  return options;
}

PlaceResult run_mcts(netlist::Design& d, const MctsRlOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kMcts;
  spec.mcts_rl = options;
  return run(d, spec);
}

TEST(PlacerOptions, PaperFaithfulModeRuns) {
  netlist::Design d = bench(900);
  MctsRlOptions options = fast_options();
  options.analytic_guidance = false;  // pure pi_theta / v_theta search
  options.mcts.leaf_evaluation = mcts::LeafEvaluation::kValueNetwork;
  options.flow.refine_rounds = 0;     // paper-verbatim finalize
  const PlaceResult r = run_mcts(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
}

TEST(PlacerOptions, GuidanceNotWorseThanPureSearch) {
  netlist::Design d_guided = bench(901);
  netlist::Design d_pure = bench(901);
  MctsRlOptions guided = fast_options();
  guided.mcts.leaf_evaluation = mcts::LeafEvaluation::kPartialPlacement;
  MctsRlOptions pure = guided;
  pure.analytic_guidance = false;
  const PlaceResult r_guided = run_mcts(d_guided, guided);
  const PlaceResult r_pure = run_mcts(d_pure, pure);
  // The analytic seed lines go through best-seen tracking, so the guided
  // coarse objective can only match or beat the pure search.
  EXPECT_LE(r_guided.coarse_wirelength, r_pure.coarse_wirelength * 1.001);
}

TEST(PlacerOptions, HillClimbImprovesCoarseObjective) {
  netlist::Design d_off = bench(902);
  netlist::Design d_on = bench(902);
  MctsRlOptions off = fast_options();
  off.hill_climb_rounds = 0;
  MctsRlOptions on = off;
  on.hill_climb_rounds = 2;
  const PlaceResult r_off = run_mcts(d_off, off);
  const PlaceResult r_on = run_mcts(d_on, on);
  // Hill climb is greedy descent on the coarse objective: never worse there
  // (final HPWL may differ either way; see the design notes).
  EXPECT_LE(r_on.coarse_wirelength, r_off.coarse_wirelength + 1e-9);
}

TEST(PlacerOptions, OverflowPenaltyChangesObjectiveScale) {
  netlist::Design d = bench(903);
  MctsRlOptions options = fast_options();
  options.overflow_penalty = 2.0;
  const PlaceResult r = run_mcts(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_GT(r.coarse_wirelength, 0.0);
}

TEST(PlacerOptions, RowLegalCellsEndToEnd) {
  netlist::Design d = bench(904);
  MctsRlOptions options = fast_options();
  options.flow.row_legal_cells = true;
  const PlaceResult r = run_mcts(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_DOUBLE_EQ(r.hpwl, d.total_hpwl());
}

}  // namespace
}  // namespace mp::place
