// End-to-end tests of the paper's full flow (Algorithm 1) on small designs:
// the placement must be complete, legal and measurable, and the MCTS stage
// must not lose to the pure-RL rollout by a large margin (Fig. 5's claim in
// weak form suitable for a smoke test).  Everything goes through the unified
// place::run facade.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "benchgen/generator.hpp"
#include "io/plot.hpp"
#include "place/placer.hpp"

namespace mp::place {
namespace {

MctsRlOptions fast_options(int grid_dim = 4) {
  MctsRlOptions options;
  options.flow.grid_dim = grid_dim;
  options.flow.initial_gp.max_iterations = 3;
  options.flow.final_gp.max_iterations = 4;
  options.agent.channels = 8;
  options.agent.res_blocks = 1;
  options.train.episodes = 10;
  options.train.update_window = 5;
  options.train.calibration_episodes = 5;
  options.mcts.explorations_per_move = 12;
  return options;
}

netlist::Design bench(std::uint64_t seed, int macros = 10,
                      bool hierarchy = false, int preplaced = 0) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.preplaced_macros = preplaced;
  spec.std_cells = 200;
  spec.nets = 320;
  spec.hierarchy = hierarchy;
  spec.seed = seed;
  return benchgen::generate(spec);
}

PlaceResult run_flow(netlist::Design& d, const MctsRlOptions& options,
                     Preset preset = Preset::kMcts) {
  PlacerSpec spec;
  spec.preset = preset;
  spec.mcts_rl = options;
  return run(d, spec);
}

TEST(FullFlow, EndToEndLegalPlacement) {
  netlist::Design d = bench(90);
  const PlaceResult r = run_flow(d, fast_options());

  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_GT(r.hpwl, 0.0);
  EXPECT_GT(r.macro_groups, 0);
  EXPECT_GT(r.cell_groups, 0);
  EXPECT_EQ(r.mcts_result.anchors.size(),
            static_cast<std::size_t>(r.macro_groups));
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()));
  }
}

TEST(FullFlow, WorksWithHierarchyAndPreplaced) {
  netlist::Design d = bench(91, 8, /*hierarchy=*/true, /*preplaced=*/3);
  const PlaceResult r = run_flow(d, fast_options());
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
}

TEST(FullFlow, TrainingRewardsRecorded) {
  netlist::Design d = bench(92);
  const PlaceResult r = run_flow(d, fast_options());
  EXPECT_EQ(r.train_result.episodes.size(), 10u);
  EXPECT_GT(r.train_seconds, 0.0);
  EXPECT_GT(r.mcts_seconds, 0.0);
}

TEST(FullFlow, MctsNotMuchWorseThanRlOnly) {
  netlist::Design d_mcts = bench(93);
  netlist::Design d_rl = bench(93);
  const MctsRlOptions options = fast_options();
  const PlaceResult r_mcts = run_flow(d_mcts, options);
  const PlaceResult r_rl = run_flow(d_rl, options, Preset::kRlOnly);
  // Fig. 5: MCTS ≥ RL at any stage.  The smoke budget here is tiny (10
  // episodes, 12 explorations) and the RL-only result takes best-of-training,
  // so only guard against a blow-out; bench_fig5 measures the real effect.
  EXPECT_LT(r_mcts.coarse_wirelength, r_rl.coarse_wirelength * 1.5);
}

TEST(FullFlow, DeterministicWithFixedSeeds) {
  netlist::Design d1 = bench(94);
  netlist::Design d2 = bench(94);
  const MctsRlOptions options = fast_options();
  const PlaceResult r1 = run_flow(d1, options);
  const PlaceResult r2 = run_flow(d2, options);
  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
  EXPECT_DOUBLE_EQ(r1.coarse_wirelength, r2.coarse_wirelength);
}

TEST(FullFlow, PlacementCanBePlotted) {
  netlist::Design d = bench(95, 6);
  run_flow(d, fast_options());
  const std::string path = "/tmp/mp_test_flow_plot.ppm";
  io::PlotOptions plot;
  plot.width_px = 64;
  io::plot_placement(d, path, plot);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::remove(path.c_str());
}

TEST(RlOnly, ProducesLegalPlacement) {
  netlist::Design d = bench(96);
  const PlaceResult r = run_flow(d, fast_options(), Preset::kRlOnly);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
}

}  // namespace
}  // namespace mp::place
