// Tests for mplint (tools/mplint) — the in-repo static analyzer.  Each
// checker gets positive and negative fixtures fed through lint_source with
// synthetic repo-relative paths (the path picks the policy), the
// suppression grammar is exercised corner by corner, and a meta-test lints
// the real tree at MPLINT_SOURCE_ROOT asserting it is finding-free.

#include "mplint/mplint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using mp::lint::Finding;
using mp::lint::lint_source;
using mp::lint::lint_tree;
using mp::lint::Policy;
using mp::lint::policy_for;
using mp::lint::Token;
using mp::lint::tokenize;
using mp::lint::TokKind;

std::vector<std::string> checks_of(const std::vector<Finding>& findings) {
  std::vector<std::string> names;
  names.reserve(findings.size());
  for (const Finding& f : findings) names.push_back(f.check);
  return names;
}

bool has_check(const std::vector<Finding>& findings, const std::string& name) {
  const std::vector<std::string> names = checks_of(findings);
  return std::find(names.begin(), names.end(), name) != names.end();
}

// ---------------------------------------------------------------------------
// Tokenizer

TEST(LintLexer, ClassifiesBasicTokens) {
  const auto tokens = tokenize("int x = 42; // tail\n\"str\" 'c'");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[5].kind, TokKind::kComment);
  EXPECT_EQ(tokens[5].text, "// tail");
  EXPECT_EQ(tokens[6].kind, TokKind::kString);
  EXPECT_EQ(tokens[6].line, 2);
  EXPECT_EQ(tokens[7].kind, TokKind::kChar);
}

TEST(LintLexer, PreprocessorDirectiveIsOneTokenWithContinuations) {
  const auto tokens = tokenize("#define FOO(a) \\\n  ((a) + 1)\nint y;");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokKind::kPreproc);
  EXPECT_NE(tokens[0].text.find("FOO"), std::string::npos);
  EXPECT_NE(tokens[0].text.find("+ 1)"), std::string::npos);
  // The continuation consumed one newline, so `int` sits on line 3.
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(LintLexer, RawStringsSwallowFakeTokens) {
  const auto tokens =
      tokenize("auto s = R\"x(rand(); std::mutex m;)x\"; int z;");
  // Nothing inside the raw string may surface as an identifier.
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kIdent) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "mutex");
    }
  }
  EXPECT_TRUE(std::any_of(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.kind == TokKind::kString && t.text.rfind("R\"x(", 0) == 0;
  }));
}

TEST(LintLexer, BlockCommentTracksLines) {
  const auto tokens = tokenize("/* line1\nline2\n*/ int q;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokKind::kComment);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

// ---------------------------------------------------------------------------
// Policy table

TEST(LintPolicy, ResultAffectingDirsGetDeterminism) {
  for (const char* path :
       {"src/mcts/mcts.cpp", "src/rl/policy.hpp", "src/gp/wirelength.cpp",
        "src/qp/solver.cpp", "src/legal/legalize.cpp", "src/nn/net.cpp",
        "src/place/placer.cpp", "src/place/regulate_placer.cpp",
        "src/grid/grid.hpp", "src/netlist/design.cpp",
        "src/linalg/vec.hpp", "src/infer/engine.cpp", "src/infer/engine.hpp"}) {
    EXPECT_TRUE(policy_for(path).determinism) << path;
    EXPECT_TRUE(policy_for(path).lint) << path;
  }
}

TEST(LintPolicy, TimingLegitimateDirsAreExempt) {
  for (const char* path : {"src/obs/obs.cpp", "src/svc/scheduler.cpp",
                           "src/net/router.cpp", "src/bench/runner.cpp",
                           "src/util/timer.hpp"}) {
    const Policy p = policy_for(path);
    EXPECT_TRUE(p.lint) << path;
    EXPECT_FALSE(p.determinism) << path;
  }
}

TEST(LintPolicy, RngHomeAndScopeBoundaries) {
  EXPECT_TRUE(policy_for("src/util/rng.hpp").rng_home);
  EXPECT_TRUE(policy_for("src/util/rng.cpp").rng_home);
  EXPECT_FALSE(policy_for("src/util/log.cpp").rng_home);
  // Out of scope entirely: tests, tools, benches, non-C++ files.
  EXPECT_FALSE(policy_for("tests/test_lint.cpp").lint);
  EXPECT_FALSE(policy_for("tools/mplint/checks.cpp").lint);
  EXPECT_FALSE(policy_for("bench/bench_gp.cpp").lint);
  EXPECT_FALSE(policy_for("src/util/notes.md").lint);
  EXPECT_TRUE(policy_for("src/util/env.hpp").header);
  EXPECT_FALSE(policy_for("src/util/env.cpp").header);
}

// ---------------------------------------------------------------------------
// Determinism checkers

TEST(LintRand, FlagsRawRandOutsideRngHome) {
  const auto findings =
      lint_source("src/util/misc.cpp", "int r = rand() % 7;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "raw-rand");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintRand, AllowsRawRandInRngHomeAndMembers) {
  EXPECT_TRUE(
      lint_source("src/util/rng.cpp", "unsigned s = rand_r(&state);\n")
          .empty());
  // `.rand` is a member of some unrelated type, not ::rand.
  EXPECT_TRUE(
      lint_source("src/util/misc.cpp", "double v = gen.rand();\n").empty());
}

TEST(LintRand, FlagsRandomDeviceEverywhereInScope) {
  const auto findings =
      lint_source("src/obs/sampler.cpp", "std::random_device rd;\n");
  EXPECT_TRUE(has_check(findings, "raw-rand"));
}

TEST(LintClock, FlagsChronoNowInResultDirs) {
  const auto findings = lint_source(
      "src/mcts/mcts.cpp",
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "wall-clock");
}

TEST(LintClock, AllowsClocksInTimingDirs) {
  EXPECT_TRUE(lint_source("src/obs/obs.cpp",
                          "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/timer.hpp",
                          "#pragma once\n"
                          "auto t = std::chrono::high_resolution_clock::now();\n")
                  .empty());
}

TEST(LintClock, FlagsCTimeCallsButNotMembers) {
  EXPECT_TRUE(has_check(
      lint_source("src/gp/anneal.cpp", "std::srand(time(nullptr));\n"),
      "wall-clock"));
  // `.time(` is a member call on some stats object, not ::time.
  EXPECT_FALSE(has_check(
      lint_source("src/gp/anneal.cpp", "double d = row.time(3);\n"),
      "wall-clock"));
}

TEST(LintClock, InferEngineTimerNeedsJustifiedAllow) {
  // src/infer/ is result-affecting: a bare clock read is flagged, and only
  // the justified coalescing-timer allow (engine.cpp) suppresses it.
  EXPECT_TRUE(has_check(
      lint_source("src/infer/engine.cpp",
                  "auto d = std::chrono::steady_clock::now();\n"),
      "wall-clock"));
  EXPECT_TRUE(
      lint_source("src/infer/engine.cpp",
                  "// mplint: allow(wall-clock): coalescing wait timer\n"
                  "auto d = std::chrono::steady_clock::now();\n")
          .empty());
}

TEST(LintUnordered, FlagsRangeForAndBeginInResultDirs) {
  const std::string decl =
      "std::unordered_map<int, double> weights;\n";
  EXPECT_TRUE(has_check(
      lint_source("src/netlist/design.cpp",
                  decl + "for (const auto& [k, v] : weights) use(k, v);\n"),
      "unordered-iter"));
  EXPECT_TRUE(has_check(
      lint_source("src/grid/grid.cpp",
                  decl + "auto it = weights.begin();\n"),
      "unordered-iter"));
}

TEST(LintUnordered, AllowsLookupsAndOrderedContainers) {
  EXPECT_TRUE(lint_source("src/netlist/design.cpp",
                          "std::unordered_map<int, double> w;\n"
                          "auto it = w.find(3); w.emplace(4, 1.0);\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/netlist/design.cpp",
                          "std::map<int, double> w;\n"
                          "for (const auto& kv : w) use(kv);\n")
                  .empty());
  // Outside the result-affecting dirs iteration order cannot leak into
  // placements; the ban does not apply.
  EXPECT_TRUE(lint_source("src/svc/cache.cpp",
                          "std::unordered_map<int, int> m;\n"
                          "for (const auto& kv : m) use(kv);\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Lock discipline

TEST(LintMutex, FlagsUnannotatedMutexMembers) {
  const auto findings = lint_source(
      "src/svc/widget.cpp",
      "struct S {\n  std::mutex m_;\n  int guarded_ = 0;\n};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "mutex-annotation");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintMutex, AcceptsAnnotatedDeclarations) {
  EXPECT_TRUE(lint_source("src/svc/widget.cpp",
                          "struct S {\n"
                          "  std::mutex m_ MP_GUARDS(guarded_);\n"
                          "  std::condition_variable cv_ MP_GUARDED_BY(m_);\n"
                          "  int guarded_ MP_GUARDED_BY(m_) = 0;\n"
                          "};\n")
                  .empty());
}

TEST(LintMutex, FlagsEveryLockLikeType) {
  for (const char* type :
       {"mutex", "shared_mutex", "recursive_mutex", "condition_variable"}) {
    const auto findings = lint_source(
        "src/obs/x.cpp", std::string("std::") + type + " thing;\n");
    EXPECT_TRUE(has_check(findings, "mutex-annotation")) << type;
  }
}

TEST(LintMutex, SkipsNonDeclarationUses) {
  EXPECT_TRUE(lint_source("src/svc/widget.cpp",
                          "std::lock_guard<std::mutex> lock(m());\n"
                          "void take(std::mutex& m, std::mutex* p);\n"
                          "std::unique_ptr<std::mutex> owned;\n")
                  .empty());
}

TEST(LintLocks, FlagsManualLockCallsOnDeclaredMutexes) {
  const auto findings = lint_source("src/svc/widget.cpp",
                                    "std::mutex m_ MP_GUARDS(x_);\n"
                                    "void f() { m_.lock(); m_.unlock(); }\n");
  const auto names = checks_of(findings);
  EXPECT_EQ(std::count(names.begin(), names.end(), "raii-lock"), 2);
}

TEST(LintLocks, FlagsGuardUnlockButNotRelock) {
  const std::string body =
      "void f(std::unique_lock<std::mutex>& lock) {\n"
      "  lock.unlock();\n"
      "  work();\n"
      "  lock.lock();\n"
      "}\n";
  const auto findings = lint_source("src/svc/widget.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "manual-unlock");
  EXPECT_EQ(findings[0].line, 2);
}

// ---------------------------------------------------------------------------
// Header hygiene

TEST(LintHeader, RequiresPragmaOnce) {
  const auto findings = lint_source("src/util/thing.hpp", "int f();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "pragma-once");
  EXPECT_TRUE(
      lint_source("src/util/thing.hpp", "#pragma once\nint f();\n").empty());
  // Implementation files carry no guard requirement.
  EXPECT_TRUE(lint_source("src/util/thing.cpp", "int f() { return 1; }\n")
                  .empty());
}

TEST(LintHeader, BansIostreamInLibraryCode) {
  EXPECT_TRUE(has_check(
      lint_source("src/util/thing.cpp", "#include <iostream>\n"),
      "iostream-include"));
  EXPECT_TRUE(
      lint_source("src/util/thing.cpp", "#include <ostream>\n").empty());
}

TEST(LintHeader, BansUsingNamespaceInHeadersOnly) {
  EXPECT_TRUE(has_check(
      lint_source("src/util/thing.hpp",
                  "#pragma once\nusing namespace std;\n"),
      "using-namespace-header"));
  EXPECT_TRUE(
      lint_source("src/util/thing.cpp", "using namespace std;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions

TEST(LintSuppress, SameLineAndLineAboveBothWork) {
  EXPECT_TRUE(lint_source("src/util/misc.cpp",
                          "int r = rand();  "
                          "// mplint: allow(raw-rand): seeding test fixture\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/misc.cpp",
                          "// mplint: allow(raw-rand): seeding test fixture\n"
                          "int r = rand();\n")
                  .empty());
}

TEST(LintSuppress, CommentBlockPropagatesToLineBelow) {
  // Marker on the first line of a wrapped two-line justification still
  // covers the statement after the block.
  EXPECT_TRUE(lint_source("src/util/misc.cpp",
                          "// mplint: allow(raw-rand): the justification is\n"
                          "// long enough to wrap onto a second line.\n"
                          "int r = rand();\n")
                  .empty());
}

TEST(LintSuppress, JustificationIsMandatory) {
  const auto findings = lint_source(
      "src/util/misc.cpp", "int r = rand();  // mplint: allow(raw-rand)\n");
  // The bare allow() is itself a finding AND fails to suppress.
  EXPECT_TRUE(has_check(findings, "bad-suppression"));
  EXPECT_TRUE(has_check(findings, "raw-rand"));
}

TEST(LintSuppress, UnknownCheckNameIsReported) {
  const auto findings = lint_source(
      "src/util/misc.cpp",
      "int x = 0;  // mplint: allow(no-such-check): because\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "bad-suppression");
}

TEST(LintSuppress, ListSuppressesMultipleChecks) {
  EXPECT_TRUE(
      lint_source("src/mcts/mcts.cpp",
                  "// mplint: allow(raw-rand, wall-clock): fixture setup\n"
                  "auto x = rand() + time(nullptr);\n")
          .empty());
}

TEST(LintSuppress, OnlyNamedChecksAreSuppressed) {
  const auto findings = lint_source(
      "src/mcts/mcts.cpp",
      "// mplint: allow(raw-rand): fixture setup\n"
      "auto x = rand() + time(nullptr);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "wall-clock");
}

// ---------------------------------------------------------------------------
// Output format + tree scan

TEST(LintFormat, FindingsAreEditorParseable) {
  const Finding f{"src/a/b.cpp", 12, "raw-rand", "msg"};
  EXPECT_EQ(mp::lint::format_finding(f), "src/a/b.cpp:12: raw-rand: msg");
}

TEST(LintFormat, FindingsSortedByLine) {
  const auto findings = lint_source("src/util/misc.cpp",
                                    "int a = rand();\n"
                                    "int b = rand();\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
}

// The tree itself must be clean: every mutex annotated, no raw randomness
// or wall-clock reads in result-affecting dirs, headers hygienic, and every
// suppression justified.  A regression anywhere in src/ fails here first.
TEST(LintMeta, RealSourceTreeIsFindingFree) {
  const auto findings = lint_tree(MPLINT_SOURCE_ROOT);
  for (const Finding& f : findings) {
    ADD_FAILURE() << mp::lint::format_finding(f);
  }
}

}  // namespace
