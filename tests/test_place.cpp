// Tests for the baseline placers: each must produce a legal, in-region,
// finite-HPWL placement on small synthetic designs.  All flows run through
// the unified place::run facade.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "place/placer.hpp"

namespace mp::place {
namespace {

netlist::Design small_bench(std::uint64_t seed, int macros = 10,
                            bool hierarchy = false, int preplaced = 0) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.preplaced_macros = preplaced;
  spec.std_cells = 250;
  spec.nets = 400;
  spec.hierarchy = hierarchy;
  spec.seed = seed;
  return benchgen::generate(spec);
}

void expect_legal(const netlist::Design& d) {
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()))
        << "macro " << id << " escaped the region";
  }
}

PlaceResult run_sa(netlist::Design& d, const SaOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kSa;
  spec.sa = options;
  return run(d, spec);
}

PlaceResult run_wiremask(netlist::Design& d, const WiremaskOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kWiremask;
  spec.wiremask = options;
  return run(d, spec);
}

PlaceResult run_analytic(netlist::Design& d, const AnalyticOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kAnalytic;
  spec.analytic = options;
  return run(d, spec);
}

TEST(SaPlacer, ProducesLegalPlacement) {
  netlist::Design d = small_bench(80);
  SaOptions options;
  options.iterations = 2000;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  const PlaceResult r = run_sa(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_GT(r.hpwl, 0.0);
  expect_legal(d);
}

TEST(SaPlacer, AcceptsSomeMoves) {
  netlist::Design d = small_bench(81);
  SaOptions options;
  options.iterations = 1000;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  const PlaceResult r = run_sa(d, options);
  EXPECT_GT(r.sa_accept_ratio, 0.0);
}

TEST(SaPlacer, MoreIterationsHelpOrEqual) {
  netlist::Design d1 = small_bench(82);
  netlist::Design d2 = small_bench(82);
  SaOptions short_run;
  short_run.iterations = 100;
  short_run.initial_gp.max_iterations = 2;
  short_run.final_gp.max_iterations = 3;
  short_run.seed = 4;
  SaOptions long_run = short_run;
  long_run.iterations = 4000;
  const PlaceResult r_short = run_sa(d1, short_run);
  const PlaceResult r_long = run_sa(d2, long_run);
  EXPECT_LT(r_long.hpwl, r_short.hpwl * 1.2);
}

TEST(SaPlacer, HandlesPreplacedMacros) {
  netlist::Design d = small_bench(83, 8, true, 3);
  std::vector<geometry::Point> fixed_before;
  for (netlist::NodeId id : d.macros()) {
    if (d.node(id).fixed) fixed_before.push_back(d.node(id).position);
  }
  SaOptions options;
  options.iterations = 800;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  run_sa(d, options);
  std::size_t k = 0;
  for (netlist::NodeId id : d.macros()) {
    if (!d.node(id).fixed) continue;
    EXPECT_EQ(d.node(id).position, fixed_before[k]);
    ++k;
  }
}

TEST(WiremaskPlacer, ProducesLegalPlacement) {
  netlist::Design d = small_bench(84);
  WiremaskOptions options;
  options.grid_dim = 8;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  const PlaceResult r = run_wiremask(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_GT(r.wiremask_candidates, 0);
  expect_legal(d);
}

TEST(WiremaskPlacer, RespectsOccupancyPreference) {
  // With a tiny grid every anchor gets probed; just verify placements avoid
  // stacking all macros on one anchor.
  netlist::Design d = small_bench(85, 6);
  WiremaskOptions options;
  options.grid_dim = 6;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  run_wiremask(d, options);
  // At least two distinct macro positions.
  const auto& macros = d.movable_macros();
  bool distinct = false;
  for (std::size_t i = 1; i < macros.size(); ++i) {
    if (!(d.node(macros[i]).position == d.node(macros[0]).position)) {
      distinct = true;
      break;
    }
  }
  EXPECT_TRUE(distinct);
}

TEST(AnalyticPlacer, ProducesLegalPlacement) {
  netlist::Design d = small_bench(86);
  AnalyticOptions options;
  options.mixed_gp.max_iterations = 6;
  options.final_gp.max_iterations = 4;
  const PlaceResult r = run_analytic(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  expect_legal(d);
}

TEST(AnalyticPlacer, WorksWithoutMacros) {
  netlist::Design d = small_bench(87, /*macros=*/0);
  AnalyticOptions options;
  options.mixed_gp.max_iterations = 4;
  options.final_gp.max_iterations = 3;
  const PlaceResult r = run_analytic(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_GT(r.hpwl, 0.0);
}

// All baselines on the same design: results should be within one order of
// magnitude of each other (sanity against unit mistakes).
TEST(Baselines, ComparableMagnitudes) {
  netlist::Design d1 = small_bench(88);
  netlist::Design d2 = small_bench(88);
  SaOptions sa;
  sa.iterations = 1500;
  sa.initial_gp.max_iterations = 3;
  sa.final_gp.max_iterations = 3;
  WiremaskOptions wm;
  wm.grid_dim = 8;
  wm.initial_gp.max_iterations = 3;
  wm.final_gp.max_iterations = 3;
  const double hpwl_sa = run_sa(d1, sa).hpwl;
  const double hpwl_wm = run_wiremask(d2, wm).hpwl;
  EXPECT_LT(hpwl_sa, hpwl_wm * 10.0);
  EXPECT_LT(hpwl_wm, hpwl_sa * 10.0);
}

}  // namespace
}  // namespace mp::place
