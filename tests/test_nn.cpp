// Tests for the NN substrate: shapes, exact values where closed-form, and
// finite-difference gradient checks for every layer (the load-bearing
// correctness property for Actor-Critic training).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>

#include "nn/functional.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace mp::nn {
namespace {

// Loss = sum(grad_pattern ⊙ layer(x)); checks dL/dx and dL/dθ against
// central finite differences.
void check_gradients(Layer& layer, Tensor input, double tolerance = 3e-2,
                     float fd_eps = 1e-2f) {
  util::Rng rng(99);
  Tensor out = layer.forward(input, /*train=*/true);
  Tensor grad_pattern = out;
  for (std::size_t i = 0; i < grad_pattern.size(); ++i) {
    grad_pattern[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto loss = [&](const Tensor& x) {
    Tensor y = layer.forward(x, /*train=*/true);
    double total = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(grad_pattern[i]) * y[i];
    }
    return total;
  };

  // Analytic gradients.
  std::vector<Parameter*> params;
  layer.collect_parameters(params);
  for (Parameter* p : params) p->grad.zero();
  layer.forward(input, true);
  const Tensor grad_input = layer.backward(grad_pattern);

  // Input gradient check (sample entries to bound runtime).
  const std::size_t input_stride = std::max<std::size_t>(1, input.size() / 24);
  for (std::size_t i = 0; i < input.size(); i += input_stride) {
    Tensor xp = input, xm = input;
    xp[i] += fd_eps;
    xm[i] -= fd_eps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * fd_eps);
    const double analytic = grad_input[i];
    EXPECT_NEAR(analytic, numeric,
                tolerance * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at " << i;
  }
  // Parameter gradient check.
  for (std::size_t k = 0; k < params.size(); ++k) {
    Parameter* p = params[k];
    const std::size_t stride = std::max<std::size_t>(1, p->value.size() / 16);
    for (std::size_t i = 0; i < p->value.size(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + fd_eps;
      const double lp = loss(input);
      p->value[i] = orig - fd_eps;
      const double lm = loss(input);
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * fd_eps);
      const double analytic = p->grad[i];
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "param " << k << " grad mismatch at " << i;
    }
  }
}

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3);
  t.fill(2.5f);
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 2.5f);
  t.reshape({24});
  EXPECT_EQ(t.rank(), 1);
}

TEST(Tensor, AddAndScale) {
  Tensor a({3}, 1.0f), b({3}, 2.0f);
  a.add(b);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  util::Rng rng(1);
  Conv2d conv(1, 1, 3, rng);
  std::vector<Parameter*> params;
  conv.collect_parameters(params);
  // weight layout [outC=1, inC*3*3]; identity = center tap.
  params[0]->value.zero();
  params[0]->value[4] = 1.0f;
  params[1]->value.zero();
  const Tensor x = random_tensor({1, 5, 5}, 2);
  const Tensor y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, OutputShape) {
  util::Rng rng(3);
  Conv2d conv(3, 8, 3, rng);
  const Tensor y = conv.forward(random_tensor({3, 6, 7}, 4), false);
  EXPECT_EQ(y.dim(0), 8);
  EXPECT_EQ(y.dim(1), 6);
  EXPECT_EQ(y.dim(2), 7);
}

TEST(Conv2d, GradientCheck3x3) {
  util::Rng rng(5);
  Conv2d conv(2, 3, 3, rng);
  check_gradients(conv, random_tensor({2, 4, 4}, 6));
}

TEST(Conv2d, GradientCheck1x1) {
  util::Rng rng(7);
  Conv2d conv(4, 2, 1, rng);
  check_gradients(conv, random_tensor({4, 3, 3}, 8));
}

TEST(BatchNorm2d, NormalizesInTrainMode) {
  BatchNorm2d bn(2);
  const Tensor x = random_tensor({2, 4, 4}, 9);
  const Tensor y = bn.forward(x, true);
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int h = 0; h < 4; ++h) {
      for (int w = 0; w < 4; ++w) mean += y.at(c, h, w);
    }
    mean /= 16.0;
    for (int h = 0; h < 4; ++h) {
      for (int w = 0; w < 4; ++w) {
        var += (y.at(c, h, w) - mean) * (y.at(c, h, w) - mean);
      }
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm2d, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  // Train several times on a shifted distribution.
  for (int i = 0; i < 50; ++i) {
    Tensor x = random_tensor({1, 4, 4}, 10 + static_cast<std::uint64_t>(i));
    for (std::size_t k = 0; k < x.size(); ++k) x[k] = x[k] * 2.0f + 5.0f;
    bn.forward(x, true);
  }
  // Eval on the same distribution should give ~zero mean output.
  Tensor x = random_tensor({1, 4, 4}, 999);
  for (std::size_t k = 0; k < x.size(); ++k) x[k] = x[k] * 2.0f + 5.0f;
  const Tensor y = bn.forward(x, false);
  double mean = 0.0;
  for (std::size_t k = 0; k < y.size(); ++k) mean += y[k];
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 0.0, 0.5);
}

TEST(BatchNorm2d, GradientCheck) {
  BatchNorm2d bn(3);
  check_gradients(bn, random_tensor({3, 4, 4}, 11), 5e-2);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x({4});
  x[0] = -1.0f; x[1] = 0.0f; x[2] = 2.0f; x[3] = -0.5f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({3});
  x[0] = -1.0f; x[1] = 1.0f; x[2] = 3.0f;
  relu.forward(x, true);
  Tensor g({3}, 1.0f);
  const Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 1.0f);
  EXPECT_FLOAT_EQ(gi[2], 1.0f);
}

TEST(Linear, ClosedFormForward) {
  util::Rng rng(12);
  Linear lin(2, 2, rng);
  std::vector<Parameter*> params;
  lin.collect_parameters(params);
  // W = [[1, 2], [3, 4]], b = [10, 20]
  params[0]->value[0] = 1; params[0]->value[1] = 2;
  params[0]->value[2] = 3; params[0]->value[3] = 4;
  params[1]->value[0] = 10; params[1]->value[1] = 20;
  Tensor x({2});
  x[0] = 1.0f; x[1] = -1.0f;
  const Tensor y = lin.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 9.0f);
  EXPECT_FLOAT_EQ(y[1], 19.0f);
}

TEST(Linear, GradientCheck) {
  util::Rng rng(13);
  Linear lin(5, 3, rng);
  check_gradients(lin, random_tensor({5}, 14));
}

TEST(ResBlock, GradientCheck) {
  util::Rng rng(15);
  ResBlock block(2, rng);
  // Two stacked BatchNorms over a small spatial extent are numerically
  // touchy under finite differences (ReLU kinks + stat re-normalization);
  // use a larger extent, a smaller step and a looser bound.
  check_gradients(block, random_tensor({2, 6, 6}, 16), 1e-1, 3e-3f);
}

TEST(Sequential, ComposesAndBackprops) {
  util::Rng rng(17);
  Sequential seq;
  seq.add(std::make_unique<Conv2d>(1, 2, 3, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Conv2d>(2, 1, 1, rng));
  check_gradients(seq, random_tensor({1, 4, 4}, 18));
}

TEST(Softmax, SumsToOne) {
  Tensor logits({4});
  logits[0] = 1.0f; logits[1] = 2.0f; logits[2] = 0.5f; logits[3] = -3.0f;
  const Tensor p = softmax(logits);
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) sum += p[i];
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({2});
  logits[0] = 1000.0f;
  logits[1] = 999.0f;
  const Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[0], p[1]);
}

TEST(MaskedSoftmax, ZeroMaskExcludesEntries) {
  Tensor logits({3});
  logits[0] = 5.0f; logits[1] = 1.0f; logits[2] = 1.0f;
  const Tensor p = masked_softmax(logits, {0.0, 1.0, 1.0});
  EXPECT_FLOAT_EQ(p[0], 0.0f);
  EXPECT_NEAR(p[1] + p[2], 1.0, 1e-6);
}

TEST(MaskedSoftmax, MaskWeightsScaleProbabilities) {
  Tensor logits({2});
  logits[0] = 0.0f;
  logits[1] = 0.0f;
  const Tensor p = masked_softmax(logits, {3.0, 1.0});
  EXPECT_NEAR(p[0], 0.75, 1e-6);
}

TEST(MaskedSoftmax, AllZeroMaskFallsBack) {
  Tensor logits({2});
  logits[0] = 1.0f;
  logits[1] = 1.0f;
  const Tensor p = masked_softmax(logits, {0.0, 0.0});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-6);
}

TEST(PolicyGradient, MatchesFiniteDifference) {
  // loss = -log p[a] * A through softmax; check against numeric gradient.
  Tensor logits({4});
  logits[0] = 0.3f; logits[1] = -0.2f; logits[2] = 1.1f; logits[3] = 0.0f;
  const int action = 2;
  const float advantage = 0.7f;
  const Tensor p = softmax(logits);
  const Tensor g = policy_gradient(p, action, advantage);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double fp = -std::log(softmax(lp)[action]) * advantage;
    const double fm = -std::log(softmax(lm)[action]) * advantage;
    EXPECT_NEAR(g[i], (fp - fm) / (2 * eps), 1e-3);
  }
}

TEST(Sgd, MovesAgainstGradient) {
  Parameter p({2});
  p.value[0] = 1.0f;
  p.value[1] = -1.0f;
  Sgd opt({&p}, 0.1f, 0.0f);
  p.grad[0] = 1.0f;
  p.grad[1] = -2.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.9f);
  EXPECT_FLOAT_EQ(p.value[1], -0.8f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // zeroed after step
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (x - 3)^2 by gradient descent.
  Parameter p({1});
  p.value[0] = 0.0f;
  Adam opt({&p}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Optimizer, GradClipScalesDown) {
  Parameter p({2});
  Sgd opt({&p}, 0.1f);
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;  // norm 5
  const double norm = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-6);
  EXPECT_NEAR(p.grad[1], 0.8f, 1e-6);
}

TEST(Serialize, SnapshotRestoreRoundTrip) {
  util::Rng rng(19);
  Linear lin(4, 4, rng);
  std::vector<Parameter*> params;
  lin.collect_parameters(params);
  const auto snapshot = snapshot_parameters(params);
  const float orig = params[0]->value[0];
  params[0]->value[0] = 123.0f;
  restore_parameters(params, snapshot);
  EXPECT_FLOAT_EQ(params[0]->value[0], orig);
}

TEST(Serialize, FileRoundTrip) {
  util::Rng rng(20);
  Linear a(3, 2, rng), b(3, 2, rng);
  std::vector<Parameter*> pa, pb;
  a.collect_parameters(pa);
  b.collect_parameters(pb);
  const std::string path = "/tmp/mp_test_params.bin";
  save_parameters(pa, path);
  load_parameters(pb, path);
  for (std::size_t k = 0; k < pa.size(); ++k) {
    for (std::size_t i = 0; i < pa[k]->value.size(); ++i) {
      EXPECT_FLOAT_EQ(pa[k]->value[i], pb[k]->value[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsWrongShape) {
  util::Rng rng(21);
  Linear a(3, 2, rng), b(4, 2, rng);
  std::vector<Parameter*> pa, pb;
  a.collect_parameters(pa);
  b.collect_parameters(pb);
  const std::string path = "/tmp/mp_test_params2.bin";
  save_parameters(pa, path);
  try {
    load_parameters(pb, path);
    FAIL() << "expected shape mismatch";
  } catch (const std::runtime_error& e) {
    // The message must name both shapes so a weights/config mix-up is
    // diagnosable from the exception alone.
    EXPECT_NE(std::string(e.what()).find("shape mismatch"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("[2,4]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[2,3]"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// Saves one small Linear's parameters to `path` and returns its raw bytes.
std::string save_reference_file(const std::string& path) {
  util::Rng rng(22);
  Linear lin(3, 2, rng);
  std::vector<Parameter*> params;
  lin.collect_parameters(params);
  save_parameters(params, path);
  std::ifstream f(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << f.rdbuf();
  return bytes.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Serialize, ReadParametersFileRoundTripsBitExactly) {
  util::Rng rng(23);
  Linear lin(5, 3, rng);
  std::vector<Parameter*> params;
  lin.collect_parameters(params);
  const std::string path = "/tmp/mp_test_params_read.bin";
  save_parameters(params, path);
  const std::vector<Tensor> loaded = read_parameters_file(path);
  ASSERT_EQ(loaded.size(), params.size());
  for (std::size_t k = 0; k < loaded.size(); ++k) {
    ASSERT_EQ(loaded[k].shape(), params[k]->value.shape());
    for (std::size_t i = 0; i < loaded[k].size(); ++i) {
      // Bit-exact, not approximately equal: these bytes seed the service
      // weights cache, whose determinism contract is bit-identity.
      const float got = loaded[k][i];
      const float want = params[k]->value[i];
      EXPECT_EQ(std::memcmp(&got, &want, sizeof(float)), 0);
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsTruncatedFile) {
  const std::string path = "/tmp/mp_test_params_trunc.bin";
  const std::string bytes = save_reference_file(path);
  // Cut in every region: header, shape table, tensor payload.
  for (const std::size_t keep :
       {std::size_t{2}, std::size_t{9}, bytes.size() - 3}) {
    write_bytes(path, bytes.substr(0, keep));
    try {
      read_parameters_file(path);
      FAIL() << "expected truncation error at " << keep << " bytes";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsBadMagic) {
  const std::string path = "/tmp/mp_test_params_magic.bin";
  std::string bytes = save_reference_file(path);
  bytes[0] = 'X';
  write_bytes(path, bytes);
  try {
    read_parameters_file(path);
    FAIL() << "expected bad-magic error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not an nn parameter file"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsTrailingBytes) {
  const std::string path = "/tmp/mp_test_params_trail.bin";
  const std::string bytes = save_reference_file(path);
  write_bytes(path, bytes + '\0');
  EXPECT_THROW(read_parameters_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsImplausibleHeader) {
  const std::string path = "/tmp/mp_test_params_huge.bin";
  std::string bytes = save_reference_file(path);
  // Corrupt the tensor count (bytes 4..7) to 2^31: must refuse before
  // attempting any allocation.
  bytes[4] = 0;
  bytes[5] = 0;
  bytes[6] = 0;
  bytes[7] = static_cast<char>(0x80);
  write_bytes(path, bytes);
  try {
    read_parameters_file(path);
    FAIL() << "expected implausible-count error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsCountMismatchNamingBothCounts) {
  const std::string path = "/tmp/mp_test_params_count.bin";
  save_reference_file(path);  // 2 tensors (weight + bias)
  util::Rng rng(24);
  Sequential net;
  net.add(std::make_unique<Linear>(3, 2, rng));
  net.add(std::make_unique<Linear>(2, 2, rng));
  std::vector<Parameter*> params;  // 4 tensors
  net.collect_parameters(params);
  try {
    load_parameters(params, path);
    FAIL() << "expected count mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("network has 4"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("file has 2"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mp::nn
