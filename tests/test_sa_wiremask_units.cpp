// Focused unit tests for the SA and wiremask baselines' internal behavior
// (beyond the end-to-end checks in test_place.cpp).  All flows go through the
// unified place::run facade; per-flow detail lands in PlaceResult
// (sa_final_cost, sa_accept_ratio, wiremask_candidates).

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "place/placer.hpp"

namespace mp::place {
namespace {

netlist::Design bench(std::uint64_t seed, int macros = 8) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.std_cells = 150;
  spec.nets = 250;
  spec.seed = seed;
  return benchgen::generate(spec);
}

PlaceResult run_sa(netlist::Design& d, const SaOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kSa;
  spec.sa = options;
  return run(d, spec);
}

PlaceResult run_wiremask(netlist::Design& d, const WiremaskOptions& options) {
  PlacerSpec spec;
  spec.preset = Preset::kWiremask;
  spec.wiremask = options;
  return run(d, spec);
}

TEST(SaUnit, DeterministicForSameSeed) {
  SaOptions options;
  options.iterations = 500;
  options.seed = 77;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  netlist::Design d1 = bench(600);
  netlist::Design d2 = bench(600);
  const PlaceResult r1 = run_sa(d1, options);
  const PlaceResult r2 = run_sa(d2, options);
  EXPECT_DOUBLE_EQ(r1.hpwl, r2.hpwl);
  EXPECT_DOUBLE_EQ(r1.sa_final_cost, r2.sa_final_cost);
}

TEST(SaUnit, DifferentSeedsExploreDifferently) {
  SaOptions a;
  a.iterations = 800;
  a.seed = 1;
  a.initial_gp.max_iterations = 2;
  a.final_gp.max_iterations = 3;
  SaOptions b = a;
  b.seed = 2;
  netlist::Design d1 = bench(601);
  netlist::Design d2 = bench(601);
  const PlaceResult r1 = run_sa(d1, a);
  const PlaceResult r2 = run_sa(d2, b);
  EXPECT_NE(r1.sa_final_cost, r2.sa_final_cost);
}

TEST(SaUnit, ZeroIterationsStillLegalizes) {
  SaOptions options;
  options.iterations = 0;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  netlist::Design d = bench(602);
  const PlaceResult r = run_sa(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
}

TEST(SaUnit, WorksWithoutNets) {
  netlist::Design d("isolated", geometry::Rect(0, 0, 100, 100));
  for (int i = 0; i < 4; ++i) {
    netlist::Node m;
    m.name = "m" + std::to_string(i);
    m.kind = netlist::NodeKind::kMacro;
    m.width = 10;
    m.height = 10;
    m.position = {40.0, 40.0};
    d.add_node(m);
  }
  SaOptions options;
  options.iterations = 200;
  const PlaceResult r = run_sa(d, options);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.hpwl, 0.0);  // no nets, no wirelength
}

TEST(WiremaskUnit, DeterministicAcrossRuns) {
  WiremaskOptions options;
  options.grid_dim = 8;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 3;
  netlist::Design d1 = bench(603);
  netlist::Design d2 = bench(603);
  EXPECT_DOUBLE_EQ(run_wiremask(d1, options).hpwl,
                   run_wiremask(d2, options).hpwl);
}

TEST(WiremaskUnit, FinerGridNotCatastrophicallyWorse) {
  WiremaskOptions coarse;
  coarse.grid_dim = 4;
  coarse.initial_gp.max_iterations = 2;
  coarse.final_gp.max_iterations = 3;
  WiremaskOptions fine = coarse;
  fine.grid_dim = 16;
  netlist::Design d1 = bench(604);
  netlist::Design d2 = bench(604);
  const double h_coarse = run_wiremask(d1, coarse).hpwl;
  const double h_fine = run_wiremask(d2, fine).hpwl;
  EXPECT_LT(h_fine, h_coarse * 1.5);
}

TEST(WiremaskUnit, CandidateCountScalesWithGrid) {
  WiremaskOptions small;
  small.grid_dim = 4;
  small.initial_gp.max_iterations = 2;
  small.final_gp.max_iterations = 2;
  WiremaskOptions big = small;
  big.grid_dim = 16;
  netlist::Design d1 = bench(605);
  netlist::Design d2 = bench(605);
  const PlaceResult r_small = run_wiremask(d1, small);
  const PlaceResult r_big = run_wiremask(d2, big);
  EXPECT_GT(r_big.wiremask_candidates, r_small.wiremask_candidates * 4);
}

TEST(WiremaskUnit, NoMacrosIsGraceful) {
  netlist::Design d = bench(606, /*macros=*/0);
  WiremaskOptions options;
  options.initial_gp.max_iterations = 2;
  options.final_gp.max_iterations = 2;
  const PlaceResult r = run_wiremask(d, options);
  EXPECT_TRUE(std::isfinite(r.hpwl));
  EXPECT_EQ(r.wiremask_candidates, 0);
}

}  // namespace
}  // namespace mp::place
