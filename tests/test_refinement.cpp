// Tests for the flow-level macro refinement (FlowOptions::refine_rounds):
// monotone improvement with rollback, legality preservation, and the
// paper-verbatim mode (refine_rounds = 0).

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "place/flow.hpp"

namespace mp::place {
namespace {

struct Prepared {
  netlist::Design design;
  FlowContext context;
  std::vector<grid::CellCoord> anchors;
  FlowOptions options;

  explicit Prepared(std::uint64_t seed) {
    benchgen::BenchSpec spec;
    spec.movable_macros = 12;
    spec.std_cells = 250;
    spec.nets = 400;
    spec.seed = seed;
    design = benchgen::generate(spec);
    options.grid_dim = 8;
    options.initial_gp.max_iterations = 4;
    options.final_gp.max_iterations = 5;
    context = prepare_flow(design, options);
    for (std::size_t g = 0; g < context.clustering.macro_groups.size(); ++g) {
      anchors.push_back({static_cast<int>(g) % 8, static_cast<int>(g / 8) % 8});
    }
  }
};

TEST(Refinement, NeverWorseThanPaperVerbatimFlow) {
  Prepared base(300);
  Prepared refined(300);
  base.options.refine_rounds = 0;
  refined.options.refine_rounds = 3;
  const double h_base =
      finalize_placement(base.design, base.context, base.anchors, base.options);
  const double h_refined = finalize_placement(refined.design, refined.context,
                                              refined.anchors, refined.options);
  // Rollback guarantees refinement is monotone in measured HPWL.
  EXPECT_LE(h_refined, h_base + 1e-9);
}

TEST(Refinement, ResultStaysLegal) {
  Prepared p(301);
  p.options.refine_rounds = 3;
  finalize_placement(p.design, p.context, p.anchors, p.options);
  EXPECT_NEAR(p.design.macro_overlap_area(), 0.0,
              p.design.region().area() * 1e-9);
  for (netlist::NodeId id : p.design.movable_macros()) {
    EXPECT_TRUE(p.design.region().contains(p.design.node(id).rect()));
  }
}

TEST(Refinement, ReturnedHpwlMatchesDesignState) {
  Prepared p(302);
  p.options.refine_rounds = 2;
  const double hpwl =
      finalize_placement(p.design, p.context, p.anchors, p.options);
  EXPECT_DOUBLE_EQ(hpwl, p.design.total_hpwl());
}

TEST(Refinement, ZeroRoundsIsNoop) {
  Prepared a(303);
  Prepared b(303);
  a.options.refine_rounds = 0;
  b.options.refine_rounds = 0;
  const double ha = finalize_placement(a.design, a.context, a.anchors, a.options);
  const double hb = finalize_placement(b.design, b.context, b.anchors, b.options);
  EXPECT_DOUBLE_EQ(ha, hb);
}

}  // namespace
}  // namespace mp::place
