// Tests for the shared batched inference engine (src/infer) and the
// partition-invariance contract underneath it: batched layer/network
// forwards are bit-identical per sample to the single-sample forward
// (docs/INFERENCE.md), snapshots dedupe by parameter content hash,
// concurrent requests coalesce without changing any result, and both the
// MCTS placer and the placement service produce byte-identical placements
// with the engine on and off.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "infer/engine.hpp"
#include "mcts/mcts.hpp"
#include "nn/layers.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace mp::infer {
namespace {

// ---------------------------------------------------------------------------
// Fixtures

rl::AgentConfig tiny_agent_config(std::uint64_t seed) {
  rl::AgentConfig config;
  config.grid_dim = 8;
  config.channels = 8;
  config.res_blocks = 1;
  config.seed = seed;
  return config;
}

/// Random-but-plausible observations: utilization in [0, 1], a 0/1
/// availability mask with at least one legal cell, and a step index.
std::vector<rl::NetInput> random_inputs(int n, int grid_dim,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  const int cells = grid_dim * grid_dim;
  std::vector<rl::NetInput> inputs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rl::NetInput& in = inputs[static_cast<std::size_t>(i)];
    in.sp.resize(static_cast<std::size_t>(cells));
    in.availability.resize(static_cast<std::size_t>(cells));
    for (int c = 0; c < cells; ++c) {
      in.sp[static_cast<std::size_t>(c)] = rng.uniform(0.0, 1.0);
      in.availability[static_cast<std::size_t>(c)] =
          rng.uniform(0.0, 1.0) < 0.6 ? 1.0 : 0.0;
    }
    in.availability[static_cast<std::size_t>(i % cells)] = 1.0;
    in.total_steps = 10;
    in.t = i % in.total_steps;
  }
  return inputs;
}

bool bitwise_equal(const nn::Tensor& a, const nn::Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

bool bitwise_equal(const rl::AgentOutput& a, const rl::AgentOutput& b) {
  return bitwise_equal(a.probs, b.probs) &&
         std::memcmp(&a.value, &b.value, sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Batched forward == per-sample forward, bit for bit

TEST(BatchedForward, NetworkForwardManyBitIdenticalPerSample) {
  rl::AgentNetwork agent(tiny_agent_config(11));
  for (const int batch : {1, 2, 7, 32}) {
    const std::vector<rl::NetInput> inputs = random_inputs(batch, 8, 100u + batch);
    const std::vector<rl::AgentOutput> many = agent.forward_many(inputs);
    ASSERT_EQ(many.size(), inputs.size());
    for (int i = 0; i < batch; ++i) {
      const rl::NetInput& in = inputs[static_cast<std::size_t>(i)];
      const rl::AgentOutput one = agent.forward(
          in.sp, in.availability, in.t, in.total_steps, /*train=*/false);
      EXPECT_TRUE(bitwise_equal(many[static_cast<std::size_t>(i)], one))
          << "batch " << batch << " sample " << i;
    }
  }
}

TEST(BatchedForward, ConvForwardBatchedMatchesPerSample) {
  util::Rng rng(3);
  nn::Conv2d conv(3, 5, 3, rng);
  const int h = 8, w = 8;
  for (const int batch : {1, 2, 7}) {
    nn::Tensor stacked({batch, 3, h, w});
    util::Rng data_rng(40u + static_cast<std::uint64_t>(batch));
    for (std::size_t i = 0; i < stacked.size(); ++i) {
      stacked[i] = static_cast<float>(data_rng.uniform(-1.0, 1.0));
    }
    const nn::Tensor out = conv.forward_batched(stacked, batch);
    ASSERT_EQ(out.dim(0), batch);
    const std::size_t in_stride = static_cast<std::size_t>(3) * h * w;
    const std::size_t out_stride = static_cast<std::size_t>(5) * h * w;
    for (int b = 0; b < batch; ++b) {
      nn::Tensor sample({3, h, w});
      std::memcpy(sample.data(), stacked.data() + in_stride * b,
                  sizeof(float) * in_stride);
      const nn::Tensor one = conv.forward(sample, /*train=*/false);
      EXPECT_EQ(std::memcmp(out.data() + out_stride * b, one.data(),
                            sizeof(float) * out_stride),
                0)
          << "batch " << batch << " sample " << b;
    }
  }
}

TEST(BatchedForward, ConvReleasesColCacheAfterInferenceForward) {
  util::Rng rng(4);
  nn::Conv2d conv(2, 2, 3, rng);
  nn::Tensor x({2, 4, 4}, 0.5f);

  conv.forward(x, /*train=*/true);
  EXPECT_TRUE(conv.holds_col_cache());  // backward needs it

  conv.forward(x, /*train=*/false);
  EXPECT_FALSE(conv.holds_col_cache());  // inference must not retain it

  conv.forward(x, /*train=*/true);
  nn::Tensor stacked({2, 2, 4, 4}, 0.25f);
  conv.forward_batched(stacked, 2);
  // forward_batched never touches the training caches either way, but it
  // must not leave a batch-sized buffer behind.
  EXPECT_TRUE(conv.holds_col_cache());
  conv.forward(x, /*train=*/false);
  EXPECT_FALSE(conv.holds_col_cache());
}

// ---------------------------------------------------------------------------
// Engine basics

TEST(Engine, ForwardMatchesDirectForwardMany) {
  rl::AgentNetwork agent(tiny_agent_config(21));
  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_us = 0;
  InferenceEngine engine(options);
  const SnapshotId id = engine.acquire(agent);

  const std::vector<rl::NetInput> inputs = random_inputs(5, 8, 7);
  const std::vector<rl::AgentOutput> via_engine = engine.forward(id, inputs);
  const std::vector<rl::AgentOutput> direct = agent.forward_many(inputs);
  ASSERT_EQ(via_engine.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(via_engine[i], direct[i])) << i;
  }
  engine.release(id);
}

TEST(Engine, SnapshotsDedupeByParameterHash) {
  rl::AgentNetwork agent(tiny_agent_config(31));
  InferenceEngine engine;

  const SnapshotId a = engine.acquire(agent);
  const SnapshotId b = engine.acquire(agent);  // same parameters
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.stats().snapshots, 1u);

  const std::unique_ptr<rl::AgentNetwork> clone = agent.clone();
  const SnapshotId c = engine.acquire(*clone);  // clone hashes identically
  EXPECT_EQ(a, c);
  EXPECT_EQ(engine.stats().snapshots, 1u);

  rl::AgentNetwork other(tiny_agent_config(32));  // different init
  const SnapshotId d = engine.acquire(other);
  EXPECT_NE(a, d);
  EXPECT_EQ(engine.stats().snapshots, 2u);

  engine.release(a);
  engine.release(b);
  EXPECT_EQ(engine.stats().snapshots, 2u);  // c still holds a reference
  engine.release(c);
  engine.release(d);
  EXPECT_EQ(engine.stats().snapshots, 0u);
}

TEST(Engine, ForwardOnUnknownSnapshotThrows) {
  InferenceEngine engine;
  EXPECT_THROW(engine.forward(0xdeadbeefu, random_inputs(1, 8, 1)),
               std::runtime_error);
}

TEST(Engine, OversizedRequestRunsWhole) {
  rl::AgentNetwork agent(tiny_agent_config(41));
  EngineOptions options;
  options.max_batch = 2;  // request of 5 samples must not split
  options.max_wait_us = 0;
  InferenceEngine engine(options);
  const SnapshotId id = engine.acquire(agent);

  const std::vector<rl::NetInput> inputs = random_inputs(5, 8, 9);
  const std::vector<rl::AgentOutput> out = engine.forward(id, inputs);
  const std::vector<rl::AgentOutput> direct = agent.forward_many(inputs);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(out[i], direct[i])) << i;
  }
  EXPECT_EQ(engine.stats().samples, 5u);
  engine.release(id);
}

TEST(Engine, CoalescesConcurrentRequestsWithoutChangingResults) {
  rl::AgentNetwork agent(tiny_agent_config(51));
  EngineOptions options;
  options.max_batch = 8;
  options.max_wait_us = 300000;  // generous window so all senders join
  InferenceEngine engine(options);
  const SnapshotId id = engine.acquire(agent);

  constexpr int kSenders = 4;
  const std::vector<rl::NetInput> inputs = random_inputs(kSenders, 8, 13);
  std::vector<rl::AgentOutput> outputs(kSenders);
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int i = 0; i < kSenders; ++i) {
    senders.emplace_back([&, i] {
      std::vector<rl::NetInput> one{inputs[static_cast<std::size_t>(i)]};
      outputs[static_cast<std::size_t>(i)] =
          std::move(engine.forward(id, std::move(one))[0]);
    });
  }
  for (std::thread& t : senders) t.join();

  // Whatever batches the requests landed in, every sample equals the
  // direct single-sample forward.
  const std::vector<rl::AgentOutput> direct = agent.forward_many(inputs);
  for (int i = 0; i < kSenders; ++i) {
    EXPECT_TRUE(bitwise_equal(outputs[static_cast<std::size_t>(i)],
                              direct[static_cast<std::size_t>(i)]))
        << i;
  }

  const InferenceEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kSenders));
  EXPECT_EQ(stats.samples, static_cast<std::uint64_t>(kSenders));
  // The 300 ms window makes all four sharing one batch overwhelmingly
  // likely, but any coalescing at all proves the mechanism.
  EXPECT_GE(stats.coalesced, 2u);
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kSenders));
  engine.release(id);
}

// ---------------------------------------------------------------------------
// MCTS: engine on == engine off, byte for byte

struct SearchFixture {
  netlist::Design design;
  place::FlowContext context;
  std::unique_ptr<rl::PlacementEnv> env;
  std::unique_ptr<rl::CoarseEvaluator> evaluator;
  std::unique_ptr<rl::AgentNetwork> agent;
  rl::RewardCalibration calibration;

  explicit SearchFixture(std::uint64_t seed) {
    benchgen::BenchSpec spec;
    spec.movable_macros = 10;
    spec.std_cells = 150;
    spec.nets = 250;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = 4;
    options.initial_gp.max_iterations = 3;
    context = place::prepare_flow(design, options);
    env = std::make_unique<rl::PlacementEnv>(context.coarse,
                                             context.clustering, context.spec);
    evaluator = std::make_unique<rl::CoarseEvaluator>(context.coarse,
                                                      context.spec);
    rl::AgentConfig config;
    config.grid_dim = 4;
    config.channels = 8;
    config.res_blocks = 1;
    config.seed = seed;
    agent = std::make_unique<rl::AgentNetwork>(config);
    util::Rng rng(seed);
    calibration = rl::calibrate_reward(*env, *evaluator, 10, rng);
  }

  mcts::MctsResult run(mcts::MctsOptions options) {
    mcts::MctsPlacer placer(*env, *evaluator, *agent,
                            calibration.make_reward(0.75), options);
    return placer.run();
  }
};

void expect_same_result(const mcts::MctsResult& off,
                        const mcts::MctsResult& on) {
  ASSERT_EQ(off.anchors.size(), on.anchors.size());
  for (std::size_t i = 0; i < off.anchors.size(); ++i) {
    EXPECT_EQ(off.anchors[i].gx, on.anchors[i].gx) << i;
    EXPECT_EQ(off.anchors[i].gy, on.anchors[i].gy) << i;
  }
  EXPECT_EQ(off.wirelength, on.wirelength);  // exact: same bits expected
  EXPECT_EQ(off.nodes_created, on.nodes_created);
}

TEST(MctsWithEngine, SerialSearchMatchesEngineOff) {
  mcts::MctsOptions options;
  options.explorations_per_move = 6;
  const mcts::MctsResult off = SearchFixture(81).run(options);

  InferenceEngine engine;
  options.infer_engine = &engine;
  const mcts::MctsResult on = SearchFixture(81).run(options);
  expect_same_result(off, on);
  EXPECT_GT(engine.stats().requests, 0u);
}

TEST(MctsWithEngine, BatchedSearchMatchesEngineOffAllLeafModes) {
  for (const mcts::LeafEvaluation mode :
       {mcts::LeafEvaluation::kValueNetwork,
        mcts::LeafEvaluation::kPartialPlacement,
        mcts::LeafEvaluation::kRandomRollout}) {
    mcts::MctsOptions options;
    options.explorations_per_move = 8;
    options.eval_batch = 4;
    options.leaf_evaluation = mode;
    const mcts::MctsResult off = SearchFixture(82).run(options);

    InferenceEngine engine;
    options.infer_engine = &engine;
    const mcts::MctsResult on = SearchFixture(82).run(options);
    expect_same_result(off, on);
    EXPECT_GT(engine.stats().requests, 0u)
        << static_cast<int>(mode);
  }
}

// ---------------------------------------------------------------------------
// Service: jobs sharing one engine == engine off, byte for byte

svc::JobSpec tiny_job(std::uint64_t seed) {
  svc::Json spec = svc::Json::object();
  svc::Json synth = svc::Json::object();
  synth["name"] = svc::Json::string("infer-tiny");
  synth["movable_macros"] = svc::Json::number(8);
  synth["std_cells"] = svc::Json::number(300);
  synth["nets"] = svc::Json::number(400);
  synth["io_pads"] = svc::Json::number(16);
  synth["seed"] = svc::Json::number(static_cast<double>(seed));
  spec["synthetic"] = synth;
  spec["preset"] = svc::Json::string("mcts");
  spec["episodes"] = svc::Json::number(6);
  spec["gamma"] = svc::Json::number(4);
  spec["grid"] = svc::Json::number(8);
  spec["channels"] = svc::Json::number(8);
  spec["blocks"] = svc::Json::number(1);
  return svc::parse_job_spec(spec);
}

std::map<std::uint64_t, std::uint64_t> run_jobs(int infer,
                                                std::uint64_t* requests) {
  svc::ServiceOptions options;
  options.stream_progress = false;
  options.workers = 4;
  options.infer = infer;
  svc::LocalService service(options);

  const std::uint64_t seeds[] = {5, 6, 7, 8};
  std::map<std::uint64_t, std::string> ids;
  for (const std::uint64_t seed : seeds) {
    const svc::Scheduler::SubmitResult r = service.submit(tiny_job(seed));
    EXPECT_TRUE(r.accepted) << r.error;
    ids[seed] = r.id;
  }
  std::map<std::uint64_t, std::uint64_t> hashes;
  for (const auto& [seed, id] : ids) {
    EXPECT_TRUE(service.wait(id, 600.0)) << seed;
    const auto snap = service.status(id);
    EXPECT_TRUE(snap.has_value());
    if (!snap.has_value()) continue;
    EXPECT_EQ(snap->state, svc::JobState::kDone) << snap->error;
    hashes[seed] = snap->outcome.placement_hash;
  }
  if (requests != nullptr) {
    *requests = static_cast<std::uint64_t>(
        service.slo_registry().counter("infer.requests").value());
  }
  return hashes;
}

TEST(ServiceWithEngine, ConcurrentJobsSharingEngineMatchEngineOff) {
  const std::map<std::uint64_t, std::uint64_t> off = run_jobs(0, nullptr);
  std::uint64_t requests = 0;
  const std::map<std::uint64_t, std::uint64_t> on = run_jobs(1, &requests);
  ASSERT_EQ(off.size(), on.size());
  for (const auto& [seed, hash] : off) {
    ASSERT_TRUE(on.count(seed)) << seed;
    EXPECT_EQ(on.at(seed), hash) << "seed " << seed;
    EXPECT_NE(hash, 0u);
  }
  // The engine actually served the jobs' searches, and its telemetry landed
  // in the SLO registry the `metrics` verb exports.
  EXPECT_GT(requests, 0u);
}

}  // namespace
}  // namespace mp::infer
