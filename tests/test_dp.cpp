// Tests for the detailed-placement substrate: row legalization and the
// intra-row swap refinement.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "benchgen/generator.hpp"
#include "dp/detailed.hpp"
#include "dp/row_legalizer.hpp"
#include "gp/global_placer.hpp"

namespace mp::dp {
namespace {

netlist::Design spread_bench(std::uint64_t seed, int macros = 6,
                             int cells = 400) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.std_cells = cells;
  spec.nets = cells * 3 / 2;
  spec.seed = seed;
  netlist::Design d = benchgen::generate(spec);
  gp::GlobalPlaceOptions options;
  options.move_macros = true;
  options.max_iterations = 6;
  gp::global_place(d, options);
  return d;
}

TEST(RowLegalizer, ProducesLegalCells) {
  netlist::Design d = spread_bench(400);
  EXPECT_FALSE(cells_are_legal(d)) << "GP output should overlap";
  const RowLegalizeResult r = legalize_rows(d);
  EXPECT_EQ(r.failed_cells, 0);
  EXPECT_GT(r.rows, 1);
  EXPECT_TRUE(cells_are_legal(d));
}

TEST(RowLegalizer, CellsAlignedToRows) {
  netlist::Design d = spread_bench(401);
  RowLegalizeOptions options;
  options.row_height = 12.0;
  legalize_rows(d, options);
  std::set<long long> row_keys;
  for (netlist::NodeId id : d.std_cells()) {
    const double rel = (d.node(id).position.y - d.region().y) / 12.0;
    EXPECT_NEAR(rel, std::round(rel), 1e-9) << "cell not on a row boundary";
    row_keys.insert(static_cast<long long>(std::llround(rel)));
  }
  EXPECT_GT(row_keys.size(), 1u);
}

TEST(RowLegalizer, CellsAvoidMacros) {
  netlist::Design d = spread_bench(402, /*macros=*/10);
  legalize_rows(d);
  for (netlist::NodeId cid : d.std_cells()) {
    const geometry::Rect cell = d.node(cid).rect();
    for (netlist::NodeId mid : d.macros()) {
      EXPECT_FALSE(cell.overlaps(d.node(mid).rect()))
          << "cell " << cid << " under macro " << mid;
    }
  }
}

TEST(RowLegalizer, DisplacementIsBounded) {
  netlist::Design d = spread_bench(403);
  const RowLegalizeResult r = legalize_rows(d);
  ASSERT_GT(r.legalized_cells, 0);
  const double avg = r.total_displacement / r.legalized_cells;
  // Average displacement should be a small fraction of the chip extent.
  EXPECT_LT(avg, d.region().w * 0.4);
  EXPECT_GE(r.max_displacement, avg);
}

TEST(RowLegalizer, EmptyDesignIsFine) {
  netlist::Design d("empty", geometry::Rect(0, 0, 100, 100));
  const RowLegalizeResult r = legalize_rows(d);
  EXPECT_EQ(r.legalized_cells, 0);
}

TEST(Detailed, RefinementNeverIncreasesHpwl) {
  netlist::Design d = spread_bench(404);
  legalize_rows(d);
  const double before = d.total_hpwl();
  const DetailedResult r = refine_detailed(d);
  EXPECT_DOUBLE_EQ(r.hpwl_before, before);
  EXPECT_LE(r.hpwl_after, before + 1e-6);
  EXPECT_DOUBLE_EQ(r.hpwl_after, d.total_hpwl());
}

TEST(Detailed, PreservesLegality) {
  netlist::Design d = spread_bench(405);
  legalize_rows(d);
  ASSERT_TRUE(cells_are_legal(d));
  refine_detailed(d);
  EXPECT_TRUE(cells_are_legal(d));
}

TEST(Detailed, AppliesSomeSwapsOnShuffledRows) {
  netlist::Design d = spread_bench(406);
  legalize_rows(d);
  const DetailedResult r = refine_detailed(d);
  // Not guaranteed in theory, but with hundreds of cells the greedy pass
  // finds improving swaps in practice.
  EXPECT_GT(r.swaps_applied, 0);
  EXPECT_LT(r.hpwl_after, r.hpwl_before);
}

class RowLegalizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RowLegalizeSweep, LegalAcrossDensities) {
  netlist::Design d = spread_bench(500 + static_cast<std::uint64_t>(GetParam()),
                                   /*macros=*/GetParam(), /*cells=*/300);
  const RowLegalizeResult r = legalize_rows(d);
  EXPECT_EQ(r.failed_cells, 0) << "macros=" << GetParam();
  EXPECT_TRUE(cells_are_legal(d));
}

INSTANTIATE_TEST_SUITE_P(MacroCounts, RowLegalizeSweep,
                         ::testing::Values(0, 4, 12, 20));

}  // namespace
}  // namespace mp::dp
