// Tests for sequence pairs, LP legalization, shove fallback and the
// three-step group legalizer.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "cluster/clustering.hpp"
#include "cluster/coarse.hpp"
#include "gp/global_placer.hpp"
#include "legal/legalizer.hpp"
#include "legal/lp_legalizer.hpp"
#include "legal/sequence_pair.hpp"
#include "legal/shove.hpp"
#include "util/rng.hpp"

namespace mp::legal {
namespace {

TEST(SequencePair, ValidPermutations) {
  const std::vector<geometry::Rect> rects{
      {0, 0, 2, 2}, {5, 1, 2, 2}, {2, 6, 2, 2}};
  const SequencePair sp = sequence_pair_from_placement(rects);
  EXPECT_TRUE(is_valid_sequence_pair(sp));
  EXPECT_EQ(sp.size(), 3u);
}

TEST(SequencePair, LeftOfRelationRecovered) {
  // a strictly left of b at the same height.
  const std::vector<geometry::Rect> rects{{0, 0, 2, 2}, {10, 0, 2, 2}};
  const SequencePair sp = sequence_pair_from_placement(rects);
  const auto constraints = extract_constraints(sp);
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_EQ(constraints[0].relation, PairRelation::kLeftOf);
  EXPECT_EQ(constraints[0].i, 0);
  EXPECT_EQ(constraints[0].j, 1);
}

TEST(SequencePair, BelowRelationRecovered) {
  const std::vector<geometry::Rect> rects{{0, 0, 2, 2}, {0, 10, 2, 2}};
  const SequencePair sp = sequence_pair_from_placement(rects);
  const auto constraints = extract_constraints(sp);
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_EQ(constraints[0].relation, PairRelation::kBelow);
  EXPECT_EQ(constraints[0].i, 0);
  EXPECT_EQ(constraints[0].j, 1);
}

TEST(SequencePair, ExactlyOneConstraintPerPair) {
  util::Rng rng(5);
  std::vector<geometry::Rect> rects;
  for (int i = 0; i < 12; ++i) {
    rects.emplace_back(rng.uniform(0, 50), rng.uniform(0, 50),
                       rng.uniform(1, 5), rng.uniform(1, 5));
  }
  const SequencePair sp = sequence_pair_from_placement(rects);
  const auto constraints = extract_constraints(sp);
  EXPECT_EQ(constraints.size(), 12u * 11u / 2u);
}

TEST(SequencePair, PackingIsOverlapFree) {
  util::Rng rng(6);
  std::vector<geometry::Rect> rects;
  std::vector<double> widths, heights;
  for (int i = 0; i < 10; ++i) {
    const double w = rng.uniform(1, 6), h = rng.uniform(1, 6);
    // Deliberately overlapping initial placement.
    rects.emplace_back(rng.uniform(0, 8), rng.uniform(0, 8), w, h);
    widths.push_back(w);
    heights.push_back(h);
  }
  const SequencePair sp = sequence_pair_from_placement(rects);
  std::vector<geometry::Point> pos;
  pack_longest_path(sp, widths, heights, {0.0, 0.0}, pos);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const geometry::Rect a(pos[i].x, pos[i].y, widths[i], heights[i]);
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      const geometry::Rect b(pos[j].x, pos[j].y, widths[j], heights[j]);
      EXPECT_FALSE(a.overlaps(b)) << "pack overlap between " << i << "," << j;
    }
  }
}

netlist::Design overlapping_macro_design(int n, util::Rng& rng,
                                         double region_side = 100.0) {
  netlist::Design d("d", geometry::Rect(0, 0, region_side, region_side));
  for (int i = 0; i < n; ++i) {
    netlist::Node m;
    m.name = "m" + std::to_string(i);
    m.kind = netlist::NodeKind::kMacro;
    m.width = rng.uniform(8, 16);
    m.height = rng.uniform(8, 16);
    // Cluster them around the center so they overlap.
    m.position = {region_side / 2 + rng.uniform(-10, 10),
                  region_side / 2 + rng.uniform(-10, 10)};
    d.add_node(m);
  }
  // A couple of pads + nets so the LP objective has fixed terms.
  for (int p = 0; p < 4; ++p) {
    netlist::Node pad;
    pad.name = "p" + std::to_string(p);
    pad.kind = netlist::NodeKind::kPad;
    pad.fixed = true;
    pad.position = {(p % 2) * region_side, (p / 2) * region_side};
    const auto pid = d.add_node(pad);
    netlist::Net net;
    net.pins = {{pid, 0, 0}, {p % n, 2.0, 2.0}};
    d.add_net(net);
  }
  return d;
}

TEST(LpLegalize, RemovesOverlapsWithinComponent) {
  util::Rng rng(7);
  netlist::Design d = overlapping_macro_design(6, rng);
  ASSERT_GT(d.macro_overlap_area(), 0.0);
  const LpLegalizeResult r = lp_legalize_component(
      d, d.movable_macros(), d.region());
  EXPECT_TRUE(r.lp_solved_x);
  EXPECT_TRUE(r.lp_solved_y);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, 1e-6);
}

TEST(LpLegalize, KeepsMacrosInsideRegion) {
  util::Rng rng(8);
  netlist::Design d = overlapping_macro_design(8, rng);
  lp_legalize_component(d, d.movable_macros(), d.region());
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()));
  }
}

TEST(LpLegalize, RespectsPinnedMembers) {
  util::Rng rng(9);
  netlist::Design d = overlapping_macro_design(5, rng);
  // Pin macro 0 by passing a zero-slack allowed box.
  const geometry::Rect pin_box = d.node(0).rect();
  std::vector<geometry::Rect> allowed(5, d.region());
  allowed[0] = pin_box;
  lp_legalize_component(d, d.movable_macros(), d.region(), allowed);
  EXPECT_NEAR(d.node(0).position.x, pin_box.x, 1e-6);
  EXPECT_NEAR(d.node(0).position.y, pin_box.y, 1e-6);
}

TEST(Shove, ProducesOverlapFreeResult) {
  util::Rng rng(10);
  netlist::Design d = overlapping_macro_design(10, rng, 200.0);
  const ShoveResult r = shove_legalize(d, d.movable_macros(), d.region());
  EXPECT_EQ(r.unplaced, 0);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, 1e-9);
}

TEST(Shove, AvoidsObstacles) {
  netlist::Design d("d", geometry::Rect(0, 0, 50, 50));
  netlist::Node m;
  m.name = "m";
  m.kind = netlist::NodeKind::kMacro;
  m.width = 10.0;
  m.height = 10.0;
  m.position = {20.0, 20.0};
  d.add_node(m);
  const geometry::Rect obstacle(15.0, 15.0, 20.0, 20.0);  // covers desired spot
  shove_legalize(d, d.movable_macros(), d.region(), {obstacle});
  EXPECT_FALSE(d.node(0).rect().overlaps(obstacle));
  EXPECT_TRUE(d.region().contains(d.node(0).rect()));
}

TEST(LegalizeFlat, FullDesignBecomesLegal) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 12;
  spec.preplaced_macros = 2;
  spec.std_cells = 150;
  spec.nets = 250;
  spec.hierarchy = true;
  spec.seed = 44;
  netlist::Design d = benchgen::generate(spec);
  // Crush all movable macros to the center.
  for (netlist::NodeId id : d.movable_macros()) {
    d.node(id).position = {d.region().center().x, d.region().center().y};
  }
  const MacroLegalizeResult r = legalize_flat(d);
  EXPECT_GT(r.overlap_before, 0.0);
  EXPECT_NEAR(r.overlap_after, 0.0, d.region().area() * 1e-9);
}

TEST(LegalizeGroups, EndToEndOverlapFree) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 10;
  spec.std_cells = 200;
  spec.nets = 300;
  spec.seed = 45;
  netlist::Design d = benchgen::generate(spec);
  gp::GlobalPlaceOptions gpo;
  gpo.move_macros = true;
  gpo.max_iterations = 4;
  gp::global_place(d, gpo);

  const grid::GridSpec grid_spec(d.region(), 4);
  const cluster::Clustering clustering = cluster::cluster_design(d, grid_spec);
  cluster::CoarseDesign coarse = cluster::build_coarse_design(d, clustering);

  // Allocate groups round-robin over the diagonal.
  std::vector<grid::CellCoord> anchors;
  for (std::size_t g = 0; g < clustering.macro_groups.size(); ++g) {
    const int k = static_cast<int>(g) % grid_spec.dim();
    anchors.push_back({k, k});
  }
  const MacroLegalizeResult r =
      legalize_groups(d, coarse, clustering, grid_spec, anchors);
  EXPECT_NEAR(r.overlap_after, 0.0, d.region().area() * 1e-9);
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()))
        << "macro outside region after legalization";
  }
}

// Property sweep: flat legalization ends overlap-free for varying densities.
class LegalizeDensityProperty : public ::testing::TestWithParam<int> {};

TEST_P(LegalizeDensityProperty, OverlapFreeAfterLegalize) {
  const int macros = GetParam();
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.std_cells = 100;
  spec.nets = 150;
  spec.seed = 100 + static_cast<std::uint64_t>(macros);
  netlist::Design d = benchgen::generate(spec);
  for (netlist::NodeId id : d.movable_macros()) {
    d.node(id).position = {d.region().w * 0.4, d.region().h * 0.4};
  }
  legalize_flat(d);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(MacroCounts, LegalizeDensityProperty,
                         ::testing::Values(2, 5, 9, 16, 25));

}  // namespace
}  // namespace mp::legal
