// Tests for the analytical global placer: density bookkeeping and the
// QP + spreading loop.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "gp/density.hpp"
#include "gp/global_placer.hpp"

namespace mp::gp {
namespace {

TEST(DensityGrid, CapacityReducedByFixedArea) {
  DensityGrid grid(geometry::Rect(0, 0, 10, 10), 2, 1.0);
  EXPECT_DOUBLE_EQ(grid.capacity(0, 0), 25.0);
  grid.add_fixed(geometry::Rect(0, 0, 5, 5));  // covers bin (0,0) fully
  EXPECT_DOUBLE_EQ(grid.capacity(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid.capacity(1, 1), 25.0);
}

TEST(DensityGrid, MovableUsageSplitAcrossBins) {
  DensityGrid grid(geometry::Rect(0, 0, 10, 10), 2, 1.0);
  grid.add_movable(geometry::Rect(4, 4, 2, 2));  // straddles all 4 bins
  EXPECT_DOUBLE_EQ(grid.usage(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(grid.usage(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(grid.usage(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(grid.usage(1, 1), 1.0);
}

TEST(DensityGrid, OverflowRatio) {
  DensityGrid grid(geometry::Rect(0, 0, 10, 10), 2, 1.0);
  grid.add_fixed(geometry::Rect(0, 0, 5, 5));
  grid.add_movable(geometry::Rect(1, 1, 2, 2));  // 4 units into a 0-cap bin
  EXPECT_NEAR(grid.overflow_ratio(), 1.0, 1e-9);  // everything overflows
  grid.clear_movable();
  EXPECT_DOUBLE_EQ(grid.overflow_ratio(), 0.0);
}

TEST(GlobalPlace, ReducesOverflowOnCongestedStart) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 600;
  spec.nets = 900;
  spec.seed = 21;
  netlist::Design d = benchgen::generate(spec);
  // Pile all cells into one corner.
  for (netlist::NodeId id : d.std_cells()) d.node(id).position = {1.0, 1.0};

  GlobalPlaceOptions options;
  options.move_macros = false;
  options.max_iterations = 10;
  const GlobalPlaceResult r = global_place(d, options);
  EXPECT_LT(r.overflow_ratio, 0.5);
  EXPECT_GT(r.hpwl, 0.0);
}

TEST(GlobalPlace, KeepsNodesInRegion) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 5;
  spec.std_cells = 300;
  spec.nets = 400;
  spec.seed = 22;
  netlist::Design d = benchgen::generate(spec);
  GlobalPlaceOptions options;
  options.move_macros = true;
  global_place(d, options);
  for (netlist::NodeId id : d.std_cells()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()))
        << "cell " << id << " escaped";
  }
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()))
        << "macro " << id << " escaped";
  }
}

TEST(GlobalPlace, FixedMacrosNeverMove) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 3;
  spec.preplaced_macros = 3;
  spec.std_cells = 200;
  spec.nets = 300;
  spec.hierarchy = true;
  spec.seed = 23;
  netlist::Design d = benchgen::generate(spec);
  std::vector<geometry::Point> before;
  for (netlist::NodeId id : d.macros()) {
    if (d.node(id).fixed) before.push_back(d.node(id).position);
  }
  GlobalPlaceOptions options;
  options.move_macros = true;
  global_place(d, options);
  std::size_t k = 0;
  for (netlist::NodeId id : d.macros()) {
    if (!d.node(id).fixed) continue;
    EXPECT_EQ(d.node(id).position, before[k]) << "fixed macro moved";
    ++k;
  }
}

TEST(GlobalPlace, CellModeLeavesMacrosAlone) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 150;
  spec.nets = 200;
  spec.seed = 24;
  netlist::Design d = benchgen::generate(spec);
  std::vector<geometry::Point> before;
  for (netlist::NodeId id : d.movable_macros()) before.push_back(d.node(id).position);
  GlobalPlaceOptions options;
  options.move_macros = false;
  global_place(d, options);
  std::size_t k = 0;
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_EQ(d.node(id).position, before[k]);
    ++k;
  }
}

TEST(GlobalPlace, EmptyMovableSetIsNoop) {
  netlist::Design d("d", geometry::Rect(0, 0, 10, 10));
  netlist::Node pad;
  pad.name = "p";
  pad.kind = netlist::NodeKind::kPad;
  pad.fixed = true;
  d.add_node(pad);
  const GlobalPlaceResult r = global_place(d);
  EXPECT_DOUBLE_EQ(r.hpwl, 0.0);
}

// Spreading should beat the unconstrained QP on density while keeping HPWL
// in the same ballpark (within a generous factor).
TEST(GlobalPlace, SpreadingTradesLimitedWirelength) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 2;
  spec.std_cells = 500;
  spec.nets = 700;
  spec.seed = 25;
  netlist::Design d = benchgen::generate(spec);

  netlist::Design d_qp = d;
  qp::solve_quadratic_placement(d_qp, d_qp.std_cells());
  const double hpwl_qp = d_qp.total_hpwl();

  GlobalPlaceOptions options;
  options.move_macros = false;
  const GlobalPlaceResult r = global_place(d, options);
  EXPECT_LT(r.hpwl, hpwl_qp * 5.0);
  EXPECT_GE(r.hpwl, hpwl_qp * 0.5);
}


TEST(GlobalPlace, B2bPolishImprovesHpwl) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 2;
  spec.std_cells = 400;
  spec.nets = 600;
  spec.seed = 26;
  netlist::Design d1 = benchgen::generate(spec);
  netlist::Design d2 = benchgen::generate(spec);
  GlobalPlaceOptions plain;
  plain.move_macros = false;
  plain.max_iterations = 8;
  GlobalPlaceOptions polished = plain;
  polished.b2b_iterations = 4;
  const GlobalPlaceResult r_plain = global_place(d1, plain);
  const GlobalPlaceResult r_polished = global_place(d2, polished);
  EXPECT_LT(r_polished.hpwl, r_plain.hpwl * 1.02);
  for (netlist::NodeId id : d2.std_cells()) {
    EXPECT_TRUE(d2.region().contains(d2.node(id).rect()));
  }
}

}  // namespace
}  // namespace mp::gp
