// Parser-robustness tests for the Bookshelf reader: comments, whitespace,
// anonymous nets, error paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/bookshelf.hpp"

namespace mp::io {
namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
}

struct TempPrefix {
  std::string prefix;
  explicit TempPrefix(const std::string& name) : prefix("/tmp/" + name) {}
  ~TempPrefix() {
    for (const char* ext : {".nodes", ".nets", ".pl"}) {
      std::remove((prefix + ext).c_str());
    }
  }
};

TEST(BookshelfParser, HandlesCommentsAndBlankLines) {
  TempPrefix t("mp_parse1");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\n"
             "# a comment line\n"
             "\n"
             "NumNodes : 2\n"
             "NumTerminals : 1\n"
             "  a 10 10\n"
             "  p 2 2 terminal  # trailing comment\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\n"
             "NumNets : 1\nNumPins : 2\n"
             "NetDegree : 2 n0\n"
             "  a B : 0 0\n"
             "  p B : 0 0\n");
  write_file(t.prefix + ".pl",
             "UCLA pl 1.0\n"
             "a 5 5 : N\n"
             "p 0 0 : N /FIXED\n");
  const netlist::Design d = read_bookshelf(t.prefix);
  EXPECT_EQ(d.num_nodes(), 2u);
  EXPECT_EQ(d.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(d.node(0).position.x, 5.0);
}

TEST(BookshelfParser, AnonymousNetsGetNames) {
  TempPrefix t("mp_parse2");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n"
             "  a 4 4\n  b 4 4\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
             "NetDegree : 2\n"
             "  a B : 0 0\n"
             "  b B : 0 0\n");
  write_file(t.prefix + ".pl", "UCLA pl 1.0\na 0 0 : N\nb 9 9 : N\n");
  const netlist::Design d = read_bookshelf(t.prefix);
  ASSERT_EQ(d.num_nets(), 1u);
  EXPECT_FALSE(d.net(0).name.empty());
}

TEST(BookshelfParser, UnknownNodeInNetThrows) {
  TempPrefix t("mp_parse3");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  a 4 4\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
             "NetDegree : 2 n0\n"
             "  a B : 0 0\n"
             "  ghost B : 0 0\n");
  write_file(t.prefix + ".pl", "UCLA pl 1.0\na 0 0 : N\n");
  EXPECT_THROW(read_bookshelf(t.prefix), std::runtime_error);
}

TEST(BookshelfParser, MalformedNodesLineThrows) {
  TempPrefix t("mp_parse4");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  broken\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
  write_file(t.prefix + ".pl", "UCLA pl 1.0\n");
  EXPECT_THROW(read_bookshelf(t.prefix), std::runtime_error);
}

TEST(BookshelfParser, PlacementForUnknownNodesIgnored) {
  TempPrefix t("mp_parse5");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  a 4 4\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
  write_file(t.prefix + ".pl",
             "UCLA pl 1.0\na 3 4 : N\nsomeghost 9 9 : N\n");
  const netlist::Design d = read_bookshelf(t.prefix);
  EXPECT_DOUBLE_EQ(d.node(0).position.y, 4.0);
}

TEST(BookshelfParser, RegionCoversAllNodes) {
  TempPrefix t("mp_parse6");
  write_file(t.prefix + ".nodes",
             "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n"
             "  a 10 10\n  b 5 5\n");
  write_file(t.prefix + ".nets",
             "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n");
  write_file(t.prefix + ".pl", "UCLA pl 1.0\na -20 -20 : N\nb 100 200 : N\n");
  const netlist::Design d = read_bookshelf(t.prefix);
  EXPECT_TRUE(d.region().contains(d.node(0).rect()));
  EXPECT_TRUE(d.region().contains(d.node(1).rect()));
}

TEST(BookshelfParser, EmptyDesignRoundTrips) {
  TempPrefix t("mp_parse7");
  netlist::Design empty("empty", geometry::Rect(0, 0, 10, 10));
  write_bookshelf(empty, t.prefix);
  const netlist::Design back = read_bookshelf(t.prefix);
  EXPECT_EQ(back.num_nodes(), 0u);
  EXPECT_EQ(back.num_nets(), 0u);
}

}  // namespace
}  // namespace mp::io
