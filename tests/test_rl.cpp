// Tests for the RL stack: environment mechanics, reward calibration, agent
// network shapes/gradients, and a short end-to-end training run.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "cluster/clustering.hpp"
#include "cluster/coarse.hpp"
#include "gp/global_placer.hpp"
#include "place/flow.hpp"
#include "rl/agent.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::rl {
namespace {

struct EnvFixture {
  netlist::Design design;
  place::FlowContext context;

  explicit EnvFixture(std::uint64_t seed, int macros = 12, int grid_dim = 4) {
    benchgen::BenchSpec spec;
    spec.movable_macros = macros;
    spec.std_cells = 200;
    spec.nets = 300;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = grid_dim;
    options.initial_gp.max_iterations = 3;
    context = place::prepare_flow(design, options);
  }
};

TEST(Env, StepSequenceCompletes) {
  EnvFixture f(50);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  EXPECT_EQ(env.num_steps(),
            static_cast<int>(f.context.clustering.macro_groups.size()));
  EXPECT_FALSE(env.done());
  int steps = 0;
  while (!env.done()) {
    const auto legal = env.legal_actions();
    ASSERT_FALSE(legal.empty());
    ASSERT_TRUE(env.step(legal.front()));
    ++steps;
  }
  EXPECT_EQ(steps, env.num_steps());
  EXPECT_EQ(env.anchors().size(), static_cast<std::size_t>(steps));
}

TEST(Env, ResetClearsState) {
  EnvFixture f(51);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  env.step(env.legal_actions().front());
  env.reset();
  EXPECT_EQ(env.current_step(), 0);
  EXPECT_TRUE(env.anchors().empty());
  // s_p must be back to the initial (preplaced-only) map.
  const auto sp = env.placement_state();
  double total = 0.0;
  for (double v : sp) total += v;
  EXPECT_NEAR(total, 0.0, 1e-9);  // this fixture has no preplaced macros
}

TEST(Env, InvalidActionsRejected) {
  EnvFixture f(52);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  EXPECT_FALSE(env.step(-1));
  EXPECT_FALSE(env.step(env.spec().num_cells()));
  EXPECT_EQ(env.current_step(), 0);
}

TEST(Env, OccupancyGrowsMonotonically) {
  EnvFixture f(53);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  double prev = 0.0;
  while (!env.done()) {
    const auto sp = env.placement_state();
    double total = 0.0;
    for (double v : sp) total += v;
    EXPECT_GE(total, prev - 1e-9);
    prev = total;
    env.step(env.legal_actions().front());
  }
}

TEST(Env, AvailabilityConsistentWithState) {
  EnvFixture f(54);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  const auto availability = env.availability();
  EXPECT_EQ(availability.size(),
            static_cast<std::size_t>(env.spec().num_cells()));
  for (double v : availability) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Env, PreplacedMacrosPrefillOccupancy) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.preplaced_macros = 4;
  spec.std_cells = 100;
  spec.nets = 150;
  spec.hierarchy = true;
  spec.seed = 55;
  netlist::Design design = benchgen::generate(spec);
  place::FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 2;
  place::FlowContext context = place::prepare_flow(design, options);
  PlacementEnv env(context.coarse, context.clustering, context.spec);
  const auto sp = env.placement_state();
  double total = 0.0;
  for (double v : sp) total += v;
  EXPECT_GT(total, 0.0) << "preplaced macros should occupy grid area";
}

TEST(CoarseEvaluator, DifferentAllocationsGiveDifferentWirelength) {
  EnvFixture f(56);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);

  // All groups stacked on one cell vs spread on the diagonal.
  const int n = env.num_steps();
  std::vector<grid::CellCoord> stacked(static_cast<std::size_t>(n), {0, 0});
  std::vector<grid::CellCoord> spread;
  for (int i = 0; i < n; ++i) {
    const int k = i % f.context.spec.dim();
    spread.push_back({k, k});
  }
  const double w_stacked = evaluator.evaluate(stacked);
  const double w_spread = evaluator.evaluate(spread);
  EXPECT_GT(w_stacked, 0.0);
  EXPECT_GT(w_spread, 0.0);
  EXPECT_NE(w_stacked, w_spread);
  EXPECT_EQ(evaluator.evaluations(), 2);
}

TEST(CoarseEvaluator, DeterministicForSameAllocation) {
  EnvFixture f(57);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);
  const int n = static_cast<int>(f.context.clustering.macro_groups.size());
  std::vector<grid::CellCoord> anchors;
  for (int i = 0; i < n; ++i) anchors.push_back({i % 4, (i / 4) % 4});
  const double w1 = evaluator.evaluate(anchors);
  const double w2 = evaluator.evaluate(anchors);
  EXPECT_DOUBLE_EQ(w1, w2);
}

TEST(Reward, CalibrationBoundsAndMean) {
  EnvFixture f(58);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);
  util::Rng rng(1);
  const RewardCalibration cal = calibrate_reward(env, evaluator, 20, rng);
  EXPECT_GE(cal.wl_max, cal.wl_mean);
  EXPECT_GE(cal.wl_mean, cal.wl_min);
  EXPECT_GT(cal.wl_min, 0.0);
}

TEST(Reward, Equation9Shape) {
  RewardCalibration cal;
  cal.wl_max = 200.0;
  cal.wl_min = 100.0;
  cal.wl_mean = 150.0;
  const RewardFn reward = cal.make_reward(0.75);
  // Mean wirelength maps to exactly alpha.
  EXPECT_NEAR(reward(150.0), 0.75, 1e-12);
  // Better (smaller) wirelength gives larger reward.
  EXPECT_GT(reward(120.0), reward(180.0));
  // Range-normalized: min/max map to alpha ± 0.5.
  EXPECT_NEAR(reward(100.0), 1.25, 1e-12);
  EXPECT_NEAR(reward(200.0), 0.25, 1e-12);
}

TEST(Reward, NegativeWirelengthBaseline) {
  const RewardFn reward = negative_wirelength_reward();
  EXPECT_DOUBLE_EQ(reward(123.0), -123.0);
}

TEST(Agent, ForwardShapesAndProbabilities) {
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  AgentNetwork agent(config);
  const std::vector<double> sp(16, 0.25);
  std::vector<double> availability(16, 1.0);
  availability[3] = 0.0;
  const AgentOutput out = agent.forward(sp, availability, 2, 10, false);
  ASSERT_EQ(out.probs.size(), 16u);
  double sum = 0.0;
  for (std::size_t i = 0; i < out.probs.size(); ++i) sum += out.probs[i];
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_FLOAT_EQ(out.probs[3], 0.0f);  // masked action
  EXPECT_TRUE(std::isfinite(out.value));
}

TEST(Agent, ValueDependsOnStepEmbedding) {
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  config.seed = 3;
  AgentNetwork agent(config);
  const std::vector<double> sp(16, 0.5);
  const std::vector<double> availability(16, 1.0);
  const float v0 = agent.forward(sp, availability, 0, 10, false).value;
  const float v9 = agent.forward(sp, availability, 9, 10, false).value;
  EXPECT_NE(v0, v9) << "t embedding should influence the value head";
}

TEST(Agent, BackwardChangesParametersViaOptimizer) {
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  AgentNetwork agent(config);
  nn::Adam optimizer(agent.parameters(), 1e-2f);
  const std::vector<double> sp(16, 0.1);
  const std::vector<double> availability(16, 1.0);
  const AgentOutput out = agent.forward(sp, availability, 0, 5, true);
  const nn::Tensor pgrad = nn::policy_gradient(out.probs, 5, 1.0f);
  agent.backward(pgrad, -2.0f);
  const float before = agent.parameters()[0]->value[0];
  optimizer.step();
  const float after = agent.parameters()[0]->value[0];
  EXPECT_NE(before, after);
}

TEST(Agent, ParameterCountReasonable) {
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 2;
  AgentNetwork agent(config);
  EXPECT_GT(agent.num_parameters(), 1000u);
  EXPECT_LT(agent.num_parameters(), 1000000u);
}

TEST(Trainer, ShortRunProducesEpisodesAndUpdates) {
  EnvFixture f(60, /*macros=*/8, /*grid_dim=*/4);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  AgentNetwork agent(config);

  TrainOptions options;
  options.episodes = 12;
  options.update_window = 4;
  options.calibration_episodes = 5;
  int callbacks = 0;
  options.on_episode = [&](int, double, double) { ++callbacks; };
  const TrainResult result = train_agent(env, evaluator, agent, options);

  EXPECT_EQ(result.episodes.size(), 12u);
  EXPECT_EQ(callbacks, 12);
  EXPECT_EQ(result.optimizer_steps, 3);
  EXPECT_TRUE(std::isfinite(result.best_wirelength));
  EXPECT_FALSE(result.best_anchors.empty());
  for (const EpisodeRecord& e : result.episodes) {
    EXPECT_TRUE(std::isfinite(e.reward));
    EXPECT_GT(e.wirelength, 0.0);
  }
}

TEST(Trainer, GreedyEpisodeIsDeterministic) {
  EnvFixture f(61, 8, 4);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  AgentNetwork agent(config);
  std::vector<grid::CellCoord> a1, a2;
  const double w1 = play_greedy_episode(env, evaluator, agent, a1);
  const double w2 = play_greedy_episode(env, evaluator, agent, a2);
  EXPECT_DOUBLE_EQ(w1, w2);
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].gx, a2[i].gx);
    EXPECT_EQ(a1[i].gy, a2[i].gy);
  }
}

TEST(Trainer, CustomRewardIsUsed) {
  EnvFixture f(62, 6, 4);
  PlacementEnv env(f.context.coarse, f.context.clustering, f.context.spec);
  CoarseEvaluator evaluator(f.context.coarse, f.context.spec);
  AgentConfig config;
  config.grid_dim = 4;
  config.channels = 8;
  config.res_blocks = 1;
  AgentNetwork agent(config);
  TrainOptions options;
  options.episodes = 3;
  options.update_window = 3;
  options.reward = [](double) { return 42.0; };
  const TrainResult result = train_agent(env, evaluator, agent, options);
  for (const EpisodeRecord& e : result.episodes) {
    EXPECT_DOUBLE_EQ(e.reward, 42.0);
  }
}

}  // namespace
}  // namespace mp::rl
