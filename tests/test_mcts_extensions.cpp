// Tests for the MCTS extensions: leaf-evaluation modes, seed paths,
// best-terminal tracking, prior bonus, and value normalization behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::mcts {
namespace {

struct Fixture {
  netlist::Design design;
  place::FlowContext context;
  std::unique_ptr<rl::PlacementEnv> env;
  std::unique_ptr<rl::CoarseEvaluator> evaluator;
  std::unique_ptr<rl::AgentNetwork> agent;
  rl::RewardCalibration calibration;

  explicit Fixture(std::uint64_t seed, int macros = 10, int grid_dim = 4) {
    benchgen::BenchSpec spec;
    spec.movable_macros = macros;
    spec.std_cells = 150;
    spec.nets = 250;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = grid_dim;
    options.initial_gp.max_iterations = 3;
    context = place::prepare_flow(design, options);
    env = std::make_unique<rl::PlacementEnv>(context.coarse,
                                             context.clustering, context.spec);
    evaluator =
        std::make_unique<rl::CoarseEvaluator>(context.coarse, context.spec);
    rl::AgentConfig config;
    config.grid_dim = grid_dim;
    config.channels = 8;
    config.res_blocks = 1;
    config.seed = seed;
    agent = std::make_unique<rl::AgentNetwork>(config);
    util::Rng rng(seed);
    calibration = rl::calibrate_reward(*env, *evaluator, 10, rng);
  }

  MctsResult run(MctsOptions options) {
    MctsPlacer placer(*env, *evaluator, *agent,
                      calibration.make_reward(0.75), options);
    return placer.run();
  }
};

TEST(LeafModes, AllModesProduceCompleteAllocations) {
  for (const LeafEvaluation mode :
       {LeafEvaluation::kValueNetwork, LeafEvaluation::kPartialPlacement,
        LeafEvaluation::kRandomRollout}) {
    Fixture f(200);
    MctsOptions options;
    options.explorations_per_move = 6;
    options.leaf_evaluation = mode;
    const MctsResult r = f.run(options);
    EXPECT_EQ(r.anchors.size(), f.context.clustering.macro_groups.size())
        << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(std::isfinite(r.wirelength));
  }
}

TEST(LeafModes, RolloutDoesManyTerminalEvaluations) {
  Fixture f(201);
  MctsOptions options;
  options.explorations_per_move = 6;
  options.leaf_evaluation = LeafEvaluation::kRandomRollout;
  const MctsResult r = f.run(options);
  // Every rollout ends in a terminal evaluation.
  EXPECT_GE(r.terminal_evaluations, r.nn_evaluations / 2);
}

TEST(LeafModes, PartialPlacementBeatsValueNetUntrained) {
  // With an untrained value net, the QP completion estimate must guide the
  // search at least as well (generous margin — this is the motivating
  // property for the bench default).
  Fixture f_value(202), f_partial(202);
  MctsOptions value;
  value.explorations_per_move = 12;
  value.leaf_evaluation = LeafEvaluation::kValueNetwork;
  MctsOptions partial = value;
  partial.leaf_evaluation = LeafEvaluation::kPartialPlacement;
  const double w_value = f_value.run(value).wirelength;
  const double w_partial = f_partial.run(partial).wirelength;
  EXPECT_LT(w_partial, w_value * 1.15);
}

TEST(SeedPaths, SeededAllocationBecomesFloorOnQuality) {
  // Build a decent seed by greedy diagonal spreading and verify the search
  // result is never worse than that seed's wirelength.
  Fixture f(203);
  // Build a guaranteed-legal seed by walking the environment.
  std::vector<int> seed_actions;
  f.env->reset();
  int i = 0;
  while (!f.env->done()) {
    const auto legal = f.env->legal_actions();
    ASSERT_FALSE(legal.empty());
    const int action = legal[static_cast<std::size_t>(i * 7) % legal.size()];
    ASSERT_TRUE(f.env->step(action));
    seed_actions.push_back(action);
    ++i;
  }
  const std::vector<grid::CellCoord> seed_anchors = f.env->anchors();
  f.env->reset();
  const double seed_wl = f.evaluator->evaluate(seed_anchors);

  MctsOptions options;
  options.explorations_per_move = 4;
  options.leaf_evaluation = LeafEvaluation::kValueNetwork;  // weak guidance
  options.seed_paths.push_back(seed_actions);
  const MctsResult r = f.run(options);
  EXPECT_LE(r.wirelength, seed_wl + 1e-9)
      << "best-seen tracking must return at least the seed allocation";
}

TEST(SeedPaths, IllegalSeedIsIgnoredGracefully) {
  Fixture f(204);
  MctsOptions options;
  options.explorations_per_move = 4;
  options.seed_paths.push_back({-5, 9999});  // nonsense actions
  const MctsResult r = f.run(options);
  EXPECT_EQ(r.anchors.size(), f.context.clustering.macro_groups.size());
}

TEST(SeedPaths, BestSeenUsedWhenCommittedPathIsWorse) {
  Fixture f(205);
  const int n = f.env->num_steps();
  const int dim = f.context.spec.dim();
  std::vector<int> seed_actions;
  for (int i = 0; i < n; ++i) {
    seed_actions.push_back(
        f.context.spec.flat_index({i % dim, (i / dim) % dim}));
  }
  MctsOptions options;
  options.explorations_per_move = 2;
  options.seed_paths.push_back(seed_actions);
  const MctsResult r = f.run(options);
  // wirelength is min(committed, best terminal).
  EXPECT_LE(r.wirelength, r.committed_wirelength + 1e-9);
}

TEST(PriorBonus, BiasesAllocationTowardFavoredCells) {
  // Bonus strongly favoring the left half of the grid: the allocation's
  // anchors should be predominantly in the left half.
  Fixture f(206);
  const int dim = f.context.spec.dim();
  MctsOptions options;
  options.explorations_per_move = 8;
  options.leaf_evaluation = LeafEvaluation::kValueNetwork;
  const grid::GridSpec spec = f.context.spec;
  options.prior_bonus = [spec, dim](int, int action) {
    return spec.coord(action).gx < dim / 2 ? 1.0 : 1e-6;
  };
  const MctsResult r = f.run(options);
  int left = 0;
  for (const grid::CellCoord& c : r.anchors) left += (c.gx < dim / 2);
  EXPECT_GT(left * 2, static_cast<int>(r.anchors.size()))
      << "most anchors should be in the favored half";
}

TEST(Determinism, SameSeedsSameResult) {
  Fixture f1(207), f2(207);
  MctsOptions options;
  options.explorations_per_move = 8;
  options.leaf_evaluation = LeafEvaluation::kPartialPlacement;
  options.seed = 3;
  const MctsResult r1 = f1.run(options);
  const MctsResult r2 = f2.run(options);
  EXPECT_DOUBLE_EQ(r1.wirelength, r2.wirelength);
  ASSERT_EQ(r1.anchors.size(), r2.anchors.size());
  for (std::size_t i = 0; i < r1.anchors.size(); ++i) {
    EXPECT_EQ(r1.anchors[i].gx, r2.anchors[i].gx);
    EXPECT_EQ(r1.anchors[i].gy, r2.anchors[i].gy);
  }
}

}  // namespace
}  // namespace mp::mcts
