// Tests for the placement service (src/svc): JSON protocol values, job-spec
// validation, the LRU artifact cache, scheduler ordering/admission/cancel,
// the LocalService end-to-end determinism contract (service job ≡ offline
// placer call, warm ≡ cold), cooperative cancellation, and the socket
// server/client round trip.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "check/check.hpp"
#include "netlist/validate.hpp"
#include "place/placer.hpp"
#include "place/rl_only_placer.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/hash.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace mp::svc {
namespace {

// ---------------------------------------------------------------------------
// JSON

TEST(Json, ParseDumpRoundTripIsCanonical) {
  const Json v = Json::parse(
      R"({"b":[1,2.5,true,null],"a":"x\ny","nested":{"k":-3}})");
  // Sorted keys, integers without fraction, escapes re-encoded.
  EXPECT_EQ(v.dump(), R"({"a":"x\ny","b":[1,2.5,true,null],"nested":{"k":-3}})");
  EXPECT_EQ(Json::parse(v.dump()).dump(), v.dump());
}

TEST(Json, ParseDecodesUnicodeEscapes) {
  const Json v = Json::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json v = Json::parse("42");
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.items(), JsonError);
  EXPECT_THROW(v.members(), JsonError);
}

// ---------------------------------------------------------------------------
// Job specs

Json tiny_synthetic_spec_json() {
  Json spec = Json::object();
  Json synth = Json::object();
  synth["name"] = Json::string("svc-tiny");
  synth["movable_macros"] = Json::number(8);
  synth["std_cells"] = Json::number(300);
  synth["nets"] = Json::number(400);
  synth["io_pads"] = Json::number(16);
  synth["seed"] = Json::number(5);
  spec["synthetic"] = synth;
  spec["preset"] = Json::string("mcts");
  spec["episodes"] = Json::number(6);
  spec["gamma"] = Json::number(4);
  spec["grid"] = Json::number(8);
  spec["channels"] = Json::number(8);
  spec["blocks"] = Json::number(1);
  return spec;
}

JobSpec tiny_synthetic_spec() {
  return parse_job_spec(tiny_synthetic_spec_json());
}

TEST(JobSpec, ParsesAndRoundTrips) {
  const JobSpec spec = tiny_synthetic_spec();
  EXPECT_TRUE(spec.use_synthetic);
  EXPECT_EQ(spec.synthetic.movable_macros, 8);
  EXPECT_EQ(spec.preset, FlowPreset::kMcts);
  EXPECT_EQ(spec.episodes, 6);
  EXPECT_EQ(spec.grid, 8);
  // Canonical form survives a parse round trip.
  const JobSpec again = parse_job_spec(job_spec_to_json(spec));
  EXPECT_EQ(job_canonical_string(again), job_canonical_string(spec));
}

TEST(JobSpec, RejectsUnknownKey) {
  Json spec = tiny_synthetic_spec_json();
  spec["episides"] = Json::number(10);  // typo'd knob must not be silent
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, RejectsFractionalAndOutOfRangeValues) {
  Json spec = tiny_synthetic_spec_json();
  spec["episodes"] = Json::number(6.5);
  EXPECT_THROW(parse_job_spec(spec), JobError);
  spec = tiny_synthetic_spec_json();
  spec["grid"] = Json::number(1);
  EXPECT_THROW(parse_job_spec(spec), JobError);
  spec = tiny_synthetic_spec_json();
  spec["priority"] = Json::number(1000);
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, RequiresExactlyOneDesignSource) {
  EXPECT_THROW(parse_job_spec(Json::object()), JobError);
  Json both = tiny_synthetic_spec_json();
  both["design"] = Json::string("/tmp/some_prefix");
  EXPECT_THROW(parse_job_spec(both), JobError);
}

TEST(JobSpec, RejectsUnknownPreset) {
  Json spec = tiny_synthetic_spec_json();
  spec["preset"] = Json::string("quantum");
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, PresetAliasesMatchCli) {
  FlowPreset p;
  ASSERT_TRUE(parse_preset("ours", p));
  EXPECT_EQ(p, FlowPreset::kMcts);
  ASSERT_TRUE(parse_preset("rl", p));
  EXPECT_EQ(p, FlowPreset::kRlOnly);
  EXPECT_FALSE(parse_preset("nope", p));
}

TEST(JobSpec, JobIdsAreStablePerSpecAndUniquePerSubmission) {
  const JobSpec spec = tiny_synthetic_spec();
  const std::string a = make_job_id(spec, 1);
  const std::string b = make_job_id(spec, 2);
  EXPECT_NE(a, b);
  // Same spec => same hash prefix (the part before the seq suffix).
  EXPECT_EQ(a.substr(0, a.rfind('-')), b.substr(0, b.rfind('-')));
  JobSpec other = spec;
  other.episodes = 7;
  const std::string c = make_job_id(other, 1);
  EXPECT_NE(a.substr(0, a.rfind('-')), c.substr(0, c.rfind('-')));
}

// ---------------------------------------------------------------------------
// LRU pool

TEST(LruPool, EvictsLeastRecentlyUsed) {
  LruPool<int> pool(2);
  pool.put("a", std::make_shared<int>(1));
  pool.put("b", std::make_shared<int>(2));
  ASSERT_NE(pool.get("a"), nullptr);  // bumps "a"; "b" is now LRU
  pool.put("c", std::make_shared<int>(3));
  EXPECT_EQ(pool.get("b"), nullptr);
  ASSERT_NE(pool.get("a"), nullptr);
  EXPECT_EQ(*pool.get("a"), 1);
  ASSERT_NE(pool.get("c"), nullptr);
  EXPECT_EQ(pool.size(), 2u);
}

// ---------------------------------------------------------------------------
// Scheduler (with a fake runner)

// Runner that records execution order and blocks every job until released.
struct GatedRunner {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::string> order;

  Scheduler::Runner runner() {
    return [this](const std::string& id, const JobSpec&,
                  const util::CancelToken&) {
      std::unique_lock<std::mutex> lock(mutex);
      order.push_back(id);
      cv.wait(lock, [this] { return open; });
      return JobOutcome{};
    };
  }

  void release() {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
};

void wait_until_running(const Scheduler& scheduler, const std::string& id) {
  while (scheduler.running_job() != id) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Scheduler, DispatchesByPriorityThenFifo) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8);
  const JobSpec base = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(base).id;
  wait_until_running(scheduler, blocker);  // queue fills while this blocks

  JobSpec lo = base;
  lo.priority = 0;
  JobSpec hi = base;
  hi.priority = 5;
  const std::string lo_a = scheduler.submit(lo).id;
  const std::string hi_id = scheduler.submit(hi).id;
  const std::string lo_b = scheduler.submit(lo).id;
  gate.release();
  scheduler.drain();

  const std::vector<std::string> expected = {blocker, hi_id, lo_a, lo_b};
  EXPECT_EQ(gate.order, expected);
}

TEST(Scheduler, RejectsWhenQueueFull) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/1);
  const JobSpec spec = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(spec).id;
  wait_until_running(scheduler, blocker);
  EXPECT_TRUE(scheduler.submit(spec).accepted);  // fills the queue
  const Scheduler::SubmitResult rejected = scheduler.submit(spec);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.error.empty());
  gate.release();
  scheduler.drain();
}

TEST(Scheduler, CancelsQueuedJobWithoutRunningIt) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8);
  const JobSpec spec = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(spec).id;
  wait_until_running(scheduler, blocker);
  const std::string queued = scheduler.submit(spec).id;
  EXPECT_TRUE(scheduler.cancel(queued));
  EXPECT_FALSE(scheduler.cancel(queued));  // already terminal
  gate.release();
  scheduler.drain();

  const auto snap = scheduler.status(queued);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  // Never executed: only the blocker reached the runner.
  EXPECT_EQ(gate.order, std::vector<std::string>{blocker});
}

TEST(Scheduler, ThrowingRunnerMarksJobFailed) {
  Scheduler scheduler(
      [](const std::string&, const JobSpec&,
         const util::CancelToken&) -> JobOutcome {
        throw std::runtime_error("boom");
      },
      8);
  const std::string id = scheduler.submit(tiny_synthetic_spec()).id;
  ASSERT_TRUE(scheduler.wait(id, 30.0));
  const auto snap = scheduler.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_NE(snap->error.find("boom"), std::string::npos);
}

TEST(Scheduler, DeadlineArmsCancelTokenWhenJobStarts) {
  Scheduler scheduler(
      [](const std::string&, const JobSpec&, const util::CancelToken& cancel) {
        while (!cancel.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        JobOutcome out;
        out.cancelled = true;
        return out;
      },
      8);
  JobSpec spec = tiny_synthetic_spec();
  spec.deadline_s = 0.05;
  const std::string id = scheduler.submit(spec).id;
  ASSERT_TRUE(scheduler.wait(id, 30.0));
  const auto snap = scheduler.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

// ---------------------------------------------------------------------------
// LocalService end-to-end

ServiceOptions quiet_options() {
  ServiceOptions o;
  o.stream_progress = false;  // most tests don't need the global listener
  return o;
}

TEST(LocalService, ConcurrentMixedPresetJobsAllComplete) {
  LocalService service(quiet_options());
  const FlowPreset presets[] = {FlowPreset::kMcts, FlowPreset::kRlOnly,
                                FlowPreset::kSa, FlowPreset::kWiremask};
  std::vector<std::string> ids;
  for (const FlowPreset preset : presets) {
    JobSpec spec = tiny_synthetic_spec();
    spec.preset = preset;
    const Scheduler::SubmitResult r = service.submit(spec);
    ASSERT_TRUE(r.accepted) << r.error;
    ids.push_back(r.id);
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(service.wait(id, 600.0)) << id;
    const auto snap = service.status(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kDone)
        << id << ": " << snap->error;
    EXPECT_TRUE(snap->outcome.finalized);
    EXPECT_GT(snap->outcome.hpwl, 0.0);
    EXPECT_NE(snap->outcome.placement_hash, 0u);
  }
}

TEST(LocalService, MctsJobBitIdenticalToOfflinePlacerCall) {
  const JobSpec spec = tiny_synthetic_spec();

  // Offline path: the CLI's option derivation, cold, no service involved.
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::MctsRlOptions options;
  options.flow.grid_dim = spec.grid;
  options.agent.channels = spec.channels;
  options.agent.res_blocks = spec.blocks;
  options.train.episodes = spec.episodes;
  options.train.update_window =
      std::min(30, std::max(3, spec.episodes / 6));
  options.train.calibration_episodes = std::max(5, spec.episodes / 3);
  options.mcts.explorations_per_move = spec.gamma;
  const place::MctsRlResult direct = place::mcts_rl_place(design, options);
  const std::uint64_t offline_hash = placement_fingerprint(design);

  // Service path: same spec through the scheduler + warm cache machinery.
  LocalService service(quiet_options());
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 600.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->state, JobState::kDone) << snap->error;
  EXPECT_EQ(snap->outcome.placement_hash, offline_hash);
  EXPECT_DOUBLE_EQ(snap->outcome.hpwl, direct.hpwl);
}

TEST(LocalService, WarmCacheResubmissionIsBitIdenticalAndHits) {
  LocalService service(quiet_options());
  const JobSpec spec = tiny_synthetic_spec();
  const std::string cold = service.submit(spec).id;
  ASSERT_TRUE(service.wait(cold, 600.0));
  const std::string warm = service.submit(spec).id;
  ASSERT_TRUE(service.wait(warm, 600.0));

  const auto a = service.status(cold);
  const auto b = service.status(warm);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->state, JobState::kDone) << a->error;
  ASSERT_EQ(b->state, JobState::kDone) << b->error;
  EXPECT_EQ(a->outcome.placement_hash, b->outcome.placement_hash);

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.design_misses, 1);
  EXPECT_GE(stats.design_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_GE(stats.prepared_hits, 1);
}

TEST(LocalService, CancelStopsRunningJob) {
  LocalService service(quiet_options());
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;  // long enough that cancel lands mid-run
  const std::string id = service.submit(spec).id;
  while (true) {
    const auto snap = service.status(id);
    ASSERT_TRUE(snap.has_value());
    if (snap->state == JobState::kRunning) break;
    ASSERT_EQ(snap->state, JobState::kQueued);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(service.cancel(id));
  ASSERT_TRUE(service.wait(id, 120.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

TEST(LocalService, DeadlineExpiresLongJob) {
  LocalService service(quiet_options());
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;
  spec.deadline_s = 0.25;
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 120.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

TEST(LocalService, MissingDesignFileFailsJobWithError) {
  LocalService service(quiet_options());
  JobSpec spec;
  spec.design_path = "/nonexistent/mp_svc_test_prefix";
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 60.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_FALSE(snap->error.empty());
}

TEST(LocalService, StreamsPhaseProgressForRunningJob) {
  ServiceOptions options;
  options.stream_progress = true;
  LocalService service(options);
  std::mutex mutex;
  std::vector<ProgressEvent> events;
  const int token = service.add_progress_listener([&](const ProgressEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(e);
  });
  const std::string id = service.submit(tiny_synthetic_spec()).id;
  ASSERT_TRUE(service.wait(id, 600.0));
  service.remove_progress_listener(token);

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_FALSE(events.empty());
  bool saw_envelope_exit = false, saw_phase = false;
  for (const ProgressEvent& e : events) {
    EXPECT_EQ(e.job_id, id);
    EXPECT_LE(e.depth, options.max_progress_depth);
    if (e.phase == "svc.job" && !e.enter) {
      saw_envelope_exit = true;
      EXPECT_GT(e.seconds, 0.0);
    }
    if (e.depth == 2) saw_phase = true;
  }
  EXPECT_TRUE(saw_envelope_exit);
  EXPECT_TRUE(saw_phase);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation at the placer level (the primitives the service
// deadline/cancel paths are built from)

// Restores the MP_VALIDATE_LEVEL override on scope exit.
struct ScopedValidateLevel {
  explicit ScopedValidateLevel(int level) : previous(check::validate_level()) {
    check::set_validate_level(level);
  }
  ~ScopedValidateLevel() { check::set_validate_level(previous); }
  int previous;
};

TEST(CancelToken, PreCancelledFlowReturnsPromptlyWithValidDesign) {
  // Exhaustive validators stay on for the whole truncated flow: a cancelled
  // run must not leave a structurally invalid intermediate state behind.
  ScopedValidateLevel deep(2);
  const JobSpec spec = tiny_synthetic_spec();
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::MctsRlOptions options;
  options.flow.grid_dim = spec.grid;
  options.agent.channels = spec.channels;
  options.agent.res_blocks = spec.blocks;
  options.train.episodes = spec.episodes;
  options.mcts.explorations_per_move = spec.gamma;
  options.cancel = util::CancelToken::make();
  options.cancel.request_cancel();
  const place::MctsRlResult result = place::mcts_rl_place(design, options);
  EXPECT_TRUE(result.cancelled);
  const netlist::ValidationReport report = netlist::validate_design(design);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(CancelToken, DeadlineCancelsMidFlowLeavingValidDesign) {
  ScopedValidateLevel deep(2);
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;  // would run for a long time uncancelled
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::MctsRlOptions options;
  options.flow.grid_dim = spec.grid;
  options.agent.channels = spec.channels;
  options.agent.res_blocks = spec.blocks;
  options.train.episodes = spec.episodes;
  options.mcts.explorations_per_move = spec.gamma;
  options.cancel = util::CancelToken::make();
  options.cancel.set_deadline_after(0.2);
  const place::MctsRlResult result = place::mcts_rl_place(design, options);
  EXPECT_TRUE(result.cancelled);
  const netlist::ValidationReport report = netlist::validate_design(design);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(CancelToken, MidFlowCancelFromAnotherThreadStopsSelfPlay) {
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::MctsRlOptions options;
  options.flow.grid_dim = spec.grid;
  options.agent.channels = spec.channels;
  options.agent.res_blocks = spec.blocks;
  options.train.episodes = spec.episodes;
  options.mcts.explorations_per_move = spec.gamma;
  options.cancel = util::CancelToken::make();
  std::thread canceller([token = options.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    token.request_cancel();
  });
  const place::MctsRlResult result = place::mcts_rl_place(design, options);
  canceller.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(netlist::validate_design(design).ok());
}

TEST(CancelToken, UntriggeredTokenIsBitIdenticalToNoToken) {
  const JobSpec spec = tiny_synthetic_spec();
  place::MctsRlOptions options;
  options.flow.grid_dim = spec.grid;
  options.agent.channels = spec.channels;
  options.agent.res_blocks = spec.blocks;
  options.train.episodes = spec.episodes;
  options.mcts.explorations_per_move = spec.gamma;

  netlist::Design inert = benchgen::generate(spec.synthetic);
  const place::MctsRlResult a = place::mcts_rl_place(inert, options);

  netlist::Design armed = benchgen::generate(spec.synthetic);
  options.cancel = util::CancelToken::make();  // live but never cancelled
  const place::MctsRlResult b = place::mcts_rl_place(armed, options);

  EXPECT_FALSE(a.cancelled);
  EXPECT_FALSE(b.cancelled);
  EXPECT_EQ(placement_fingerprint(inert), placement_fingerprint(armed));
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
}

// ---------------------------------------------------------------------------
// Socket server + client

TEST(Server, SubmitWatchStatsShutdownOverSocket) {
  const std::string socket_path =
      "/tmp/mp_test_svc_" + std::to_string(::getpid()) + ".sock";
  LocalService service;  // stream_progress on: watch needs phase events
  Server server(service, socket_path);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread serving([&server] { server.serve(); });

  Client client(socket_path);
  ASSERT_TRUE(client.connect(&error)) << error;

  // Unknown verbs are errors, not disconnects.
  const Json bad = client.request(Json::parse(R"({"verb":"frobnicate"})"));
  ASSERT_TRUE(bad.find("ok") != nullptr);
  EXPECT_FALSE(bad.find("ok")->as_bool());

  const Json submitted = client.submit(tiny_synthetic_spec_json());
  ASSERT_TRUE(submitted.find("ok") != nullptr);
  ASSERT_TRUE(submitted.find("ok")->as_bool()) << submitted.dump();
  const std::string id = submitted.find("id")->as_string();

  int phase_events = 0;
  const Json done = client.watch(id, [&](const Json& event) {
    const Json* kind = event.find("event");
    if (kind != nullptr && kind->as_string() == "phase") ++phase_events;
  });
  ASSERT_TRUE(done.find("job") != nullptr) << done.dump();
  const Json& job = *done.find("job");
  EXPECT_EQ(job.find("state")->as_string(), "done");
  ASSERT_TRUE(job.find("outcome") != nullptr);
  EXPECT_FALSE(job.find("outcome")->find("placement_hash")->as_string().empty());
  EXPECT_GT(phase_events, 0);

  const Json stats = client.stats();
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(stats.find("jobs")->find("done")->as_number(), 1.0);

  const Json ack = client.shutdown();
  EXPECT_TRUE(ack.find("ok")->as_bool());
  serving.join();  // serve() returns only after the drain
  EXPECT_FALSE(service.accepting());
  client.close();
  std::remove(socket_path.c_str());
}

}  // namespace
}  // namespace mp::svc
