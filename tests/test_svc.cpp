// Tests for the placement service (src/svc): JSON protocol values, job-spec
// validation, the LRU artifact cache, thread-budget arbitration, scheduler
// ordering/admission/cancel (including the multi-worker fairness and
// shutdown-race contracts), the LocalService end-to-end determinism contract
// (service job ≡ offline placer call, warm ≡ cold, N workers ≡ 1 worker),
// cooperative cancellation, and the socket server/client round trip.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "check/check.hpp"
#include "netlist/validate.hpp"
#include "obs/obs.hpp"
#include "place/placer.hpp"
#include "svc/budget.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/hash.hpp"
#include "svc/job.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace mp::svc {
namespace {

// ---------------------------------------------------------------------------
// JSON

TEST(Json, ParseDumpRoundTripIsCanonical) {
  const Json v = Json::parse(
      R"({"b":[1,2.5,true,null],"a":"x\ny","nested":{"k":-3}})");
  // Sorted keys, integers without fraction, escapes re-encoded.
  EXPECT_EQ(v.dump(), R"({"a":"x\ny","b":[1,2.5,true,null],"nested":{"k":-3}})");
  EXPECT_EQ(Json::parse(v.dump()).dump(), v.dump());
}

TEST(Json, ParseDecodesUnicodeEscapes) {
  const Json v = Json::parse(R"("Aé")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json v = Json::parse("42");
  EXPECT_DOUBLE_EQ(v.as_number(), 42.0);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.items(), JsonError);
  EXPECT_THROW(v.members(), JsonError);
}

// ---------------------------------------------------------------------------
// Job specs

Json tiny_synthetic_spec_json() {
  Json spec = Json::object();
  Json synth = Json::object();
  synth["name"] = Json::string("svc-tiny");
  synth["movable_macros"] = Json::number(8);
  synth["std_cells"] = Json::number(300);
  synth["nets"] = Json::number(400);
  synth["io_pads"] = Json::number(16);
  synth["seed"] = Json::number(5);
  spec["synthetic"] = synth;
  spec["preset"] = Json::string("mcts");
  spec["episodes"] = Json::number(6);
  spec["gamma"] = Json::number(4);
  spec["grid"] = Json::number(8);
  spec["channels"] = Json::number(8);
  spec["blocks"] = Json::number(1);
  return spec;
}

JobSpec tiny_synthetic_spec() {
  return parse_job_spec(tiny_synthetic_spec_json());
}

TEST(JobSpec, ParsesAndRoundTrips) {
  const JobSpec spec = tiny_synthetic_spec();
  EXPECT_TRUE(spec.use_synthetic);
  EXPECT_EQ(spec.synthetic.movable_macros, 8);
  EXPECT_EQ(spec.preset, FlowPreset::kMcts);
  EXPECT_EQ(spec.episodes, 6);
  EXPECT_EQ(spec.grid, 8);
  // Canonical form survives a parse round trip.
  const JobSpec again = parse_job_spec(job_spec_to_json(spec));
  EXPECT_EQ(job_canonical_string(again), job_canonical_string(spec));
}

TEST(JobSpec, RejectsUnknownKey) {
  Json spec = tiny_synthetic_spec_json();
  spec["episides"] = Json::number(10);  // typo'd knob must not be silent
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, RejectsFractionalAndOutOfRangeValues) {
  Json spec = tiny_synthetic_spec_json();
  spec["episodes"] = Json::number(6.5);
  EXPECT_THROW(parse_job_spec(spec), JobError);
  spec = tiny_synthetic_spec_json();
  spec["grid"] = Json::number(1);
  EXPECT_THROW(parse_job_spec(spec), JobError);
  spec = tiny_synthetic_spec_json();
  spec["priority"] = Json::number(1000);
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, RequiresExactlyOneDesignSource) {
  EXPECT_THROW(parse_job_spec(Json::object()), JobError);
  Json both = tiny_synthetic_spec_json();
  both["design"] = Json::string("/tmp/some_prefix");
  EXPECT_THROW(parse_job_spec(both), JobError);
}

TEST(JobSpec, RejectsUnknownPreset) {
  Json spec = tiny_synthetic_spec_json();
  spec["preset"] = Json::string("quantum");
  EXPECT_THROW(parse_job_spec(spec), JobError);
}

TEST(JobSpec, PresetAliasesMatchCli) {
  FlowPreset p;
  ASSERT_TRUE(parse_preset("ours", p));
  EXPECT_EQ(p, FlowPreset::kMcts);
  ASSERT_TRUE(parse_preset("rl", p));
  EXPECT_EQ(p, FlowPreset::kRlOnly);
  EXPECT_FALSE(parse_preset("nope", p));
}

TEST(JobSpec, JobIdsAreStablePerSpecAndUniquePerSubmission) {
  const JobSpec spec = tiny_synthetic_spec();
  const std::string a = make_job_id(spec, 1);
  const std::string b = make_job_id(spec, 2);
  EXPECT_NE(a, b);
  // Same spec => same hash prefix (the part before the seq suffix).
  EXPECT_EQ(a.substr(0, a.rfind('-')), b.substr(0, b.rfind('-')));
  JobSpec other = spec;
  other.episodes = 7;
  const std::string c = make_job_id(other, 1);
  EXPECT_NE(a.substr(0, a.rfind('-')), c.substr(0, c.rfind('-')));
}

// ---------------------------------------------------------------------------
// LRU pool

TEST(LruPool, EvictsLeastRecentlyUsed) {
  LruPool<int> pool(2);
  pool.put("a", std::make_shared<int>(1));
  pool.put("b", std::make_shared<int>(2));
  ASSERT_NE(pool.get("a"), nullptr);  // bumps "a"; "b" is now LRU
  pool.put("c", std::make_shared<int>(3));
  EXPECT_EQ(pool.get("b"), nullptr);
  ASSERT_NE(pool.get("a"), nullptr);
  EXPECT_EQ(*pool.get("a"), 1);
  ASSERT_NE(pool.get("c"), nullptr);
  EXPECT_EQ(pool.size(), 2u);
}

// ---------------------------------------------------------------------------
// Thread-budget arbiter

TEST(ThreadArbiter, PartitionsBudgetAndReclaimsOnRelease) {
  ThreadArbiter arbiter(8);
  EXPECT_EQ(arbiter.total(), 8);
  ThreadLease lone = arbiter.acquire(0);  // 0 = "give me everything"
  EXPECT_EQ(lone.threads(), 8);           // lone job gets the whole machine
  ThreadLease starved = arbiter.acquire(4);
  EXPECT_EQ(starved.threads(), 1);  // budget exhausted: floor of 1, no stall
  EXPECT_EQ(arbiter.leased(), 9);   // bounded oversubscription
  lone.release();
  EXPECT_EQ(arbiter.leased(), 1);
  ThreadLease half = arbiter.acquire(4);
  EXPECT_EQ(half.threads(), 4);  // reclaimed budget is grantable again
  ThreadLease capped = arbiter.acquire(100);
  EXPECT_EQ(capped.threads(), 3);  // min(want, remaining)
}

TEST(ThreadArbiter, LeaseReleaseIsIdempotentAndMoveSafe) {
  ThreadArbiter arbiter(4);
  ThreadLease a = arbiter.acquire(2);
  ThreadLease b = std::move(a);  // moved-from lease must not double-release
  EXPECT_EQ(a.threads(), 0);
  EXPECT_EQ(b.threads(), 2);
  b.release();
  b.release();  // second release is a no-op
  EXPECT_EQ(arbiter.leased(), 0);
}

// ---------------------------------------------------------------------------
// Scheduler (with a fake runner)

// Runner that records execution-start order and blocks each job until a
// token is released (counting-semaphore gate, so tests can let exactly one
// job through) or its cancel token fires.
struct GatedRunner {
  std::mutex mutex;
  std::condition_variable cv;
  int tokens = 0;
  std::vector<std::string> order;
  std::atomic<int> max_granted_threads{0};

  Scheduler::Runner runner() {
    return [this](const std::string& id, const JobSpec&,
                  const util::CancelToken& cancel,
                  const Scheduler::RunContext& ctx) {
      std::unique_lock<std::mutex> lock(mutex);
      order.push_back(id);
      int seen = max_granted_threads.load();
      while (ctx.threads > seen &&
             !max_granted_threads.compare_exchange_weak(seen, ctx.threads)) {
      }
      while (true) {
        if (cancel.cancelled()) {
          JobOutcome out;
          out.cancelled = true;
          return out;
        }
        if (tokens > 0) {
          --tokens;
          return JobOutcome{};
        }
        cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    };
  }

  /// Lets `n` blocked/future jobs run to completion.
  void release(int n = 1 << 20) {
    std::lock_guard<std::mutex> lock(mutex);
    tokens += n;
    cv.notify_all();
  }

  std::vector<std::string> order_snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return order;
  }
};

void wait_until_running(const Scheduler& scheduler, const std::string& id) {
  while (true) {
    const std::vector<std::string> running = scheduler.running_jobs();
    if (std::find(running.begin(), running.end(), id) != running.end()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Scheduler, DispatchesByPriorityThenFifo) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8);
  const JobSpec base = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(base).id;
  wait_until_running(scheduler, blocker);  // queue fills while this blocks

  JobSpec lo = base;
  lo.priority = 0;
  JobSpec hi = base;
  hi.priority = 5;
  const std::string lo_a = scheduler.submit(lo).id;
  const std::string hi_id = scheduler.submit(hi).id;
  const std::string lo_b = scheduler.submit(lo).id;
  gate.release();
  scheduler.drain();

  const std::vector<std::string> expected = {blocker, hi_id, lo_a, lo_b};
  EXPECT_EQ(gate.order, expected);
}

TEST(Scheduler, RejectsWhenQueueFull) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/1);
  const JobSpec spec = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(spec).id;
  wait_until_running(scheduler, blocker);
  EXPECT_TRUE(scheduler.submit(spec).accepted);  // fills the queue
  const Scheduler::SubmitResult rejected = scheduler.submit(spec);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.error.empty());
  gate.release();
  scheduler.drain();
}

TEST(Scheduler, CancelsQueuedJobWithoutRunningIt) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8);
  const JobSpec spec = tiny_synthetic_spec();
  const std::string blocker = scheduler.submit(spec).id;
  wait_until_running(scheduler, blocker);
  const std::string queued = scheduler.submit(spec).id;
  EXPECT_TRUE(scheduler.cancel(queued));
  EXPECT_FALSE(scheduler.cancel(queued));  // already terminal
  gate.release();
  scheduler.drain();

  const auto snap = scheduler.status(queued);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  // Never executed: only the blocker reached the runner.
  EXPECT_EQ(gate.order, std::vector<std::string>{blocker});
}

TEST(Scheduler, ThrowingRunnerMarksJobFailed) {
  Scheduler scheduler(
      [](const std::string&, const JobSpec&, const util::CancelToken&,
         const Scheduler::RunContext&) -> JobOutcome {
        throw std::runtime_error("boom");
      },
      8);
  const std::string id = scheduler.submit(tiny_synthetic_spec()).id;
  ASSERT_TRUE(scheduler.wait(id, 30.0));
  const auto snap = scheduler.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_NE(snap->error.find("boom"), std::string::npos);
}

TEST(Scheduler, DeadlineArmsCancelTokenWhenJobStarts) {
  Scheduler scheduler(
      [](const std::string&, const JobSpec&, const util::CancelToken& cancel,
         const Scheduler::RunContext&) {
        while (!cancel.cancelled()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        JobOutcome out;
        out.cancelled = true;
        return out;
      },
      8);
  JobSpec spec = tiny_synthetic_spec();
  spec.deadline_s = 0.05;
  const std::string id = scheduler.submit(spec).id;
  ASSERT_TRUE(scheduler.wait(id, 30.0));
  const auto snap = scheduler.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

TEST(Scheduler, HighPriorityJobDispatchedWhileLowPriorityWaits) {
  // Fairness under load: with every worker busy, the next freed worker must
  // pick the high-priority job even though a low-priority one queued first.
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8, /*workers=*/2);
  EXPECT_EQ(scheduler.workers(), 2);
  const JobSpec base = tiny_synthetic_spec();
  const std::string blocker_a = scheduler.submit(base).id;
  const std::string blocker_b = scheduler.submit(base).id;
  wait_until_running(scheduler, blocker_a);
  wait_until_running(scheduler, blocker_b);

  JobSpec lo = base;
  lo.priority = 0;
  JobSpec hi = base;
  hi.priority = 5;
  const std::string lo_id = scheduler.submit(lo).id;
  const std::string hi_id = scheduler.submit(hi).id;

  gate.release(1);  // exactly one blocker finishes, freeing one worker
  wait_until_running(scheduler, hi_id);
  const std::vector<std::string> order = gate.order_snapshot();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], hi_id);  // dispatched ahead of the earlier lo job
  {
    const auto snap = scheduler.status(lo_id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kQueued);
  }
  gate.release();
  scheduler.drain();
  const auto lo_snap = scheduler.status(lo_id);
  ASSERT_TRUE(lo_snap.has_value());
  EXPECT_EQ(lo_snap->state, JobState::kDone);
}

TEST(Scheduler, GrantsThreadLeasesWithinBudget) {
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/8, /*workers=*/2,
                      /*thread_budget=*/6);
  EXPECT_EQ(scheduler.thread_budget(), 6);
  JobSpec spec = tiny_synthetic_spec();
  spec.threads = 4;
  const std::string a = scheduler.submit(spec).id;
  const std::string b = scheduler.submit(spec).id;
  wait_until_running(scheduler, a);
  wait_until_running(scheduler, b);
  // First grant honors the request (4); the second gets the remainder (2).
  EXPECT_EQ(scheduler.threads_leased(), 6);
  gate.release();
  scheduler.drain();
  EXPECT_EQ(scheduler.threads_leased(), 0);  // leases reclaimed
  const auto snap_a = scheduler.status(a);
  const auto snap_b = scheduler.status(b);
  ASSERT_TRUE(snap_a.has_value() && snap_b.has_value());
  EXPECT_EQ(snap_a->granted_threads + snap_b->granted_threads, 6);
  EXPECT_EQ(gate.max_granted_threads.load(), 4);  // RunContext saw the lease
}

TEST(Scheduler, ConcurrentShutdownCancelAndDrainAreIdempotent) {
  // Regression for the shutdown/cancel race: drain(), shutdown_now(), and
  // cancel() storming from many threads at once must neither deadlock nor
  // double-join the workers, and every job must end in a terminal state.
  GatedRunner gate;
  Scheduler scheduler(gate.runner(), /*max_queued=*/16, /*workers=*/3);
  const JobSpec spec = tiny_synthetic_spec();
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(scheduler.submit(spec).id);
  wait_until_running(scheduler, ids[0]);

  std::vector<std::thread> stormers;
  stormers.emplace_back([&] { scheduler.shutdown_now(); });
  stormers.emplace_back([&] { scheduler.shutdown_now(); });
  stormers.emplace_back([&] { scheduler.drain(); });
  stormers.emplace_back([&] {
    for (const std::string& id : ids) scheduler.cancel(id);
  });
  for (std::thread& t : stormers) t.join();
  scheduler.drain();         // idempotent after shutdown
  scheduler.shutdown_now();  // idempotent after join

  EXPECT_FALSE(scheduler.accepting());
  EXPECT_EQ(scheduler.queued_count(), 0);
  EXPECT_TRUE(scheduler.running_jobs().empty());
  for (const std::string& id : ids) {
    const auto snap = scheduler.status(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->state == JobState::kDone ||
                snap->state == JobState::kCancelled)
        << id << ": " << job_state_name(snap->state);
  }
}

// ---------------------------------------------------------------------------
// LocalService end-to-end

ServiceOptions quiet_options() {
  ServiceOptions o;
  o.stream_progress = false;  // most tests don't need the global listener
  return o;
}

TEST(LocalService, ConcurrentMixedPresetJobsAllComplete) {
  LocalService service(quiet_options());
  const FlowPreset presets[] = {FlowPreset::kMcts, FlowPreset::kRlOnly,
                                FlowPreset::kSa, FlowPreset::kWiremask};
  std::vector<std::string> ids;
  for (const FlowPreset preset : presets) {
    JobSpec spec = tiny_synthetic_spec();
    spec.preset = preset;
    const Scheduler::SubmitResult r = service.submit(spec);
    ASSERT_TRUE(r.accepted) << r.error;
    ids.push_back(r.id);
  }
  for (const std::string& id : ids) {
    ASSERT_TRUE(service.wait(id, 600.0)) << id;
    const auto snap = service.status(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kDone)
        << id << ": " << snap->error;
    EXPECT_TRUE(snap->outcome.finalized);
    EXPECT_GT(snap->outcome.hpwl, 0.0);
    EXPECT_NE(snap->outcome.placement_hash, 0u);
  }
}

TEST(LocalService, MctsJobBitIdenticalToOfflinePlacerCall) {
  const JobSpec spec = tiny_synthetic_spec();

  // Offline path: the shared preset derivation, cold, no service involved.
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::PresetKnobs knobs;
  knobs.grid = spec.grid;
  knobs.channels = spec.channels;
  knobs.blocks = spec.blocks;
  knobs.episodes = spec.episodes;
  knobs.gamma = spec.gamma;
  const place::PlacerSpec pspec =
      place::spec_from_preset(place::Preset::kMcts, knobs);
  const place::PlaceResult direct = place::run(design, pspec);
  const std::uint64_t offline_hash = placement_fingerprint(design);

  // Service path: same spec through the scheduler + warm cache machinery.
  LocalService service(quiet_options());
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 600.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->state, JobState::kDone) << snap->error;
  EXPECT_EQ(snap->outcome.placement_hash, offline_hash);
  EXPECT_DOUBLE_EQ(snap->outcome.hpwl, direct.hpwl);
}

TEST(LocalService, WarmCacheResubmissionIsBitIdenticalAndHits) {
  LocalService service(quiet_options());
  const JobSpec spec = tiny_synthetic_spec();
  const std::string cold = service.submit(spec).id;
  ASSERT_TRUE(service.wait(cold, 600.0));
  const std::string warm = service.submit(spec).id;
  ASSERT_TRUE(service.wait(warm, 600.0));

  const auto a = service.status(cold);
  const auto b = service.status(warm);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_EQ(a->state, JobState::kDone) << a->error;
  ASSERT_EQ(b->state, JobState::kDone) << b->error;
  EXPECT_EQ(a->outcome.placement_hash, b->outcome.placement_hash);

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.design_misses, 1);
  EXPECT_GE(stats.design_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_GE(stats.prepared_hits, 1);
}

TEST(LocalService, SloMetricsCoverCompletedJobs) {
  // Three jobs through the service: the service-global SLO registry must
  // carry matching counter totals and one latency sample per job in each of
  // the three histograms, and both exports must surface them.
  ServiceOptions options = quiet_options();
  options.workers = 2;
  LocalService service(options);
  constexpr int kJobs = 3;
  std::vector<std::string> ids;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec = tiny_synthetic_spec();
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    const Scheduler::SubmitResult r = service.submit(spec);
    ASSERT_TRUE(r.accepted) << r.error;
    ids.push_back(r.id);
  }
  for (const std::string& id : ids) ASSERT_TRUE(service.wait(id, 600.0));

  // RegistrySnapshot stores name/value pairs; index them for lookups.
  const obs::RegistrySnapshot snap = service.slo_registry().snapshot();
  const std::map<std::string, long long> counters(snap.counters.begin(),
                                                  snap.counters.end());
  const std::map<std::string, double> gauges(snap.gauges.begin(),
                                             snap.gauges.end());
  const std::map<std::string, obs::HistogramSnapshot> hists(
      snap.histograms.begin(), snap.histograms.end());
  EXPECT_EQ(counters.at("svc.jobs.submitted"), kJobs);
  EXPECT_EQ(counters.at("svc.jobs.done"), kJobs);
  for (const char* name :
       {"svc.queue_wait", "svc.run_time", "svc.submit_to_result"}) {
    const auto it = hists.find(name);
    ASSERT_NE(it, hists.end()) << name;
    EXPECT_EQ(it->second.count, kJobs) << name;
    EXPECT_GE(it->second.quantile(0.95), it->second.quantile(0.5)) << name;
  }
  // Latency decomposition: submit-to-result covers queue wait plus run time.
  EXPECT_GE(hists.at("svc.submit_to_result").sum,
            hists.at("svc.run_time").sum);
  // Drained: no queued or running work left behind the gauges.
  EXPECT_DOUBLE_EQ(gauges.at("svc.queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("svc.active_jobs"), 0.0);

  // JSON export mirrors the registry, quantiles included.
  const Json metrics = service.metrics_json();
  EXPECT_DOUBLE_EQ(metrics.find("counters")->find("svc.jobs.done")->as_number(),
                   kJobs);
  const Json* run_time = metrics.find("histograms")->find("svc.run_time");
  ASSERT_NE(run_time, nullptr);
  EXPECT_DOUBLE_EQ(run_time->find("count")->as_number(), kJobs);
  for (const char* q : {"p50", "p90", "p95", "p99"}) {
    EXPECT_TRUE(run_time->has(q)) << q;
  }
  // Cache gauges are refreshed on export and match cache_stats().
  const CacheStats stats = service.cache_stats();
  EXPECT_DOUBLE_EQ(metrics.find("gauges")->find("svc.cache_hit")->as_number(),
                   static_cast<double>(stats.design_hits +
                                       stats.prepared_hits +
                                       stats.weights_hits));

  // Prometheus exposition carries the same metrics under sanitized names.
  const std::string prom = service.metrics_prom();
  EXPECT_NE(prom.find("# TYPE mp_svc_jobs_done counter"), std::string::npos);
  EXPECT_NE(prom.find("mp_svc_jobs_done 3"), std::string::npos);
  EXPECT_NE(prom.find("mp_svc_submit_to_result{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(LocalService, ConcurrentWorkersShareOnePreparedArtifact) {
  // Two workers, two identical cold jobs submitted back-to-back: the cache's
  // in-flight dedup must build each artifact exactly once (1 miss) and hand
  // the second job the same build (1 hit) — never a duplicate build.
  ServiceOptions options = quiet_options();
  options.workers = 2;
  LocalService service(options);
  ASSERT_EQ(service.workers(), 2);
  const JobSpec spec = tiny_synthetic_spec();
  const std::string a = service.submit(spec).id;
  const std::string b = service.submit(spec).id;
  ASSERT_TRUE(service.wait(a, 600.0));
  ASSERT_TRUE(service.wait(b, 600.0));

  const auto snap_a = service.status(a);
  const auto snap_b = service.status(b);
  ASSERT_TRUE(snap_a.has_value() && snap_b.has_value());
  ASSERT_EQ(snap_a->state, JobState::kDone) << snap_a->error;
  ASSERT_EQ(snap_b->state, JobState::kDone) << snap_b->error;
  // Same spec through either worker: bit-identical placements.
  EXPECT_EQ(snap_a->outcome.placement_hash, snap_b->outcome.placement_hash);

  const CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.design_misses, 1);
  EXPECT_EQ(stats.design_hits, 1);
  EXPECT_EQ(stats.prepared_misses, 1);
  EXPECT_EQ(stats.prepared_hits, 1);
}

TEST(LocalService, FourWorkersBitIdenticalToOneWorkerAndOffline) {
  // The headline determinism contract: per-job results are bit-identical
  // whether jobs run alone (1 worker, whole thread budget) or concurrently
  // (4 workers, partitioned budget) — and both match the offline
  // place::run() path at the same preset/seed.
  std::vector<JobSpec> specs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    JobSpec spec = tiny_synthetic_spec();
    spec.seed = seed;
    specs.push_back(spec);
  }

  auto run_all = [&](int workers) {
    ServiceOptions options = quiet_options();
    options.workers = workers;
    LocalService service(options);
    std::vector<std::string> ids;
    for (const JobSpec& spec : specs) ids.push_back(service.submit(spec).id);
    std::vector<std::uint64_t> hashes;
    for (const std::string& id : ids) {
      EXPECT_TRUE(service.wait(id, 600.0)) << id;
      const auto snap = service.status(id);
      EXPECT_TRUE(snap.has_value());
      EXPECT_EQ(snap->state, JobState::kDone) << snap->error;
      hashes.push_back(snap->outcome.placement_hash);
    }
    return hashes;
  };

  const std::vector<std::uint64_t> wide = run_all(4);
  const std::vector<std::uint64_t> narrow = run_all(1);
  EXPECT_EQ(wide, narrow);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    netlist::Design design = benchgen::generate(specs[i].synthetic);
    place::PresetKnobs knobs;
    knobs.episodes = specs[i].episodes;
    knobs.gamma = specs[i].gamma;
    knobs.grid = specs[i].grid;
    knobs.channels = specs[i].channels;
    knobs.blocks = specs[i].blocks;
    knobs.seed = specs[i].seed;
    place::run(design, place::spec_from_preset(specs[i].preset, knobs));
    EXPECT_EQ(placement_fingerprint(design), wide[i]) << "seed " << (i + 1);
  }
}

TEST(LocalService, FourWorkerMixedPresetStressWithMidRunCancels) {
  // The in-process twin of the check.sh TSan stress leg: 4 workers chew
  // through 8 mixed-preset jobs while two long jobs are cancelled mid-run.
  ServiceOptions options = quiet_options();
  options.workers = 4;
  LocalService service(options);
  const FlowPreset presets[] = {FlowPreset::kMcts, FlowPreset::kRlOnly,
                                FlowPreset::kSa, FlowPreset::kWiremask};
  std::vector<std::string> ids;
  std::vector<std::string> doomed;
  for (int i = 0; i < 8; ++i) {
    JobSpec spec = tiny_synthetic_spec();
    spec.preset = presets[i % 4];
    spec.seed = static_cast<std::uint64_t>(i + 1);
    const bool cancel_me = (i == 2 || i == 5);
    if (cancel_me) {
      spec.preset = FlowPreset::kMcts;
      spec.episodes = 600;  // long enough that cancel lands mid-run
    }
    const Scheduler::SubmitResult r = service.submit(spec);
    ASSERT_TRUE(r.accepted) << r.error;
    ids.push_back(r.id);
    if (cancel_me) doomed.push_back(r.id);
  }
  for (const std::string& id : doomed) {
    while (true) {
      const auto snap = service.status(id);
      ASSERT_TRUE(snap.has_value());
      if (snap->state != JobState::kQueued) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    service.cancel(id);
  }
  service.drain();
  for (const std::string& id : ids) {
    const auto snap = service.status(id);
    ASSERT_TRUE(snap.has_value());
    const bool was_doomed =
        std::find(doomed.begin(), doomed.end(), id) != doomed.end();
    if (was_doomed) {
      EXPECT_EQ(snap->state, JobState::kCancelled) << id;
    } else {
      EXPECT_EQ(snap->state, JobState::kDone) << id << ": " << snap->error;
      EXPECT_GT(snap->outcome.hpwl, 0.0);
    }
  }
}

TEST(LocalService, CancelStopsRunningJob) {
  LocalService service(quiet_options());
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;  // long enough that cancel lands mid-run
  const std::string id = service.submit(spec).id;
  while (true) {
    const auto snap = service.status(id);
    ASSERT_TRUE(snap.has_value());
    if (snap->state == JobState::kRunning) break;
    ASSERT_EQ(snap->state, JobState::kQueued);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(service.cancel(id));
  ASSERT_TRUE(service.wait(id, 120.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

TEST(LocalService, DeadlineExpiresLongJob) {
  LocalService service(quiet_options());
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;
  spec.deadline_s = 0.25;
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 120.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kCancelled);
  EXPECT_TRUE(snap->outcome.cancelled);
}

TEST(LocalService, MissingDesignFileFailsJobWithError) {
  LocalService service(quiet_options());
  JobSpec spec;
  spec.design_path = "/nonexistent/mp_svc_test_prefix";
  const std::string id = service.submit(spec).id;
  ASSERT_TRUE(service.wait(id, 60.0));
  const auto snap = service.status(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kFailed);
  EXPECT_FALSE(snap->error.empty());
}

TEST(LocalService, StreamsPhaseProgressForRunningJob) {
  ServiceOptions options;
  options.stream_progress = true;
  LocalService service(options);
  std::mutex mutex;
  std::vector<ProgressEvent> events;
  const int token = service.add_progress_listener([&](const ProgressEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    events.push_back(e);
  });
  const std::string id = service.submit(tiny_synthetic_spec()).id;
  ASSERT_TRUE(service.wait(id, 600.0));
  service.remove_progress_listener(token);

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_FALSE(events.empty());
  bool saw_envelope_exit = false, saw_phase = false;
  for (const ProgressEvent& e : events) {
    EXPECT_EQ(e.job_id, id);
    EXPECT_LE(e.depth, options.max_progress_depth);
    if (e.phase == "svc.job" && !e.enter) {
      saw_envelope_exit = true;
      EXPECT_GT(e.seconds, 0.0);
    }
    if (e.depth == 2) saw_phase = true;
  }
  EXPECT_TRUE(saw_envelope_exit);
  EXPECT_TRUE(saw_phase);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation at the placer level (the primitives the service
// deadline/cancel paths are built from)

// Restores the MP_VALIDATE_LEVEL override on scope exit.
struct ScopedValidateLevel {
  explicit ScopedValidateLevel(int level) : previous(check::validate_level()) {
    check::set_validate_level(level);
  }
  ~ScopedValidateLevel() { check::set_validate_level(previous); }
  int previous;
};

TEST(CancelToken, PreCancelledFlowReturnsPromptlyWithValidDesign) {
  // Exhaustive validators stay on for the whole truncated flow: a cancelled
  // run must not leave a structurally invalid intermediate state behind.
  ScopedValidateLevel deep(2);
  const JobSpec spec = tiny_synthetic_spec();
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::PlacerSpec pspec;
  pspec.preset = place::Preset::kMcts;
  pspec.mcts_rl.flow.grid_dim = spec.grid;
  pspec.mcts_rl.agent.channels = spec.channels;
  pspec.mcts_rl.agent.res_blocks = spec.blocks;
  pspec.mcts_rl.train.episodes = spec.episodes;
  pspec.mcts_rl.mcts.explorations_per_move = spec.gamma;
  pspec.cancel = util::CancelToken::make();
  pspec.cancel.request_cancel();
  const place::PlaceResult result = place::run(design, pspec);
  EXPECT_TRUE(result.cancelled);
  const netlist::ValidationReport report = netlist::validate_design(design);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(CancelToken, DeadlineCancelsMidFlowLeavingValidDesign) {
  ScopedValidateLevel deep(2);
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;  // would run for a long time uncancelled
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::PlacerSpec pspec;
  pspec.preset = place::Preset::kMcts;
  pspec.mcts_rl.flow.grid_dim = spec.grid;
  pspec.mcts_rl.agent.channels = spec.channels;
  pspec.mcts_rl.agent.res_blocks = spec.blocks;
  pspec.mcts_rl.train.episodes = spec.episodes;
  pspec.mcts_rl.mcts.explorations_per_move = spec.gamma;
  pspec.cancel = util::CancelToken::make();
  pspec.cancel.set_deadline_after(0.2);
  const place::PlaceResult result = place::run(design, pspec);
  EXPECT_TRUE(result.cancelled);
  const netlist::ValidationReport report = netlist::validate_design(design);
  EXPECT_TRUE(report.ok()) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(CancelToken, MidFlowCancelFromAnotherThreadStopsSelfPlay) {
  JobSpec spec = tiny_synthetic_spec();
  spec.episodes = 600;
  netlist::Design design = benchgen::generate(spec.synthetic);
  place::PlacerSpec pspec;
  pspec.preset = place::Preset::kMcts;
  pspec.mcts_rl.flow.grid_dim = spec.grid;
  pspec.mcts_rl.agent.channels = spec.channels;
  pspec.mcts_rl.train.episodes = spec.episodes;
  pspec.mcts_rl.agent.res_blocks = spec.blocks;
  pspec.mcts_rl.mcts.explorations_per_move = spec.gamma;
  pspec.cancel = util::CancelToken::make();
  std::thread canceller([token = pspec.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    token.request_cancel();
  });
  const place::PlaceResult result = place::run(design, pspec);
  canceller.join();
  EXPECT_TRUE(result.cancelled);
  EXPECT_TRUE(netlist::validate_design(design).ok());
}

TEST(CancelToken, UntriggeredTokenIsBitIdenticalToNoToken) {
  const JobSpec spec = tiny_synthetic_spec();
  place::PlacerSpec pspec;
  pspec.preset = place::Preset::kMcts;
  pspec.mcts_rl.flow.grid_dim = spec.grid;
  pspec.mcts_rl.agent.channels = spec.channels;
  pspec.mcts_rl.agent.res_blocks = spec.blocks;
  pspec.mcts_rl.train.episodes = spec.episodes;
  pspec.mcts_rl.mcts.explorations_per_move = spec.gamma;

  netlist::Design inert = benchgen::generate(spec.synthetic);
  const place::PlaceResult a = place::run(inert, pspec);

  netlist::Design armed = benchgen::generate(spec.synthetic);
  pspec.cancel = util::CancelToken::make();  // live but never cancelled
  const place::PlaceResult b = place::run(armed, pspec);

  EXPECT_FALSE(a.cancelled);
  EXPECT_FALSE(b.cancelled);
  EXPECT_EQ(placement_fingerprint(inert), placement_fingerprint(armed));
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
}

// ---------------------------------------------------------------------------
// Socket server + client

TEST(Server, SubmitWatchStatsShutdownOverSocket) {
  const std::string socket_path =
      "/tmp/mp_test_svc_" + std::to_string(::getpid()) + ".sock";
  LocalService service;  // stream_progress on: watch needs phase events
  Server server(service, socket_path);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::thread serving([&server] { server.serve(); });

  Client client(socket_path);
  ASSERT_TRUE(client.connect(&error)) << error;

  // Unknown verbs are errors, not disconnects.
  const Json bad = client.request(Json::parse(R"({"verb":"frobnicate"})"));
  ASSERT_TRUE(bad.find("ok") != nullptr);
  EXPECT_FALSE(bad.find("ok")->as_bool());

  const Json submitted = client.submit(tiny_synthetic_spec_json());
  ASSERT_TRUE(submitted.find("ok") != nullptr);
  ASSERT_TRUE(submitted.find("ok")->as_bool()) << submitted.dump();
  const std::string id = submitted.find("id")->as_string();

  int phase_events = 0;
  const Json done = client.watch(id, [&](const Json& event) {
    const Json* kind = event.find("event");
    if (kind != nullptr && kind->as_string() == "phase") ++phase_events;
  });
  ASSERT_TRUE(done.find("job") != nullptr) << done.dump();
  const Json& job = *done.find("job");
  EXPECT_EQ(job.find("state")->as_string(), "done");
  ASSERT_TRUE(job.find("outcome") != nullptr);
  EXPECT_FALSE(job.find("outcome")->find("placement_hash")->as_string().empty());
  EXPECT_GT(phase_events, 0);

  const Json stats = client.stats();
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(stats.find("jobs")->find("done")->as_number(), 1.0);

  // Live SLO metrics: JSON by default, Prometheus text with format:"prom".
  const Json metrics = client.metrics();
  ASSERT_TRUE(metrics.find("ok")->as_bool()) << metrics.dump();
  EXPECT_DOUBLE_EQ(
      metrics.find("counters")->find("svc.jobs.done")->as_number(), 1.0);
  const Json* run_time = metrics.find("histograms")->find("svc.run_time");
  ASSERT_NE(run_time, nullptr);
  EXPECT_DOUBLE_EQ(run_time->find("count")->as_number(), 1.0);
  EXPECT_TRUE(run_time->has("p95"));

  const Json prom = client.metrics(/*prom=*/true);
  ASSERT_TRUE(prom.find("ok")->as_bool()) << prom.dump();
  EXPECT_EQ(prom.find("format")->as_string(), "prom");
  const std::string& exposition = prom.find("text")->as_string();
  EXPECT_NE(exposition.find("# TYPE mp_svc_jobs_done counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("mp_svc_run_time{quantile=\"0.5\"}"),
            std::string::npos);

  const Json ack = client.shutdown();
  EXPECT_TRUE(ack.find("ok")->as_bool());
  serving.join();  // serve() returns only after the drain
  EXPECT_FALSE(service.accepting());
  client.close();
  std::remove(socket_path.c_str());
}

}  // namespace
}  // namespace mp::svc
