// Tests for linalg: dense helpers, CSR assembly, conjugate gradient.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace mp::linalg {
namespace {

TEST(Dense, DotAndNorm) {
  const Vec a{1.0, 2.0, 3.0};
  const Vec b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm2(Vec{3.0, 4.0}), 5.0);
}

TEST(Dense, Axpy) {
  Vec y{1.0, 1.0};
  axpy(2.0, Vec{3.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Dense, MatrixMultiply) {
  DenseMatrix m(2, 3);
  m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = 3.0;
  m(1, 0) = 4.0; m(1, 1) = 5.0; m(1, 2) = 6.0;
  const Vec y = m.multiply(Vec{1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Csr, TripletsCoalesce) {
  TripletBuilder b(3);
  b.add(0, 1, 2.0);
  b.add(0, 1, 3.0);   // duplicate, should sum
  b.add(2, 2, 1.0);
  const CsrMatrix m = CsrMatrix::from_triplets(b);
  EXPECT_EQ(m.dimension(), 3u);
  EXPECT_EQ(m.nonzeros(), 2u);
  const Vec y = m.multiply(Vec{0.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
}

TEST(Csr, ZeroSumEntriesDropped) {
  TripletBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  b.add(1, 1, 2.0);
  const CsrMatrix m = CsrMatrix::from_triplets(b);
  EXPECT_EQ(m.nonzeros(), 1u);
}

TEST(Csr, ConnectionStampIsLaplacian) {
  TripletBuilder b(2);
  b.add_connection(0, 1, 3.0);
  const CsrMatrix m = CsrMatrix::from_triplets(b);
  const Vec d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  // Laplacian times constant vector = 0.
  const Vec y = m.multiply(Vec{5.0, 5.0});
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 0.0, 1e-12);
}

TEST(Cg, SolvesSmallSpdSystem) {
  // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
  TripletBuilder b(2);
  b.add(0, 0, 4.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 1, 3.0);
  const CsrMatrix a = CsrMatrix::from_triplets(b);
  Vec x;
  const CgResult r = conjugate_gradient(a, Vec{1.0, 2.0}, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-8);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-8);
}

TEST(Cg, ZeroRhsGivesZero) {
  TripletBuilder b(2);
  b.add_diagonal(0, 1.0);
  b.add_diagonal(1, 1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(b);
  Vec x{5.0, -3.0};
  const CgResult r = conjugate_gradient(a, Vec{0.0, 0.0}, x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Cg, WarmStartAtSolutionConvergesImmediately) {
  TripletBuilder b(2);
  b.add_diagonal(0, 2.0);
  b.add_diagonal(1, 2.0);
  const CsrMatrix a = CsrMatrix::from_triplets(b);
  Vec x{1.5, -0.5};
  const CgResult r = conjugate_gradient(a, Vec{3.0, -1.0}, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
}

// Property: CG solves anchored-Laplacian systems (the quadratic placement
// shape) for random graphs; residual check against direct multiplication.
class CgLaplacianProperty : public ::testing::TestWithParam<int> {};

TEST_P(CgLaplacianProperty, SolvesAnchoredLaplacian) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 977);
  TripletBuilder b(static_cast<std::size_t>(n));
  // Random connected chain + extra edges.
  for (int i = 1; i < n; ++i) {
    b.add_connection(static_cast<std::size_t>(i - 1), static_cast<std::size_t>(i),
                     rng.uniform(0.5, 2.0));
  }
  for (int e = 0; e < n; ++e) {
    const int i = rng.uniform_int(0, n - 1);
    const int j = rng.uniform_int(0, n - 1);
    if (i != j) {
      b.add_connection(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                       rng.uniform(0.1, 1.0));
    }
  }
  // Anchors make it SPD.
  b.add_diagonal(0, 1.0);
  b.add_diagonal(static_cast<std::size_t>(n - 1), 1.0);
  const CsrMatrix a = CsrMatrix::from_triplets(b);

  Vec rhs(static_cast<std::size_t>(n));
  for (double& v : rhs) v = rng.uniform(-1.0, 1.0);
  Vec x;
  CgOptions options;
  options.max_iterations = 5 * n + 100;
  const CgResult r = conjugate_gradient(a, rhs, x, options);
  EXPECT_TRUE(r.converged) << "n=" << n << " residual=" << r.residual;
  // Verify by direct multiplication.
  const Vec ax = a.multiply(x);
  double err = 0.0;
  for (int i = 0; i < n; ++i) err = std::max(err, std::abs(ax[static_cast<std::size_t>(i)] - rhs[static_cast<std::size_t>(i)]));
  EXPECT_LT(err, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgLaplacianProperty,
                         ::testing::Values(2, 5, 10, 50, 200, 1000));

}  // namespace
}  // namespace mp::linalg
