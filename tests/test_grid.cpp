// Tests for grid partition, occupancy, footprints and the Eq. (4)
// availability map — including the worked example from Fig. 1 of the paper.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid.hpp"
#include "grid/occupancy.hpp"

namespace mp::grid {
namespace {

GridSpec unit_grid(int dim) {
  return GridSpec(geometry::Rect(0.0, 0.0, dim, dim), dim);  // 1×1 cells
}

TEST(GridSpec, CellGeometry) {
  const GridSpec g(geometry::Rect(0.0, 0.0, 16.0, 8.0), 4);
  EXPECT_DOUBLE_EQ(g.cell_width(), 4.0);
  EXPECT_DOUBLE_EQ(g.cell_height(), 2.0);
  EXPECT_EQ(g.num_cells(), 16);
  const geometry::Rect cell = g.cell_rect({1, 2});
  EXPECT_DOUBLE_EQ(cell.x, 4.0);
  EXPECT_DOUBLE_EQ(cell.y, 4.0);
}

TEST(GridSpec, FlatIndexRoundTrip) {
  const GridSpec g = unit_grid(5);
  for (int flat = 0; flat < g.num_cells(); ++flat) {
    EXPECT_EQ(g.flat_index(g.coord(flat)), flat);
  }
}

TEST(GridSpec, CellOfClampsBoundary) {
  const GridSpec g = unit_grid(4);
  EXPECT_EQ(g.cell_of({0.5, 0.5}), (CellCoord{0, 0}));
  EXPECT_EQ(g.cell_of({3.99, 3.99}), (CellCoord{3, 3}));
  EXPECT_EQ(g.cell_of({4.0, 4.0}), (CellCoord{3, 3}));   // on the far edge
  EXPECT_EQ(g.cell_of({-1.0, 9.0}), (CellCoord{0, 3}));  // out of range clamps
}

TEST(GridSpec, FootprintCells) {
  const GridSpec g = unit_grid(8);
  EXPECT_EQ(g.footprint_cells(0.4, 0.4), (CellCoord{1, 1}));
  EXPECT_EQ(g.footprint_cells(1.0, 1.0), (CellCoord{1, 1}));  // exact fit
  EXPECT_EQ(g.footprint_cells(1.01, 0.5), (CellCoord{2, 1}));
  EXPECT_EQ(g.footprint_cells(2.6, 1.5), (CellCoord{3, 2}));
}

TEST(Footprint, PartialCoverageValues) {
  const GridSpec g = unit_grid(4);
  // 0.6 × 1.5 object: bottom cell 0.6, top cell 0.6*0.5=0.3.
  const Footprint fp = make_footprint(g, 0.6, 1.5);
  ASSERT_EQ(fp.nx, 1);
  ASSERT_EQ(fp.ny, 2);
  EXPECT_NEAR(fp.at(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(fp.at(0, 1), 0.3, 1e-12);
}

TEST(Footprint, FullCoverageCells) {
  const GridSpec g = unit_grid(4);
  const Footprint fp = make_footprint(g, 2.0, 2.0);
  ASSERT_EQ(fp.nx, 2);
  ASSERT_EQ(fp.ny, 2);
  for (int iy = 0; iy < 2; ++iy) {
    for (int ix = 0; ix < 2; ++ix) EXPECT_DOUBLE_EQ(fp.at(ix, iy), 1.0);
  }
}

TEST(Occupancy, PlaceAndUtilization) {
  const GridSpec g = unit_grid(4);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 0.5, 0.5);
  occ.place(fp, {1, 1});
  EXPECT_DOUBLE_EQ(occ.utilization({1, 1}), 0.25);
  EXPECT_DOUBLE_EQ(occ.utilization({0, 0}), 0.0);
}

TEST(Occupancy, UtilizationCapsAtOne) {
  const GridSpec g = unit_grid(4);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 1.0, 1.0);
  occ.place(fp, {0, 0});
  occ.place(fp, {0, 0});
  EXPECT_DOUBLE_EQ(occ.utilization({0, 0}), 1.0);
  EXPECT_GT(occ.occupied_area({0, 0}), 1.0);  // raw area keeps accumulating
  EXPECT_DOUBLE_EQ(occ.total_overflow(), 1.0);
}

TEST(Occupancy, RemoveUndoesPlace) {
  const GridSpec g = unit_grid(4);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 0.7, 0.7);
  occ.place(fp, {2, 2});
  occ.remove(fp, {2, 2});
  for (int flat = 0; flat < g.num_cells(); ++flat) {
    EXPECT_NEAR(occ.occupied_area(g.coord(flat)), 0.0, 1e-12);
  }
}

TEST(Occupancy, FitsChecksBounds) {
  const GridSpec g = unit_grid(4);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 2.0, 1.0);  // 2×1 cells
  EXPECT_TRUE(occ.fits(fp, {2, 3}));
  EXPECT_FALSE(occ.fits(fp, {3, 3}));   // spills right
  EXPECT_FALSE(occ.fits(fp, {-1, 0}));  // negative anchor
}

// The paper's Fig. 1 example: s_m = [0.6, 0.3] (a 0.6 × 1.5 group), target
// cells with s_p = 0.5 (bottom) and 0.25 (top):
// V = sqrt((1-0.6)(1-0.5) * (1-0.3)(1-0.25)) = sqrt(0.105) ≈ 0.32.
TEST(Availability, PaperFigure1Example) {
  const GridSpec g = unit_grid(2);
  OccupancyMap occ(g);
  // Fill cell (1,0) to 0.5 and cell (1,1) to 0.25.
  occ.place(make_footprint(g, 0.5, 1.0), {1, 0});
  occ.place(make_footprint(g, 0.25, 1.0), {1, 1});
  EXPECT_DOUBLE_EQ(occ.utilization({1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(occ.utilization({1, 1}), 0.25);

  const Footprint fp = make_footprint(g, 0.6, 1.5);  // s_m = [0.6, 0.3]
  const std::vector<double> sa = availability_map(occ, fp);
  const double expected = std::sqrt((1 - 0.6) * (1 - 0.5) * (1 - 0.3) * (1 - 0.25));
  EXPECT_NEAR(sa[static_cast<std::size_t>(g.flat_index({1, 0}))], expected, 1e-9);
  EXPECT_NEAR(expected, 0.324, 0.001);
}

TEST(Availability, OffChipAnchorsAreZero) {
  const GridSpec g = unit_grid(3);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 2.0, 2.0);  // 2×2 cells
  const std::vector<double> sa = availability_map(occ, fp);
  // Anchors on the last row/column cannot host a 2×2 footprint.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sa[static_cast<std::size_t>(g.flat_index({2, i}))], 0.0);
    EXPECT_DOUBLE_EQ(sa[static_cast<std::size_t>(g.flat_index({i, 2}))], 0.0);
  }
  EXPECT_GT(sa[static_cast<std::size_t>(g.flat_index({0, 0}))], 0.0);
}

TEST(Availability, FullCellBlocksPlacement) {
  const GridSpec g = unit_grid(2);
  OccupancyMap occ(g);
  occ.place(make_footprint(g, 1.0, 1.0), {0, 0});  // cell (0,0) full
  const Footprint fp = make_footprint(g, 0.5, 0.5);
  const std::vector<double> sa = availability_map(occ, fp);
  EXPECT_DOUBLE_EQ(sa[static_cast<std::size_t>(g.flat_index({0, 0}))], 0.0);
  EXPECT_GT(sa[static_cast<std::size_t>(g.flat_index({1, 1}))], 0.0);
}

TEST(Availability, EmptierAnchorsScoreHigher) {
  const GridSpec g = unit_grid(3);
  OccupancyMap occ(g);
  occ.place(make_footprint(g, 0.8, 0.8), {0, 0});
  occ.place(make_footprint(g, 0.3, 0.3), {1, 1});
  const Footprint fp = make_footprint(g, 0.5, 0.5);
  const std::vector<double> sa = availability_map(occ, fp);
  const double at_heavy = sa[static_cast<std::size_t>(g.flat_index({0, 0}))];
  const double at_light = sa[static_cast<std::size_t>(g.flat_index({1, 1}))];
  const double at_empty = sa[static_cast<std::size_t>(g.flat_index({2, 2}))];
  EXPECT_LT(at_heavy, at_light);
  EXPECT_LT(at_light, at_empty);
}

// A multi-cell group (interior footprint cells fully covered) must still be
// placeable somewhere — the soft-clamp design note in occupancy.cpp.
TEST(Availability, LargeGroupRemainsPlaceable) {
  const GridSpec g = unit_grid(8);
  OccupancyMap occ(g);
  const Footprint fp = make_footprint(g, 3.0, 3.0);
  const std::vector<double> sa = availability_map(occ, fp);
  double max_avail = 0.0;
  for (double v : sa) max_avail = std::max(max_avail, v);
  EXPECT_GT(max_avail, 0.0);
}

class AvailabilityBoundsProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AvailabilityBoundsProperty, ValuesInUnitInterval) {
  const auto [w, h] = GetParam();
  const GridSpec g = unit_grid(6);
  OccupancyMap occ(g);
  occ.place(make_footprint(g, 1.8, 0.9), {1, 1});
  occ.place(make_footprint(g, 0.4, 2.3), {4, 2});
  const std::vector<double> sa = availability_map(occ, make_footprint(g, w, h));
  for (double v : sa) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AvailabilityBoundsProperty,
    ::testing::Values(std::make_pair(0.3, 0.3), std::make_pair(1.0, 1.0),
                      std::make_pair(2.5, 0.7), std::make_pair(3.0, 3.0),
                      std::make_pair(5.9, 1.2)));

}  // namespace
}  // namespace mp::grid
