// Tests for the netlist model: nodes, nets, HPWL, hierarchy, connectivity.

#include <gtest/gtest.h>

#include "netlist/design.hpp"
#include "netlist/hierarchy.hpp"
#include "netlist/stats.hpp"

namespace mp::netlist {
namespace {

Design two_cell_design() {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node a;
  a.name = "a";
  a.width = 4.0;
  a.height = 2.0;
  a.position = {10.0, 10.0};
  d.add_node(a);
  Node b;
  b.name = "b";
  b.width = 4.0;
  b.height = 2.0;
  b.position = {20.0, 30.0};
  d.add_node(b);
  Net n;
  n.name = "n";
  n.pins = {{0, 0.0, 0.0}, {1, 0.0, 0.0}};
  d.add_net(n);
  return d;
}

TEST(Design, AddAndFindNodes) {
  Design d = two_cell_design();
  EXPECT_EQ(d.num_nodes(), 2u);
  ASSERT_TRUE(d.find_node("a").has_value());
  EXPECT_EQ(*d.find_node("a"), 0);
  EXPECT_FALSE(d.find_node("zz").has_value());
}

TEST(Design, PinPositionUsesOffsets) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node a;
  a.name = "a";
  a.width = 4.0;
  a.height = 2.0;
  a.position = {1.0, 2.0};
  d.add_node(a);
  const geometry::Point p = d.pin_position(PinRef{0, 3.0, 1.5});
  EXPECT_DOUBLE_EQ(p.x, 4.0);
  EXPECT_DOUBLE_EQ(p.y, 3.5);
}

TEST(Design, NetHpwl) {
  Design d = two_cell_design();
  // Pins at (10,10) and (20,30): HPWL = 10 + 20 = 30.
  EXPECT_DOUBLE_EQ(d.net_hpwl(0), 30.0);
  EXPECT_DOUBLE_EQ(d.total_hpwl(), 30.0);
}

TEST(Design, NetWeightScalesHpwl) {
  Design d = two_cell_design();
  d.net(0).weight = 2.5;
  EXPECT_DOUBLE_EQ(d.total_hpwl(), 75.0);
}

TEST(Design, SinglePinNetHasZeroHpwl) {
  Design d = two_cell_design();
  Net n;
  n.name = "single";
  n.pins = {{0, 0.0, 0.0}};
  d.add_net(n);
  EXPECT_DOUBLE_EQ(d.net_hpwl(1), 0.0);
}

TEST(Design, HpwlChangesWithMovement) {
  Design d = two_cell_design();
  const double before = d.total_hpwl();
  d.node(1).position = {10.0, 10.0};
  EXPECT_LT(d.total_hpwl(), before);
  EXPECT_DOUBLE_EQ(d.total_hpwl(), 0.0);
}

TEST(Design, KindIndexing) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m";
  m.kind = NodeKind::kMacro;
  d.add_node(m);
  Node mf;
  mf.name = "mf";
  mf.kind = NodeKind::kMacro;
  mf.fixed = true;
  d.add_node(mf);
  Node c;
  c.name = "c";
  c.kind = NodeKind::kStdCell;
  d.add_node(c);
  Node p;
  p.name = "p";
  p.kind = NodeKind::kPad;
  p.fixed = true;
  d.add_node(p);
  EXPECT_EQ(d.macros().size(), 2u);
  EXPECT_EQ(d.movable_macros().size(), 1u);
  EXPECT_EQ(d.std_cells().size(), 1u);
  EXPECT_EQ(d.pads().size(), 1u);
}

TEST(Design, StatsMatchTableColumns) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m";
  m.kind = NodeKind::kMacro;
  m.width = 2.0;
  m.height = 2.0;
  d.add_node(m);
  Node mf = m;
  mf.name = "mf";
  mf.fixed = true;
  d.add_node(mf);
  Node c;
  c.name = "c";
  c.kind = NodeKind::kStdCell;
  c.width = 1.0;
  c.height = 1.0;
  d.add_node(c);
  const DesignStats s = d.stats();
  EXPECT_EQ(s.movable_macros, 1);
  EXPECT_EQ(s.preplaced_macros, 1);
  EXPECT_EQ(s.standard_cells, 1);
  EXPECT_DOUBLE_EQ(s.macro_area, 8.0);
  EXPECT_DOUBLE_EQ(s.cell_area, 1.0);
}

TEST(Design, NodeNetsAdjacency) {
  Design d = two_cell_design();
  const auto& adj = d.node_nets();
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_EQ(adj[0].size(), 1u);
  EXPECT_EQ(adj[1].size(), 1u);
}

TEST(Design, MacroOverlapArea) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m1";
  m.kind = NodeKind::kMacro;
  m.width = 4.0;
  m.height = 4.0;
  m.position = {0.0, 0.0};
  d.add_node(m);
  m.name = "m2";
  m.position = {2.0, 2.0};
  d.add_node(m);
  EXPECT_DOUBLE_EQ(d.macro_overlap_area(), 4.0);
}

TEST(Design, AllInsideRegion) {
  Design d("d", geometry::Rect(0, 0, 10, 10));
  Node m;
  m.name = "m";
  m.kind = NodeKind::kMacro;
  m.width = 4.0;
  m.height = 4.0;
  m.position = {1.0, 1.0};
  d.add_node(m);
  EXPECT_TRUE(d.all_inside_region());
  d.node(0).position = {8.0, 8.0};  // sticks out
  EXPECT_FALSE(d.all_inside_region());
}

TEST(Hierarchy, Split) {
  const auto parts = split_hierarchy("top/a/b");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "top");
  EXPECT_EQ(parts[2], "b");
  EXPECT_TRUE(split_hierarchy("").empty());
  EXPECT_EQ(split_hierarchy("/x//y/").size(), 2u);  // empties dropped
}

TEST(Hierarchy, CommonDepth) {
  EXPECT_EQ(common_hierarchy_depth("top/a/b", "top/a/c"), 2);
  EXPECT_EQ(common_hierarchy_depth("top/a", "top/a"), 2);
  EXPECT_EQ(common_hierarchy_depth("top", "other"), 0);
  EXPECT_EQ(common_hierarchy_depth("", "top"), 0);
}

TEST(Hierarchy, JoinRoundTrip) {
  const std::string path = "top/m3/s1";
  EXPECT_EQ(join_hierarchy(split_hierarchy(path)), path);
}

TEST(Connectivity, CountsSharedNets) {
  Design d = two_cell_design();
  // Add a second net between the same pair.
  Net n;
  n.name = "n2";
  n.pins = {{0, 0.0, 0.0}, {1, 0.0, 0.0}};
  d.add_net(n);
  ConnectivityMap conn(d, {0, 1});
  // Each 2-pin net contributes weight 2/2 = 1.
  EXPECT_DOUBLE_EQ(conn.between(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(conn.between(1, 0), 2.0);
}

TEST(Connectivity, SkipsHugeNets) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  for (int i = 0; i < 10; ++i) {
    Node c;
    c.name = "c" + std::to_string(i);
    d.add_node(c);
  }
  Net n;
  n.name = "big";
  for (int i = 0; i < 10; ++i) n.pins.push_back({i, 0.0, 0.0});
  d.add_net(n);
  ConnectivityMap conn(d, d.std_cells(), /*max_net_degree=*/5);
  EXPECT_DOUBLE_EQ(conn.between(0, 1), 0.0);
}

TEST(Connectivity, RestrictedToNodesOfInterest) {
  Design d = two_cell_design();
  ConnectivityMap conn(d, {0});  // only node 0 of interest
  EXPECT_DOUBLE_EQ(conn.between(0, 1), 0.0);
  EXPECT_TRUE(conn.neighbors(0).empty());
}

}  // namespace
}  // namespace mp::netlist
