// Tests for the Bound-to-Bound refinement: HPWL improvement over the
// clique/star QP, convergence, and fixed-terminal behavior.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "qp/b2b.hpp"
#include "qp/quadratic.hpp"

namespace mp::qp {
namespace {

netlist::Design bench(std::uint64_t seed, int cells = 400) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = cells;
  spec.nets = cells * 3 / 2;
  spec.seed = seed;
  return benchgen::generate(spec);
}

TEST(B2b, ImprovesHpwlOverCliqueStarQp) {
  netlist::Design d = bench(700);
  solve_quadratic_placement(d, d.std_cells());
  const double hpwl_qp = d.total_hpwl();
  const B2bResult r = solve_b2b_placement(d, d.std_cells());
  EXPECT_LT(r.hpwl, hpwl_qp) << "B2B should reduce the true HPWL";
  EXPECT_DOUBLE_EQ(r.hpwl, d.total_hpwl());
  EXPECT_GE(r.iterations, 1);
}

TEST(B2b, TwoPinNetOptimumIsBetweenFixedPins) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  netlist::Node pad;
  pad.name = "p0";
  pad.kind = netlist::NodeKind::kPad;
  pad.fixed = true;
  pad.position = {10, 10};
  d.add_node(pad);
  pad.name = "p1";
  pad.position = {90, 30};
  d.add_node(pad);
  netlist::Node cell;
  cell.name = "c";
  cell.position = {50, 80};
  d.add_node(cell);
  netlist::Net n1;
  n1.pins = {{0, 0, 0}, {2, 0, 0}};
  d.add_net(n1);
  netlist::Net n2;
  n2.pins = {{1, 0, 0}, {2, 0, 0}};
  d.add_net(n2);
  solve_b2b_placement(d, {2});
  const geometry::Point c = d.node(2).center();
  EXPECT_GE(c.x, 10.0 - 1e-6);
  EXPECT_LE(c.x, 90.0 + 1e-6);
  EXPECT_GE(c.y, 10.0 - 1e-6);
  EXPECT_LE(c.y, 30.0 + 1e-6);
}

TEST(B2b, ConvergesAndStops) {
  netlist::Design d = bench(701, 200);
  solve_quadratic_placement(d, d.std_cells());
  B2bOptions options;
  options.max_iterations = 20;
  options.convergence_fraction = 1e-2;  // loose: should stop early
  const B2bResult r = solve_b2b_placement(d, d.std_cells(), {}, options);
  EXPECT_LT(r.iterations, 20);
}

TEST(B2b, KeepsNodesInRegion) {
  netlist::Design d = bench(702, 250);
  solve_quadratic_placement(d, d.std_cells());
  solve_b2b_placement(d, d.std_cells());
  for (netlist::NodeId id : d.std_cells()) {
    EXPECT_TRUE(d.region().contains(d.node(id).rect()));
  }
}

TEST(B2b, AnchorsPull) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  netlist::Node pad;
  pad.name = "p";
  pad.kind = netlist::NodeKind::kPad;
  pad.fixed = true;
  pad.position = {0, 0};
  d.add_node(pad);
  netlist::Node cell;
  cell.name = "c";
  cell.position = {50, 50};
  d.add_node(cell);
  netlist::Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);
  B2bOptions options;
  const B2bResult weak = solve_b2b_placement(d, {1}, {{1, {90, 90}, 0.001}}, options);
  const geometry::Point weak_pos = d.node(1).center();
  d.node(1).position = {50, 50};
  solve_b2b_placement(d, {1}, {{1, {90.0, 90.0}, 1000.0}}, options);
  const geometry::Point strong_pos = d.node(1).center();
  (void)weak;
  EXPECT_GT(strong_pos.x, weak_pos.x);
  EXPECT_NEAR(strong_pos.x, 90.0, 2.0);
}

TEST(B2b, EmptyMovableIsNoop) {
  netlist::Design d = bench(703, 50);
  const double before = d.total_hpwl();
  const B2bResult r = solve_b2b_placement(d, {});
  EXPECT_DOUBLE_EQ(r.hpwl, before);
  EXPECT_EQ(r.iterations, 0);
}

class B2bSweep : public ::testing::TestWithParam<int> {};

TEST_P(B2bSweep, NeverWorseThanCliqueStar) {
  netlist::Design d = bench(710 + static_cast<std::uint64_t>(GetParam()),
                            GetParam());
  solve_quadratic_placement(d, d.std_cells());
  const double hpwl_qp = d.total_hpwl();
  const B2bResult r = solve_b2b_placement(d, d.std_cells());
  EXPECT_LE(r.hpwl, hpwl_qp * 1.02) << "cells=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CellCounts, B2bSweep,
                         ::testing::Values(100, 300, 800));

}  // namespace
}  // namespace mp::qp
