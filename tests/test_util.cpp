// Tests for util: RNG determinism and distribution sanity, env helpers,
// timers, and the log filter fast path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>

#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(2));
  EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(14);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[static_cast<std::size_t>(rng.categorical(weights))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(Rng, CategoricalAllZeroReturnsZero) {
  Rng rng(15);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.categorical(weights), 0);
}

TEST(Rng, CategoricalNegativeTreatedAsZero) {
  Rng rng(16);
  std::vector<double> weights{-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(20);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Env, DoubleFallback) {
  unsetenv("MP_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(env_double("MP_TEST_ENV_D", 2.5), 2.5);
  setenv("MP_TEST_ENV_D", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_double("MP_TEST_ENV_D", 2.5), 0.125);
  setenv("MP_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_double("MP_TEST_ENV_D", 2.5), 2.5);
  unsetenv("MP_TEST_ENV_D");
}

TEST(Env, IntFallback) {
  unsetenv("MP_TEST_ENV_I");
  EXPECT_EQ(env_int("MP_TEST_ENV_I", 7), 7);
  setenv("MP_TEST_ENV_I", "42", 1);
  EXPECT_EQ(env_int("MP_TEST_ENV_I", 7), 42);
  unsetenv("MP_TEST_ENV_I");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  const double s = t.seconds();
  EXPECT_GE(s, 0.0);
  // seconds() and milliseconds() sample the clock separately; allow skew.
  EXPECT_NEAR(t.milliseconds(), s * 1e3, 50.0);
}

TEST(Timer, LapMeasuresSinceLastLapWithoutAffectingTotal) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 50000; ++i) x = x + std::sqrt(static_cast<double>(i));
  const double lap1 = t.lap();
  for (int i = 0; i < 50000; ++i) x = x + std::sqrt(static_cast<double>(i));
  const double lap2 = t.lap();
  const double elapsed = t.seconds();
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  // Laps tile the elapsed time: their sum cannot exceed seconds() sampled
  // afterwards, and only the tiny lap2->seconds() gap is unaccounted for.
  EXPECT_LE(lap1 + lap2, elapsed);
  EXPECT_GE(lap1 + lap2, elapsed - 0.05);
}

// A streamed type whose formatting has an observable side effect, to prove
// filtered messages never pay for formatting.
struct CountingFormat {
  int* formats;
};

std::ostream& operator<<(std::ostream& os, const CountingFormat& c) {
  ++*c.formats;
  return os << "formatted";
}

TEST(Log, FilteredMessagesSkipFormatting) {
  const LogLevel saved = log_level();
  int formats = 0;
  set_log_level(LogLevel::kError);
  log_debug() << CountingFormat{&formats};
  log_info() << CountingFormat{&formats};
  EXPECT_EQ(formats, 0);
  set_log_level(LogLevel::kDebug);
  log_debug() << CountingFormat{&formats};
  EXPECT_EQ(formats, 1);
  set_log_level(saved);
}

TEST(Log, SetLevelRoundTrips) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  set_log_level(saved);
}

}  // namespace
}  // namespace mp::util
