// Tests for the two-phase simplex LP solver.

#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace mp::lp {
namespace {

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // minimize -x - y  s.t. x + y <= 4, x <= 3, y <= 2  -> x=3, y=1? No:
  // optimum of x+y is 4 with x in [2,3]; simplex picks a vertex: (3,1) or (2,2).
  LinearProgram lp(2);
  lp.set_objective(0, -1.0);
  lp.set_objective(1, -1.0);
  lp.add_constraint({1.0, 1.0}, Relation::kLessEqual, 4.0);
  lp.add_upper_bound(0, 3.0);
  lp.add_upper_bound(1, 2.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 4.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // minimize x + 2y  s.t. x + y = 3, x <= 2  ->  x=2, y=1, obj=4.
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.add_constraint({1.0, 1.0}, Relation::kEqual, 3.0);
  lp.add_upper_bound(0, 2.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(Simplex, GreaterEqualNeedsPhase1) {
  // minimize 2x + 3y  s.t. x + y >= 5, x >= 1 -> x=5? obj: prefer x (cheaper):
  // x=5,y=0 obj=10... but x>=1 already satisfied. Optimum x=5, y=0.
  LinearProgram lp(2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.add_constraint({1.0, 1.0}, Relation::kGreaterEqual, 5.0);
  lp.add_lower_bound(0, 1.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.x[0], 5.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.add_upper_bound(0, 1.0);
  lp.add_lower_bound(0, 2.0);
  const LpResult r = lp.solve();
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp(1);
  lp.set_objective(0, -1.0);  // minimize -x with x unbounded above
  lp.add_lower_bound(0, 0.0);
  const LpResult r = lp.solve();
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1  (i.e. y >= x + 1); minimize y with x >= 2 -> x=2, y=3.
  LinearProgram lp(2);
  lp.set_objective(1, 1.0);
  lp.add_constraint({1.0, -1.0}, Relation::kLessEqual, -1.0);
  lp.add_lower_bound(0, 2.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[1], 3.0, 1e-9);
}

TEST(Simplex, DifferenceConstraintChain) {
  // Legalization shape: x0 >= 1, x1 - x0 >= 2, x2 - x1 >= 3, minimize x2:
  // x = (1, 3, 6).
  LinearProgram lp(3);
  lp.set_objective(2, 1.0);
  lp.add_lower_bound(0, 1.0);
  lp.add_difference_ge(1, 0, 2.0);
  lp.add_difference_ge(2, 1, 3.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[2], 6.0, 1e-9);
}

TEST(Simplex, WirelengthLinearization) {
  // One macro x in [0, 10], one net with fixed pins at 2 and 8:
  // minimize (u - l), u >= x, u >= 8, l <= x, l <= 2.
  // Any x in [2, 8] is optimal with objective 6.
  LinearProgram lp(3);  // x, u, l
  lp.set_objective(1, 1.0);
  lp.set_objective(2, -1.0);
  lp.add_upper_bound(0, 10.0);
  lp.add_constraint({-1.0, 1.0, 0.0}, Relation::kGreaterEqual, 0.0);  // u - x >= 0
  lp.add_lower_bound(1, 8.0);                                        // u >= 8
  lp.add_constraint({1.0, 0.0, -1.0}, Relation::kGreaterEqual, 0.0); // x - l >= 0
  lp.add_upper_bound(2, 2.0);                                        // l <= 2
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
  EXPECT_GE(r.x[0], 2.0 - 1e-9);
  EXPECT_LE(r.x[0], 8.0 + 1e-9);
}

TEST(Simplex, DegenerateRedundantConstraints) {
  LinearProgram lp(2);
  lp.set_objective(0, 1.0);
  lp.add_lower_bound(0, 1.0);
  lp.add_lower_bound(0, 1.0);  // duplicate
  lp.add_constraint({1.0, 0.0}, Relation::kGreaterEqual, 1.0);  // same again
  lp.add_upper_bound(1, 5.0);
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
}

// Property test: random bounded difference-constraint LPs are feasible and
// the simplex solution satisfies every constraint.
class SimplexChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexChainProperty, SolutionSatisfiesAllConstraints) {
  const int n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  LinearProgram lp(static_cast<std::size_t>(n));
  std::vector<double> gaps;
  double total = 0.0;
  for (int i = 1; i < n; ++i) {
    const double gap = rng.uniform(0.5, 2.0);
    gaps.push_back(gap);
    total += gap;
    lp.add_difference_ge(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(i - 1), gap);
  }
  // Room: upper bound with 20% slack.
  for (int i = 0; i < n; ++i) {
    lp.add_upper_bound(static_cast<std::size_t>(i), total * 1.2 + 1.0);
    lp.set_objective(static_cast<std::size_t>(i), rng.uniform(-1.0, 1.0));
  }
  const LpResult r = lp.solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal) << "n=" << n;
  for (int i = 1; i < n; ++i) {
    EXPECT_GE(r.x[static_cast<std::size_t>(i)] - r.x[static_cast<std::size_t>(i - 1)],
              gaps[static_cast<std::size_t>(i - 1)] - 1e-7);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GE(r.x[static_cast<std::size_t>(i)], -1e-9);
    EXPECT_LE(r.x[static_cast<std::size_t>(i)], total * 1.2 + 1.0 + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimplexChainProperty,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace mp::lp
