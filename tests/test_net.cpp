// Tests for the distributed-serving subsystem (src/net, docs/DISTRIBUTED.md):
// endpoint URI grammar, NDJSON framing hardening (split/garbage/oversized
// frames against a live server), consistent-hash ring properties
// (determinism, balance, minimal remapping), bit-exact artifact wire codecs,
// and the fleet end-to-end contracts — router placement is byte-identical to
// direct submission, killing a backend mid-run loses no accepted job, and a
// warm artifact on one backend is fetched peer-to-peer by another with
// exactly one fleet-wide cache miss.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "net/endpoint.hpp"
#include "net/framing.hpp"
#include "net/peer.hpp"
#include "net/ring.hpp"
#include "net/router.hpp"
#include "net/wire.hpp"
#include "place/flow.hpp"
#include "svc/client.hpp"
#include "svc/job.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/fnv.hpp"

namespace mp::net {
namespace {

// ---------------------------------------------------------------------------
// Endpoint grammar

TEST(Endpoint, ParsesUnixTcpAndBarePaths) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("unix:/tmp/mp.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/mp.sock");
  EXPECT_EQ(ep.uri(), "unix:/tmp/mp.sock");

  ASSERT_TRUE(parse_endpoint("tcp:127.0.0.1:7411", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7411);
  EXPECT_EQ(ep.uri(), "tcp:127.0.0.1:7411");

  // Bare paths stay valid so every pre-fleet --socket invocation works.
  ASSERT_TRUE(parse_endpoint("/tmp/bare.sock", &ep, &error)) << error;
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/bare.sock");

  ASSERT_TRUE(parse_endpoint("tcp:localhost:0", &ep, &error)) << error;
  EXPECT_EQ(ep.port, 0);  // ephemeral bind
}

TEST(Endpoint, RejectsMalformedUris) {
  Endpoint ep;
  std::string error;
  EXPECT_FALSE(parse_endpoint("", &ep, &error));
  EXPECT_FALSE(parse_endpoint("unix:", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:hostonly", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp::7411", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host:notaport", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host:70000", &ep, &error));
  EXPECT_FALSE(parse_endpoint("tcp:host:-1", &ep, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Endpoint, ConnectFailsFastWithError) {
  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint("unix:/tmp/mp_net_no_such.sock", &ep, &error));
  ConnectOptions opts;
  opts.attempts = 2;  // exercises the backoff path
  opts.initial_backoff_s = 0.01;
  EXPECT_LT(connect_endpoint(ep, opts, &error), 0);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Framing

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    close_write();
    if (fds[0] >= 0) ::close(fds[0]);
  }
  void close_write() {
    if (fds[1] >= 0) {
      ::close(fds[1]);
      fds[1] = -1;
    }
  }
};

TEST(Framing, SplitsBurstsIntoLinesAndStripsCrlf) {
  Pipe p;
  ASSERT_TRUE(write_all(p.fds[1], "one\ntwo\r\nthr", 12));
  ASSERT_TRUE(write_all(p.fds[1], "ee\n", 3));
  ASSERT_TRUE(write_all(p.fds[1], "tail-without-newline", 20));
  p.close_write();

  FrameReader reader(p.fds[0]);
  std::string line;
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  EXPECT_EQ(line, "one");
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  EXPECT_EQ(line, "two");  // '\r' stripped
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  EXPECT_EQ(line, "three");  // reassembled across reads
  // The unterminated fragment is dropped: strictly newline-delimited.
  EXPECT_EQ(reader.next(line), ReadStatus::kEof);
}

TEST(Framing, OversizedLineIsRejectedAndStreamRecovers) {
  Pipe p;
  const std::string huge(5000, 'x');
  ASSERT_TRUE(write_all(p.fds[1], (huge + "\nok\n").data(), huge.size() + 4));
  p.close_write();

  FrameReader reader(p.fds[0], /*max_frame_bytes=*/1024);
  std::string line;
  ASSERT_EQ(reader.next(line), ReadStatus::kOversized);
  EXPECT_TRUE(line.empty());
  // The stream resumes cleanly at the next line.
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(reader.next(line), ReadStatus::kEof);
}

TEST(Framing, ReadTimeoutFiresWithoutData) {
  Pipe p;  // write end stays open: no EOF, no data
  FrameReader reader(p.fds[0], kDefaultMaxFrameBytes, /*timeout_s=*/0.05);
  std::string line;
  EXPECT_EQ(reader.next(line), ReadStatus::kTimeout);
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

std::vector<std::string> five_backends() {
  return {"tcp:hostA:7411", "tcp:hostB:7411", "tcp:hostC:7411",
          "tcp:hostD:7411", "tcp:hostE:7411"};
}

TEST(HashRing, OwnershipIsDeterministicAcrossInstancesAndOrder) {
  const HashRing a(five_backends());
  const HashRing b(five_backends());
  std::vector<std::string> reversed = five_backends();
  std::reverse(reversed.begin(), reversed.end());
  const HashRing c(reversed);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "j" + util::hash_hex(util::fnv1a64(
                                      std::to_string(i)));
    EXPECT_EQ(a.owner(key), b.owner(key));
    // Ownership depends on the backend *names*, not the list order, so any
    // process building the ring from the same membership agrees.
    EXPECT_EQ(a.owner(key), c.owner(key));
  }
  // Golden owners freeze the hash/mix functions: a silent change to either
  // would strand every fleet's cache affinity on upgrade.
  EXPECT_EQ(a.owner("j-alpha"), "tcp:hostC:7411");
  EXPECT_EQ(a.owner("j-beta"), "tcp:hostC:7411");
  EXPECT_EQ(a.owner("j-gamma"), "tcp:hostB:7411");
}

TEST(HashRing, BalancesWithinTwiceMeanOver10kKeys) {
  const std::vector<std::string> backends = five_backends();
  const HashRing ring(backends, 64);
  std::map<std::string, int> count;
  for (int i = 0; i < 10000; ++i) {
    const std::string key =
        "j" + util::hash_hex(util::fnv1a64(std::to_string(i)));
    ++count[ring.owner(key)];
  }
  const double mean = 10000.0 / static_cast<double>(backends.size());
  for (const std::string& b : backends) {
    EXPECT_GT(count[b], 0) << b << " owns nothing";
    EXPECT_LE(count[b], 2.0 * mean) << b << " owns " << count[b];
  }
}

TEST(HashRing, RemovalOnlyRemapsTheRemovedBackendsKeys) {
  const std::vector<std::string> backends = five_backends();
  const HashRing full(backends, 64);
  const std::string removed = backends[2];
  std::vector<std::string> without;
  for (const std::string& b : backends) {
    if (b != removed) without.push_back(b);
  }
  const HashRing reduced(without, 64);
  int moved = 0, kept = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::string key =
        "j" + util::hash_hex(util::fnv1a64(std::to_string(i)));
    const std::string& before = full.owner(key);
    const std::string& after = reduced.owner(key);
    if (before == removed) {
      ++moved;
      EXPECT_NE(after, removed);
    } else {
      ++kept;
      // Every other key keeps its owner: the remaining points are unchanged.
      EXPECT_EQ(after, before);
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_GT(kept, 0);
}

TEST(HashRing, OwnerAmongWalksToTheRingSuccessor) {
  const std::vector<std::string> backends = five_backends();
  const HashRing ring(backends, 64);
  const std::string key = "j-alpha";
  const std::string& owner = ring.owner(key);
  std::set<std::string> alive(backends.begin(), backends.end());
  EXPECT_EQ(ring.owner_among(key, alive), owner);
  alive.erase(owner);
  const std::string& next = ring.owner_among(key, alive);
  EXPECT_NE(next, owner);
  EXPECT_EQ(next, ring.successor(key, owner, alive));
  EXPECT_EQ(ring.owner_among(key, {}), "");
}

// ---------------------------------------------------------------------------
// Wire codecs

benchgen::BenchSpec tiny_bench_spec() {
  benchgen::BenchSpec spec;
  spec.name = "net-tiny";
  spec.movable_macros = 8;
  spec.std_cells = 300;
  spec.nets = 400;
  spec.io_pads = 16;
  spec.seed = 5;
  return spec;
}

TEST(Wire, DesignRoundTripIsBitExact) {
  const netlist::Design design = benchgen::generate(tiny_bench_spec());
  const std::string blob = serialize_design(design);
  const netlist::Design back = deserialize_design(blob);
  EXPECT_EQ(back.name(), design.name());
  EXPECT_EQ(back.num_nodes(), design.num_nodes());
  EXPECT_EQ(back.num_nets(), design.num_nets());
  // Re-serialization byte-equality covers every field, including the exact
  // floating-point bit patterns the determinism contract needs.
  EXPECT_EQ(serialize_design(back), blob);
}

TEST(Wire, PreparedRoundTripIsBitExact) {
  netlist::Design design = benchgen::generate(tiny_bench_spec());
  place::FlowOptions options;
  options.grid_dim = 8;
  const place::FlowContext context = place::prepare_flow(design, options);
  const std::string blob = serialize_prepared(design, context);

  netlist::Design back_design;
  place::FlowContext back_context;
  deserialize_prepared(blob, &back_design, &back_context);
  EXPECT_EQ(serialize_prepared(back_design, back_context), blob);
  EXPECT_EQ(back_context.spec.dim(), context.spec.dim());
  EXPECT_EQ(back_context.clustering.macro_groups.size(),
            context.clustering.macro_groups.size());
}

TEST(Wire, WeightsRoundTripIsBitExact) {
  std::vector<nn::Tensor> params;
  nn::Tensor t({2, 3});
  float v = 0.125f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = v;
    v = v * -1.7f + 0.01f;  // exercise signs and non-round values
  }
  params.push_back(t);
  params.push_back(nn::Tensor({4}, 2.5f));
  const std::string blob = serialize_weights(params);
  const std::vector<nn::Tensor> back = deserialize_weights(blob);
  ASSERT_EQ(back.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ASSERT_EQ(back[i].shape(), params[i].shape());
    for (std::size_t j = 0; j < params[i].size(); ++j) {
      EXPECT_EQ(back[i].data()[j], params[i].data()[j]);  // bit-exact
    }
  }
  EXPECT_EQ(serialize_weights(back), blob);
}

TEST(Wire, CorruptBlobsThrow) {
  const netlist::Design design = benchgen::generate(tiny_bench_spec());
  std::string blob = serialize_design(design);
  EXPECT_THROW(deserialize_design("MPX1 nonsense"), std::runtime_error);
  EXPECT_THROW(deserialize_design(blob.substr(0, blob.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(deserialize_weights(blob), std::runtime_error);  // wrong magic
}

// ---------------------------------------------------------------------------
// Live-server protocol hardening

svc::Json tiny_job_spec_json(int seed) {
  svc::Json spec = svc::Json::object();
  svc::Json synth = svc::Json::object();
  synth["name"] = svc::Json::string("net-tiny");
  synth["movable_macros"] = svc::Json::number(8);
  synth["std_cells"] = svc::Json::number(300);
  synth["nets"] = svc::Json::number(400);
  synth["io_pads"] = svc::Json::number(16);
  synth["seed"] = svc::Json::number(seed);
  spec["synthetic"] = synth;
  spec["preset"] = svc::Json::string("mcts");
  spec["episodes"] = svc::Json::number(6);
  spec["gamma"] = svc::Json::number(4);
  spec["grid"] = svc::Json::number(8);
  spec["channels"] = svc::Json::number(8);
  spec["blocks"] = svc::Json::number(1);
  return spec;
}

svc::ServiceOptions quiet_service_options() {
  svc::ServiceOptions options;
  // Several LocalServices coexist in these tests; only one process-wide
  // span listener is allowed, so fleet members do not stream progress.
  options.stream_progress = false;
  return options;
}

/// One backend: LocalService + Server on an ephemeral TCP port, serving on a
/// background thread until shutdown() (or destruction).
struct Backend {
  svc::LocalService service;
  svc::Server server;
  std::thread thread;
  bool stopped = false;

  explicit Backend(svc::ServerOptions server_options = {})
      : service(quiet_service_options()),
        server(service, "tcp:127.0.0.1:0", server_options) {
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
    thread = std::thread([this] { server.serve(); });
  }

  std::string uri() const { return server.bound_uri(); }

  void stop() {
    if (stopped) return;
    stopped = true;
    server.request_shutdown();
    thread.join();
  }

  ~Backend() { stop(); }
};

TEST(ServerHardening, GarbageSplitAndOversizedFramesGetJsonErrors) {
  svc::ServerOptions server_options;
  server_options.max_frame_bytes = 1024;
  Backend backend(server_options);

  Endpoint ep;
  std::string error;
  ASSERT_TRUE(parse_endpoint(backend.uri(), &ep, &error)) << error;
  const int fd = connect_endpoint(ep, {}, &error);
  ASSERT_GE(fd, 0) << error;
  FrameReader reader(fd);
  std::string line;

  // Garbage line: JSON error reply, connection stays up.
  ASSERT_TRUE(write_frame(fd, "this is not json"));
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  svc::Json reply = svc::Json::parse(line);
  EXPECT_FALSE(reply.find("ok")->as_bool());

  // A request split into byte-sized writes still parses as one frame.
  const std::string stats_req = "{\"verb\":\"stats\"}\n";
  for (char c : stats_req) {
    ASSERT_TRUE(write_all(fd, &c, 1));
  }
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  reply = svc::Json::parse(line);
  EXPECT_TRUE(reply.find("ok")->as_bool()) << line;

  // Oversized frame: rejected with a JSON error instead of buffering...
  const std::string huge(4096, 'z');
  ASSERT_TRUE(write_frame(fd, huge));
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  reply = svc::Json::parse(line);
  ASSERT_FALSE(reply.find("ok")->as_bool());
  EXPECT_NE(reply.find("error")->as_string().find("exceeds"),
            std::string::npos);

  // ...and the connection still serves the next well-formed request.
  ASSERT_TRUE(write_frame(fd, "{\"verb\":\"ping\"}"));
  ASSERT_EQ(reader.next(line), ReadStatus::kOk);
  reply = svc::Json::parse(line);
  EXPECT_TRUE(reply.find("ok")->as_bool());
  EXPECT_TRUE(reply.find("pong")->as_bool());
  ::close(fd);
}

TEST(ServerHardening, TcpRoundTripMatchesUnixBehavior) {
  Backend backend;
  svc::Client client(backend.uri());
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  const svc::Json pong = client.ping();
  EXPECT_TRUE(pong.find("ok")->as_bool());
  const svc::Json missing =
      client.fetch_artifact("design", "gen:doesnotexist");
  EXPECT_FALSE(missing.find("ok")->as_bool());
  client.close();
}

// ---------------------------------------------------------------------------
// Fleet end-to-end

std::string result_placement_hash(const svc::Json& reply) {
  const svc::Json* job = reply.find("job");
  if (job == nullptr) return "";
  const svc::Json* outcome = job->find("outcome");
  if (outcome == nullptr) return "";
  const svc::Json* hash = outcome->find("placement_hash");
  return hash != nullptr ? hash->as_string() : "";
}

TEST(Fleet, RouterPlacementsMatchDirectSubmissionByteForByte) {
  Backend b0, b1, b2;
  RouterOptions options;
  options.backends = {b0.uri(), b1.uri(), b2.uri()};
  options.health_period_s = 0.0;  // no health thread; this test kills nothing
  Router router("tcp:127.0.0.1:0", options);
  std::string error;
  ASSERT_TRUE(router.start(&error)) << error;
  std::thread routing([&router] { router.serve(); });

  svc::Client via_router(router.bound_uri());
  ASSERT_TRUE(via_router.connect(&error)) << error;
  svc::Client direct(b0.uri());
  ASSERT_TRUE(direct.connect(&error)) << error;

  for (int seed = 1; seed <= 3; ++seed) {
    const svc::Json spec = tiny_job_spec_json(seed);
    const svc::Json routed = via_router.submit(spec);
    ASSERT_TRUE(routed.find("ok")->as_bool()) << routed.dump();
    const std::string routed_id = routed.find("id")->as_string();

    const svc::Json direct_submit = direct.submit(spec);
    ASSERT_TRUE(direct_submit.find("ok")->as_bool());
    const std::string direct_id = direct_submit.find("id")->as_string();

    const svc::Json routed_result = via_router.result(routed_id);
    ASSERT_TRUE(routed_result.find("ok")->as_bool()) << routed_result.dump();
    // The reply's job id is the router-minted client id, not the backend's.
    EXPECT_EQ(routed_result.find("job")->find("id")->as_string(), routed_id);
    const svc::Json direct_result = direct.result(direct_id);
    ASSERT_TRUE(direct_result.find("ok")->as_bool());

    const std::string routed_hash = result_placement_hash(routed_result);
    ASSERT_FALSE(routed_hash.empty());
    // Same spec, whichever backend the ring chose: byte-identical placement.
    EXPECT_EQ(routed_hash, result_placement_hash(direct_result));
  }

  // The routing SLO metrics saw the forwards.
  const svc::Json metrics = via_router.metrics();
  ASSERT_TRUE(metrics.find("ok")->as_bool());
  EXPECT_GE(metrics.find("counters")->find("net.forwarded")->as_number(), 6.0);

  router.request_shutdown();
  routing.join();
}

TEST(Fleet, BackendLossLosesNoAcceptedJobs) {
  auto b0 = std::make_unique<Backend>();
  auto b1 = std::make_unique<Backend>();
  auto b2 = std::make_unique<Backend>();
  RouterOptions options;
  options.backends = {b0->uri(), b1->uri(), b2->uri()};
  options.health_period_s = 0.05;  // detect the kill quickly
  options.connect_timeout_s = 1.0;
  Router router("tcp:127.0.0.1:0", options);
  std::string error;
  ASSERT_TRUE(router.start(&error)) << error;
  std::thread routing([&router] { router.serve(); });

  svc::Client client(router.bound_uri());
  ASSERT_TRUE(client.connect(&error)) << error;

  // Accept several jobs, then take down the backend that owns the first.
  std::vector<std::string> ids;
  std::string victim_uri;
  for (int seed = 10; seed < 16; ++seed) {
    const svc::Json reply = client.submit(tiny_job_spec_json(seed));
    ASSERT_TRUE(reply.find("ok")->as_bool()) << reply.dump();
    ids.push_back(reply.find("id")->as_string());
    if (victim_uri.empty()) {
      victim_uri = reply.find("backend")->as_string();
    }
  }
  ASSERT_FALSE(victim_uri.empty());
  // Fetch the first job's result BEFORE the kill: its route goes terminal,
  // and the victim then holds the only copy of the finished result — the
  // harder failover case (the router must re-run it, not just re-route).
  const svc::Json first_result = client.result(ids[0], 120.0);
  ASSERT_TRUE(first_result.find("ok")->as_bool()) << first_result.dump();
  const std::string first_hash = result_placement_hash(first_result);
  ASSERT_FALSE(first_hash.empty());
  // Kill the victim: its socket closes, so forwards and pings start failing;
  // the router must re-submit its jobs to the ring successors.
  if (victim_uri == b0->uri()) b0.reset();
  else if (victim_uri == b1->uri()) b1.reset();
  else b2.reset();

  for (const std::string& id : ids) {
    const svc::Json result = client.result(id, /*timeout_s=*/120.0);
    ASSERT_TRUE(result.find("ok")->as_bool())
        << id << ": " << result.dump();
    EXPECT_EQ(result.find("job")->find("state")->as_string(), "done");
    EXPECT_EQ(result.find("job")->find("id")->as_string(), id);
    EXPECT_FALSE(result_placement_hash(result).empty());
    if (id == ids[0]) {
      // The deterministic re-run on the successor reproduced the dead
      // backend's result byte for byte.
      EXPECT_EQ(result_placement_hash(result), first_hash);
    }
  }

  const svc::Json metrics = client.metrics();
  ASSERT_TRUE(metrics.find("ok")->as_bool());
  // At least the victim's in-flight jobs were re-dispatched.
  EXPECT_GE(metrics.find("counters")->find("net.retries")->as_number(), 0.0);

  router.request_shutdown();
  routing.join();
}

TEST(Fleet, PeerFetchServesWarmArtifactWithOneFleetWideMiss) {
  // Backend A runs the job cold and holds the warm artifacts.
  Backend a;
  svc::Client to_a(a.uri());
  std::string error;
  ASSERT_TRUE(to_a.connect(&error)) << error;
  const svc::Json spec = tiny_job_spec_json(42);
  const svc::Json submitted = to_a.submit(spec);
  ASSERT_TRUE(submitted.find("ok")->as_bool()) << submitted.dump();
  const svc::Json a_result =
      to_a.result(submitted.find("id")->as_string());
  ASSERT_TRUE(a_result.find("ok")->as_bool());

  // Backend B, configured with A as a ring peer, runs the same spec: its
  // cache misses resolve from A's cache over fetch_artifact.
  svc::LocalService b(quiet_service_options());
  PeerFetcher fetcher({a.uri()});
  b.set_peer_fetcher([&fetcher](const std::string& kind,
                                const std::string& key, std::string* blob) {
    return fetcher.fetch(kind, key, blob);
  });
  const svc::Scheduler::SubmitResult accepted =
      b.submit(svc::parse_job_spec(spec));
  ASSERT_TRUE(accepted.accepted) << accepted.error;
  ASSERT_TRUE(b.wait(accepted.id, 120.0));
  const auto snap = b.status(accepted.id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(snap->error.empty()) << snap->error;

  // B rebuilt nothing: both artifacts came from the peer...
  const svc::CacheStats b_stats = b.cache_stats();
  EXPECT_EQ(b_stats.design_misses, 0);
  EXPECT_EQ(b_stats.prepared_misses, 0);
  EXPECT_EQ(b_stats.design_peer_hits, 1);
  EXPECT_EQ(b_stats.prepared_peer_hits, 1);
  // ...so the fleet-wide miss count for each artifact is exactly one (A's
  // cold build).
  const svc::CacheStats a_stats = a.service.cache_stats();
  EXPECT_EQ(a_stats.design_misses + b_stats.design_misses, 1);
  EXPECT_EQ(a_stats.prepared_misses + b_stats.prepared_misses, 1);

  // And the peer-fetched artifact is bit-identical: same placement hash.
  EXPECT_EQ(util::hash_hex(snap->outcome.placement_hash),
            result_placement_hash(a_result));
}

}  // namespace
}  // namespace mp::net
