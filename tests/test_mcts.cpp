// Tests for the MCTS placement optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

namespace mp::mcts {
namespace {

struct McstFixture {
  netlist::Design design;
  place::FlowContext context;
  std::unique_ptr<rl::PlacementEnv> env;
  std::unique_ptr<rl::CoarseEvaluator> evaluator;
  std::unique_ptr<rl::AgentNetwork> agent;
  rl::RewardCalibration calibration;

  explicit McstFixture(std::uint64_t seed, int macros = 10, int grid_dim = 4,
                       bool disable_grouping = false) {
    benchgen::BenchSpec spec;
    spec.movable_macros = macros;
    spec.std_cells = 150;
    spec.nets = 250;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = grid_dim;
    options.initial_gp.max_iterations = 3;
    if (disable_grouping) options.cluster.nu = 1e12;  // one group per macro
    context = place::prepare_flow(design, options);
    env = std::make_unique<rl::PlacementEnv>(context.coarse,
                                             context.clustering, context.spec);
    evaluator = std::make_unique<rl::CoarseEvaluator>(context.coarse,
                                                      context.spec);
    rl::AgentConfig config;
    config.grid_dim = grid_dim;
    config.channels = 8;
    config.res_blocks = 1;
    config.seed = seed;
    agent = std::make_unique<rl::AgentNetwork>(config);
    util::Rng rng(seed);
    calibration = rl::calibrate_reward(*env, *evaluator, 10, rng);
  }
};

TEST(Mcts, ProducesCompleteAllocation) {
  McstFixture f(70);
  MctsOptions options;
  options.explorations_per_move = 8;
  MctsPlacer placer(*f.env, *f.evaluator, *f.agent,
                    f.calibration.make_reward(0.75), options);
  const MctsResult result = placer.run();
  EXPECT_EQ(result.anchors.size(),
            f.context.clustering.macro_groups.size());
  EXPECT_TRUE(std::isfinite(result.wirelength));
  EXPECT_GT(result.wirelength, 0.0);
  EXPECT_GT(result.nodes_created, 0);
  EXPECT_GT(result.nn_evaluations, 0);
}

TEST(Mcts, AllocationAnchorsAreOnChip) {
  McstFixture f(71);
  MctsOptions options;
  options.explorations_per_move = 6;
  MctsPlacer placer(*f.env, *f.evaluator, *f.agent,
                    f.calibration.make_reward(0.75), options);
  const MctsResult result = placer.run();
  for (const grid::CellCoord& anchor : result.anchors) {
    EXPECT_GE(anchor.gx, 0);
    EXPECT_GE(anchor.gy, 0);
    EXPECT_LT(anchor.gx, f.context.spec.dim());
    EXPECT_LT(anchor.gy, f.context.spec.dim());
  }
}

TEST(Mcts, TerminalEvaluationsOnlyAtLeaves) {
  // Disable grouping so the episode is 8 steps deep: shallow explorations
  // then hit non-terminal nodes far more often than terminal ones.
  McstFixture f(72, /*macros=*/8, /*grid_dim=*/4, /*disable_grouping=*/true);
  ASSERT_GE(f.env->num_steps(), 4);
  MctsOptions options;
  options.explorations_per_move = 10;
  MctsPlacer placer(*f.env, *f.evaluator, *f.agent,
                    f.calibration.make_reward(0.75), options);
  const MctsResult result = placer.run();
  // The paper's point: most evaluations are value-network calls, not full
  // placements.
  EXPECT_GT(result.nn_evaluations, result.terminal_evaluations);
}

TEST(Mcts, BeatsRandomAllocationOnAverage) {
  McstFixture f(73, 8);
  const rl::RewardFn reward = f.calibration.make_reward(0.75);
  MctsOptions options;
  options.explorations_per_move = 16;
  MctsPlacer placer(*f.env, *f.evaluator, *f.agent, reward, options);
  const MctsResult result = placer.run();

  // Average random allocation wirelength = calibration mean.
  EXPECT_LT(result.wirelength, f.calibration.wl_mean)
      << "MCTS should beat the random-play average";
}

TEST(Mcts, MoreExplorationsNotWorse) {
  McstFixture f1(74, 8);
  McstFixture f2(74, 8);
  const rl::RewardFn reward1 = f1.calibration.make_reward(0.75);
  const rl::RewardFn reward2 = f2.calibration.make_reward(0.75);
  MctsOptions small;
  small.explorations_per_move = 2;
  small.seed = 5;
  MctsOptions big;
  big.explorations_per_move = 24;
  big.seed = 5;
  const MctsResult r_small =
      MctsPlacer(*f1.env, *f1.evaluator, *f1.agent, reward1, small).run();
  const MctsResult r_big =
      MctsPlacer(*f2.env, *f2.evaluator, *f2.agent, reward2, big).run();
  // Not a strict guarantee, but with the same seed and a generous margin the
  // bigger search should not be dramatically worse.
  EXPECT_LT(r_big.wirelength, r_small.wirelength * 1.25);
}

TEST(Mcts, ZeroExplorationsStillCompletes) {
  McstFixture f(75, 5);
  MctsOptions options;
  options.explorations_per_move = 0;  // degenerate: pure prior commitment
  MctsPlacer placer(*f.env, *f.evaluator, *f.agent,
                    f.calibration.make_reward(0.75), options);
  const MctsResult result = placer.run();
  EXPECT_EQ(result.anchors.size(), f.context.clustering.macro_groups.size());
}

TEST(Mcts, TrainedAgentGuidanceNotWorseThanUntrained) {
  // Train an agent briefly, then compare MCTS guided by it vs an untrained
  // one with the same exploration budget (Fig. 5's message, weak form).
  McstFixture trained(76, 8);
  McstFixture untrained(76, 8);
  rl::TrainOptions topt;
  topt.episodes = 20;
  topt.update_window = 5;
  topt.calibration_episodes = 8;
  const rl::TrainResult tr =
      rl::train_agent(*trained.env, *trained.evaluator, *trained.agent, topt);
  const rl::RewardFn reward = tr.calibration.make_reward(0.75);

  MctsOptions options;
  options.explorations_per_move = 12;
  const MctsResult r_trained =
      MctsPlacer(*trained.env, *trained.evaluator, *trained.agent, reward,
                 options)
          .run();
  const MctsResult r_untrained =
      MctsPlacer(*untrained.env, *untrained.evaluator, *untrained.agent,
                 reward, options)
          .run();
  EXPECT_LT(r_trained.wirelength, r_untrained.wirelength * 1.3);
}

}  // namespace
}  // namespace mp::mcts
