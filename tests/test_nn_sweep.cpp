// Parameterized property sweeps over the NN layers: gradient checks across
// layer shapes and training-dynamics sanity (loss decreases on a fixed
// target).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/functional.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"

namespace mp::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

// Directional-derivative gradient check: cheaper and less kink-sensitive
// than per-entry checks — compares <grad, dir> against the finite
// difference along a random direction.
void check_directional(Layer& layer, Tensor input, double tolerance = 4e-2) {
  util::Rng rng(4242);
  Tensor out = layer.forward(input, true);
  Tensor grad_pattern = out;
  for (std::size_t i = 0; i < grad_pattern.size(); ++i) {
    grad_pattern[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const auto loss = [&](const Tensor& x) {
    Tensor y = layer.forward(x, true);
    double total = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      total += static_cast<double>(grad_pattern[i]) * y[i];
    }
    return total;
  };

  layer.forward(input, true);
  const Tensor grad_input = layer.backward(grad_pattern);

  Tensor direction = input;
  for (std::size_t i = 0; i < direction.size(); ++i) {
    direction[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  double analytic = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    analytic += static_cast<double>(grad_input[i]) * direction[i];
  }
  const float eps = 2e-3f;
  Tensor xp = input, xm = input;
  for (std::size_t i = 0; i < input.size(); ++i) {
    xp[i] += eps * direction[i];
    xm[i] -= eps * direction[i];
  }
  const double numeric = (loss(xp) - loss(xm)) / (2.0 * eps);
  EXPECT_NEAR(analytic, numeric,
              tolerance * std::max(1.0, std::abs(numeric)));
}

using ConvShape = std::tuple<int, int, int, int>;  // inC, outC, kernel, hw

class ConvSweep : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvSweep, DirectionalGradientMatches) {
  const auto [in_c, out_c, kernel, hw] = GetParam();
  util::Rng rng(11);
  Conv2d conv(in_c, out_c, kernel, rng);
  check_directional(conv, random_tensor({in_c, hw, hw}, 12));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvShape{1, 1, 1, 4}, ConvShape{1, 4, 3, 5},
                      ConvShape{3, 2, 3, 6}, ConvShape{8, 8, 1, 8},
                      ConvShape{4, 6, 3, 16}));

class LinearSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LinearSweep, DirectionalGradientMatches) {
  const auto [in_f, out_f] = GetParam();
  util::Rng rng(13);
  Linear lin(in_f, out_f, rng);
  check_directional(lin, random_tensor({in_f}, 14));
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearSweep,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(16, 4),
                                           std::make_pair(64, 256),
                                           std::make_pair(256, 1)));

class ResTowerSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResTowerSweep, StackedBlocksBackprop) {
  const int blocks = GetParam();
  util::Rng rng(15);
  Sequential tower;
  for (int b = 0; b < blocks; ++b) {
    tower.add(std::make_unique<ResBlock>(4, rng));
  }
  check_directional(tower, random_tensor({4, 6, 6}, 16), 8e-2);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResTowerSweep, ::testing::Values(1, 2, 4));

// Training dynamics: a small conv net can regress a fixed target map.
TEST(TrainingDynamics, ConvNetFitsFixedTarget) {
  util::Rng rng(17);
  Sequential net;
  net.add(std::make_unique<Conv2d>(1, 4, 3, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2d>(4, 1, 1, rng));
  std::vector<Parameter*> params;
  net.collect_parameters(params);
  Adam optimizer(params, 1e-2f);

  const Tensor input = random_tensor({1, 6, 6}, 18);
  const Tensor target = random_tensor({1, 6, 6}, 19);

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 150; ++step) {
    Tensor out = net.forward(input, true);
    Tensor grad = out;
    double loss = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const float diff = out[i] - target[i];
      loss += 0.5 * diff * diff;
      grad[i] = diff;
    }
    if (step == 0) first_loss = loss;
    last_loss = loss;
    net.backward(grad);
    optimizer.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.2)
      << "training should reduce the loss substantially";
}

// The policy-head path: masked softmax + policy gradient behave sanely when
// trained toward a target action.
TEST(TrainingDynamics, PolicyLearnsPreferredAction) {
  util::Rng rng(20);
  Linear head(8, 8, rng);
  std::vector<Parameter*> params;
  head.collect_parameters(params);
  Adam optimizer(params, 5e-2f);
  const Tensor input = random_tensor({8}, 21);
  const std::vector<double> mask(8, 1.0);
  const int preferred = 5;

  float before = 0.0f, after = 0.0f;
  for (int step = 0; step < 100; ++step) {
    const Tensor logits = head.forward(input, true);
    const Tensor probs = masked_softmax(logits, mask);
    if (step == 0) before = probs[preferred];
    after = probs[preferred];
    // Positive advantage on the preferred action.
    const Tensor grad = policy_gradient(probs, preferred, 1.0f);
    head.backward(grad);
    optimizer.step();
  }
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.9f);
}

}  // namespace
}  // namespace mp::nn
