// Parameterized clustering sweeps: invariants across grid resolutions and
// design shapes.

#include <gtest/gtest.h>

#include <set>

#include "benchgen/generator.hpp"
#include "cluster/clustering.hpp"
#include "cluster/coarse.hpp"
#include "gp/global_placer.hpp"

namespace mp::cluster {
namespace {

netlist::Design placed_bench(std::uint64_t seed, int macros, int cells,
                             bool hierarchy) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.preplaced_macros = hierarchy ? 2 : 0;
  spec.std_cells = cells;
  spec.nets = cells * 3 / 2;
  spec.hierarchy = hierarchy;
  spec.seed = seed;
  netlist::Design d = benchgen::generate(spec);
  gp::GlobalPlaceOptions options;
  options.move_macros = true;
  options.max_iterations = 4;
  gp::global_place(d, options);
  return d;
}

struct SweepCase {
  int grid_dim;
  int macros;
  int cells;
  bool hierarchy;
};

class ClusterSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ClusterSweep, InvariantsHold) {
  const SweepCase c = GetParam();
  netlist::Design d = placed_bench(
      1000 + static_cast<std::uint64_t>(c.grid_dim * 100 + c.macros),
      c.macros, c.cells, c.hierarchy);
  const grid::GridSpec spec(d.region(), c.grid_dim);
  const Clustering clustering = cluster_design(d, spec);

  // 1. Partition: every movable macro in exactly one group.
  std::set<netlist::NodeId> seen;
  for (const Group& g : clustering.macro_groups) {
    EXPECT_FALSE(g.members.empty());
    for (netlist::NodeId m : g.members) {
      EXPECT_TRUE(seen.insert(m).second);
    }
  }
  EXPECT_EQ(seen.size(), d.movable_macros().size());

  // 2. Shapes: every group rectangle fits its members and its area budget.
  for (const Group& g : clustering.macro_groups) {
    EXPECT_GE(g.width * g.height, g.area * 0.999);
    for (netlist::NodeId m : g.members) {
      EXPECT_LE(d.node(m).width, g.width + 1e-9);
      EXPECT_LE(d.node(m).height, g.height + 1e-9);
    }
  }

  // 3. Area ordering (placement priority, Sec. V).
  for (std::size_t i = 1; i < clustering.macro_groups.size(); ++i) {
    EXPECT_GE(clustering.macro_groups[i - 1].area,
              clustering.macro_groups[i].area);
  }

  // 4. Coarse design consistency.
  const CoarseDesign coarse = build_coarse_design(d, clustering);
  EXPECT_EQ(coarse.macro_group_nodes.size(), clustering.macro_groups.size());
  for (std::size_t g = 0; g < clustering.macro_groups.size(); ++g) {
    const netlist::Node& node = coarse.design.node(coarse.macro_group_nodes[g]);
    EXPECT_EQ(node.kind, netlist::NodeKind::kMacro);
    EXPECT_FALSE(node.fixed);
    EXPECT_NEAR(node.width, clustering.macro_groups[g].width, 1e-9);
  }
  // Coarse nets all reference live nodes and >= 2 distinct endpoints.
  for (const netlist::Net& net : coarse.design.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ClusterSweep,
    ::testing::Values(SweepCase{4, 8, 150, false},
                      SweepCase{8, 16, 250, false},
                      SweepCase{8, 16, 250, true},
                      SweepCase{16, 30, 400, true},
                      SweepCase{16, 30, 400, false},
                      SweepCase{2, 6, 100, false}));

}  // namespace
}  // namespace mp::cluster
