// Tests for the shared flow plumbing (place/flow): preprocessing context,
// finalize step, and cross-placer invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "benchgen/generator.hpp"
#include "dp/row_legalizer.hpp"
#include "place/flow.hpp"

namespace mp::place {
namespace {

netlist::Design bench(std::uint64_t seed, int macros = 10, bool hier = false,
                      int preplaced = 0) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.preplaced_macros = preplaced;
  spec.std_cells = 200;
  spec.nets = 300;
  spec.hierarchy = hier;
  spec.seed = seed;
  return benchgen::generate(spec);
}

TEST(Flow, PrepareBuildsConsistentContext) {
  netlist::Design d = bench(120);
  FlowOptions options;
  options.grid_dim = 8;
  options.initial_gp.max_iterations = 3;
  const FlowContext context = prepare_flow(d, options);

  EXPECT_EQ(context.spec.dim(), 8);
  EXPECT_EQ(context.spec.region().w, d.region().w);
  EXPECT_GT(context.clustering.macro_groups.size(), 0u);
  EXPECT_EQ(context.coarse.macro_group_nodes.size(),
            context.clustering.macro_groups.size());
  // Coarse design nets reference valid nodes only.
  for (const netlist::Net& net : context.coarse.design.nets()) {
    for (const netlist::PinRef& pin : net.pins) {
      EXPECT_GE(pin.node, 0);
      EXPECT_LT(static_cast<std::size_t>(pin.node),
                context.coarse.design.num_nodes());
    }
  }
}

TEST(Flow, PrepareRunsInitialPlacement) {
  netlist::Design d = bench(121);
  // Scramble cells into a corner; prepare_flow must spread them.
  for (netlist::NodeId id : d.std_cells()) d.node(id).position = {0.0, 0.0};
  FlowOptions options;
  options.grid_dim = 8;
  options.initial_gp.max_iterations = 4;
  prepare_flow(d, options);
  geometry::BoundingBox box;
  for (netlist::NodeId id : d.std_cells()) box.add(d.node(id).center());
  EXPECT_GT(box.width(), d.region().w * 0.1);
  EXPECT_GT(box.height(), d.region().h * 0.1);
}

TEST(Flow, FinalizeProducesLegalMeasurablePlacement) {
  netlist::Design d = bench(122);
  FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  FlowContext context = prepare_flow(d, options);
  std::vector<grid::CellCoord> anchors;
  for (std::size_t g = 0; g < context.clustering.macro_groups.size(); ++g) {
    anchors.push_back({static_cast<int>(g) % 4, static_cast<int>(g / 4) % 4});
  }
  const double hpwl = finalize_placement(d, context, anchors, options);
  EXPECT_TRUE(std::isfinite(hpwl));
  EXPECT_GT(hpwl, 0.0);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, d.region().area() * 1e-9);
  EXPECT_DOUBLE_EQ(hpwl, d.total_hpwl());
}

TEST(Flow, DifferentAnchorsChangeFinalHpwl) {
  netlist::Design d1 = bench(123);
  netlist::Design d2 = bench(123);
  FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  FlowContext c1 = prepare_flow(d1, options);
  FlowContext c2 = prepare_flow(d2, options);
  const std::size_t n = c1.clustering.macro_groups.size();
  std::vector<grid::CellCoord> diagonal, stacked(n, {0, 0});
  for (std::size_t g = 0; g < n; ++g) {
    diagonal.push_back({static_cast<int>(g) % 4, static_cast<int>(g) % 4});
  }
  const double h1 = finalize_placement(d1, c1, diagonal, options);
  const double h2 = finalize_placement(d2, c2, stacked, options);
  EXPECT_NE(h1, h2);
}

TEST(Flow, PlaceCellsKeepsMacrosFixed) {
  netlist::Design d = bench(124, 6);
  std::vector<geometry::Point> before;
  for (netlist::NodeId id : d.movable_macros()) before.push_back(d.node(id).position);
  gp::GlobalPlaceOptions final_gp;
  final_gp.max_iterations = 3;
  const double hpwl = place_cells_and_measure(d, final_gp);
  EXPECT_TRUE(std::isfinite(hpwl));
  std::size_t k = 0;
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_EQ(d.node(id).position, before[k]);
    ++k;
  }
}

TEST(Flow, HierarchyDesignsProduceHierarchyAwareGroups) {
  netlist::Design d = bench(125, 12, /*hier=*/true, /*preplaced=*/2);
  FlowOptions options;
  options.grid_dim = 8;
  options.initial_gp.max_iterations = 3;
  const FlowContext context = prepare_flow(d, options);
  // Groups inherit hierarchy prefixes from their members (possibly empty for
  // mixed-module groups, but at least one group should carry a prefix when
  // clustering actually merged same-module macros).
  bool merged_any = false;
  for (const auto& g : context.clustering.macro_groups) {
    if (g.members.size() > 1) merged_any = true;
  }
  // Merging is expected at this density; hierarchy strings must be valid
  // prefixes of their members' paths.
  EXPECT_TRUE(merged_any);
  for (const auto& g : context.clustering.macro_groups) {
    if (g.hierarchy.empty()) continue;
    for (netlist::NodeId m : g.members) {
      EXPECT_EQ(d.node(m).hierarchy.rfind(g.hierarchy, 0), 0u)
          << "group hierarchy is not a prefix of member path";
    }
  }
}


TEST(Flow, RowLegalCellsOptionProducesLegalCells) {
  netlist::Design d = bench(126);
  FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  options.row_legal_cells = true;
  FlowContext context = prepare_flow(d, options);
  std::vector<grid::CellCoord> anchors;
  for (std::size_t g = 0; g < context.clustering.macro_groups.size(); ++g) {
    anchors.push_back({static_cast<int>(g) % 4, static_cast<int>(g / 4) % 4});
  }
  const double hpwl = finalize_placement(d, context, anchors, options);
  EXPECT_TRUE(std::isfinite(hpwl));
  EXPECT_TRUE(dp::cells_are_legal(d));
  EXPECT_DOUBLE_EQ(hpwl, d.total_hpwl());
}

}  // namespace
}  // namespace mp::place
