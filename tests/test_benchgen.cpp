// Tests for the synthetic benchmark generator and the published presets.

#include <gtest/gtest.h>

#include "benchgen/presets.hpp"

namespace mp::benchgen {
namespace {

TEST(Generator, CountsMatchSpec) {
  BenchSpec spec;
  spec.movable_macros = 7;
  spec.preplaced_macros = 3;
  spec.io_pads = 16;
  spec.std_cells = 120;
  spec.nets = 200;
  spec.hierarchy = true;
  spec.seed = 1;
  const netlist::Design d = generate(spec);
  const netlist::DesignStats s = d.stats();
  EXPECT_EQ(s.movable_macros, 7);
  EXPECT_EQ(s.preplaced_macros, 3);
  EXPECT_EQ(s.io_pads, 16);
  EXPECT_EQ(s.standard_cells, 120);
  EXPECT_EQ(s.nets, 200);
}

TEST(Generator, DeterministicForSameSeed) {
  BenchSpec spec;
  spec.movable_macros = 5;
  spec.std_cells = 80;
  spec.nets = 120;
  spec.seed = 9;
  const netlist::Design a = generate(spec);
  const netlist::Design b = generate(spec);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.node(static_cast<int>(i)).position,
              b.node(static_cast<int>(i)).position);
    EXPECT_EQ(a.node(static_cast<int>(i)).width,
              b.node(static_cast<int>(i)).width);
  }
  EXPECT_DOUBLE_EQ(a.total_hpwl(), b.total_hpwl());
}

TEST(Generator, DifferentSeedsDiffer) {
  BenchSpec spec;
  spec.movable_macros = 5;
  spec.std_cells = 80;
  spec.nets = 120;
  spec.seed = 10;
  const netlist::Design a = generate(spec);
  spec.seed = 11;
  const netlist::Design b = generate(spec);
  EXPECT_NE(a.total_hpwl(), b.total_hpwl());
}

TEST(Generator, ScaleShrinksCellsNotMacros) {
  BenchSpec spec;
  spec.movable_macros = 6;
  spec.std_cells = 1000;
  spec.nets = 1500;
  spec.seed = 12;
  spec.scale = 0.1;
  const netlist::Design d = generate(spec);
  const netlist::DesignStats s = d.stats();
  EXPECT_EQ(s.movable_macros, 6);
  EXPECT_EQ(s.standard_cells, 100);
  EXPECT_EQ(s.nets, 150);
}

TEST(Generator, NodesInsideRegion) {
  BenchSpec spec;
  spec.movable_macros = 10;
  spec.preplaced_macros = 4;
  spec.std_cells = 200;
  spec.nets = 300;
  spec.hierarchy = true;
  spec.seed = 13;
  const netlist::Design d = generate(spec);
  for (const netlist::Node& n : d.nodes()) {
    if (n.kind == netlist::NodeKind::kPad) continue;
    EXPECT_TRUE(d.region().contains(n.rect())) << n.name;
  }
}

TEST(Generator, PreplacedMacrosDoNotOverlapEachOther) {
  BenchSpec spec;
  spec.movable_macros = 0;
  spec.preplaced_macros = 8;
  spec.std_cells = 100;
  spec.nets = 150;
  spec.hierarchy = true;
  spec.seed = 14;
  const netlist::Design d = generate(spec);
  EXPECT_NEAR(d.macro_overlap_area(), 0.0, 1e-9);
}

TEST(Generator, HierarchyNamesPresentWhenRequested) {
  BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 50;
  spec.nets = 80;
  spec.hierarchy = true;
  spec.seed = 15;
  const netlist::Design d = generate(spec);
  int with_hierarchy = 0;
  for (const netlist::Node& n : d.nodes()) {
    if (!n.hierarchy.empty()) ++with_hierarchy;
  }
  EXPECT_GT(with_hierarchy, 0);
  spec.hierarchy = false;
  const netlist::Design flat = generate(spec);
  for (const netlist::Node& n : flat.nodes()) {
    EXPECT_TRUE(n.hierarchy.empty());
  }
}

TEST(Generator, EveryMacroIsConnected) {
  BenchSpec spec;
  spec.movable_macros = 8;
  spec.std_cells = 100;
  spec.nets = 200;
  spec.seed = 16;
  const netlist::Design d = generate(spec);
  const auto& adjacency = d.node_nets();
  for (netlist::NodeId id : d.movable_macros()) {
    EXPECT_FALSE(adjacency[static_cast<std::size_t>(id)].empty())
        << "macro " << id << " has no nets";
  }
}

TEST(Generator, NetsHaveAtLeastTwoPins) {
  BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 60;
  spec.nets = 100;
  spec.seed = 17;
  const netlist::Design d = generate(spec);
  for (const netlist::Net& net : d.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
  }
}

TEST(Presets, Iccad04TableRows) {
  ASSERT_EQ(iccad04_names().size(), 17u);
  EXPECT_EQ(iccad04_names().front(), "ibm01");
  EXPECT_EQ(iccad04_names().back(), "ibm18");
  const BenchSpec ibm01 = iccad04_spec(0);
  EXPECT_EQ(ibm01.movable_macros, 246);
  EXPECT_EQ(ibm01.std_cells, 12000);
  EXPECT_FALSE(ibm01.hierarchy);
  const BenchSpec ibm10 = iccad04_spec(8);
  EXPECT_EQ(ibm10.name, "ibm10");
  EXPECT_EQ(ibm10.movable_macros, 786);  // largest macro count in Table III
  EXPECT_THROW(iccad04_spec(17), std::out_of_range);
}

TEST(Presets, IndustrialTableRows) {
  ASSERT_EQ(industrial_names().size(), 6u);
  const BenchSpec cir2 = industrial_spec(1);
  EXPECT_EQ(cir2.movable_macros, 71);
  EXPECT_EQ(cir2.preplaced_macros, 47);
  EXPECT_EQ(cir2.io_pads, 365);
  EXPECT_TRUE(cir2.hierarchy);
  EXPECT_THROW(industrial_spec(6), std::out_of_range);
}

TEST(Presets, ScaledPresetGenerates) {
  const BenchSpec spec = iccad04_spec(0, /*scale=*/0.02);
  const netlist::Design d = generate(spec);
  EXPECT_EQ(d.stats().movable_macros, 246);
  EXPECT_EQ(d.stats().standard_cells, 240);
}

}  // namespace
}  // namespace mp::benchgen
