// Tests for clustering (Eqs. 1-2) and coarse-netlist construction.

#include <gtest/gtest.h>

#include <set>

#include "benchgen/generator.hpp"
#include "cluster/clustering.hpp"
#include "cluster/coarse.hpp"
#include "gp/global_placer.hpp"

namespace mp::cluster {
namespace {

netlist::Design clustered_bench(std::uint64_t seed, int macros = 24,
                                int cells = 400, bool hierarchy = true) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.preplaced_macros = hierarchy ? 3 : 0;
  spec.std_cells = cells;
  spec.nets = cells * 3 / 2;
  spec.hierarchy = hierarchy;
  spec.seed = seed;
  return benchgen::generate(spec);
}

TEST(GroupShape, FitsLargestMember) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  netlist::Node m;
  m.name = "m1";
  m.kind = netlist::NodeKind::kMacro;
  m.width = 20.0;
  m.height = 2.0;
  d.add_node(m);
  m.name = "m2";
  m.width = 3.0;
  m.height = 8.0;
  d.add_node(m);
  Group g;
  g.members = {0, 1};
  g.area = 20.0 * 2.0 + 3.0 * 8.0;
  assign_group_shape(g, d);
  EXPECT_GE(g.width, 20.0);
  EXPECT_GE(g.height, 8.0);
  EXPECT_GE(g.width * g.height, g.area);
}

TEST(Clustering, EveryMovableMacroAssignedToExactlyOneGroup) {
  netlist::Design d = clustered_bench(31);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);

  std::set<netlist::NodeId> seen;
  for (const Group& g : c.macro_groups) {
    for (netlist::NodeId m : g.members) {
      EXPECT_TRUE(seen.insert(m).second) << "macro in two groups";
      EXPECT_EQ(d.node(m).kind, netlist::NodeKind::kMacro);
      EXPECT_FALSE(d.node(m).fixed);
    }
  }
  EXPECT_EQ(seen.size(), d.movable_macros().size());
}

TEST(Clustering, GroupOfMapsAreConsistent) {
  netlist::Design d = clustered_bench(32);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  for (std::size_t g = 0; g < c.macro_groups.size(); ++g) {
    for (netlist::NodeId m : c.macro_groups[g].members) {
      EXPECT_EQ(c.macro_group_of[static_cast<std::size_t>(m)],
                static_cast<int>(g));
    }
  }
  for (std::size_t g = 0; g < c.cell_groups.size(); ++g) {
    for (netlist::NodeId m : c.cell_groups[g].members) {
      EXPECT_EQ(c.cell_group_of[static_cast<std::size_t>(m)],
                static_cast<int>(g));
    }
  }
}

TEST(Clustering, GroupsSortedByNonIncreasingArea) {
  netlist::Design d = clustered_bench(33);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  for (std::size_t g = 1; g < c.macro_groups.size(); ++g) {
    EXPECT_GE(c.macro_groups[g - 1].area, c.macro_groups[g].area);
  }
}

TEST(Clustering, MergingReducesGroupCount) {
  netlist::Design d = clustered_bench(34);
  const grid::GridSpec spec(d.region(), 4);  // big cells: lots of merging room
  const Clustering c = cluster_design(d, spec);
  EXPECT_LT(c.macro_groups.size(), d.movable_macros().size());
  EXPECT_LT(c.cell_groups.size(), d.std_cells().size());
  EXPECT_GE(c.macro_groups.size(), 1u);
}

TEST(Clustering, GroupAreaEqualsSumOfMembers) {
  netlist::Design d = clustered_bench(35);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  for (const Group& g : c.macro_groups) {
    double sum = 0.0;
    for (netlist::NodeId m : g.members) sum += d.node(m).area();
    EXPECT_NEAR(g.area, sum, 1e-6);
  }
}

TEST(Clustering, MergedAreaRespectsCap) {
  netlist::Design d = clustered_bench(36);
  const grid::GridSpec spec(d.region(), 8);
  ClusterParams params;
  params.max_merged_cells = 2.0;
  const Clustering c = cluster_design(d, spec, params);
  for (const Group& g : c.macro_groups) {
    if (g.members.size() > 1) {
      EXPECT_LE(g.area, params.max_merged_cells * spec.cell_area() + 1e-6);
    }
  }
}

TEST(Clustering, HierarchyBiasGroupsSameModule) {
  // Two spatial clusters of macros; hierarchy names cross-cut the spatial
  // arrangement with a large delta so hierarchy should win ties.
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  const char* mods[2] = {"top/a", "top/b"};
  for (int i = 0; i < 4; ++i) {
    netlist::Node m;
    m.name = "m" + std::to_string(i);
    m.kind = netlist::NodeKind::kMacro;
    m.width = 5.0;
    m.height = 5.0;
    m.hierarchy = mods[i % 2];
    // All at similar distance from each other.
    m.position = {20.0 + 25.0 * (i % 2), 20.0 + 25.0 * (i / 2)};
    d.add_node(m);
  }
  const grid::GridSpec spec(d.region(), 10);  // 10×10 cells (area 100)
  ClusterParams params;
  params.delta = 10.0;  // hierarchy dominates
  params.nu = 0.0001;
  // Each macro is 25 area; cap merged groups at 50 so only pairs can form.
  params.max_merged_cells = 0.5;
  const Clustering c = cluster_design(d, spec, params);
  // Expect the two groups to follow the hierarchy split {0,2} / {1,3}.
  ASSERT_EQ(c.macro_groups.size(), 2u);
  for (const Group& g : c.macro_groups) {
    ASSERT_EQ(g.members.size(), 2u);
    EXPECT_EQ(d.node(g.members[0]).hierarchy, d.node(g.members[1]).hierarchy);
  }
}

TEST(Clustering, HighNuDisablesMerging) {
  netlist::Design d = clustered_bench(37);
  const grid::GridSpec spec(d.region(), 8);
  ClusterParams params;
  params.nu = 1e12;  // nothing scores this high
  const Clustering c = cluster_design(d, spec, params);
  EXPECT_EQ(c.macro_groups.size(), d.movable_macros().size());
}

TEST(Coarse, NodeCountsAndKinds) {
  netlist::Design d = clustered_bench(38);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  const CoarseDesign coarse = build_coarse_design(d, c);

  EXPECT_EQ(coarse.macro_group_nodes.size(), c.macro_groups.size());
  EXPECT_EQ(coarse.cell_group_nodes.size(), c.cell_groups.size());
  // Pads and preplaced macros are copied as fixed.
  const auto stats = coarse.design.stats();
  EXPECT_EQ(stats.preplaced_macros, d.stats().preplaced_macros);
  EXPECT_EQ(stats.io_pads, d.stats().io_pads);
  EXPECT_EQ(stats.movable_macros, static_cast<int>(c.macro_groups.size()));
}

TEST(Coarse, NetsConnectAtLeastTwoDistinctGroups) {
  netlist::Design d = clustered_bench(39);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  const CoarseDesign coarse = build_coarse_design(d, c);
  EXPECT_GT(coarse.design.num_nets(), 0u);
  for (const netlist::Net& net : coarse.design.nets()) {
    EXPECT_GE(net.pins.size(), 2u);
    std::set<netlist::NodeId> distinct;
    for (const netlist::PinRef& pin : net.pins) distinct.insert(pin.node);
    EXPECT_EQ(distinct.size(), net.pins.size()) << "duplicate pins in a net";
  }
}

TEST(Coarse, ParallelNetsMergedWithWeight) {
  // Two original nets between the same two macros must merge into one coarse
  // net of weight 2.
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  for (int i = 0; i < 2; ++i) {
    netlist::Node m;
    m.name = "m" + std::to_string(i);
    m.kind = netlist::NodeKind::kMacro;
    m.width = 60.0;  // too big to merge into one group on a 2x2 grid
    m.height = 60.0;
    m.position = {0.0 + 40.0 * i, 0.0};
    d.add_node(m);
  }
  for (int k = 0; k < 2; ++k) {
    netlist::Net n;
    n.name = "n" + std::to_string(k);
    n.pins = {{0, 1, 1}, {1, 1, 1}};
    d.add_net(n);
  }
  const grid::GridSpec spec(d.region(), 2);
  const Clustering c = cluster_design(d, spec);
  ASSERT_EQ(c.macro_groups.size(), 2u);
  const CoarseDesign coarse = build_coarse_design(d, c);
  ASSERT_EQ(coarse.design.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(coarse.design.net(0).weight, 2.0);
}

TEST(Coarse, ApplyGroupPositionsTranslatesMembers) {
  netlist::Design d = clustered_bench(40);
  const grid::GridSpec spec(d.region(), 8);
  const Clustering c = cluster_design(d, spec);
  CoarseDesign coarse = build_coarse_design(d, c);

  // Move group 0 by a known shift.
  const geometry::Point delta{7.0, -3.0};
  netlist::Node& gnode = coarse.design.node(coarse.macro_group_nodes[0]);
  gnode.position = gnode.position + delta;

  std::vector<geometry::Point> before;
  for (netlist::NodeId m : c.macro_groups[0].members) {
    before.push_back(d.node(m).position);
  }
  apply_group_positions(coarse, c, d);
  for (std::size_t i = 0; i < c.macro_groups[0].members.size(); ++i) {
    const geometry::Point now =
        d.node(c.macro_groups[0].members[i]).position;
    EXPECT_NEAR(now.x - before[i].x, delta.x, 1e-9);
    EXPECT_NEAR(now.y - before[i].y, delta.y, 1e-9);
  }
}

}  // namespace
}  // namespace mp::cluster
