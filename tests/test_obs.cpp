// Tests for the telemetry subsystem (obs): counter/gauge/histogram math,
// span nesting and self-time accounting, JSONL report round-trips through a
// tiny JSON parser, disabled-mode inertness, and the guarantee that flow
// instrumentation never changes placement results.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/generator.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/flow.hpp"
#include "util/timer.hpp"

namespace mp::obs {
namespace {

// ---------------------------------------------------------------------------
// Tiny JSON parser — just enough to round-trip the report writer's output.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const Json null_json;
    return it != object.end() ? it->second : null_json;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage after JSON value";
    return v;
  }

  bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() { skip_ws(); return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool consume(char c) {
    if (peek() != c) { ok_ = false; return false; }
    ++pos_;
    return true;
  }

  bool consume_word(const char* w) {
    skip_ws();
    for (const char* p = w; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) { ok_ = false; return false; }
    }
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': { Json v; v.type = Json::Type::kString; v.string = string(); return v; }
      case 't': { Json v; v.type = Json::Type::kBool; v.boolean = true; consume_word("true"); return v; }
      case 'f': { Json v; v.type = Json::Type::kBool; v.boolean = false; consume_word("false"); return v; }
      case 'n': { consume_word("null"); return Json{}; }
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    consume('{');
    if (peek() == '}') { consume('}'); return v; }
    while (ok_) {
      const std::string key = string();
      consume(':');
      v.object.emplace(key, value());
      if (peek() == ',') { consume(','); continue; }
      consume('}');
      break;
    }
    return v;
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    consume('[');
    if (peek() == ']') { consume(']'); return v; }
    while (ok_) {
      v.array.push_back(value());
      if (peek() == ',') { consume(','); continue; }
      consume(']');
      break;
    }
    return v;
  }

  std::string string() {
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': pos_ += 4; out += '?'; break;  // enough for round-trip tests
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (pos_ < text_.size()) ++pos_;  // closing quote
    else ok_ = false;
    return out;
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    Json v;
    if (pos_ == start) { ok_ = false; return v; }
    v.type = Json::Type::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return lines;
  std::string line;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (!line.empty()) lines.push_back(line);
  std::fclose(f);
  return lines;
}

// Busy-waits so span totals are measured by the same wall clock Timer uses.
void spin_for(double seconds) {
  util::Timer t;
  while (t.seconds() < seconds) {}
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_values();
  }
  void TearDown() override {
    set_enabled(true);
    reset_values();
  }
};

// ---------------------------------------------------------------------------
// Counters / gauges

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter& c = Registry::global().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name returns the same entry.
  EXPECT_EQ(&Registry::global().counter("test.counter"), &c);
  reset_values();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, GaugeKeepsLastValue) {
  Gauge& g = Registry::global().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.75);
  EXPECT_DOUBLE_EQ(g.value(), -2.75);
}

TEST_F(ObsTest, MacrosRecordIntoGlobalRegistry) {
  MP_OBS_COUNT("test.macro_counter", 3);
  MP_OBS_COUNT("test.macro_counter", 4);
  MP_OBS_GAUGE("test.macro_gauge", 9.0);
  MP_OBS_HIST("test.macro_hist", 2.0);
  EXPECT_EQ(Registry::global().counter("test.macro_counter").value(), 7);
  EXPECT_DOUBLE_EQ(Registry::global().gauge("test.macro_gauge").value(), 9.0);
  EXPECT_EQ(Registry::global().histogram("test.macro_hist").count(), 1);
}

TEST_F(ObsTest, ContextsIsolateMetricsPerJob) {
  // Two concurrent "jobs" record the same metric names inside their own
  // contexts: each lands in its own registry (tagged with the job id), the
  // global registry sees nothing, and the binding restores on scope exit.
  EXPECT_EQ(current_context_tag(), "");
  Context job_a("job-a");
  Context job_b("job-b");
  std::thread tb([&] {
    ScopedContext scoped(&job_b);
    MP_OBS_COUNT("test.ctx_counter", 5);
    Span span("ctx.phase");
  });
  {
    ScopedContext scoped(&job_a);
    EXPECT_EQ(current_context_tag(), "job-a");
    EXPECT_EQ(&current_registry(), &job_a.registry());
    MP_OBS_COUNT("test.ctx_counter", 2);
    MP_OBS_COUNT("test.ctx_counter", 1);
    Span span("ctx.phase");
  }
  tb.join();
  EXPECT_EQ(current_context_tag(), "");
  EXPECT_EQ(&current_registry(), &Registry::global());
  EXPECT_EQ(job_a.registry().counter("test.ctx_counter").value(), 3);
  EXPECT_EQ(job_b.registry().counter("test.ctx_counter").value(), 5);
  EXPECT_EQ(Registry::global().counter("test.ctx_counter").value(), 0);
}

TEST_F(ObsTest, ContextPropagatesToParPoolWorkers) {
  // par:: carries the obs context into pool workers, so a job's fan-out
  // records into the job's registry, not the global one.
  Context job("job-par");
  {
    ScopedContext scoped(&job);
    par::ThreadPool pool(3);
    par::ScopedPool scoped_pool(&pool);
    std::atomic<long long> ticks{0};
    par::parallel_for(0, 64, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        MP_OBS_COUNT("test.ctx_par_counter", 1);
        ticks.fetch_add(1);
      }
    });
    EXPECT_EQ(ticks.load(), 64);
  }
  EXPECT_EQ(job.registry().counter("test.ctx_par_counter").value(), 64);
  EXPECT_EQ(Registry::global().counter("test.ctx_par_counter").value(), 0);
}

// ---------------------------------------------------------------------------
// Histogram math

TEST_F(ObsTest, HistogramExactStatistics) {
  Histogram h;
  for (double v : {4.0, 1.0, 16.0, 0.25}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.sum, 21.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 16.0);
  EXPECT_DOUBLE_EQ(s.mean(), 21.25 / 4.0);
}

TEST_F(ObsTest, HistogramQuantilesOnUniformDistribution) {
  // 1..1000 once each: true p50 = 500, p90 = 900.  Log-scale bins bound the
  // relative error by the bin width, 2^(1/4) - 1 ~ 19%; allow 25% headroom.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 * 0.25);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 900.0 * 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST_F(ObsTest, HistogramQuantileEdgeCases) {
  // Empty histogram: every quantile is 0 (matching the min/max convention).
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  // One sample: all mass in one bin, clamped to [min, max] -> exact.
  Histogram one;
  one.record(3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 3.5);
}

TEST_F(ObsTest, HistogramQuantilePinsExactBinBoundaries) {
  // Two well-separated spikes: ranks at or below the first spike's mass must
  // resolve to the first spike's bin, ranks above to the second's.  The
  // spike values are bin representatives, so interpolation stays inside a
  // single bin and the estimate lands within one bin width of the spike.
  const double lo = Histogram::bin_value(Histogram::kZeroBin);        // ~1
  const double hi = Histogram::bin_value(Histogram::kZeroBin + 40);   // ~2^10
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(lo);
  for (int i = 0; i < 10; ++i) h.record(hi);
  const double bin_width = std::exp2(1.0 / Histogram::kSubBins) - 1.0;
  EXPECT_NEAR(h.quantile(0.5), lo, lo * bin_width);
  EXPECT_NEAR(h.quantile(0.9), lo, lo * bin_width);
  EXPECT_NEAR(h.quantile(0.95), hi, hi * bin_width);
  EXPECT_NEAR(h.quantile(0.99), hi, hi * bin_width);
}

TEST_F(ObsTest, HistogramQuantileInterpolationErrorBound) {
  // The documented guarantee: relative error below one bin width,
  // 2^(1/kSubBins) - 1.  Check it against exact quantiles of a log-uniform
  // sample where every bin boundary is crossed many times.
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp2(static_cast<double>(i % 1000) / 100.0);  // [1, 2^10)
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const double bound = std::exp2(1.0 / Histogram::kSubBins) - 1.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values.size()));
    const double exact = values[std::min(rank, values.size() - 1)];
    const double estimate = h.quantile(q);
    EXPECT_LE(std::abs(estimate - exact) / exact, bound)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST_F(ObsTest, HistogramSnapshotIsConsistentUnderConcurrentRecords) {
  // Writers hammer record(1.0) while a reader snapshots.  Every sample is
  // 1.0, so any snapshot flagged consistent must have sum == count exactly;
  // a torn read (count incremented, sum not yet) would break that equality.
  // Under sustained overlap the retry loop is allowed to give up — but then
  // the snapshot must be FLAGGED inconsistent, never silently torn.
  constexpr int kWriters = 3;
  constexpr long long kPerWriter = 40000;
  Histogram h;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (long long i = 0; i < kPerWriter; ++i) h.record(1.0);
    });
  }
  while (h.count() < kWriters * kPerWriter) {
    const HistogramSnapshot s = h.snapshot();
    if (s.consistent && s.count > 0) {
      EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(s.count));
      EXPECT_DOUBLE_EQ(s.min, 1.0);
      EXPECT_DOUBLE_EQ(s.max, 1.0);
      long long binned = s.underflow;
      for (long long b : s.bins) binned += b;
      EXPECT_EQ(binned, s.count);
    }
  }
  for (std::thread& t : writers) t.join();
  // Quiescent now: the snapshot must come back consistent and complete.
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.consistent);
  EXPECT_EQ(s.count, kWriters * kPerWriter);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(s.count));
}

TEST_F(ObsTest, HistogramQuantileOfConstantIsExact) {
  // All mass in one bin; clamping to [min, max] makes the estimate exact.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
}

TEST_F(ObsTest, HistogramNonPositiveSamplesGoToUnderflow) {
  Histogram h;
  h.record(-5.0);
  h.record(0.0);
  h.record(1.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.underflow, 2);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  // Rank 1.5 of 3 falls inside the underflow mass -> reports min.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), -5.0);
}

TEST_F(ObsTest, HistogramIgnoresNonFiniteAndResets) {
  Histogram h;
  h.record(std::nan(""));
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0);
  h.record(2.0);
  EXPECT_EQ(h.count(), 1);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(ObsTest, HistogramBinValueIsGeometricMidpoint) {
  // kZeroBin covers [1, 2^(1/4)); its representative lies inside.
  const double v = Histogram::bin_value(Histogram::kZeroBin);
  EXPECT_GT(v, 1.0);
  EXPECT_LT(v, std::exp2(1.0 / Histogram::kSubBins));
  // Midpoints are strictly increasing across bins.
  EXPECT_LT(Histogram::bin_value(10), Histogram::bin_value(11));
}

// ---------------------------------------------------------------------------
// Spans

TEST_F(ObsTest, SpanNestingAndSelfTime) {
  {
    Span outer("outer");
    spin_for(0.004);
    {
      Span inner("inner");
      spin_for(0.008);
    }
    spin_for(0.004);
  }
  const RegistrySnapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const SpanSnapshot& outer = snap.spans[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 1);
  ASSERT_EQ(outer.children.size(), 1u);
  const SpanSnapshot& inner = outer.children[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 1);
  EXPECT_GE(inner.total_seconds, 0.008);
  EXPECT_GE(outer.total_seconds, inner.total_seconds + 0.008);
  // Self time is wall time minus the children's wall time.
  EXPECT_NEAR(outer.self_seconds, outer.total_seconds - inner.total_seconds, 1e-12);
  EXPECT_GE(outer.self_seconds, 0.008);
  // Leaves own all of their time.
  EXPECT_DOUBLE_EQ(inner.self_seconds, inner.total_seconds);
}

TEST_F(ObsTest, RepeatedSpansAggregateByPath) {
  for (int i = 0; i < 3; ++i) {
    MP_OBS_SPAN("loop");
    spin_for(0.001);
  }
  const RegistrySnapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "loop");
  EXPECT_EQ(snap.spans[0].count, 3);
  EXPECT_GE(snap.spans[0].total_seconds, 0.003);
}

TEST_F(ObsTest, SameNameUnderDifferentParentsIsDistinct) {
  {
    Span a("parent_a");
    Span s("shared");
  }
  {
    Span b("parent_b");
    Span s("shared");
  }
  const RegistrySnapshot snap = Registry::global().snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  for (const SpanSnapshot& top : snap.spans) {
    ASSERT_EQ(top.children.size(), 1u);
    EXPECT_EQ(top.children[0].name, "shared");
    EXPECT_EQ(top.children[0].count, 1);
  }
}

// ---------------------------------------------------------------------------
// Disabled mode

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  MP_OBS_COUNT("test.never_created", 1);
  MP_OBS_GAUGE("test.never_created_gauge", 1.0);
  MP_OBS_HIST("test.never_created_hist", 1.0);
  {
    Span s("never_recorded");
    spin_for(0.001);
  }
  set_enabled(true);
  const RegistrySnapshot snap = Registry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "test.never_created");
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(name, "test.never_created_gauge");
  }
  for (const auto& [name, h] : snap.histograms) {
    EXPECT_NE(name, "test.never_created_hist");
  }
  EXPECT_TRUE(snap.spans.empty());
}

TEST_F(ObsTest, DisabledMacrosDoNotEvaluateArguments) {
  set_enabled(false);
  int evaluations = 0;
  const auto side_effect = [&]() { ++evaluations; return 1.0; };
  MP_OBS_HIST("test.lazy", side_effect());
  MP_OBS_GAUGE("test.lazy_gauge", side_effect());
  EXPECT_EQ(evaluations, 0);
  set_enabled(true);
  MP_OBS_HIST("test.lazy", side_effect());
  EXPECT_EQ(evaluations, 1);
}

// ---------------------------------------------------------------------------
// JSONL reports

TEST_F(ObsTest, RunReportRoundTripsThroughJsonParser) {
  Registry::global().counter("rt.counter").add(42);
  Registry::global().gauge("rt.gauge").set(2.5);
  Histogram& h = Registry::global().histogram("rt.hist");
  for (int i = 0; i < 10; ++i) h.record(3.0);
  {
    Span outer("rt.outer");
    Span inner("rt.inner");
    spin_for(0.001);
  }

  const std::string path = ::testing::TempDir() + "obs_roundtrip.jsonl";
  std::remove(path.c_str());
  ReportWriter writer(path);
  ASSERT_TRUE(writer.valid());
  writer.write_run("unit_test", Registry::global().snapshot());

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  JsonParser parser(lines[0]);
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  ASSERT_EQ(doc.type, Json::Type::kObject);

  EXPECT_EQ(doc.at("kind").string, "run");
  EXPECT_EQ(doc.at("label").string, "unit_test");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("rt.counter").number, 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.gauge").number, 2.5);

  const Json& hist = doc.at("histograms").at("rt.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 10.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 30.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").number, 3.0);
  // Constant samples: every reported quantile is exact.
  EXPECT_DOUBLE_EQ(hist.at("p50").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("p90").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("p95").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").number, 3.0);

  const Json& spans = doc.at("spans");
  ASSERT_EQ(spans.type, Json::Type::kArray);
  ASSERT_EQ(spans.array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("name").string, "rt.outer");
  EXPECT_GT(spans.array[0].at("wall_s").number, 0.0);
  ASSERT_EQ(spans.array[0].at("children").array.size(), 1u);
  EXPECT_EQ(spans.array[0].at("children").array[0].at("name").string, "rt.inner");
  std::remove(path.c_str());
}

TEST_F(ObsTest, RunReportAppendsOneLinePerRun) {
  const std::string path = ::testing::TempDir() + "obs_append.jsonl";
  std::remove(path.c_str());
  ReportWriter writer(path);
  writer.write_run("first", Registry::global().snapshot());
  writer.write_run("second", Registry::global().snapshot());
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  JsonParser p0(lines[0]), p1(lines[1]);
  EXPECT_EQ(p0.parse().at("label").string, "first");
  EXPECT_EQ(p1.parse().at("label").string, "second");
  std::remove(path.c_str());
}

TEST_F(ObsTest, NonFiniteValuesSerializeAsNull) {
  Registry::global().gauge("rt.nan_gauge").set(std::nan(""));
  const std::string path = ::testing::TempDir() + "obs_nan.jsonl";
  std::remove(path.c_str());
  ReportWriter(path).write_run("nan", Registry::global().snapshot());
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  JsonParser parser(lines[0]);
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("gauges").at("rt.nan_gauge").type, Json::Type::kNull);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TableReportRoundTrips) {
  const std::string path = ::testing::TempDir() + "obs_table.jsonl";
  std::remove(path.c_str());
  ReportWriter writer(path);
  writer.write_table("bench_x", {"hpwl", "seconds"},
                     {{"ibm01", {12.5, 0.25}}, {"ibm02", {99.0, 1.0}}});
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  JsonParser parser(lines[0]);
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("kind").string, "table");
  EXPECT_EQ(doc.at("bench").string, "bench_x");
  ASSERT_EQ(doc.at("columns").array.size(), 2u);
  EXPECT_EQ(doc.at("columns").array[0].string, "hpwl");
  ASSERT_EQ(doc.at("rows").array.size(), 2u);
  EXPECT_EQ(doc.at("rows").array[0].at("name").string, "ibm01");
  EXPECT_DOUBLE_EQ(doc.at("rows").array[0].at("values").array[1].number, 0.25);
  std::remove(path.c_str());
}

TEST_F(ObsTest, EscapedStringsSurviveRoundTrip) {
  Registry::global().counter("weird \"name\"\twith\nescapes").add(1);
  const std::string path = ::testing::TempDir() + "obs_escape.jsonl";
  std::remove(path.c_str());
  ReportWriter(path).write_run("label \\ \"quoted\"",
                               Registry::global().snapshot());
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  JsonParser parser(lines[0]);
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("label").string, "label \\ \"quoted\"");
  EXPECT_DOUBLE_EQ(
      doc.at("counters").at("weird \"name\"\twith\nescapes").number, 1.0);
  std::remove(path.c_str());
}

TEST_F(ObsTest, EmptyDestinationIsInvalidAndWritesNothing) {
  ReportWriter writer((std::string()));
  EXPECT_FALSE(writer.valid());
  writer.write_run("dropped", Registry::global().snapshot());  // must not crash
}

TEST_F(ObsTest, ConcurrentWritersToOneDestinationNeverInterleaveLines) {
  // Four writers (one ReportWriter each, same path — the per-destination
  // mutex is keyed by path, not per instance) append many run lines
  // concurrently.  Regression: before the mutex, fprintf bodies from
  // different service workers could interleave mid-line.
  const std::string path = ::testing::TempDir() + "obs_interleave.jsonl";
  std::remove(path.c_str());
  constexpr int kWriters = 4;
  constexpr int kLines = 50;
  // A long counter name makes each line big enough to straddle stdio
  // buffer boundaries, where unsynchronized interleaving actually bites.
  Registry::global().counter(std::string(2048, 'x')).add(1);
  const RegistrySnapshot snap = Registry::global().snapshot();
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ReportWriter writer(path);
      for (int i = 0; i < kLines; ++i) {
        writer.write_run("w" + std::to_string(w) + "." + std::to_string(i),
                         snap);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kWriters * kLines));
  for (const std::string& line : lines) {
    JsonParser parser(line);
    const Json doc = parser.parse();
    ASSERT_TRUE(parser.ok()) << "torn line: " << line.substr(0, 80);
    EXPECT_EQ(doc.at("kind").string, "run");
  }
  std::remove(path.c_str());
}

TEST_F(ObsTest, PrometheusTextExposesAllMetricKinds) {
  Registry::global().counter("svc.jobs.done").add(3);
  Registry::global().gauge("svc.queue_depth").set(2.0);
  Histogram& h = Registry::global().histogram("svc.run_time");
  for (int i = 0; i < 8; ++i) h.record(0.5);
  const std::string text = prometheus_text(Registry::global().snapshot());
  // Names are prefixed and sanitized ('.' -> '_').
  EXPECT_NE(text.find("# TYPE mp_svc_jobs_done counter"), std::string::npos);
  EXPECT_NE(text.find("mp_svc_jobs_done 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mp_svc_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mp_svc_run_time summary"), std::string::npos);
  EXPECT_NE(text.find("mp_svc_run_time{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("mp_svc_run_time{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("mp_svc_run_time_count 8"), std::string::npos);
  EXPECT_NE(text.find("mp_svc_run_time_sum"), std::string::npos);
  // Exposition ends with a newline (required by the text format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(ObsTest, SummaryTableListsPhasesAndCounters) {
  {
    Span outer("phase_a");
    Span inner("phase_b");
    spin_for(0.001);
  }
  Registry::global().counter("summary.counter").add(5);
  Registry::global().histogram("summary.latency").record(0.25);
  const std::string table = summary_table();
  EXPECT_NE(table.find("phase_a"), std::string::npos);
  EXPECT_NE(table.find("phase_b"), std::string::npos);
  EXPECT_NE(table.find("summary.counter"), std::string::npos);
  // Histograms get their own quantile table.
  EXPECT_NE(table.find("summary.latency"), std::string::npos);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flow instrumentation is inert: identical placements with obs off and on.

netlist::Design small_bench(std::uint64_t seed) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 8;
  spec.std_cells = 150;
  spec.nets = 220;
  spec.seed = seed;
  return benchgen::generate(spec);
}

double run_small_flow(netlist::Design& design) {
  place::FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  place::FlowContext context = place::prepare_flow(design, options);
  std::vector<grid::CellCoord> anchors;
  for (std::size_t g = 0; g < context.clustering.macro_groups.size(); ++g) {
    anchors.push_back({static_cast<int>(g) % 4, static_cast<int>(g / 4) % 4});
  }
  return place::finalize_placement(design, context, anchors, options);
}

TEST_F(ObsTest, FlowInstrumentationIsInert) {
  netlist::Design d_off = small_bench(314);
  netlist::Design d_on = small_bench(314);

  set_enabled(false);
  const double hpwl_off = run_small_flow(d_off);

  set_enabled(true);
  reset_values();
  const double hpwl_on = run_small_flow(d_on);

  // Bit-for-bit identical results...
  EXPECT_EQ(hpwl_off, hpwl_on);
  ASSERT_EQ(d_off.num_nodes(), d_on.num_nodes());
  for (std::size_t i = 0; i < d_off.num_nodes(); ++i) {
    const netlist::NodeId id = static_cast<netlist::NodeId>(i);
    EXPECT_EQ(d_off.node(id).position.x, d_on.node(id).position.x);
    EXPECT_EQ(d_off.node(id).position.y, d_on.node(id).position.y);
  }

  // ...while the enabled run actually recorded the flow's telemetry.
  const RegistrySnapshot snap = Registry::global().snapshot();
  std::vector<std::string> top;
  for (const SpanSnapshot& s : snap.spans) top.push_back(s.name);
  EXPECT_NE(std::find(top.begin(), top.end(), "flow.prepare"), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), "flow.finalize"), top.end());
  bool saw_gp = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "gp.invocations") saw_gp = value > 0;
  }
  EXPECT_TRUE(saw_gp);
}

}  // namespace
}  // namespace mp::obs
