// Tests for geometry: points, rects, overlap, bounding boxes.

#include <gtest/gtest.h>

#include "geometry/geometry.hpp"

namespace mp::geometry {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Point(4.0, 1.0));
  EXPECT_EQ(a - b, Point(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
}

TEST(Point, Distances) {
  const Point a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(Rect, BasicAccessors) {
  const Rect r(1.0, 2.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(r.left(), 1.0);
  EXPECT_DOUBLE_EQ(r.right(), 5.0);
  EXPECT_DOUBLE_EQ(r.bottom(), 2.0);
  EXPECT_DOUBLE_EQ(r.top(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 24.0);
  EXPECT_EQ(r.center(), Point(3.0, 5.0));
  EXPECT_EQ(r.lower_left(), Point(1.0, 2.0));
}

TEST(Rect, FromCornersNormalizes) {
  const Rect r = Rect::from_corners(5.0, 8.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
  EXPECT_DOUBLE_EQ(r.y, 2.0);
  EXPECT_DOUBLE_EQ(r.w, 4.0);
  EXPECT_DOUBLE_EQ(r.h, 6.0);
}

TEST(Rect, ContainsPoint) {
  const Rect r(0.0, 0.0, 2.0, 2.0);
  EXPECT_TRUE(r.contains(Point(1.0, 1.0)));
  EXPECT_TRUE(r.contains(Point(0.0, 0.0)));  // border inclusive
  EXPECT_TRUE(r.contains(Point(2.0, 2.0)));
  EXPECT_FALSE(r.contains(Point(2.1, 1.0)));
}

TEST(Rect, ContainsRect) {
  const Rect outer(0.0, 0.0, 10.0, 10.0);
  EXPECT_TRUE(outer.contains(Rect(1.0, 1.0, 2.0, 2.0)));
  EXPECT_TRUE(outer.contains(Rect(0.0, 0.0, 10.0, 10.0)));  // coincident
  EXPECT_FALSE(outer.contains(Rect(9.0, 9.0, 2.0, 2.0)));
}

TEST(Rect, OverlapsExcludesTouching) {
  const Rect a(0.0, 0.0, 2.0, 2.0);
  EXPECT_TRUE(a.overlaps(Rect(1.0, 1.0, 2.0, 2.0)));
  EXPECT_FALSE(a.overlaps(Rect(2.0, 0.0, 2.0, 2.0)));  // share an edge
  EXPECT_FALSE(a.overlaps(Rect(3.0, 3.0, 1.0, 1.0)));
}

TEST(OverlapArea, Values) {
  const Rect a(0.0, 0.0, 4.0, 4.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect(2.0, 2.0, 4.0, 4.0)), 4.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect(4.0, 0.0, 2.0, 2.0)), 0.0);
  EXPECT_DOUBLE_EQ(overlap_area(a, Rect(1.0, 1.0, 1.0, 1.0)), 1.0);  // nested
  EXPECT_DOUBLE_EQ(overlap_area(a, a), 16.0);
}

TEST(BoundingBox, EmptyHasZeroHalfPerimeter) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 0.0);
}

TEST(BoundingBox, SinglePoint) {
  BoundingBox box;
  box.add({3.0, 4.0});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 0.0);
}

TEST(BoundingBox, GrowsWithPoints) {
  BoundingBox box;
  box.add({0.0, 0.0});
  box.add({3.0, 1.0});
  box.add({1.0, 5.0});
  EXPECT_DOUBLE_EQ(box.width(), 3.0);
  EXPECT_DOUBLE_EQ(box.height(), 5.0);
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 8.0);
}

TEST(BoundingBox, NegativeCoordinates) {
  BoundingBox box;
  box.add({-2.0, -3.0});
  box.add({2.0, 3.0});
  EXPECT_DOUBLE_EQ(box.half_perimeter(), 10.0);
  EXPECT_DOUBLE_EQ(box.min_x(), -2.0);
  EXPECT_DOUBLE_EQ(box.max_y(), 3.0);
}

}  // namespace
}  // namespace mp::geometry
