// Tests for the MP_CHECK invariant layer (src/check): macro semantics, the
// abort/throw failure modes, the obs span path in failure reports, the
// MP_VALIDATE_LEVEL gate, the structural validators' catch/no-catch behavior,
// and the level-0 bit-identity guarantee of the placement flow.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "benchgen/generator.hpp"
#include "check/check.hpp"
#include "check/validators.hpp"
#include "grid/occupancy.hpp"
#include "nn/tensor.hpp"
#include "obs/obs.hpp"
#include "place/flow.hpp"

namespace mp::check {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Pins validate_level() for one scope; tests must not depend on the
// MP_VALIDATE_LEVEL the surrounding ctest invocation exported.
class ScopedLevel {
 public:
  explicit ScopedLevel(int level) : previous_(validate_level()) {
    set_validate_level(level);
  }
  ~ScopedLevel() { set_validate_level(previous_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  int previous_;
};

std::string failure_message(const std::function<void()>& body) {
  ScopedCheckThrow guard;
  try {
    body();
  } catch (const CheckFailure& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckFailure";
  return {};
}

netlist::Design bench(std::uint64_t seed, int macros = 8) {
  benchgen::BenchSpec spec;
  spec.movable_macros = macros;
  spec.std_cells = 150;
  spec.nets = 200;
  spec.seed = seed;
  return benchgen::generate(spec);
}

// --- Macro semantics -------------------------------------------------------

TEST(Check, PassingChecksAreSilent) {
  ScopedCheckThrow guard;
  MP_CHECK(1 + 1 == 2);
  MP_CHECK(true, "message ignored on success %d", 42);
  MP_CHECK_GE(2.0, 2.0);
  MP_CHECK_GT(3, 2);
  MP_CHECK_LE(2, 2);
  MP_CHECK_LT(2, 3);
  MP_CHECK_EQ(5, 5);
  MP_CHECK_NEAR(1.0, 1.0 + 1e-12, 1e-9);
  MP_CHECK_FINITE(0.0);
  MP_CHECK_FINITE(-1e300);
}

TEST(Check, FailureMessageNamesFileExpressionAndMessage) {
  const std::string what =
      failure_message([] { MP_CHECK(2 < 1, "context %s/%d", "abc", 7); });
  EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  EXPECT_NE(what.find("MP_CHECK failed"), std::string::npos) << what;
  EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
  EXPECT_NE(what.find("context abc/7"), std::string::npos) << what;
}

TEST(Check, ComparisonFailuresPrintBothOperands) {
  const std::string what = failure_message([] {
    const double lhs = 0.25, rhs = 0.75;
    MP_CHECK_GE(lhs, rhs);
  });
  EXPECT_NE(what.find("MP_CHECK_GE failed"), std::string::npos) << what;
  EXPECT_NE(what.find("lhs=0.25"), std::string::npos) << what;
  EXPECT_NE(what.find("rhs=0.75"), std::string::npos) << what;
}

TEST(Check, NearFailsOutsideToleranceAndOnNan) {
  ScopedCheckThrow guard;
  EXPECT_THROW(MP_CHECK_NEAR(1.0, 1.1, 1e-3), CheckFailure);
  EXPECT_THROW(MP_CHECK_NEAR(kNan, 0.0, 1e9), CheckFailure);
  EXPECT_THROW(MP_CHECK_NEAR(0.0, kNan, 1e9), CheckFailure);
  MP_CHECK_NEAR(1.0, 1.1, 0.2);
}

TEST(Check, FiniteRejectsNanAndInfinity) {
  ScopedCheckThrow guard;
  EXPECT_THROW(MP_CHECK_FINITE(kNan), CheckFailure);
  EXPECT_THROW(MP_CHECK_FINITE(kInf), CheckFailure);
  EXPECT_THROW(MP_CHECK_FINITE(-kInf, "gradient"), CheckFailure);
}

TEST(Check, ComparisonMacrosEvaluateOperandsOnce) {
  ScopedCheckThrow guard;
  int evaluations = 0;
  const auto bump = [&evaluations] { return ++evaluations; };
  MP_CHECK_GE(bump(), 0);
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(MP_CHECK_LT(bump(), 0), CheckFailure);
  EXPECT_EQ(evaluations, 2);
}

TEST(Check, DcheckFollowsBuildConfiguration) {
  // This repo builds without NDEBUG, so MP_DCHECK must be live here.
  EXPECT_TRUE(dchecks_enabled());
  ScopedCheckThrow guard;
  EXPECT_THROW(MP_DCHECK(false, "dcheck active"), CheckFailure);
}

TEST(CheckDeathTest, DefaultModeAborts) {
  ASSERT_TRUE(abort_on_failure());
  EXPECT_DEATH(MP_CHECK(false, "fatal by default"), "MP_CHECK failed");
  EXPECT_DEATH(MP_CHECK_EQ(1, 2), "MP_CHECK_EQ failed");
}

TEST(Check, ScopedThrowRestoresAbortMode) {
  ASSERT_TRUE(abort_on_failure());
  {
    ScopedCheckThrow guard;
    EXPECT_FALSE(abort_on_failure());
  }
  EXPECT_TRUE(abort_on_failure());
}

TEST(Check, FailureReportIncludesActiveSpanPath) {
  obs::set_enabled(true);
  std::string what;
  {
    obs::Span outer("check_test.outer");
    obs::Span inner("check_test.inner");
    what = failure_message([] { MP_CHECK(false); });
  }
  EXPECT_NE(what.find("check_test.outer/check_test.inner"), std::string::npos)
      << what;
}

// --- MP_VALIDATE_LEVEL gate ------------------------------------------------

TEST(Check, SetValidateLevelOverridesEnvironment) {
  ScopedLevel level(2);
  EXPECT_EQ(validate_level(), 2);
  set_validate_level(0);
  EXPECT_EQ(validate_level(), 0);
}

TEST(Validators, LevelZeroSkipsEvenCorruptState) {
  ScopedLevel level(0);
  ScopedCheckThrow guard;
  netlist::Design d = bench(900, 4);
  // Stack every movable macro on the same spot and poison one coordinate —
  // blatantly illegal, but level 0 must not even look.
  for (netlist::NodeId id : d.movable_macros()) d.node(id).position = {0.0, 0.0};
  d.node(d.movable_macros().front()).position.x = kNan;
  validate_placement_legal(d, "test.level0");
  validate_positions_finite(d, "test.level0");
}

// --- Structural validators -------------------------------------------------

TEST(Validators, PlacementLegalAcceptsLegalAndNamesOverlappingPair) {
  ScopedLevel level(2);
  ScopedCheckThrow guard;
  netlist::Design d = bench(901, 4);
  // Tile the movable macros along the bottom edge, touching but disjoint.
  double x = d.region().left();
  for (netlist::NodeId id : d.movable_macros()) {
    d.node(id).position = {x, d.region().bottom()};
    x += d.node(id).width;
  }
  validate_placement_legal(d, "test.legal");

  // Collapse two macros onto each other: level 2 names both in the message.
  const netlist::NodeId a = d.movable_macros()[0];
  const netlist::NodeId b = d.movable_macros()[1];
  d.node(b).position = d.node(a).position;
  const std::string what = failure_message(
      [&] { validate_placement_legal(d, "test.overlap"); });
  EXPECT_NE(what.find("test.overlap"), std::string::npos) << what;
}

TEST(Validators, PlacementLegalRejectsMacroOutsideRegion) {
  ScopedLevel level(1);
  ScopedCheckThrow guard;
  netlist::Design d = bench(902, 3);
  double x = d.region().left();
  for (netlist::NodeId id : d.movable_macros()) {
    d.node(id).position = {x, d.region().bottom()};
    x += d.node(id).width;
  }
  validate_placement_legal(d, "test.inside");
  netlist::Node& escapee = d.node(d.movable_macros().front());
  escapee.position.x = d.region().right() - escapee.width / 2.0;
  EXPECT_THROW(validate_placement_legal(d, "test.outside"), CheckFailure);
}

TEST(Validators, PositionsFiniteCatchesNanByLevel) {
  ScopedCheckThrow guard;
  netlist::Design d = bench(903, 3);
  validate_positions_finite(d, "test.finite");

  // Level 1 watches the movable macros...
  {
    ScopedLevel level(1);
    netlist::Design poisoned = d;
    poisoned.node(poisoned.movable_macros().front()).position.y = kNan;
    EXPECT_THROW(validate_positions_finite(poisoned, "test.macro_nan"),
                 CheckFailure);
    // ...but a poisoned std cell only trips the exhaustive walk: HPWL treats
    // NaN coordinates as unbounded extents, which max/min may mask.
    netlist::Design cell_poisoned = d;
    cell_poisoned.node(cell_poisoned.std_cells().front()).position.x = kNan;
    ScopedLevel exhaustive(2);
    EXPECT_THROW(validate_positions_finite(cell_poisoned, "test.cell_nan"),
                 CheckFailure);
  }
}

TEST(Validators, OccupancyReconciliationByLevel) {
  ScopedCheckThrow guard;
  const grid::GridSpec spec(geometry::Rect{0.0, 0.0, 64.0, 64.0}, 8);
  grid::OccupancyMap initial(spec);
  initial.place(grid::make_footprint(spec, 12.0, 12.0), {6, 6});

  grid::OccupancyMap occupancy = initial;
  std::vector<grid::Footprint> footprints{
      grid::make_footprint(spec, 16.0, 8.0),
      grid::make_footprint(spec, 8.0, 8.0),
      grid::make_footprint(spec, 24.0, 16.0),
  };
  std::vector<grid::CellCoord> anchors{{0, 0}, {4, 0}};
  occupancy.place(footprints[0], anchors[0]);
  occupancy.place(footprints[1], anchors[1]);

  {
    ScopedLevel level(2);
    validate_occupancy_reconciles(occupancy, initial, footprints, anchors,
                                  "test.occupancy");
  }
  // Drift the map without recording an anchor: caught at both levels.
  occupancy.place(footprints[1], {0, 4});
  {
    ScopedLevel level(1);
    EXPECT_THROW(validate_occupancy_reconciles(occupancy, initial, footprints,
                                               anchors, "test.drift"),
                 CheckFailure);
  }
  {
    ScopedLevel level(2);
    EXPECT_THROW(validate_occupancy_reconciles(occupancy, initial, footprints,
                                               anchors, "test.drift"),
                 CheckFailure);
  }
}

TEST(Validators, ProbabilitiesValidateShapeAndMass) {
  ScopedLevel level(2);
  ScopedCheckThrow guard;
  nn::Tensor probs({4});
  for (int i = 0; i < 4; ++i) probs[static_cast<std::size_t>(i)] = 0.25f;
  validate_probabilities(probs, "uniform", "test.probs");

  nn::Tensor nan_probs = probs;
  nan_probs[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(validate_probabilities(nan_probs, "nan", "test.probs"),
               CheckFailure);

  nn::Tensor negative = probs;
  negative[0] = -0.25f;
  EXPECT_THROW(validate_probabilities(negative, "negative", "test.probs"),
               CheckFailure);

  nn::Tensor unnormalized = probs;
  unnormalized[0] = 0.75f;  // sum = 1.5
  EXPECT_THROW(validate_probabilities(unnormalized, "mass", "test.probs"),
               CheckFailure);
}

TEST(Validators, FiniteGuardsNameTheOffendingIndex) {
  ScopedLevel level(1);
  ScopedCheckThrow guard;
  validate_finite({0.0, 1.0, -2.5}, "rewards", "test.finite");
  const std::string what = failure_message(
      [] { validate_finite({0.0, kInf}, "rewards", "test.finite"); });
  EXPECT_NE(what.find("rewards[1]"), std::string::npos) << what;

  nn::Tensor t({3});
  t[0] = 1.0f;
  t[1] = 2.0f;
  t[2] = std::numeric_limits<float>::infinity();
  const std::string tensor_what = failure_message(
      [&] { validate_tensor_finite(t, "weights", "test.finite"); });
  EXPECT_NE(tensor_what.find("weights[2]"), std::string::npos) << tensor_what;
}

// --- Level-0 bit-identity through the real flow ----------------------------

std::vector<geometry::Point> run_flow_at_level(int level, std::uint64_t seed) {
  ScopedLevel scoped(level);
  netlist::Design d = bench(seed);
  place::FlowOptions options;
  options.grid_dim = 4;
  options.initial_gp.max_iterations = 3;
  options.final_gp.max_iterations = 4;
  place::FlowContext context = place::prepare_flow(d, options);
  std::vector<grid::CellCoord> anchors;
  for (std::size_t g = 0; g < context.clustering.macro_groups.size(); ++g) {
    anchors.push_back({static_cast<int>(g) % 4, static_cast<int>(g / 4) % 4});
  }
  place::finalize_placement(d, context, anchors, options);
  std::vector<geometry::Point> positions;
  positions.reserve(d.num_nodes());
  for (std::size_t i = 0; i < d.num_nodes(); ++i) {
    positions.push_back(d.node(static_cast<netlist::NodeId>(i)).position);
  }
  return positions;
}

TEST(Validators, FlowIsBitIdenticalAcrossValidateLevels) {
  // Validators only read state: every coordinate out of the flow must match
  // to the last bit whether they are off (0) or exhaustive (2).
  const std::vector<geometry::Point> off = run_flow_at_level(0, 777);
  const std::vector<geometry::Point> exhaustive = run_flow_at_level(2, 777);
  ASSERT_EQ(off.size(), exhaustive.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].x, exhaustive[i].x) << "node " << i;
    EXPECT_EQ(off[i].y, exhaustive[i].y) << "node " << i;
  }
}

}  // namespace
}  // namespace mp::check
