// Tests for the coarse allocation evaluator: full vs partial evaluation,
// determinism, and the overflow penalty.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"

namespace mp::rl {
namespace {

struct Fixture {
  netlist::Design design;
  place::FlowContext context;

  explicit Fixture(std::uint64_t seed, int macros = 10, int grid_dim = 4) {
    benchgen::BenchSpec spec;
    spec.movable_macros = macros;
    spec.std_cells = 150;
    spec.nets = 250;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = grid_dim;
    options.initial_gp.max_iterations = 3;
    context = place::prepare_flow(design, options);
  }

  std::vector<grid::CellCoord> diagonal_anchors(std::size_t count) const {
    std::vector<grid::CellCoord> anchors;
    for (std::size_t i = 0; i < count; ++i) {
      const int k = static_cast<int>(i) % context.spec.dim();
      anchors.push_back({k, k});
    }
    return anchors;
  }
};

TEST(Evaluator, PartialWithFullPrefixMatchesFull) {
  Fixture f(210);
  CoarseEvaluator ev(f.context.coarse, f.context.spec);
  const auto anchors =
      f.diagonal_anchors(f.context.clustering.macro_groups.size());
  const double full = ev.evaluate(anchors);
  const double partial = ev.evaluate_partial(anchors);
  // With every group pinned, partial relaxes exactly the cell groups — the
  // same QP the full evaluation solves.
  EXPECT_NEAR(partial, full, full * 1e-6);
}

TEST(Evaluator, PartialIsOptimisticForPrefixes) {
  Fixture f(211);
  CoarseEvaluator ev(f.context.coarse, f.context.spec);
  const std::size_t n = f.context.clustering.macro_groups.size();
  ASSERT_GE(n, 2u);
  const auto anchors = f.diagonal_anchors(n);
  const double full = ev.evaluate(anchors);
  // Relaxing a suffix of the groups can only reduce the quadratic optimum,
  // which in practice lowers the HPWL proxy too (generous tolerance: the
  // measured quantity is HPWL, not the quadratic objective itself).
  std::vector<grid::CellCoord> prefix(anchors.begin(),
                                      anchors.begin() + static_cast<long>(n / 2));
  const double partial = ev.evaluate_partial(prefix);
  EXPECT_LT(partial, full * 1.1);
}

TEST(Evaluator, EmptyPrefixGivesFullRelaxation) {
  Fixture f(212);
  CoarseEvaluator ev(f.context.coarse, f.context.spec);
  const double relaxed = ev.evaluate_partial({});
  const double pinned =
      ev.evaluate(f.diagonal_anchors(f.context.clustering.macro_groups.size()));
  EXPECT_GT(relaxed, 0.0);
  EXPECT_LT(relaxed, pinned * 1.1);
}

TEST(Evaluator, OverflowPenaltyInflatesPackedAllocations) {
  Fixture f(213);
  CoarseEvaluator plain(f.context.coarse, f.context.spec);
  CoarseEvaluator penalized(f.context.coarse, f.context.spec);
  penalized.set_overflow_penalty(2.0);
  const std::size_t n = f.context.clustering.macro_groups.size();
  const std::vector<grid::CellCoord> stacked(n, {0, 0});
  const double w_plain = plain.evaluate(stacked);
  const double w_penalized = penalized.evaluate(stacked);
  EXPECT_GT(w_penalized, w_plain) << "stacking must be penalized";

  // A spread allocation with little overflow is barely affected.
  const auto spread = f.diagonal_anchors(n);
  const double s_plain = plain.evaluate(spread);
  const double s_penalized = penalized.evaluate(spread);
  EXPECT_LT(s_penalized / s_plain, w_penalized / w_plain);
}

TEST(Evaluator, PenaltyZeroIsExactlyPlain) {
  Fixture f(214);
  CoarseEvaluator a(f.context.coarse, f.context.spec);
  CoarseEvaluator b(f.context.coarse, f.context.spec);
  b.set_overflow_penalty(0.0);
  const auto anchors =
      f.diagonal_anchors(f.context.clustering.macro_groups.size());
  EXPECT_DOUBLE_EQ(a.evaluate(anchors), b.evaluate(anchors));
}

TEST(Evaluator, EvaluationCounterCountsBothKinds) {
  Fixture f(215);
  CoarseEvaluator ev(f.context.coarse, f.context.spec);
  const auto anchors =
      f.diagonal_anchors(f.context.clustering.macro_groups.size());
  ev.evaluate(anchors);
  ev.evaluate_partial({});
  EXPECT_EQ(ev.evaluations(), 2);
}

TEST(Geometry, FitIntervalContainsExactly) {
  // The 1-ulp regression this helper exists for: (hi - size) + size > hi.
  const double hi = 261.24019824979302;
  const double size = 33.331906346321068;
  const double pos = geometry::fit_interval(hi - size, size, 0.0, hi);
  EXPECT_LE(pos + size, hi);
  EXPECT_GE(pos, 0.0);
  // Normal case: desired inside, unchanged.
  EXPECT_DOUBLE_EQ(geometry::fit_interval(5.0, 2.0, 0.0, 10.0), 5.0);
  // Too large: clamps to lo.
  EXPECT_DOUBLE_EQ(geometry::fit_interval(3.0, 20.0, 1.0, 10.0), 1.0);
}

}  // namespace
}  // namespace mp::rl
