// Tests for the RUDY congestion estimator.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "gp/global_placer.hpp"
#include "gp/rudy.hpp"

namespace mp::gp {
namespace {

TEST(Rudy, EmptyDesignIsZero) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  const RudyMap map = compute_rudy(d);
  EXPECT_DOUBLE_EQ(map.max_density(), 0.0);
  EXPECT_DOUBLE_EQ(map.overflow_fraction(), 0.0);
}

TEST(Rudy, SingleNetSpreadsOverItsBox) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  netlist::Node a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  a.position = {10, 10};
  d.add_node(a);
  a.name = "b";
  a.position = {60, 60};
  d.add_node(a);
  netlist::Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);

  RudyOptions options;
  options.bins = 10;
  const RudyMap map = compute_rudy(d, options);
  // Density inside the net box, zero far outside.
  EXPECT_GT(map.at(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(map.at(9, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.at(0, 9), 0.0);
}

TEST(Rudy, DensityScalesWithNetWeight) {
  const auto build = [](double weight) {
    netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
    netlist::Node a;
    a.name = "a";
    a.width = 1;
    a.height = 1;
    a.position = {20, 20};
    d.add_node(a);
    a.name = "b";
    a.position = {70, 70};
    d.add_node(a);
    netlist::Net n;
    n.weight = weight;
    n.pins = {{0, 0, 0}, {1, 0, 0}};
    d.add_net(n);
    return compute_rudy(d).max_density();
  };
  EXPECT_NEAR(build(3.0), 3.0 * build(1.0), 1e-9);
}

TEST(Rudy, DegenerateFlatNetStillCounts) {
  netlist::Design d("d", geometry::Rect(0, 0, 100, 100));
  netlist::Node a;
  a.name = "a";
  a.width = 1;
  a.height = 1;
  a.position = {10, 50};
  d.add_node(a);
  a.name = "b";
  a.position = {90, 50};  // exactly horizontal net
  d.add_node(a);
  netlist::Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);
  const RudyMap map = compute_rudy(d);
  EXPECT_GT(map.max_density(), 0.0);
}

TEST(Rudy, SpreadPlacementLessCongestedThanStacked) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 300;
  spec.nets = 450;
  spec.seed = 950;
  netlist::Design spread = benchgen::generate(spec);
  GlobalPlaceOptions gpo;
  gpo.move_macros = true;
  gpo.max_iterations = 6;
  global_place(spread, gpo);

  netlist::Design stacked = benchgen::generate(spec);
  for (netlist::NodeId id : stacked.std_cells()) {
    stacked.node(id).position = {stacked.region().w / 2, stacked.region().h / 2};
  }
  const double spread_peak = compute_rudy(spread).max_density();
  const double stacked_peak = compute_rudy(stacked).max_density();
  EXPECT_LT(spread_peak, stacked_peak);
}

TEST(Rudy, StatisticsConsistent) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 4;
  spec.std_cells = 150;
  spec.nets = 250;
  spec.seed = 951;
  netlist::Design d = benchgen::generate(spec);
  const RudyMap map = compute_rudy(d);
  EXPECT_GE(map.max_density(), map.mean_density());
  EXPECT_GE(map.overflow_fraction(0.0), map.overflow_fraction(1e9));
  EXPECT_LE(map.overflow_fraction(), 1.0);
}

}  // namespace
}  // namespace mp::gp
