// Tests for quadratic placement: closed-form cases, anchors, bounds,
// offsets, star model, and HPWL-improvement property on synthetic designs.

#include <gtest/gtest.h>

#include "benchgen/generator.hpp"
#include "qp/quadratic.hpp"

namespace mp::qp {
namespace {

using netlist::Design;
using netlist::Net;
using netlist::Node;
using netlist::NodeKind;

// One movable cell between two fixed pads at (10,10) and (30,20): the
// quadratic optimum is the midpoint of the pin positions.
TEST(Qp, MovableSettlesAtMidpointOfFixedNeighbors) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {10, 10};
  d.add_node(pad);
  pad.name = "p1";
  pad.position = {30, 20};
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  cell.width = 2.0;
  cell.height = 2.0;
  cell.position = {50, 50};
  d.add_node(cell);
  Net n1;
  n1.pins = {{0, 0, 0}, {2, 1.0, 1.0}};  // pad to cell center
  d.add_net(n1);
  Net n2;
  n2.pins = {{1, 0, 0}, {2, 1.0, 1.0}};
  d.add_net(n2);

  solve_quadratic_placement(d, {2});
  EXPECT_NEAR(d.node(2).center().x, 20.0, 1e-6);
  EXPECT_NEAR(d.node(2).center().y, 15.0, 1e-6);
}

TEST(Qp, AnchorPullsTowardTarget) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {0, 0};
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  cell.width = 0.0;
  cell.height = 0.0;
  d.add_node(cell);
  Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);

  // Net weight 1 toward (0,0); anchor weight 1 toward (10,10): center at 5,5.
  solve_quadratic_placement(d, {1}, {{1, {10.0, 10.0}, 1.0}});
  EXPECT_NEAR(d.node(1).center().x, 5.0, 1e-6);
  EXPECT_NEAR(d.node(1).center().y, 5.0, 1e-6);
}

TEST(Qp, StrongAnchorDominates) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {0, 0};
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  d.add_node(cell);
  Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);
  solve_quadratic_placement(d, {1}, {{1, {10.0, 10.0}, 1000.0}});
  EXPECT_NEAR(d.node(1).center().x, 10.0, 0.05);
}

TEST(Qp, BoxBoundClampsResult) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {90, 90};
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  d.add_node(cell);
  Net n;
  n.pins = {{0, 0, 0}, {1, 0, 0}};
  d.add_net(n);
  const BoxBound bound{1, geometry::Rect(0, 0, 20, 20)};
  solve_quadratic_placement(d, {1}, {}, {bound});
  EXPECT_LE(d.node(1).center().x, 20.0 + 1e-9);
  EXPECT_LE(d.node(1).center().y, 20.0 + 1e-9);
}

TEST(Qp, RegionClampKeepsNodeInside) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {200, 200};  // pull is outside the region
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  cell.width = 10.0;
  cell.height = 10.0;
  d.add_node(cell);
  Net n;
  n.pins = {{0, 0, 0}, {1, 5, 5}};
  d.add_net(n);
  solve_quadratic_placement(d, {1});
  EXPECT_TRUE(d.region().contains(d.node(1).rect()));
}

TEST(Qp, PinOffsetsShiftOptimum) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node pad;
  pad.name = "p0";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {50, 50};
  d.add_node(pad);
  Node cell;
  cell.name = "c";
  cell.width = 10.0;
  cell.height = 10.0;
  d.add_node(cell);
  Net n;
  // Pin at the cell's left-bottom corner (offset 0,0 from lower-left =
  // offset -5,-5 from center): optimum puts the *pin* at the pad.
  n.pins = {{0, 0, 0}, {1, 0.0, 0.0}};
  d.add_net(n);
  solve_quadratic_placement(d, {1});
  EXPECT_NEAR(d.node(1).position.x, 50.0, 1e-6);
  EXPECT_NEAR(d.node(1).position.y, 50.0, 1e-6);
}

TEST(Qp, IsolatedNodeGoesToRegionCenter) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  Node cell;
  cell.name = "c";
  cell.position = {3, 3};
  d.add_node(cell);
  solve_quadratic_placement(d, {0});
  EXPECT_NEAR(d.node(0).center().x, 50.0, 1e-3);
  EXPECT_NEAR(d.node(0).center().y, 50.0, 1e-3);
}

TEST(Qp, StarModelHandlesLargeNets) {
  Design d("d", geometry::Rect(0, 0, 100, 100));
  // 12 movable cells on one net (degree > clique_max_degree=8) + one pad.
  Node pad;
  pad.name = "p";
  pad.kind = NodeKind::kPad;
  pad.fixed = true;
  pad.position = {50, 80};
  d.add_node(pad);
  Net n;
  n.pins.push_back({0, 0, 0});
  for (int i = 0; i < 12; ++i) {
    Node c;
    c.name = "c" + std::to_string(i);
    c.position = {5.0 * i, 5.0};
    const auto id = d.add_node(c);
    n.pins.push_back({id, 0, 0});
  }
  d.add_net(n);
  std::vector<netlist::NodeId> movable;
  for (int i = 1; i <= 12; ++i) movable.push_back(i);
  const QpResult r = solve_quadratic_placement(d, movable);
  EXPECT_TRUE(r.cg_x.converged);
  // All cells collapse toward the single fixed pin.
  for (int i = 1; i <= 12; ++i) {
    EXPECT_NEAR(d.node(i).center().x, 50.0, 0.5);
    EXPECT_NEAR(d.node(i).center().y, 80.0, 0.5);
  }
}

TEST(Qp, ReducesHpwlOnSyntheticDesign) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 6;
  spec.std_cells = 300;
  spec.nets = 500;
  spec.seed = 5;
  netlist::Design d = benchgen::generate(spec);
  // Scramble cells to the corner to make the initial HPWL bad.
  for (netlist::NodeId id : d.std_cells()) {
    d.node(id).position = {0.0, 0.0};
  }
  const double before = d.total_hpwl();
  solve_quadratic_placement(d, d.std_cells());
  EXPECT_LT(d.total_hpwl(), before);
}

}  // namespace
}  // namespace mp::qp
