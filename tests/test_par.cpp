// Tests for the par:: parallel-execution subsystem and the determinism
// contract of every parallelized hot path (docs/PARALLELISM.md): results
// must be a pure function of the inputs and the algorithm parameters —
// never of the worker-pool size.  The whole binary carries the `par` ctest
// label; scripts/check.sh runs it under ThreadSanitizer by default.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "benchgen/generator.hpp"
#include "gp/density.hpp"
#include "linalg/sparse.hpp"
#include "mcts/mcts.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

/// Restores the previous pool size when a test scope ends, so thread-count
/// overrides never leak between tests.
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) : saved_(par::num_threads()) {
    par::set_num_threads(threads);
  }
  ~ThreadGuard() { par::set_num_threads(saved_); }

 private:
  int saved_;
};

// ---------------------------------------------------------------------------
// Rng::split
// ---------------------------------------------------------------------------

TEST(RngSplit, ReproducibleAndStreamDependent) {
  util::Rng parent1(1234);
  util::Rng parent2(1234);
  util::Rng a = parent1.split(7);
  util::Rng b = parent2.split(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "same parent+stream must agree";
  }
  util::Rng c = parent1.split(8);
  bool differs = false;
  util::Rng a2 = parent1.split(7);
  for (int i = 0; i < 16; ++i) {
    if (a2.next_u64() != c.next_u64()) differs = true;
  }
  EXPECT_TRUE(differs) << "distinct streams must diverge";
}

TEST(RngSplit, DoesNotAdvanceParent) {
  util::Rng parent(99);
  util::Rng witness(99);
  (void)parent.split(0);
  (void)parent.split(1);
  (void)parent.split(0xffffffffffffULL);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(parent.next_u64(), witness.next_u64());
  }
}

TEST(RngSplit, StreamsLookIndependent) {
  // Crude independence check: means of distinct streams stay near 0.5.
  util::Rng parent(5);
  for (std::uint64_t s = 0; s < 8; ++s) {
    util::Rng child = parent.split(s);
    double mean = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) mean += child.uniform();
    mean /= n;
    EXPECT_NEAR(mean, 0.5, 0.05) << "stream " << s;
  }
}

// ---------------------------------------------------------------------------
// parallel_for / parallel_reduce
// ---------------------------------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard(4);
  const std::size_t n = 10001;
  std::vector<int> hits(n, 0);
  par::parallel_for(0, n, 97, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i] += 1;
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadGuard guard(4);
  bool ran = false;
  par::parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, NestedRunsInline) {
  ThreadGuard guard(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  par::parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    outer.fetch_add(static_cast<int>(hi - lo));
    EXPECT_TRUE(par::in_worker() || par::num_threads() == 1);
    // Nested region: must execute inline on this worker, not deadlock.
    par::parallel_for(0, 4, 1, [&](std::size_t l2, std::size_t h2) {
      inner.fetch_add(static_cast<int>(h2 - l2));
    });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 32);
}

double reduce_sum(std::size_t n, std::size_t grain) {
  // A sum whose terms vary in magnitude, so association order matters in
  // floating point and any chunking change would show.
  return par::parallel_reduce(
      std::size_t{0}, n, grain, 0.0,
      [](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += std::sin(static_cast<double>(i)) *
               std::exp(-static_cast<double>(i % 37) / 7.0);
        }
        return s;
      },
      [](double a, double b) { return a + b; });
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  const std::size_t n = 100000;
  double r1, r8;
  {
    ThreadGuard guard(1);
    r1 = reduce_sum(n, 1024);
  }
  {
    ThreadGuard guard(8);
    r8 = reduce_sum(n, 1024);
  }
  EXPECT_EQ(r1, r8) << "parallel_reduce must not depend on the pool size";
}

TEST(ParallelReduce, MatchesSerialWhenSingleChunk) {
  ThreadGuard guard(8);
  // grain >= n → one chunk → plain left-to-right accumulation.
  const double one_chunk = reduce_sum(1000, 100000);
  double serial = 0.0;
  for (std::size_t i = 0; i < 1000; ++i) {
    serial += std::sin(static_cast<double>(i)) *
              std::exp(-static_cast<double>(i % 37) / 7.0);
  }
  EXPECT_EQ(one_chunk, serial);
}

// ---------------------------------------------------------------------------
// Pool + concurrent observability stress (the TSan target)
// ---------------------------------------------------------------------------

TEST(ParStress, PoolAndObsUnderConcurrency) {
  ThreadGuard guard(8);
  obs::Counter& counter = obs::Registry::global().counter("par_test.stress");
  obs::Histogram& hist = obs::Registry::global().histogram("par_test.hist");
  const long long base = counter.value();
  std::atomic<long long> work{0};
  for (int round = 0; round < 50; ++round) {
    par::parallel_for(0, 256, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        counter.add(1);
        hist.record(static_cast<double>(i % 17) + 0.5);
        work.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(work.load(), 50 * 256);
  EXPECT_EQ(counter.value() - base, 50 * 256);
  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_GE(snap.count, 50 * 256);
  EXPECT_GE(snap.min, 0.5);
  EXPECT_LE(snap.max, 17.0);
}

TEST(ParStress, ExceptionInTaskPropagates) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      par::parallel_for(0, 64, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 32) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> n{0};
  par::parallel_for(0, 16, 1, [&](std::size_t lo, std::size_t hi) {
    n.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(n.load(), 16);
}

// ---------------------------------------------------------------------------
// Data-parallel kernels: bit-identical at every thread count
// ---------------------------------------------------------------------------

linalg::Vec spmv_once(int threads) {
  ThreadGuard guard(threads);
  const std::size_t n = 6000;
  linalg::TripletBuilder builder(n);
  util::Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add_diagonal(i, 4.0 + rng.uniform());
    for (int k = 0; k < 4; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
      if (j != i) builder.add_connection(i, j, rng.uniform());
    }
  }
  const linalg::CsrMatrix m = linalg::CsrMatrix::from_triplets(builder);
  linalg::Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-1.0, 1.0);
  return m.multiply(x);
}

TEST(ParKernels, SpmvBitIdenticalAcrossThreadCounts) {
  const linalg::Vec y1 = spmv_once(1);
  const linalg::Vec y8 = spmv_once(8);
  ASSERT_EQ(y1.size(), y8.size());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_EQ(y1[i], y8[i]) << "row " << i;
  }
}

std::vector<geometry::Rect> density_rects(std::vector<unsigned char>& movable) {
  util::Rng rng(7);
  std::vector<geometry::Rect> rects;
  for (int i = 0; i < 400; ++i) {
    rects.push_back({rng.uniform(0.0, 90.0), rng.uniform(0.0, 90.0),
                     rng.uniform(0.5, 9.0), rng.uniform(0.5, 9.0)});
    movable.push_back(i % 3 == 0 ? 0 : 1);
  }
  return rects;
}

TEST(ParKernels, DensityAddAllMatchesIncrementalAndThreadCounts) {
  const geometry::Rect region{0.0, 0.0, 100.0, 100.0};
  std::vector<unsigned char> movable;
  const std::vector<geometry::Rect> rects = density_rects(movable);

  gp::DensityGrid reference(region, 16, 0.9);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    if (movable[i] != 0) {
      reference.add_movable(rects[i]);
    } else {
      reference.add_fixed(rects[i]);
    }
  }

  for (int threads : {1, 2, 8}) {
    ThreadGuard guard(threads);
    gp::DensityGrid grid(region, 16, 0.9);
    grid.add_all(rects, movable);
    for (int by = 0; by < 16; ++by) {
      for (int bx = 0; bx < 16; ++bx) {
        ASSERT_EQ(grid.usage(bx, by), reference.usage(bx, by))
            << "usage bin (" << bx << "," << by << ") threads=" << threads;
        ASSERT_EQ(grid.capacity(bx, by), reference.capacity(bx, by))
            << "capacity bin (" << bx << "," << by << ") threads=" << threads;
      }
    }
    EXPECT_EQ(grid.overflow_ratio(), reference.overflow_ratio());
  }
}

// ---------------------------------------------------------------------------
// MCTS: committed moves depend on eval_batch, never on the pool size
// ---------------------------------------------------------------------------

struct McstFixture {
  netlist::Design design;
  place::FlowContext context;
  std::unique_ptr<rl::PlacementEnv> env;
  std::unique_ptr<rl::CoarseEvaluator> evaluator;
  std::unique_ptr<rl::AgentNetwork> agent;
  rl::RewardCalibration calibration;

  explicit McstFixture(std::uint64_t seed, int macros = 8, int grid_dim = 4) {
    benchgen::BenchSpec spec;
    spec.movable_macros = macros;
    spec.std_cells = 120;
    spec.nets = 200;
    spec.seed = seed;
    design = benchgen::generate(spec);
    place::FlowOptions options;
    options.grid_dim = grid_dim;
    options.initial_gp.max_iterations = 2;
    context = place::prepare_flow(design, options);
    env = std::make_unique<rl::PlacementEnv>(context.coarse,
                                             context.clustering, context.spec);
    evaluator = std::make_unique<rl::CoarseEvaluator>(context.coarse,
                                                      context.spec);
    rl::AgentConfig config;
    config.grid_dim = grid_dim;
    config.channels = 8;
    config.res_blocks = 1;
    config.seed = seed;
    agent = std::make_unique<rl::AgentNetwork>(config);
    util::Rng rng(seed);
    calibration = rl::calibrate_reward(*env, *evaluator, 8, rng);
  }
};

mcts::MctsResult run_batched_mcts(McstFixture& f, int eval_batch) {
  mcts::MctsOptions options;
  options.explorations_per_move = 12;
  options.eval_batch = eval_batch;
  options.seed = 11;
  mcts::MctsPlacer placer(*f.env, *f.evaluator, *f.agent,
                          f.calibration.make_reward(0.75), options);
  return placer.run();
}

TEST(ParMcts, BatchedSearchIdenticalAcrossThreadCounts) {
  // Fixed eval_batch, varying pool size: the committed move sequence and the
  // final wirelength must be bit-identical — tree parallelism changes how
  // fast the batch evaluates, not what it computes.
  McstFixture f1(83);
  McstFixture f8(83);
  mcts::MctsResult r1, r8;
  {
    ThreadGuard guard(1);
    r1 = run_batched_mcts(f1, 4);
  }
  {
    ThreadGuard guard(8);
    r8 = run_batched_mcts(f8, 4);
  }
  ASSERT_EQ(r1.anchors.size(), r8.anchors.size());
  for (std::size_t i = 0; i < r1.anchors.size(); ++i) {
    EXPECT_EQ(r1.anchors[i].gx, r8.anchors[i].gx) << "anchor " << i;
    EXPECT_EQ(r1.anchors[i].gy, r8.anchors[i].gy) << "anchor " << i;
  }
  EXPECT_EQ(r1.wirelength, r8.wirelength);
  EXPECT_EQ(r1.committed_wirelength, r8.committed_wirelength);
  EXPECT_EQ(r1.nn_evaluations, r8.nn_evaluations);
  EXPECT_EQ(r1.terminal_evaluations, r8.terminal_evaluations);
}

TEST(ParMcts, SerialBatchOneIdenticalAcrossThreadCounts) {
  // eval_batch == 1 is the legacy serial search; with more threads only the
  // bit-identical kernels (SpMV) run in parallel, so everything matches.
  McstFixture f1(84);
  McstFixture f8(84);
  mcts::MctsResult r1, r8;
  {
    ThreadGuard guard(1);
    r1 = run_batched_mcts(f1, 1);
  }
  {
    ThreadGuard guard(8);
    r8 = run_batched_mcts(f8, 1);
  }
  ASSERT_EQ(r1.anchors.size(), r8.anchors.size());
  for (std::size_t i = 0; i < r1.anchors.size(); ++i) {
    EXPECT_EQ(r1.anchors[i].gx, r8.anchors[i].gx) << "anchor " << i;
    EXPECT_EQ(r1.anchors[i].gy, r8.anchors[i].gy) << "anchor " << i;
  }
  EXPECT_EQ(r1.wirelength, r8.wirelength);
}

TEST(ParMcts, BatchedSearchProducesCompleteAllocation) {
  ThreadGuard guard(4);
  McstFixture f(85);
  const mcts::MctsResult result = run_batched_mcts(f, 8);
  EXPECT_EQ(result.anchors.size(), f.context.clustering.macro_groups.size());
  EXPECT_TRUE(std::isfinite(result.wirelength));
  EXPECT_GT(result.wirelength, 0.0);
  EXPECT_GT(result.nn_evaluations, 0);
}

// ---------------------------------------------------------------------------
// RL self-play: parallel windows deterministic across pool sizes
// ---------------------------------------------------------------------------

rl::TrainResult train_once(McstFixture& f, int threads) {
  ThreadGuard guard(threads);
  rl::TrainOptions options;
  options.episodes = 8;
  options.update_window = 4;
  options.calibration_episodes = 5;
  options.parallel_rollouts = true;
  return rl::train_agent(*f.env, *f.evaluator, *f.agent, options);
}

TEST(ParTrainer, ParallelSelfPlayIdenticalAcrossThreadCounts) {
  McstFixture f2(86);
  McstFixture f8(86);
  const rl::TrainResult r2 = train_once(f2, 2);
  const rl::TrainResult r8 = train_once(f8, 8);
  ASSERT_EQ(r2.episodes.size(), r8.episodes.size());
  for (std::size_t i = 0; i < r2.episodes.size(); ++i) {
    EXPECT_EQ(r2.episodes[i].wirelength, r8.episodes[i].wirelength)
        << "episode " << i;
    EXPECT_EQ(r2.episodes[i].reward, r8.episodes[i].reward) << "episode " << i;
  }
  EXPECT_EQ(r2.best_wirelength, r8.best_wirelength);
  EXPECT_EQ(r2.optimizer_steps, r8.optimizer_steps);
}

TEST(ParTrainer, SerialFallbackAtOneThread) {
  // --threads 1 must take the classic serial loop (parallel_rollouts has no
  // effect), still producing a complete training run.
  McstFixture f(87);
  const rl::TrainResult r = train_once(f, 1);
  EXPECT_FALSE(r.episodes.empty());
  EXPECT_GT(r.optimizer_steps, 0);
  EXPECT_TRUE(std::isfinite(r.best_wirelength));
}

}  // namespace
}  // namespace mp
