#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Knobs (see bench/common.hpp): REPRO_SCALE, REPRO_MACRO_SCALE,
# REPRO_EPISODES, REPRO_GAMMA, REPRO_CHANNELS, REPRO_BLOCKS, REPRO_LEAF.
# THREADS (or the MP_THREADS env var) sets the par:: worker-pool size for
# every bench; it is recorded in each JSONL run entry ("threads" field) so
# results stay attributable (see docs/PARALLELISM.md).
#
# Next to each text table a machine-readable JSONL telemetry report
# ($out/<bench>.jsonl, schema in docs/OBSERVABILITY.md) is written via
# MP_OBS_OUT; summarize with scripts/obs_summary.py.  Every bench also
# leaves a BENCH_<name>.json perf artifact in $out (bench/artifact.hpp
# schema, validated by scripts/validate_bench_json.py).
set -euo pipefail

build=${1:-build}
out=${2:-results}
threads=${THREADS:-${MP_THREADS:-}}
mkdir -p "$out"

# BENCH_*.json artifacts: bench::Table emits one per table bench when
# MP_BENCH_JSON is truthy; MP_BENCH_DIR routes all artifacts into $out.
export MP_BENCH_JSON=1
export MP_BENCH_DIR="$out"

thread_args=()
if [[ -n "$threads" ]]; then
  export MP_THREADS="$threads"
  thread_args=(--threads "$threads")
  echo "=== threads: $threads ==="
fi

for b in bench_fig4_reward bench_fig5_mcts_vs_rl bench_table2_industrial \
         bench_table3_iccad04 bench_table4_runtime bench_ablation \
         bench_eco; do
  echo "=== $b ==="
  rm -f "$out/$b.jsonl"
  MP_OBS_OUT="$out/$b.jsonl" "$build/bench/$b" ${thread_args[@]+"${thread_args[@]}"} \
    | tee "$out/$b.txt"
done
# Micro kernels, including the blocked/SIMD vs naive GEMM pair and the
# batched im2col / forward_many series the shared inference engine rides on
# (docs/INFERENCE.md; acceptance: GemmBlocked >= 2x GemmNaive single-thread).
echo "=== bench_micro_kernels ==="
"$build/bench/bench_micro_kernels" --benchmark_min_time=0.1s \
  | tee "$out/bench_micro_kernels.txt" \
  || "$build/bench/bench_micro_kernels" | tee "$out/bench_micro_kernels.txt"

echo "=== bench_service_load ==="
"$build/bench/bench_service_load" --workers "${SVC_WORKERS:-4}" \
  --clients "${SVC_CLIENTS:-16}" ${thread_args[@]+"${thread_args[@]}"} \
  | tee "$out/bench_service_load.txt"

# Shared-inference variant: MCTS jobs on a shared batched engine; the
# infer.* coalescing series land in BENCH_service_load_infer.json
# (docs/INFERENCE.md).
echo "=== bench_service_load --infer ==="
"$build/bench/bench_service_load" --infer --preset mcts \
  --workers "${SVC_WORKERS:-4}" --clients "${SVC_CLIENTS:-16}" \
  ${thread_args[@]+"${thread_args[@]}"} \
  | tee "$out/bench_service_load_infer.txt"

# Fleet variant: same load through an in-process mp_route + TCP backends
# (docs/DISTRIBUTED.md); writes BENCH_service_fleet.json.
echo "=== bench_service_load --router ==="
"$build/bench/bench_service_load" --router \
  --backends "${FLEET_BACKENDS:-3}" --workers "${SVC_WORKERS:-2}" \
  --clients "${SVC_CLIENTS:-16}" ${thread_args[@]+"${thread_args[@]}"} \
  | tee "$out/bench_service_fleet.txt"

# Stray artifacts from benches run outside MP_BENCH_DIR (e.g. a cwd run of
# bench_micro_kernels) are collected too, then everything is schema-checked.
for f in BENCH_*.json; do
  if [[ -e "$f" ]]; then mv "$f" "$out/"; fi
done
python3 "$(dirname "$0")/validate_bench_json.py" "$out"/BENCH_*.json
