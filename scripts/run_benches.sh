#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Knobs (see bench/common.hpp): REPRO_SCALE, REPRO_MACRO_SCALE,
# REPRO_EPISODES, REPRO_GAMMA, REPRO_CHANNELS, REPRO_BLOCKS, REPRO_LEAF.
#
# Next to each text table a machine-readable JSONL telemetry report
# ($out/<bench>.jsonl, schema in docs/OBSERVABILITY.md) is written via
# MP_OBS_OUT; summarize with scripts/obs_summary.py.
set -euo pipefail

build=${1:-build}
out=${2:-results}
mkdir -p "$out"

for b in bench_fig4_reward bench_fig5_mcts_vs_rl bench_table2_industrial \
         bench_table3_iccad04 bench_table4_runtime bench_ablation; do
  echo "=== $b ==="
  rm -f "$out/$b.jsonl"
  MP_OBS_OUT="$out/$b.jsonl" "$build/bench/$b" | tee "$out/$b.txt"
done
"$build/bench/bench_micro_kernels" --benchmark_min_time=0.1s \
  | tee "$out/bench_micro_kernels.txt" \
  || "$build/bench/bench_micro_kernels" | tee "$out/bench_micro_kernels.txt"
