#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Knobs (see bench/common.hpp): REPRO_SCALE, REPRO_MACRO_SCALE,
# REPRO_EPISODES, REPRO_GAMMA, REPRO_CHANNELS, REPRO_BLOCKS, REPRO_LEAF.
# THREADS (or the MP_THREADS env var) sets the par:: worker-pool size for
# every bench; it is recorded in each JSONL run entry ("threads" field) so
# results stay attributable (see docs/PARALLELISM.md).
#
# Next to each text table a machine-readable JSONL telemetry report
# ($out/<bench>.jsonl, schema in docs/OBSERVABILITY.md) is written via
# MP_OBS_OUT; summarize with scripts/obs_summary.py.
set -euo pipefail

build=${1:-build}
out=${2:-results}
threads=${THREADS:-${MP_THREADS:-}}
mkdir -p "$out"

thread_args=()
if [[ -n "$threads" ]]; then
  export MP_THREADS="$threads"
  thread_args=(--threads "$threads")
  echo "=== threads: $threads ==="
fi

for b in bench_fig4_reward bench_fig5_mcts_vs_rl bench_table2_industrial \
         bench_table3_iccad04 bench_table4_runtime bench_ablation; do
  echo "=== $b ==="
  rm -f "$out/$b.jsonl"
  MP_OBS_OUT="$out/$b.jsonl" "$build/bench/$b" ${thread_args[@]+"${thread_args[@]}"} \
    | tee "$out/$b.txt"
done
"$build/bench/bench_micro_kernels" --benchmark_min_time=0.1s \
  | tee "$out/bench_micro_kernels.txt" \
  || "$build/bench/bench_micro_kernels" | tee "$out/bench_micro_kernels.txt"
