#!/usr/bin/env python3
"""Schema check for BENCH_*.json perf artifacts (bench/artifact.hpp).

Usage:
    scripts/validate_bench_json.py results/BENCH_*.json

Validates, stdlib-only, that each file is one JSON object with:
    kind == "bench", schema_version == 1, a non-empty string "name"
    matching its BENCH_<name>.json filename,
    "config"    -- object of string -> string|number,
    "metrics"   -- object of string -> number|null (at least one entry),
    "quantiles" -- object of string -> {"p50","p90","p95","p99"} numbers,
    "threads"   -- positive integer,
    "peak_rss_mb" -- non-negative number.

Exit status 0 when every file passes; 1 with per-file diagnostics otherwise.
Run by scripts/check.sh over the committed artifacts in results/.
"""

import json
import os
import sys

QUANTILE_KEYS = {"p50", "p90", "p95", "p99"}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate(path):
    """Returns a list of error strings (empty = valid)."""
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]

    if doc.get("kind") != "bench":
        err(f'kind must be "bench", got {doc.get("kind")!r}')
    if doc.get("schema_version") != 1:
        err(f"schema_version must be 1, got {doc.get('schema_version')!r}")

    name = doc.get("name")
    if not isinstance(name, str) or not name:
        err(f"name must be a non-empty string, got {name!r}")
    else:
        expected = f"BENCH_{name}.json"
        if os.path.basename(path) != expected:
            err(f"filename should be {expected} for name {name!r}")

    config = doc.get("config")
    if not isinstance(config, dict):
        err("config must be an object")
    else:
        for k, v in config.items():
            if not isinstance(v, str) and not is_number(v):
                err(f"config[{k!r}] must be a string or number, got {type(v).__name__}")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        err("metrics must be an object")
    elif not metrics:
        err("metrics must have at least one entry")
    else:
        for k, v in metrics.items():
            if v is not None and not is_number(v):
                err(f"metrics[{k!r}] must be a number or null, got {type(v).__name__}")

    quantiles = doc.get("quantiles")
    if not isinstance(quantiles, dict):
        err("quantiles must be an object")
    else:
        for metric, qs in quantiles.items():
            if not isinstance(qs, dict):
                err(f"quantiles[{metric!r}] must be an object")
                continue
            if set(qs) != QUANTILE_KEYS:
                err(f"quantiles[{metric!r}] keys must be exactly "
                    f"{sorted(QUANTILE_KEYS)}, got {sorted(qs)}")
            for q, v in qs.items():
                if v is not None and not is_number(v):
                    err(f"quantiles[{metric!r}][{q!r}] must be a number or null")

    threads = doc.get("threads")
    if not is_number(threads) or threads != int(threads) or threads < 1:
        err(f"threads must be a positive integer, got {threads!r}")

    rss = doc.get("peak_rss_mb")
    if not is_number(rss) or rss < 0:
        err(f"peak_rss_mb must be a non-negative number, got {rss!r}")

    # Bench-specific acceptance: the committed ECO artifact must show the
    # regulate flow fully legal, at or below the perturbed input's HPWL, and
    # cheaper than re-placing from scratch (bench/bench_eco.cpp prints the
    # same three predicates as its "acceptance:" line).
    if name == "eco" and isinstance(metrics, dict):
        def metric(key):
            v = metrics.get(key)
            return v if is_number(v) else None

        legal = metric("regulate.legal")
        if legal != 1:
            err(f"eco: regulate.legal must be 1, got {legal!r}")
        reg_hpwl, in_hpwl = metric("regulate.HPWL"), metric("input.HPWL")
        if reg_hpwl is None or in_hpwl is None:
            err("eco: regulate.HPWL and input.HPWL metrics are required")
        elif reg_hpwl > in_hpwl:
            err(f"eco: regulate.HPWL ({reg_hpwl}) exceeds input.HPWL ({in_hpwl})")
        reg_s, scratch_s = metric("regulate.seconds"), metric("scratch.seconds")
        if reg_s is None or scratch_s is None:
            err("eco: regulate.seconds and scratch.seconds metrics are required")
        elif reg_s >= scratch_s:
            err(f"eco: regulate.seconds ({reg_s}) is not faster than "
                f"scratch.seconds ({scratch_s})")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        errors = validate(path)
        if errors:
            failures += 1
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
        else:
            print(f"ok: {path}")
    if failures:
        print(f"{failures} invalid artifact(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
