#!/usr/bin/env python3
"""Summarizes JSONL telemetry reports (docs/OBSERVABILITY.md) as tables.

Usage:
    scripts/obs_summary.py run.jsonl [more.jsonl ...]
    MP_OBS_OUT=run.jsonl build/examples/place_bookshelf ... && \
        scripts/obs_summary.py run.jsonl

For every 'kind:"run"' line, prints the span tree (phase, calls, wall
seconds, self seconds, share of the run — a Table-IV-style runtime
breakdown), the non-zero counters, and histogram summaries with the
quantile columns (p50/p90/p95/p99; files written before the quantile
columns existed render with blanks).  Runs carrying a "ctx" field (service
jobs tag their JSONL line with the owning job id) are grouped per ctx, with
a per-group run count, so a many-job service log reads as one block per
job.  'kind:"table"' lines (bench result tables routed through MP_OBS_OUT
by bench::Table) are re-rendered as text tables.  Stdlib only.
"""

import json
import sys


def fmt(v):
    if v is None:
        return "null"
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def print_spans(spans, total, depth=0):
    for span in spans:
        wall = span.get("wall_s") or 0.0
        share = 100.0 * wall / total if total > 0 else 0.0
        print(f"  {'  ' * depth + span['name']:<38} {span.get('count', 0):>7} "
              f"{wall:>11.4f} {span.get('self_s') or 0.0:>11.4f} {share:>6.1f}%")
        print_spans(span.get("children", []), total, depth + 1)


QUANTILE_COLS = ("p50", "p90", "p95", "p99")


def print_run(doc):
    ctx = doc.get("ctx")
    suffix = f" [ctx {ctx}]" if ctx else ""
    print(f"\n== run: {doc.get('label', '?')}{suffix} ==")
    spans = doc.get("spans", [])
    if spans:
        total = sum(s.get("wall_s") or 0.0 for s in spans)
        print(f"  {'phase':<38} {'calls':>7} {'wall_s':>11} {'self_s':>11} {'%':>7}")
        print_spans(spans, total)
    counters = {k: v for k, v in doc.get("counters", {}).items() if v}
    if counters:
        print("  counters:")
        for name, value in sorted(counters.items()):
            print(f"    {name:<40} {value:>14}")
    histograms = {k: h for k, h in doc.get("histograms", {}).items()
                  if h.get("count")}
    if histograms:
        qheader = "".join(f"{q:>12}" for q in QUANTILE_COLS)
        print(f"    {'histogram':<30} {'count':>8} {'mean':>12}"
              f"{qheader} {'max':>12}")
    for name, h in sorted(histograms.items()):
        # p90/p95 only exist in post-PR-6 reports; older lines show blanks.
        qvals = "".join(f"{fmt(h[q]) if q in h else '':>12}"
                        for q in QUANTILE_COLS)
        print(f"    {name:<30} {h['count']:>8} {fmt(h.get('mean')):>12}"
              f"{qvals} {fmt(h.get('max')):>12}")


def print_table(doc):
    print(f"\n== table: {doc.get('bench', '?')} ==")
    columns = doc.get("columns", [])
    print("  " + f"{'name':<16}" + "".join(f"{c:>14}" for c in columns))
    for row in doc.get("rows", []):
        values = "".join(f"{fmt(v):>14}" for v in row.get("values", []))
        print(f"  {row.get('name', '?'):<16}{values}")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        print(f"# {path}")
        try:
            lines = open(path).read().splitlines()
        except OSError as e:
            print(f"error: {e}", file=sys.stderr)
            status = 1
            continue
        runs, tables, unknowns = [], [], []
        for i, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{i}: {e}", file=sys.stderr)
                status = 1
                continue
            if doc.get("kind") == "run":
                runs.append(doc)
            elif doc.get("kind") == "table":
                tables.append(doc)
            else:
                unknowns.append((i, doc))
        # Per-ctx breakdown: service jobs tag their run line with the job id
        # ("ctx"); group those runs per job, first-seen order.  Untagged runs
        # (pre-PR-6 files, offline CLI) print ungrouped, exactly as before.
        groups, order = {}, []
        for doc in runs:
            key = doc.get("ctx") or ""
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(doc)
        for key in order:
            if key:
                print(f"\n-- ctx {key}: {len(groups[key])} run(s) --")
            for doc in groups[key]:
                print_run(doc)
        for doc in tables:
            print_table(doc)
        for i, doc in unknowns:
            print(f"\n== unknown kind {doc.get('kind')!r} (line {i}) ==")
    return status


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
