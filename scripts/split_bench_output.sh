#!/usr/bin/env bash
# Splits a combined `for b in build/bench/*; do $b; done` transcript
# (bench_output.txt) into per-bench files under results/, keyed on each
# binary's first header line.
set -euo pipefail
in=${1:-bench_output.txt}
out=${2:-results}
mkdir -p "$out"
awk -v out="$out" '
  /^# Ablations/        { f = out "/bench_ablation.txt" }
  /^# Fig\. 4/          { f = out "/bench_fig4_reward.txt" }
  /^# Fig\. 5/          { f = out "/bench_fig5_mcts_vs_rl.txt" }
  /^# Table II /        { f = out "/bench_table2_industrial.txt" }
  /^# Table III/        { f = out "/bench_table3_iccad04.txt" }
  /^# Table IV/         { f = out "/bench_table4_runtime.txt" }
  /^Running .*bench_micro/ { f = out "/bench_micro_kernels.txt" }
  f { print > f }
' "$in"
ls -la "$out"
