#!/usr/bin/env bash
# Correctness gate for the placement flow (docs/CHECKING.md).
#
# Runs, in order:
#   1. A Debug build with AddressSanitizer + UndefinedBehaviorSanitizer and
#      -Werror, then the full ctest suite under it at MP_VALIDATE_LEVEL=2 so
#      the deep structural validators are exercised together with the
#      sanitizers.
#   2. (--tsan) The same under ThreadSanitizer, in its own build tree —
#      TSan cannot be combined with ASan.
#   3. clang-tidy over the compile database, when clang-tidy is installed.
#      Skipped with a notice otherwise (the container ships gcc only).
#
# Build trees live under build-check/ and are reused across runs; use
# --fresh to reconfigure from scratch.  Also reachable as `cmake --build
# build --target check`.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"

JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TSAN=0
FRESH=0
for arg in "$@"; do
  case "${arg}" in
    --tsan) RUN_TSAN=1 ;;
    --fresh) FRESH=1 ;;
    -h|--help)
      echo "usage: scripts/check.sh [--tsan] [--fresh]"
      exit 0
      ;;
    *)
      echo "check.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

note() { printf '\n==== %s ====\n' "$*"; }

# Build + full test suite in one sanitized tree.
run_sanitized() {
  local name="$1" sanitizers="$2"
  local dir="build-check/${name}"
  [[ "${FRESH}" == 1 ]] && rm -rf "${dir}"
  note "${name}: configure (${sanitizers})"
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMP_SANITIZE="${sanitizers}" \
    -DMP_WERROR=ON
  note "${name}: build"
  cmake --build "${dir}" -j "${JOBS}"
  note "${name}: ctest (MP_VALIDATE_LEVEL=2)"
  # halt_on_error: the suite's death tests intentionally abort; only genuine
  # sanitizer reports should fail the run.
  MP_VALIDATE_LEVEL=2 \
  ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_sanitized asan "address;undefined"
if [[ "${RUN_TSAN}" == 1 ]]; then
  run_sanitized tsan "thread"
fi

note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_DIR="build-check/tidy"
  [[ "${FRESH}" == 1 ]] && rm -rf "${TIDY_DIR}"
  cmake -B "${TIDY_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t SOURCES < <(find src tests -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${TIDY_DIR}" "${SOURCES[@]}"
  else
    clang-tidy -quiet -p "${TIDY_DIR}" "${SOURCES[@]}"
  fi
else
  echo "clang-tidy not installed; skipping static analysis pass" >&2
fi

note "check.sh: all gates passed"
