#!/usr/bin/env bash
# Correctness gate for the placement flow (docs/CHECKING.md).
#
# Runs, in order:
#   1. mplint, the in-repo static analyzer (docs/CHECKING.md "Static
#      analysis: mplint"): determinism bans (raw rand / wall-clock /
#      unordered iteration in result-affecting dirs), lock discipline
#      (annotation coverage on every mutex, RAII-only locking), and header
#      hygiene.  Runs first because it is by far the cheapest gate — a
#      finding fails the run before any sanitizer tree configures.  Needs
#      only a C++17 compiler; works on the plain-gcc container.
#   2. A Debug build with AddressSanitizer + UndefinedBehaviorSanitizer and
#      -Werror, then the full ctest suite under it at MP_VALIDATE_LEVEL=2 so
#      the deep structural validators are exercised together with the
#      sanitizers.
#   3. A service smoke under the same ASan/UBSan build: boots mp_serve on a
#      throwaway socket, pushes a 4-job mixed-preset smoke through
#      mp_submit — including a schema-2 ECO (regulate) job submitted twice,
#      whose resubmission must hit the placement and prepared-artifact
#      caches — then SIGTERMs the daemon and verifies a clean drain (all
#      jobs done, exit 0, socket unlinked) — see docs/SERVICE.md.
#   4. A ThreadSanitizer build (its own tree — TSan cannot be combined with
#      ASan) running the `par`-, `svc`-, `obs`-, `net`-, `infer`- and
#      `eco`-labelled suites (ctest -L
#      "par|svc|obs|net|infer|eco") at MP_THREADS=4 MP_WORKERS=4: the thread pool, the
#      lock-free obs metrics, every parallelized hot path
#      (docs/PARALLELISM.md), and the concurrent placement service — four
#      workers chewing through mixed-preset jobs with mid-run cancels,
#      thread-budget leases, and the in-flight-deduplicating artifact cache
#      (docs/SERVICE.md).  This leg is on by DEFAULT; pass --tsan to run the
#      FULL suite under TSan instead (slower), or --no-tsan to skip the
#      TSan leg entirely.
#   5. Schema validation of the committed perf artifacts
#      (results/BENCH_*.json) via scripts/validate_bench_json.py — stdlib
#      python only, skipped with a notice when none are present.
#   6. clang-tidy over the compile database, when clang-tidy is installed.
#      Skipped with a notice otherwise (the container ships gcc only).
#
# Build trees live under build-check/ and are reused across runs; use
# --fresh to reconfigure from scratch.  Also reachable as `cmake --build
# build --target check`.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"

JOBS="$(nproc 2>/dev/null || echo 4)"
TSAN_MODE=par   # par = `ctest -L "par|svc|obs"` under TSan (default); full; off
FRESH=0
for arg in "$@"; do
  case "${arg}" in
    --tsan) TSAN_MODE=full ;;
    --no-tsan) TSAN_MODE=off ;;
    --fresh) FRESH=1 ;;
    -h|--help)
      echo "usage: scripts/check.sh [--tsan|--no-tsan] [--fresh]"
      echo
      echo "Stages, in order: mplint static analysis (fails fast; also"
      echo "reachable as 'cmake --build build --target lint'), ASan/UBSan"
      echo "build + full ctest, mp_serve smoke, TSan leg, bench-artifact"
      echo "schema validation, clang-tidy (when installed)."
      echo
      echo "  --tsan     run the FULL suite under TSan (default: par|svc|obs)"
      echo "  --no-tsan  skip the TSan leg"
      echo "  --fresh    reconfigure the build-check/ trees from scratch"
      exit 0
      ;;
    *)
      echo "check.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

note() { printf '\n==== %s ====\n' "$*"; }

# Build one sanitized tree and run ctest in it; a third argument narrows the
# run to that ctest label (-L).
run_sanitized() {
  local name="$1" sanitizers="$2" label="${3:-}"
  local dir="build-check/${name}"
  local label_args=()
  [[ -n "${label}" ]] && label_args=(-L "${label}")
  [[ "${FRESH}" == 1 ]] && rm -rf "${dir}"
  note "${name}: configure (${sanitizers})"
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DMP_SANITIZE="${sanitizers}" \
    -DMP_WERROR=ON
  note "${name}: build"
  cmake --build "${dir}" -j "${JOBS}"
  note "${name}: ctest (MP_VALIDATE_LEVEL=2${label:+, -L ${label}})"
  # halt_on_error: the suite's death tests intentionally abort; only genuine
  # sanitizer reports should fail the run.
  MP_VALIDATE_LEVEL=2 \
  ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
  UBSAN_OPTIONS="print_stacktrace=1" \
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
      ${label_args[@]+"${label_args[@]}"}
}

# Boots the sanitized mp_serve daemon, runs a 4-job smoke through mp_submit
# (one mcts whose placement seeds a schema-2 regulate job submitted twice —
# the warm resubmission must hit the placement + prepared caches — then one
# sa; all tiny synthetic designs), then SIGTERMs with the last job still in
# flight and verifies the graceful drain: all jobs done, exit status 0, no
# stale socket.  Every step fails the gate on a non-zero exit (set -euo
# pipefail above).
svc_smoke() {
  local dir="build-check/asan"
  local sock="${TMPDIR:-/tmp}/mp_check_svc_$$.sock"
  local log="build-check/svc_smoke.log"
  local base='"synthetic":{"movable_macros":8,"std_cells":300,"nets":400,"io_pads":16,"seed":5},"episodes":6,"gamma":4,"grid":8,"channels":8,"blocks":1'
  rm -f "${sock}"
  ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1" \
  UBSAN_OPTIONS="print_stacktrace=1" \
    "${dir}/examples/mp_serve" --socket "${sock}" --workers 2 >"${log}" 2>&1 &
  local pid=$!
  local up=0
  for _ in $(seq 1 300); do
    [[ -S "${sock}" ]] && { up=1; break; }
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.1
  done
  if [[ "${up}" != 1 ]]; then
    echo "svc: mp_serve did not come up; log follows" >&2
    cat "${log}" >&2
    kill "${pid}" 2>/dev/null || true
    return 1
  fi
  local out_prefix="${TMPDIR:-/tmp}/mp_check_eco_$$"
  "${dir}/examples/mp_submit" --socket "${sock}" \
    submit "{${base},\"preset\":\"mcts\",\"out\":\"${out_prefix}\"}" --wait
  # ECO leg: the mcts job's placement becomes a schema-2 regulate job's
  # incumbent.  Submitted twice — the resubmission must ride the warm
  # cache (design, placement, and prepared-regulate artifacts all hit).
  local eco="{${base},\"schema\":2,\"preset\":\"regulate\",\"initial_placement\":\"${out_prefix}.pl\"}"
  "${dir}/examples/mp_submit" --socket "${sock}" submit "${eco}" --wait
  "${dir}/examples/mp_submit" --socket "${sock}" submit "${eco}" --wait
  local stats
  stats="$("${dir}/examples/mp_submit" --socket "${sock}" stats)"
  for counter in placement_hits prepared_hits; do
    local n
    n="$(printf '%s' "${stats}" | grep -o "\"${counter}\":[0-9]*" \
      | head -1 | cut -d: -f2)"
    if [[ -z "${n}" || "${n}" -lt 1 ]]; then
      echo "svc: warm ECO resubmission did not hit the ${counter%_hits} cache" >&2
      echo "${stats}" >&2
      rm -f "${out_prefix}".*
      return 1
    fi
  done
  rm -f "${out_prefix}".*
  # Left in flight on purpose: the drain below must run it to completion.
  "${dir}/examples/mp_submit" --socket "${sock}" \
    submit "{${base},\"preset\":\"sa\"}"
  kill -TERM "${pid}"
  local status=0
  wait "${pid}" || status=$?
  if [[ "${status}" != 0 ]]; then
    echo "svc: mp_serve exited ${status} after SIGTERM; log follows" >&2
    cat "${log}" >&2
    return 1
  fi
  if ! grep -q "drained (4 done, 0 failed, 0 cancelled)" "${log}"; then
    echo "svc: unexpected drain summary; log follows" >&2
    cat "${log}" >&2
    return 1
  fi
  if [[ -e "${sock}" ]]; then
    echo "svc: stale socket ${sock} left behind after drain" >&2
    return 1
  fi
}

# Stage 1: mplint.  Cheapest gate by orders of magnitude (a static library +
# one small binary, no sanitizers), so a determinism or lock-discipline
# finding fails the run before any sanitizer tree even configures.
run_lint() {
  local dir="build-check/lint"
  [[ "${FRESH}" == 1 ]] && rm -rf "${dir}"
  note "lint: build mplint"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" --target mplint -j "${JOBS}"
  note "lint: mplint over src/ (determinism, locks, header hygiene)"
  "${dir}/tools/mplint/mplint" --root "${ROOT}"
}

# Fleet smoke under the same ASan/UBSan build (docs/DISTRIBUTED.md): two
# TCP backends behind an mp_route coordinator.  Submits one job through the
# router, kills the backend that ran it, then submits a second job and asks
# for the first one's result again — the router must fail over to the
# surviving backend (re-submitting in-flight work to the ring successor) and
# both jobs must come back done.
fleet_smoke() {
  local dir="build-check/asan"
  local log="build-check/fleet_smoke.log"
  local base='"synthetic":{"movable_macros":8,"std_cells":300,"nets":400,"io_pads":16,"seed":5},"episodes":6,"gamma":4,"grid":8,"channels":8,"blocks":1'
  local san_env=(env
    ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
    UBSAN_OPTIONS="print_stacktrace=1")
  : >"${log}"

  # Backends on ephemeral ports; their bound URIs are printed on stdout as
  # "mp_serve: listening on tcp:127.0.0.1:PORT ...".
  local b1_log="build-check/fleet_b1.log" b2_log="build-check/fleet_b2.log"
  "${san_env[@]}" "${dir}/examples/mp_serve" --listen tcp:127.0.0.1:0 \
    --workers 2 >"${b1_log}" 2>&1 &
  local b1_pid=$!
  "${san_env[@]}" "${dir}/examples/mp_serve" --listen tcp:127.0.0.1:0 \
    --workers 2 >"${b2_log}" 2>&1 &
  local b2_pid=$!
  local b1_uri="" b2_uri=""
  for _ in $(seq 1 300); do
    b1_uri="$(sed -n 's/.*listening on \(tcp:[^ ]*\).*/\1/p' "${b1_log}" | head -1)"
    b2_uri="$(sed -n 's/.*listening on \(tcp:[^ ]*\).*/\1/p' "${b2_log}" | head -1)"
    [[ -n "${b1_uri}" && -n "${b2_uri}" ]] && break
    sleep 0.1
  done
  if [[ -z "${b1_uri}" || -z "${b2_uri}" ]]; then
    echo "fleet: backends did not come up" >&2
    cat "${b1_log}" "${b2_log}" >&2
    kill "${b1_pid}" "${b2_pid}" 2>/dev/null || true
    return 1
  fi

  local router_log="build-check/fleet_route.log"
  "${san_env[@]}" "${dir}/examples/mp_route" --listen tcp:127.0.0.1:0 \
    --backends "${b1_uri},${b2_uri}" --health-period 0.1 \
    >"${router_log}" 2>&1 &
  local route_pid=$!
  local route_uri=""
  for _ in $(seq 1 300); do
    route_uri="$(sed -n 's/.*listening on \(tcp:[^ ]*\).*/\1/p' "${router_log}" | head -1)"
    [[ -n "${route_uri}" ]] && break
    sleep 0.1
  done
  if [[ -z "${route_uri}" ]]; then
    echo "fleet: mp_route did not come up" >&2
    cat "${router_log}" >&2
    kill "${b1_pid}" "${b2_pid}" "${route_pid}" 2>/dev/null || true
    return 1
  fi

  local cleanup_pids=("${b1_pid}" "${b2_pid}" "${route_pid}")
  local status=0
  (
    set -euo pipefail
    # Job 1 through the router; the submit reply (no --wait) names the
    # backend the ring chose.  Wait for completion via `result` so the kill
    # below hits a backend that holds a finished job's only result copy.
    reply="$("${dir}/examples/mp_submit" --endpoint "${route_uri}" \
      submit "{${base},\"preset\":\"mcts\"}")"
    echo "fleet: job1 ${reply}" >>"${log}"
    job1="$(printf '%s' "${reply}" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
    victim="$(printf '%s' "${reply}" | sed -n 's/.*"backend":"\([^"]*\)".*/\1/p')"
    [[ -n "${job1}" && -n "${victim}" ]]
    "${dir}/examples/mp_submit" --endpoint "${route_uri}" \
      result "${job1}" --timeout 300 >>"${log}"

    # Kill the backend that owns job 1.
    if [[ "${victim}" == "${b1_uri}" ]]; then kill -KILL "${b1_pid}";
    else kill -KILL "${b2_pid}"; fi

    # The router must detect the loss, re-submit job 1 to the survivor, and
    # keep serving: both its result and a brand-new job succeed.
    "${dir}/examples/mp_submit" --endpoint "${route_uri}" \
      result "${job1}" --timeout 300 >>"${log}"
    "${dir}/examples/mp_submit" --endpoint "${route_uri}" \
      submit "{${base},\"preset\":\"sa\"}" --wait >>"${log}"
  ) || status=$?
  kill "${cleanup_pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  if [[ "${status}" != 0 ]]; then
    echo "fleet: smoke failed; logs follow" >&2
    cat "${log}" "${router_log}" >&2
    return 1
  fi
}

run_lint
run_sanitized asan "address;undefined"
note "svc: mp_serve smoke (2 jobs + SIGTERM drain, ASan/UBSan)"
svc_smoke
note "fleet: mp_route smoke (2 TCP backends, backend kill + failover)"
fleet_smoke
case "${TSAN_MODE}" in
  # Exercise the pool, shared-tree/self-play paths, AND the concurrent
  # service (4 scheduler workers — the svc-labelled stress submits 8
  # mixed-preset jobs and cancels two mid-run) with several threads even on
  # small CI machines.
  par)  MP_THREADS="${MP_THREADS:-4}" MP_WORKERS="${MP_WORKERS:-4}" \
          run_sanitized tsan "thread" "par|svc|obs|net|infer|eco" ;;
  full) MP_THREADS="${MP_THREADS:-4}" MP_WORKERS="${MP_WORKERS:-4}" \
          run_sanitized tsan "thread" ;;
  off)  note "tsan: skipped (--no-tsan)" ;;
esac

note "bench artifacts: schema validation (results/BENCH_*.json)"
BENCH_ARTIFACTS=(results/BENCH_*.json)
if [[ -e "${BENCH_ARTIFACTS[0]}" ]]; then
  python3 scripts/validate_bench_json.py "${BENCH_ARTIFACTS[@]}"
else
  echo "no results/BENCH_*.json artifacts present; skipping" >&2
fi

note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_DIR="build-check/tidy"
  [[ "${FRESH}" == 1 ]] && rm -rf "${TIDY_DIR}"
  cmake -B "${TIDY_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t SOURCES < <(find src tests -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "${TIDY_DIR}" "${SOURCES[@]}"
  else
    clang-tidy -quiet -p "${TIDY_DIR}" "${SOURCES[@]}"
  fi
else
  echo "clang-tidy not installed; skipping static analysis pass" >&2
fi

note "check.sh: all gates passed"
