#!/usr/bin/env python3
"""Renders the Fig. 4 / Fig. 5 bench outputs as dependency-free SVG charts.

Usage:
    scripts/plot_curves.py results/bench_fig4_reward.txt fig4.svg
    scripts/plot_curves.py results/bench_fig5_mcts_vs_rl.txt fig5.svg

Fig. 4 files contain '## reward=<label>' blocks with
'episode reward wirelength reward_ma10' rows; the chart plots the moving
average per block.  Fig. 5 files contain '## <circuit>' blocks with
'episode rl_reward mcts_reward ...' rows; the chart plots both curves per
circuit.
"""

import sys

PALETTE = ["#d55e00", "#0072b2", "#009e73", "#cc79a7", "#e69f00", "#56b4e9"]


def parse_blocks(path):
    """Returns [(label, [row-of-floats, ...]), ...]."""
    blocks = []
    label = None
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line.startswith("##"):
                if label is not None and rows:
                    blocks.append((label, rows))
                label = line.lstrip("# ").strip()
                rows = []
                continue
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                rows.append([float(p) for p in parts])
            except ValueError:
                continue  # header row
    if label is not None and rows:
        blocks.append((label, rows))
    return blocks


def svg_chart(series, title, width=720, height=420, margin=60):
    """series: [(label, [(x, y), ...]), ...] -> SVG string."""
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    if not xs:
        raise SystemExit("no data parsed")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    pad = (y1 - y0) * 0.08
    y0, y1 = y0 - pad, y1 + pad

    def px(x):
        return margin + (x - x0) / (x1 - x0) * (width - 2 * margin)

    def py(y):
        return height - margin - (y - y0) / (y1 - y0) * (height - 2 * margin)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="24" text-anchor="middle" '
        f'font-size="15">{title}</text>',
    ]
    # Axes.
    out.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="#333"/>')
    out.append(
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{height - margin}" stroke="#333"/>')
    for i in range(5):
        y = y0 + (y1 - y0) * i / 4
        out.append(
            f'<text x="{margin - 6}" y="{py(y) + 4}" text-anchor="end">'
            f'{y:.3g}</text>')
        out.append(
            f'<line x1="{margin}" y1="{py(y)}" x2="{width - margin}" '
            f'y2="{py(y)}" stroke="#ddd"/>')
        x = x0 + (x1 - x0) * i / 4
        out.append(
            f'<text x="{px(x)}" y="{height - margin + 18}" '
            f'text-anchor="middle">{x:.3g}</text>')
    # Series.
    for k, (label, pts) in enumerate(series):
        color = PALETTE[k % len(PALETTE)]
        path = " ".join(
            f'{"M" if i == 0 else "L"}{px(x):.1f},{py(y):.1f}'
            for i, (x, y) in enumerate(pts))
        out.append(f'<path d="{path}" fill="none" stroke="{color}" '
                   f'stroke-width="1.8"/>')
        ly = margin + 16 * k
        out.append(f'<rect x="{width - margin - 170}" y="{ly - 9}" width="12" '
                   f'height="12" fill="{color}"/>')
        out.append(f'<text x="{width - margin - 152}" y="{ly + 2}">'
                   f'{label}</text>')
    out.append("</svg>")
    return "\n".join(out)


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    in_path, out_path = sys.argv[1], sys.argv[2]
    blocks = parse_blocks(in_path)
    series = []
    for label, rows in blocks:
        if rows and len(rows[0]) >= 4 and "reward=" in label:
            # Fig. 4 block: plot the moving average (column 3).
            series.append((label, [(r[0], r[3]) for r in rows]))
        elif rows and len(rows[0]) >= 3:
            # Fig. 5 block: plot rl and mcts rewards.
            series.append((label + " rl", [(r[0], r[1]) for r in rows]))
            series.append((label + " mcts", [(r[0], r[2]) for r in rows]))
    with open(out_path, "w") as f:
        f.write(svg_chart(series, in_path.split("/")[-1]))
    print(f"wrote {out_path} ({len(series)} series)")


if __name__ == "__main__":
    main()
