// Fig. 5 reproduction: rewards achieved by MCTS guided by a *partially
// trained* agent vs the RL result at the same training stage, for ibm01-like
// and ibm06-like circuits.
//
// The paper checkpoints the agent every 35 training iterations; we snapshot
// at evenly spaced checkpoints, and at each checkpoint measure
//   rl_reward    — greedy rollout of the policy (the blue curve)
//   mcts_reward  — MCTS guided by the same checkpoint (the red dashed curve)
// Expected shape: mcts >= rl at every stage, and early-stage MCTS is already
// close to the final RL reward.

#include <cstdio>

#include "common.hpp"
#include "mcts/mcts.hpp"
#include "nn/serialize.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

using namespace mp;

namespace {

void run_circuit(std::size_t preset_index) {
  const bench::Budgets budgets = bench::budgets();
  benchgen::BenchSpec spec = bench::scale_macros(
      benchgen::iccad04_spec(preset_index, bench::cell_scale()));
  const int episodes =
      util::env_int("REPRO_FIG5_EPISODES", std::max(24, budgets.episodes * 2));
  const int num_checkpoints = 4;
  const int checkpoint_every = std::max(1, episodes / num_checkpoints);

  std::printf("\n## %s-like (macros=%d, episodes=%d, checkpoint every %d)\n",
              spec.name.c_str(), spec.movable_macros, episodes,
              checkpoint_every);

  netlist::Design design = benchgen::generate(spec);
  place::FlowOptions flow;
  flow.grid_dim = 16;
  flow.initial_gp.max_iterations = 6;
  place::FlowContext context = place::prepare_flow(design, flow);
  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);

  rl::AgentConfig agent_config;
  agent_config.grid_dim = 16;
  agent_config.channels = budgets.channels;
  agent_config.res_blocks = budgets.blocks;
  rl::AgentNetwork agent(agent_config);

  // Train, snapshotting parameters at checkpoints.
  std::vector<std::pair<int, std::vector<nn::Tensor>>> checkpoints;
  rl::TrainOptions options;
  options.episodes = episodes;
  options.update_window = std::min(30, std::max(3, episodes / 8));
  options.calibration_episodes = budgets.calibration;
  options.on_episode = [&](int episode, double, double) {
    if ((episode + 1) % checkpoint_every == 0) {
      checkpoints.emplace_back(episode + 1,
                               nn::snapshot_parameters(agent.parameters()));
    }
  };
  const rl::TrainResult train_result =
      rl::train_agent(env, evaluator, agent, options);
  const rl::RewardFn reward = train_result.calibration.make_reward(0.75);

  bench::Table table("fig5_" + spec.name, "episode",
                     {"rl_reward", "mcts_reward", "rl_wl", "mcts_wl"});
  for (const auto& [episode, snapshot] : checkpoints) {
    nn::restore_parameters(agent.parameters(), snapshot);
    std::vector<grid::CellCoord> anchors;
    const double rl_wl = rl::play_greedy_episode(env, evaluator, agent, anchors);

    mcts::MctsOptions mcts_options;
    mcts_options.explorations_per_move = budgets.gamma;
    mcts_options.leaf_evaluation = bench::leaf_evaluation();
    mcts::MctsPlacer placer(env, evaluator, agent, reward, mcts_options);
    const mcts::MctsResult mcts_result = placer.run();

    table.row(std::to_string(episode),
              {reward(rl_wl), mcts_result.reward, rl_wl,
               mcts_result.wirelength});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  std::printf("# Fig. 5 — MCTS guided by partially trained agents vs RL\n");
  run_circuit(0);  // ibm01
  run_circuit(4);  // ibm06
  return 0;
}
