// Table IV reproduction: runtime of the MCTS placement-optimization stage
// per ICCAD04-like benchmark.  The paper trains agents to convergence first
// (3-10 h GPU) and reports the MCTS stage runtime only; we train briefly
// (the MCTS runtime does not depend on training quality) and time the MCTS
// stage.  Expected shape: runtime grows with the number of macro groups.

#include <cstdio>

#include "common.hpp"
#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"
#include "util/timer.hpp"

using namespace mp;

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  const bench::Budgets budgets = bench::budgets();
  std::printf(
      "# Table IV — MCTS stage runtime per circuit (gamma=%d, macro_scale=%.2f)\n",
      budgets.gamma, bench::macro_scale());
  bench::Table table("table4_runtime", "circuit",
                     {"macros", "groups", "mcts_sec", "nn_evals",
                      "terminal_evals"});

  const int circuits = util::env_int(
      "REPRO_TABLE4_CIRCUITS",
      static_cast<int>(benchgen::iccad04_names().size()));
  for (int i = 0; i < circuits; ++i) {
    const benchgen::BenchSpec spec = bench::scale_macros(
        benchgen::iccad04_spec(static_cast<std::size_t>(i),
                               bench::cell_scale()));
    netlist::Design design = benchgen::generate(spec);
    place::FlowOptions flow;
    flow.grid_dim = 16;
    flow.initial_gp.max_iterations = 6;
    place::FlowContext context = place::prepare_flow(design, flow);
    rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
    rl::CoarseEvaluator evaluator(context.coarse, context.spec);

    rl::AgentConfig agent_config;
    agent_config.grid_dim = 16;
    agent_config.channels = budgets.channels;
    agent_config.res_blocks = budgets.blocks;
    rl::AgentNetwork agent(agent_config);
    rl::TrainOptions train;
    train.episodes = std::max(6, budgets.episodes / 2);
    train.update_window = 3;
    train.calibration_episodes = std::max(5, budgets.calibration / 2);
    const rl::TrainResult tr = rl::train_agent(env, evaluator, agent, train);

    mcts::MctsOptions mcts_options;
    mcts_options.explorations_per_move = budgets.gamma;
    mcts_options.leaf_evaluation = bench::leaf_evaluation();
    util::Timer timer;
    mcts::MctsPlacer placer(env, evaluator, agent,
                            tr.calibration.make_reward(0.75), mcts_options);
    const mcts::MctsResult result = placer.run();
    table.row(spec.name,
              {static_cast<double>(spec.movable_macros),
               static_cast<double>(context.clustering.macro_groups.size()),
               timer.seconds(), static_cast<double>(result.nn_evaluations),
               static_cast<double>(result.terminal_evaluations)});
  }
  return 0;
}
