// Ablations of the paper's design choices (DESIGN.md §2, "ablation" row),
// all on one mid-size ICCAD04-like circuit:
//   A. macro grouping on/off           (Sec. II-A's complexity reduction)
//   B. value-network evaluation vs random-rollout evaluation in MCTS
//      (Sec. IV-B3's runtime reduction)  — measured via γ at equal budget
//   C. PUCT exploration constant c sweep (Eq. 11; paper uses 1.05)
//   D. γ (explorations per move) sweep   (quality/runtime trade)

#include <cstdio>

#include "common.hpp"
#include "mcts/mcts.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"
#include "util/timer.hpp"

using namespace mp;

namespace {

struct Prepared {
  netlist::Design design;
  place::FlowContext context;
  std::unique_ptr<rl::PlacementEnv> env;
  std::unique_ptr<rl::CoarseEvaluator> evaluator;
  std::unique_ptr<rl::AgentNetwork> agent;
  rl::TrainResult train_result;
};

Prepared prepare(bool grouping, int episodes) {
  const bench::Budgets budgets = bench::budgets();
  benchgen::BenchSpec spec =
      bench::scale_macros(benchgen::iccad04_spec(4, bench::cell_scale()));
  Prepared p;
  p.design = benchgen::generate(spec);
  place::FlowOptions flow;
  flow.grid_dim = 16;
  flow.initial_gp.max_iterations = 6;
  if (!grouping) flow.cluster.nu = 1e12;  // every macro its own group
  p.context = place::prepare_flow(p.design, flow);
  p.env = std::make_unique<rl::PlacementEnv>(p.context.coarse,
                                             p.context.clustering,
                                             p.context.spec);
  p.evaluator =
      std::make_unique<rl::CoarseEvaluator>(p.context.coarse, p.context.spec);
  rl::AgentConfig agent_config;
  agent_config.grid_dim = 16;
  agent_config.channels = budgets.channels;
  agent_config.res_blocks = budgets.blocks;
  p.agent = std::make_unique<rl::AgentNetwork>(agent_config);
  rl::TrainOptions train;
  train.episodes = episodes;
  train.update_window = std::max(3, episodes / 4);
  train.calibration_episodes = budgets.calibration;
  p.train_result = rl::train_agent(*p.env, *p.evaluator, *p.agent, train);
  return p;
}

double run_mcts(Prepared& p, int gamma, double c_puct, double* seconds,
                mcts::LeafEvaluation leaf = mcts::LeafEvaluation::kPartialPlacement) {
  mcts::MctsOptions options;
  options.explorations_per_move = gamma;
  options.c_puct = c_puct;
  options.leaf_evaluation = leaf;
  util::Timer timer;
  mcts::MctsPlacer placer(*p.env, *p.evaluator, *p.agent,
                          p.train_result.calibration.make_reward(0.75),
                          options);
  const mcts::MctsResult result = placer.run();
  if (seconds != nullptr) *seconds = timer.seconds();
  return result.wirelength;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  const bench::Budgets budgets = bench::budgets();
  std::printf("# Ablations on ibm06-like (episodes=%d gamma=%d)\n",
              budgets.episodes, budgets.gamma);

  // --- A: grouping on/off --------------------------------------------------
  {
    std::printf("\n## A. macro grouping (Sec. II-A)\n");
    bench::Table table("ablation_grouping", "variant",
                       {"groups", "train_s", "mcts_s", "coarse_wl"});
    for (const bool grouping : {true, false}) {
      util::Timer train_timer;
      Prepared p = prepare(grouping, budgets.episodes);
      const double train_seconds = train_timer.seconds();
      double mcts_seconds = 0.0;
      const double wl = run_mcts(p, budgets.gamma, 1.05, &mcts_seconds);
      table.row(grouping ? "grouped" : "per-macro",
                {static_cast<double>(p.context.clustering.macro_groups.size()),
                 train_seconds, mcts_seconds, wl});
    }
  }

  Prepared p = prepare(true, budgets.episodes);

  // --- C: PUCT constant sweep ---------------------------------------------
  {
    std::printf("\n## C. PUCT constant c (Eq. 11; paper c=1.05)\n");
    bench::Table table("ablation_c_puct", "c", {"coarse_wl"});
    for (const double c : {0.1, 0.5, 1.05, 2.0, 5.0}) {
      const double wl = run_mcts(p, budgets.gamma, c, nullptr);
      char label[16];
      std::snprintf(label, sizeof(label), "%.2f", c);
      table.row(label, {wl});
    }
  }

  // --- D: gamma sweep -------------------------------------------------------
  {
    std::printf("\n## D. explorations per move (gamma)\n");
    bench::Table table("ablation_gamma", "gamma", {"coarse_wl", "mcts_s"});
    for (const int gamma : {1, 4, 8, 16, 32}) {
      double seconds = 0.0;
      const double wl = run_mcts(p, gamma, 1.05, &seconds);
      table.row(std::to_string(gamma), {wl, seconds});
    }
  }

  // --- B: leaf-evaluation modes ---------------------------------------------
  // The paper replaces random rollouts with value-network evaluation for
  // runtime (Sec. IV-B3).  Compare the three modes at equal γ: the paper's
  // value-net (fast; needs training), the QP completion estimate (the bench
  // default at CPU budgets) and the traditional random rollout (slowest).
  {
    std::printf("\n## B. leaf evaluation mode (Sec. IV-B3), equal gamma\n");
    bench::Table table("ablation_leaf_eval", "mode", {"coarse_wl", "mcts_s"});
    const struct {
      const char* name;
      mcts::LeafEvaluation mode;
    } modes[] = {
        {"value-net", mcts::LeafEvaluation::kValueNetwork},
        {"partial-qp", mcts::LeafEvaluation::kPartialPlacement},
        {"random-rollout", mcts::LeafEvaluation::kRandomRollout},
    };
    for (const auto& m : modes) {
      double seconds = 0.0;
      const double wl = run_mcts(p, budgets.gamma, 1.05, &seconds, m.mode);
      table.row(m.name, {wl, seconds});
    }
  }

  // Per-call costs backing the paper's runtime argument.
  {
    std::printf("\n## B2. evaluation cost per call\n");
    util::Timer timer;
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      std::vector<grid::CellCoord> anchors(
          p.context.clustering.macro_groups.size(), {i % 16, (i / 2) % 16});
      p.evaluator->evaluate(anchors);
    }
    const double eval_ms = timer.milliseconds() / reps;
    timer.reset();
    const std::vector<double> sp = p.env->placement_state();
    const std::vector<double> avail(sp.size(), 1.0);
    for (int i = 0; i < reps; ++i) {
      p.agent->forward(sp, avail, 0, p.env->num_steps(), false);
    }
    const double nn_ms = timer.milliseconds() / reps;
    std::printf("value-net call: %8.3f ms   full coarse placement: %8.3f ms "
                "  ratio %.1fx\n",
                nn_ms, eval_ms, eval_ms / std::max(1e-9, nn_ms));
  }
  return 0;
}
