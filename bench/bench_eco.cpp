// ECO / incremental re-placement bench (preset=regulate): place a synthetic
// design from scratch, apply a netlist delta (benchgen::perturb — added and
// removed nets against the incumbent placement), then measure how much of
// the destroyed HPWL the regulate preset recovers and how much cheaper it is
// than re-placing from scratch.  Rows:
//   scratch   — from-scratch mcts on the base netlist (the incumbent)
//   input     — the incumbent placement evaluated on the perturbed netlist
//   regulate  — trust-region refinement of the incumbent on the perturbed
//               netlist (must end fully legal, HPWL <= input, and run
//               faster than the from-scratch flow)
// Writes BENCH_eco.json under MP_BENCH_JSON (scripts/run_benches.sh).

#include <cstdio>

#include "benchgen/generator.hpp"
#include "common.hpp"
#include "place/placer.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  bench::init_threads(argc, argv);

  const bench::Budgets b = bench::budgets();
  benchgen::BenchSpec base_spec;
  base_spec.name = "eco";
  base_spec.movable_macros =
      std::max(6, static_cast<int>(24 * bench::macro_scale()));
  base_spec.io_pads = 32;
  base_spec.std_cells = std::max(60, static_cast<int>(
      2000 * bench::cell_scale()));
  base_spec.nets = std::max(80, static_cast<int>(
      2600 * bench::cell_scale()));
  base_spec.seed = 7;
  netlist::Design base = benchgen::generate(base_spec);

  place::PresetKnobs knobs;
  knobs.episodes = b.episodes;
  knobs.gamma = b.gamma;
  knobs.channels = b.channels;
  knobs.blocks = b.blocks;

  // From-scratch incumbent: the paper flow on the base netlist.
  const place::PlacerSpec scratch_spec =
      place::spec_from_preset(place::Preset::kMcts, knobs);
  const place::PlaceResult scratch = place::run(base, scratch_spec);
  const bool scratch_legal =
      base.macro_overlap_area() == 0.0 && base.all_inside_region();

  // The ECO delta: new connectivity tugging on the macros, some nets gone.
  benchgen::PerturbSpec delta;
  delta.seed = 11;
  delta.add_nets = std::max(8, static_cast<int>(base.num_nets()) / 10);
  delta.remove_nets = std::max(4, static_cast<int>(base.num_nets()) / 20);
  netlist::Design perturbed = benchgen::perturb(base, delta);
  const double input_hpwl = perturbed.total_hpwl();

  // Regulate: same budgets through the same shared derivation.
  const place::PlacerSpec regulate_spec =
      place::spec_from_preset(place::Preset::kRegulate, knobs);
  const place::PlaceResult regulate = place::run(perturbed, regulate_spec);
  const bool regulate_legal = perturbed.macro_overlap_area() == 0.0 &&
                              perturbed.all_inside_region();

  {
    bench::Table table("eco", "flow",
                       {"HPWL", "seconds", "legal", "moved_groups"});
    table.row("scratch", {scratch.hpwl, scratch.seconds,
                          scratch_legal ? 1.0 : 0.0, 0.0});
    table.row("input", {input_hpwl, 0.0, 1.0, 0.0});
    table.row("regulate",
              {regulate.hpwl, regulate.seconds, regulate_legal ? 1.0 : 0.0,
               static_cast<double>(regulate.moved_groups)});
  }

  const double recovered =
      input_hpwl > 0.0 ? (input_hpwl - regulate.hpwl) / input_hpwl : 0.0;
  std::printf("\nregulate: input HPWL %.6g -> %.6g (%.2f%% recovered), "
              "%.1fx faster than scratch\n",
              input_hpwl, regulate.hpwl, 100.0 * recovered,
              regulate.seconds > 0.0 ? scratch.seconds / regulate.seconds
                                     : 0.0);
  const bool ok = regulate_legal && regulate.hpwl <= input_hpwl &&
                  regulate.seconds < scratch.seconds;
  std::printf("acceptance: legal=%d improved=%d faster=%d\n", regulate_legal,
              regulate.hpwl <= input_hpwl, regulate.seconds < scratch.seconds);
  return ok ? 0 : 1;
}
