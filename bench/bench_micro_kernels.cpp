// Google-benchmark micro kernels for the library's hot paths: HPWL, CG
// solve, conv2d forward/backward, availability map, sequence-pair
// legalization LP and one MCTS exploration step.
//
// Besides the usual console output, the explicit main() below captures every
// run through an ArtifactReporter and writes BENCH_micro_kernels.json
// (bench/artifact.hpp schema) so the kernel timings join the committed perf
// trajectory in results/.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "artifact.hpp"
#include "benchgen/generator.hpp"
#include "grid/occupancy.hpp"
#include "legal/lp_legalizer.hpp"
#include "linalg/cg.hpp"
#include "nn/kernels.hpp"
#include "nn/layers.hpp"
#include "qp/quadratic.hpp"
#include "rl/agent.hpp"
#include "util/rng.hpp"

using namespace mp;

namespace {

netlist::Design make_design(int cells) {
  benchgen::BenchSpec spec;
  spec.movable_macros = 16;
  spec.std_cells = cells;
  spec.nets = cells * 3 / 2;
  spec.seed = 7;
  return benchgen::generate(spec);
}

void BM_TotalHpwl(benchmark::State& state) {
  const netlist::Design d = make_design(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.total_hpwl());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(d.num_nets()));
}
BENCHMARK(BM_TotalHpwl)->Arg(1000)->Arg(10000);

void BM_ConjugateGradient(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(3);
  linalg::TripletBuilder b(static_cast<std::size_t>(n));
  for (int i = 1; i < n; ++i) {
    b.add_connection(static_cast<std::size_t>(i - 1),
                     static_cast<std::size_t>(i), 1.0);
  }
  for (int e = 0; e < 2 * n; ++e) {
    const int i = rng.uniform_int(0, n - 1);
    const int j = rng.uniform_int(0, n - 1);
    if (i != j) {
      b.add_connection(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                       rng.uniform(0.1, 1.0));
    }
  }
  b.add_diagonal(0, 1.0);
  const linalg::CsrMatrix a = linalg::CsrMatrix::from_triplets(b);
  linalg::Vec rhs(static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    linalg::Vec x;
    benchmark::DoNotOptimize(linalg::conjugate_gradient(a, rhs, x));
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(1000)->Arg(10000);

void BM_QuadraticPlacement(benchmark::State& state) {
  netlist::Design d = make_design(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    qp::solve_quadratic_placement(d, d.std_cells());
  }
}
BENCHMARK(BM_QuadraticPlacement)->Arg(1000)->Arg(5000);

// GEMM at the conv-as-GEMM shapes of the agent's 16x16 grid: M = out_c,
// K = in_c * 3 * 3, N = h * w.  The naive reference kernel vs the blocked /
// SIMD default (bit-identical outputs; see nn/kernels.hpp) — the artifact
// ratio real_ns(naive) / real_ns(blocked) is the speedup the infer work
// claims (acceptance: >= 2x single-thread).
std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n);
  for (float& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

void BM_GemmNaive(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const std::vector<float> a = random_floats(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k), 11);
  const std::vector<float> b = random_floats(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n), 12);
  std::vector<float> out(static_cast<std::size_t>(m) *
                         static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    nn::gemm_acc_naive(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 2 * m * k *
                          n);
}
BENCHMARK(BM_GemmNaive)->Args({32, 288, 256})->Args({128, 1152, 256});

void BM_GemmBlocked(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const std::vector<float> a = random_floats(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(k), 11);
  const std::vector<float> b = random_floats(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n), 12);
  std::vector<float> out(static_cast<std::size_t>(m) *
                         static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    nn::gemm_acc(a.data(), b.data(), out.data(), m, k, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 2 * m * k *
                          n);
}
BENCHMARK(BM_GemmBlocked)->Args({32, 288, 256})->Args({128, 1152, 256});

// Batched im2col: `batch` samples lowered into one wide column matrix
// (stride col_ld = batch * h * w), the front half of every batched conv.
void BM_Im2colBatched(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const int h = 16, w = 16, kk = 3;
  const std::size_t sample = static_cast<std::size_t>(channels) * h * w;
  const std::vector<float> input = random_floats(sample * batch, 13);
  const std::size_t col_ld = static_cast<std::size_t>(batch) * h * w;
  std::vector<float> col(static_cast<std::size_t>(channels) * kk * kk *
                         col_ld);
  for (auto _ : state) {
    for (int bi = 0; bi < batch; ++bi) {
      nn::im2col(input.data() + static_cast<std::size_t>(bi) * sample,
                 channels, h, w, kk,
                 col.data() + static_cast<std::size_t>(bi) * h * w, col_ld);
    }
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * batch *
                          static_cast<long>(sample) * kk * kk);
}
BENCHMARK(BM_Im2colBatched)->Args({32, 1})->Args({32, 8})->Args({32, 32});

void BM_Conv2dForward(benchmark::State& state) {
  util::Rng rng(5);
  const int channels = static_cast<int>(state.range(0));
  nn::Conv2d conv(channels, channels, 3, rng);
  nn::Tensor x({channels, 16, 16});
  x.fill(0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(32)->Arg(128);

void BM_Conv2dBackward(benchmark::State& state) {
  util::Rng rng(6);
  const int channels = static_cast<int>(state.range(0));
  nn::Conv2d conv(channels, channels, 3, rng);
  nn::Tensor x({channels, 16, 16});
  x.fill(0.5f);
  nn::Tensor g = conv.forward(x, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(32)->Arg(128);

void BM_AgentForward(benchmark::State& state) {
  rl::AgentConfig config;
  config.grid_dim = 16;
  config.channels = static_cast<int>(state.range(0));
  config.res_blocks = static_cast<int>(state.range(1));
  rl::AgentNetwork agent(config);
  const std::vector<double> sp(256, 0.3);
  const std::vector<double> avail(256, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.forward(sp, avail, 3, 20, false));
  }
}
BENCHMARK(BM_AgentForward)->Args({24, 2})->Args({32, 3})->Args({128, 10});

// Batched agent forward (rl::AgentNetwork::forward_many, the inference
// engine's execution path): one im2col + one wide GEMM per layer for the
// whole batch, per-sample bit-identical to BM_AgentForward's path.  Compare
// real_ns at batch 8 vs 8x the batch-1 time for the batching payoff.
void BM_AgentForwardMany(benchmark::State& state) {
  rl::AgentConfig config;
  config.grid_dim = 16;
  config.channels = static_cast<int>(state.range(0));
  config.res_blocks = static_cast<int>(state.range(1));
  rl::AgentNetwork agent(config);
  const int batch = static_cast<int>(state.range(2));
  std::vector<rl::NetInput> inputs(static_cast<std::size_t>(batch));
  for (rl::NetInput& in : inputs) {
    in.sp.assign(256, 0.3);
    in.availability.assign(256, 1.0);
    in.t = 3;
    in.total_steps = 20;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.forward_many(inputs));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * batch);
}
BENCHMARK(BM_AgentForwardMany)
    ->Args({32, 3, 1})
    ->Args({32, 3, 8})
    ->Args({32, 3, 32});

void BM_AvailabilityMap(benchmark::State& state) {
  const grid::GridSpec spec(geometry::Rect(0, 0, 160, 160), 16);
  grid::OccupancyMap occ(spec);
  occ.place(grid::make_footprint(spec, 25.0, 18.0), {2, 3});
  occ.place(grid::make_footprint(spec, 12.0, 40.0), {9, 6});
  const grid::Footprint fp = grid::make_footprint(
      spec, static_cast<double>(state.range(0)), 15.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::availability_map(occ, fp));
  }
}
BENCHMARK(BM_AvailabilityMap)->Arg(8)->Arg(35);

void BM_LpLegalizeComponent(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    util::Rng rng(9);
    netlist::Design d("d", geometry::Rect(0, 0, 200, 200));
    std::vector<netlist::NodeId> macros;
    for (int i = 0; i < n; ++i) {
      netlist::Node m;
      m.name = "m" + std::to_string(i);
      m.kind = netlist::NodeKind::kMacro;
      m.width = rng.uniform(8, 20);
      m.height = rng.uniform(8, 20);
      m.position = {100 + rng.uniform(-15, 15), 100 + rng.uniform(-15, 15)};
      macros.push_back(d.add_node(m));
    }
    state.ResumeTiming();
    legal::lp_legalize_component(d, macros, d.region());
  }
}
BENCHMARK(BM_LpLegalizeComponent)->Arg(4)->Arg(10)->Arg(20);

// Console output as usual, plus per-run adjusted real/CPU ns collected for
// the BENCH_micro_kernels.json artifact.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      metrics_[name + ".real_ns"] = run.GetAdjustedRealTime();
      metrics_[name + ".cpu_ns"] = run.GetAdjustedCPUTime();
    }
  }
  const std::map<std::string, double>& metrics() const { return metrics_; }

 private:
  std::map<std::string, double> metrics_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  mp::bench::BenchArtifact artifact;
  artifact.name = "micro_kernels";
  artifact.metrics = reporter.metrics();
  const std::string path = artifact.write();
  if (!path.empty()) std::printf("artifact: %s\n", path.c_str());
  return path.empty() ? 1 : 0;
}
