// Service SLO load bench: N concurrent clients driving a multi-worker
// LocalService with small synthetic placement jobs, reporting the
// admission -> result latency quantiles the ROADMAP wants as the headline
// scaling number.  The printed p50/p90/p95/p99 come straight from the
// service-global obs histograms the scheduler records (svc.queue_wait,
// svc.run_time, svc.submit_to_result) — the same series the mp_serve
// `metrics` verb exposes — so the bench measures the telemetry path a
// production scrape would read, not a parallel bookkeeping scheme.
//
//   ./bench_service_load [--workers N] [--clients N] [--jobs N]
//                        [--preset sa|mcts|rl|wiremask|analytic]
//                        [--threads N] [--infer]
//                        [--router [--backends N]]
//
// --infer shares one batched inference engine across the workers
// (docs/INFERENCE.md); its infer.* series (requests, batches, coalesced,
// batch_size quantiles) land in the same registry snapshot — and so in the
// artifact — next to the latency histograms.
//
// Writes BENCH_service_load.json (bench/artifact.hpp schema) into
// $MP_BENCH_DIR (default cwd).
//
// With --router the bench instead stands up a fleet in-process — N
// TCP-listening mp_serve backends plus an mp_route coordinator
// (docs/DISTRIBUTED.md) — and drives the same load through svc::Client
// connections to the router, so the quantiles include NDJSON framing,
// consistent-hash routing, and the forward hop.  That artifact is
// BENCH_service_fleet.json and its headline series is
// fleet.submit_to_result, measured client-side.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "net/router.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "util/timer.hpp"

using namespace mp;

namespace {

svc::JobSpec load_spec(place::Preset preset, std::uint64_t seed) {
  svc::JobSpec spec;
  spec.use_synthetic = true;
  spec.synthetic.name = "svc-load";
  spec.synthetic.movable_macros = 8;
  spec.synthetic.std_cells = 300;
  spec.synthetic.nets = 400;
  spec.synthetic.io_pads = 16;
  spec.synthetic.seed = 5;
  spec.preset = preset;
  // Distinct seeds keep the jobs distinct specs (unique job-id hash
  // prefixes) while the design stays shared, so the design cache is
  // exercised with hits and the scheduler still sees unique work.
  spec.seed = seed;
  // Tiny RL/MCTS budgets so the non-SA presets finish in seconds.
  spec.episodes = 6;
  spec.gamma = 4;
  spec.grid = 8;
  spec.channels = 8;
  spec.blocks = 1;
  return spec;
}

void print_histogram_row(const std::string& name,
                         const obs::HistogramSnapshot& h) {
  std::printf("%-22s %8lld %10.4f %10.4f %10.4f %10.4f %10.4f\n", name.c_str(),
              h.count, h.mean(), h.quantile(0.5), h.quantile(0.9),
              h.quantile(0.95), h.quantile(0.99));
}

/// One in-process fleet member: a LocalService behind a TCP Server.
struct FleetBackend {
  svc::LocalService service;
  svc::Server server;
  std::thread thread;

  explicit FleetBackend(const svc::ServiceOptions& options)
      : service(options), server(service, "tcp:127.0.0.1:0") {
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "backend start failed: %s\n", error.c_str());
      std::abort();
    }
    thread = std::thread([this] { server.serve(); });
  }

  ~FleetBackend() {
    server.request_shutdown();
    thread.join();
  }
};

int run_fleet(int backends_n, int workers, int clients, int jobs_per_client,
              place::Preset preset) {
  const int total_jobs = clients * jobs_per_client;
  svc::ServiceOptions service_options;
  service_options.workers = workers;
  service_options.max_queued = total_jobs + 8;
  service_options.stream_progress = false;  // one span listener per process

  std::vector<std::unique_ptr<FleetBackend>> backends;
  net::RouterOptions router_options;
  for (int b = 0; b < backends_n; ++b) {
    backends.push_back(std::make_unique<FleetBackend>(service_options));
    router_options.backends.push_back(backends.back()->server.bound_uri());
  }
  net::Router router("tcp:127.0.0.1:0", router_options);
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "router start failed: %s\n", error.c_str());
    return 1;
  }
  std::thread routing([&router] { router.serve(); });

  std::printf("fleet load: %d backends x %d workers, %d clients x %d jobs, "
              "preset %s\n",
              backends_n, workers, clients, jobs_per_client,
              place::preset_name(preset));

  // Client-side end-to-end latency: submit accepted -> result done, through
  // the router.  obs::Histogram is thread-safe, so the clients share it.
  obs::Registry bench_registry;
  obs::Histogram& submit_to_result =
      bench_registry.histogram("fleet.submit_to_result");
  util::Timer wall;
  std::vector<std::thread> client_threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      svc::Client client(router.bound_uri());
      std::string connect_error;
      if (!client.connect(&connect_error)) {
        failures[static_cast<std::size_t>(c)] += jobs_per_client;
        return;
      }
      for (int j = 0; j < jobs_per_client; ++j) {
        const std::uint64_t seed =
            1 + static_cast<std::uint64_t>(c) * 1000 +
            static_cast<std::uint64_t>(j);
        const svc::Json spec =
            svc::job_spec_to_json(load_spec(preset, seed));
        util::Timer job_timer;
        try {
          const svc::Json submitted = client.submit(spec);
          const svc::Json* ok = submitted.find("ok");
          if (ok == nullptr || !ok->as_bool()) {
            ++failures[static_cast<std::size_t>(c)];
            continue;
          }
          const svc::Json result =
              client.result(submitted.find("id")->as_string(), 600.0);
          const svc::Json* rok = result.find("ok");
          const svc::Json* job = result.find("job");
          if (rok == nullptr || !rok->as_bool() || job == nullptr ||
              job->find("state")->as_string() != "done") {
            ++failures[static_cast<std::size_t>(c)];
            continue;
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "client %d: %s\n", c, e.what());
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        submit_to_result.record(job_timer.seconds());
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double wall_s = wall.seconds();

  int failed = 0;
  for (int f : failures) failed += f;
  const int done = total_jobs - failed;
  const double throughput = wall_s > 0.0 ? done / wall_s : 0.0;

  bench::BenchArtifact artifact;
  artifact.name = "service_fleet";
  std::printf("\n%-22s %8s %10s %10s %10s %10s %10s\n", "latency_s", "count",
              "mean", "p50", "p90", "p95", "p99");
  const obs::RegistrySnapshot client_snap = bench_registry.snapshot();
  for (const auto& [name, h] : client_snap.histograms) {
    print_histogram_row(name, h);
    artifact.set_quantiles_from(name, h);
    artifact.metrics[name + ".mean"] = h.mean();
    artifact.metrics[name + ".count"] = static_cast<double>(h.count);
  }
  // The router's own per-backend forward-latency histograms land in the
  // artifact too: the gap between them and fleet.submit_to_result is queue
  // wait plus placement run time.
  const obs::RegistrySnapshot router_snap = router.registry().snapshot();
  for (const auto& [name, h] : router_snap.histograms) {
    print_histogram_row(name, h);
    artifact.set_quantiles_from(name, h);
    artifact.metrics[name + ".count"] = static_cast<double>(h.count);
  }
  for (const auto& [name, value] : router_snap.counters) {
    artifact.metrics[name] = static_cast<double>(value);
  }
  std::printf("\n%d/%d jobs done, %.2fs wall, %.2f jobs/s\n", done, total_jobs,
              wall_s, throughput);

  artifact.config["backends"] = static_cast<double>(backends_n);
  artifact.config["workers"] = static_cast<double>(workers);
  artifact.config["clients"] = static_cast<double>(clients);
  artifact.config["jobs_per_client"] = static_cast<double>(jobs_per_client);
  artifact.config["preset"] = std::string(place::preset_name(preset));
  artifact.metrics["jobs_done"] = static_cast<double>(done);
  artifact.metrics["jobs_failed"] = static_cast<double>(failed);
  artifact.metrics["wall_s"] = wall_s;
  artifact.metrics["throughput_jobs_per_s"] = throughput;
  const std::string path = artifact.write();
  if (!path.empty()) std::printf("artifact: %s\n", path.c_str());

  router.request_shutdown();
  routing.join();
  return failed == 0 && !path.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  int workers = 4, clients = 8, jobs_per_client = 1;
  bool infer = false;
  bool router_mode = false;
  int fleet_backends = 3;
  place::Preset preset = place::Preset::kSa;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs_per_client = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc) {
      if (!place::parse_preset(argv[++i], preset)) {
        std::fprintf(stderr, "unknown preset %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      ++i;  // consumed by init_threads
    } else if (std::strcmp(argv[i], "--infer") == 0) {
      infer = true;
    } else if (std::strcmp(argv[i], "--router") == 0) {
      router_mode = true;
    } else if (std::strcmp(argv[i], "--backends") == 0 && i + 1 < argc) {
      fleet_backends = std::atoi(argv[++i]);
    }
  }
  workers = std::max(1, workers);
  clients = std::max(1, clients);
  jobs_per_client = std::max(1, jobs_per_client);
  if (router_mode) {
    return run_fleet(std::max(1, fleet_backends), workers, clients,
                     jobs_per_client, preset);
  }
  const int total_jobs = clients * jobs_per_client;

  svc::ServiceOptions options;
  options.workers = workers;
  // Admission control sized to the offered load: this bench measures
  // latency under queueing, not rejection behavior.
  options.max_queued = total_jobs + 8;
  options.stream_progress = false;
  options.infer = infer ? 1 : 0;
  svc::LocalService service(options);

  std::printf("service load: %d workers, %d clients x %d jobs, preset %s, "
              "%d pool threads, infer %s\n",
              workers, clients, jobs_per_client, place::preset_name(preset),
              par::num_threads(), infer ? "on" : "off");

  util::Timer wall;
  std::vector<std::thread> client_threads;
  std::vector<int> failures(static_cast<std::size_t>(clients), 0);
  client_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int j = 0; j < jobs_per_client; ++j) {
        const std::uint64_t seed =
            1 + static_cast<std::uint64_t>(c) * 1000 +
            static_cast<std::uint64_t>(j);
        const svc::Scheduler::SubmitResult r =
            service.submit(load_spec(preset, seed));
        if (!r.accepted) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        service.wait(r.id, 600.0);
        const auto snap = service.status(r.id);
        if (!snap || snap->state != svc::JobState::kDone) {
          ++failures[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double wall_s = wall.seconds();

  int failed = 0;
  for (int f : failures) failed += f;
  const int done = total_jobs - failed;
  const double throughput = wall_s > 0.0 ? done / wall_s : 0.0;

  // The SLO readout: latency quantiles from the service-global registry the
  // scheduler recorded into while the load ran.
  const obs::RegistrySnapshot snap = service.slo_registry().snapshot();
  std::printf("\n%-22s %8s %10s %10s %10s %10s %10s\n", "latency_s", "count",
              "mean", "p50", "p90", "p95", "p99");
  bench::BenchArtifact artifact;
  // Separate artifact per mode so the engine-on run doesn't overwrite the
  // baseline series in results/.
  artifact.name = infer ? "service_load_infer" : "service_load";
  for (const auto& [name, h] : snap.histograms) {
    print_histogram_row(name, h);
    artifact.set_quantiles_from(name, h);
    artifact.metrics[name + ".mean"] = h.mean();
    artifact.metrics[name + ".count"] = static_cast<double>(h.count);
  }
  // Counters and gauges too: with --infer this is where infer.requests /
  // infer.batches / infer.coalesced / infer.snapshots land.
  for (const auto& [name, value] : snap.counters) {
    artifact.metrics[name] = static_cast<double>(value);
  }
  for (const auto& [name, value] : snap.gauges) {
    artifact.metrics[name] = value;
  }
  std::printf("\n%d/%d jobs done, %.2fs wall, %.2f jobs/s\n", done, total_jobs,
              wall_s, throughput);

  artifact.config["infer"] = infer ? 1.0 : 0.0;
  artifact.config["workers"] = static_cast<double>(workers);
  artifact.config["clients"] = static_cast<double>(clients);
  artifact.config["jobs_per_client"] = static_cast<double>(jobs_per_client);
  artifact.config["preset"] = std::string(place::preset_name(preset));
  artifact.metrics["jobs_done"] = static_cast<double>(done);
  artifact.metrics["jobs_failed"] = static_cast<double>(failed);
  artifact.metrics["wall_s"] = wall_s;
  artifact.metrics["throughput_jobs_per_s"] = throughput;
  const std::string path = artifact.write();
  if (!path.empty()) std::printf("artifact: %s\n", path.c_str());
  return failed == 0 && !path.empty() ? 0 : 1;
}
