#pragma once
// BENCH_*.json perf artifacts: one machine-readable JSON file per bench so
// the perf trajectory is diffable across commits (ROADMAP item 2; the
// committed copies live in results/ and are schema-checked by
// scripts/validate_bench_json.py from scripts/check.sh).
//
// Schema (schema_version 1):
//   {"kind": "bench", "schema_version": 1, "name": "<bench>",
//    "config":    {str -> str|num},   // knobs the numbers depend on
//    "metrics":   {str -> num},       // scalar results (means, rates, ns)
//    "quantiles": {str -> {"p50":..,"p90":..,"p95":..,"p99":..}},
//    "threads": N, "peak_rss_mb": N}
//
// The file is written as BENCH_<name>.json into $MP_BENCH_DIR (default the
// working directory); scripts/run_benches.sh points MP_BENCH_DIR at the
// repo's results/ so fresh artifacts land next to the committed ones.

#include <cstdio>
#include <map>
#include <string>
#include <variant>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/obs.hpp"
#include "par/par.hpp"
#include "util/env.hpp"

namespace mp::bench {

/// Peak resident set size of this process in MiB (getrusage ru_maxrss;
/// 0 when the platform has no rusage).
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

/// One bench's artifact under construction; write() emits the JSON file.
struct BenchArtifact {
  std::string name;
  std::map<std::string, std::variant<std::string, double>> config;
  std::map<std::string, double> metrics;
  /// metric name -> p50/p90/p95/p99 (filled from obs histograms).
  std::map<std::string, std::map<std::string, double>> quantiles;

  void set_quantiles_from(const std::string& metric,
                          const obs::HistogramSnapshot& h) {
    quantiles[metric] = {{"p50", h.quantile(0.5)},
                         {"p90", h.quantile(0.9)},
                         {"p95", h.quantile(0.95)},
                         {"p99", h.quantile(0.99)}};
  }

  /// Writes BENCH_<name>.json into `dir` (default $MP_BENCH_DIR or ".").
  /// Returns the path written, or "" on failure.
  std::string write(std::string dir = {}) const;
};

namespace detail {

inline void artifact_escape(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline void artifact_number(std::string& out, double v) {
  // JSON has no inf/nan literals; a missing measurement serializes as null.
  if (!(v == v) || v > 1e308 || v < -1e308) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace detail

inline std::string BenchArtifact::write(std::string dir) const {
  if (dir.empty()) {
    const char* env = std::getenv("MP_BENCH_DIR");
    dir = env != nullptr && env[0] != '\0' ? env : ".";
  }
  std::string out;
  out.reserve(1024);
  out += "{\"kind\":\"bench\",\"schema_version\":1,\"name\":";
  detail::artifact_escape(out, name);
  out += ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) out += ',';
    first = false;
    detail::artifact_escape(out, key);
    out += ':';
    if (const std::string* s = std::get_if<std::string>(&value)) {
      detail::artifact_escape(out, *s);
    } else {
      detail::artifact_number(out, std::get<double>(value));
    }
  }
  out += "},\"metrics\":{";
  first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out += ',';
    first = false;
    detail::artifact_escape(out, key);
    out += ':';
    detail::artifact_number(out, value);
  }
  out += "},\"quantiles\":{";
  first = true;
  for (const auto& [metric, qs] : quantiles) {
    if (!first) out += ',';
    first = false;
    detail::artifact_escape(out, metric);
    out += ":{";
    bool qfirst = true;
    for (const auto& [q, value] : qs) {
      if (!qfirst) out += ',';
      qfirst = false;
      detail::artifact_escape(out, q);
      out += ':';
      detail::artifact_number(out, value);
    }
    out += '}';
  }
  out += "},\"threads\":";
  detail::artifact_number(out, static_cast<double>(par::num_threads()));
  out += ",\"peak_rss_mb\":";
  detail::artifact_number(out, peak_rss_mb());
  out += "}\n";

  const std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warn: cannot write bench artifact %s\n", path.c_str());
    return {};
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok ? path : std::string();
}

}  // namespace mp::bench
