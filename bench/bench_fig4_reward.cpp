// Fig. 4 reproduction: RL training convergence on an ibm10-like netlist
// under three reward functions —
//   (a) Eq. (9) with α > 0          (rewards slightly above zero; orange)
//   (b) Eq. (9) without α           (rewards around zero; blue)
//   (c) the intuitive reward −W     (red; does not converge in the window)
//
// Output: one block per reward function with columns
//   episode   reward   wirelength   reward_ma10
// followed by a summary of the reward improvement (late-window mean minus
// early-window mean, in calibrated reward units) — the paper's qualitative
// claim is improvement(a) > improvement(b) while (c) shows no trend.

#include <cmath>
#include <cstdio>
#include <deque>

#include "common.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

using namespace mp;

namespace {

struct Curve {
  std::string label;
  std::vector<double> rewards;
  std::vector<double> wirelengths;
};

double window_mean(const std::vector<double>& v, std::size_t begin,
                   std::size_t end) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = begin; i < end && i < v.size(); ++i) {
    sum += v[i];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  const double cell_scale = bench::cell_scale();
  // ibm10 is preset index 8; Fig. 4 uses its netlist.
  benchgen::BenchSpec spec =
      bench::scale_macros(benchgen::iccad04_spec(8, cell_scale));
  const bench::Budgets budgets = bench::budgets();
  const int episodes = util::env_int(
      "REPRO_FIG4_EPISODES", std::max(30, budgets.episodes * 3));

  std::printf("# Fig. 4 — RL convergence on %s-like (macros=%d cells=%d)\n",
              spec.name.c_str(), spec.movable_macros,
              static_cast<int>(spec.std_cells * spec.scale));
  std::printf("# episodes=%d agent=%dch x %d blocks grid=16\n", episodes,
              budgets.channels, budgets.blocks);

  // Shared preprocessing so all three runs see the identical environment.
  netlist::Design design = benchgen::generate(spec);
  place::FlowOptions flow;
  flow.grid_dim = 16;
  flow.initial_gp.max_iterations = 6;
  place::FlowContext context = place::prepare_flow(design, flow);

  rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  rl::CoarseEvaluator evaluator(context.coarse, context.spec);

  // One calibration shared by (a) and (b) so their scales match the paper's
  // setup (the 50 random episodes before training).
  util::Rng cal_rng(2024);
  const rl::RewardCalibration calibration = rl::calibrate_reward(
      env, evaluator, std::max(10, budgets.calibration), cal_rng);

  struct Setup {
    const char* label;
    rl::RewardFn reward;
  };
  const Setup setups[] = {
      {"eq9_alpha", calibration.make_reward(0.75)},   // (a)
      {"eq9_noalpha", calibration.make_reward(0.0)},  // (b)
      {"neg_wl", rl::negative_wirelength_reward()},   // (c)
  };

  std::vector<Curve> curves;
  for (const Setup& setup : setups) {
    rl::AgentConfig agent_config;
    agent_config.grid_dim = 16;
    agent_config.channels = budgets.channels;
    agent_config.res_blocks = budgets.blocks;
    agent_config.seed = 7;  // identical initialization across setups
    rl::AgentNetwork agent(agent_config);

    rl::TrainOptions options;
    options.episodes = episodes;
    options.update_window = std::min(30, std::max(3, episodes / 8));
    options.reward = setup.reward;
    options.seed = 99;  // identical action-sampling stream

    Curve curve;
    curve.label = setup.label;
    options.on_episode = [&](int, double r, double w) {
      curve.rewards.push_back(r);
      curve.wirelengths.push_back(w);
    };
    rl::train_agent(env, evaluator, agent, options);
    curves.push_back(std::move(curve));
  }

  for (const Curve& curve : curves) {
    std::printf("\n## reward=%s\n", curve.label.c_str());
    std::printf("%8s  %12s  %12s  %12s\n", "episode", "reward", "wirelength",
                "reward_ma10");
    std::deque<double> window;
    double window_sum = 0.0;
    for (std::size_t e = 0; e < curve.rewards.size(); ++e) {
      window.push_back(curve.rewards[e]);
      window_sum += curve.rewards[e];
      if (window.size() > 10) {
        window_sum -= window.front();
        window.pop_front();
      }
      std::printf("%8zu  %12.5f  %12.5g  %12.5f\n", e, curve.rewards[e],
                  curve.wirelengths[e], window_sum / window.size());
    }
  }

  std::printf("\n## summary (late mean - early mean, calibrated units)\n");
  bench::Table summary("fig4_reward_summary", "reward",
                       {"early", "late", "improvement"});
  for (const Curve& curve : curves) {
    const std::size_t n = curve.rewards.size();
    const std::size_t q = std::max<std::size_t>(1, n / 4);
    // Compare in *calibrated* units so the -W curve is comparable: map its
    // wirelengths through the shared Eq. (9) scale.
    std::vector<double> scaled;
    scaled.reserve(n);
    const rl::RewardFn scale_fn = calibration.make_reward(0.75);
    for (double w : curve.wirelengths) scaled.push_back(scale_fn(w));
    const double early = window_mean(scaled, 0, q);
    const double late = window_mean(scaled, n - q, n);
    summary.row(curve.label, {early, late, late - early});
  }
  return 0;
}
