// Table III reproduction: HPWL comparison on the 17 ICCAD04-like circuits
// (ibm01-ibm18 minus ibm05) between
//   CT-like      — RL-only placer (pre-trained policy, greedy rollout) [27]
//   MaskPlace-like — wiremask greedy placer                            [19]
//   RePlAce-like — analytical mixed-size placer                        [10]
//   Ours         — MCTS guided by the pre-trained RL agent
// plus the paper's normalized geometric-mean row ("Nor.", ours = 1).
//
// Circuits are synthesized at the published macro/cell/net counts scaled by
// REPRO_MACRO_SCALE / REPRO_SCALE (see common.hpp); expected *shape*: ours
// best, RL-only worst of the learned methods, analytical close to ours.

#include <cstdio>

#include "common.hpp"
#include "place/placer.hpp"
#include "util/timer.hpp"

using namespace mp;

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  const int circuits = util::env_int(
      "REPRO_TABLE3_CIRCUITS",
      static_cast<int>(benchgen::iccad04_names().size()));
  std::printf(
      "# Table III — HPWL on ICCAD04-like circuits (macro_scale=%.2f "
      "cell_scale=%.3f)\n",
      bench::macro_scale(), bench::cell_scale());
  bench::Table table("table3_iccad04", "circuit",
                     {"CT-like", "MaskPl-like", "RePlAce-like", "Ours",
                      "ours_s"});

  std::vector<std::vector<double>> rows;
  for (int i = 0; i < circuits; ++i) {
    const benchgen::BenchSpec spec = bench::scale_macros(
        benchgen::iccad04_spec(static_cast<std::size_t>(i),
                               bench::cell_scale()));

    // Each placer gets its own identical copy of the circuit.
    netlist::Design d_rl = benchgen::generate(spec);
    netlist::Design d_wm = benchgen::generate(spec);
    netlist::Design d_an = benchgen::generate(spec);
    netlist::Design d_ours = benchgen::generate(spec);

    place::PlacerSpec rl_spec;
    rl_spec.preset = place::Preset::kRlOnly;
    rl_spec.mcts_rl = bench::default_flow_options();
    const place::PlaceResult rl = place::run(d_rl, rl_spec);

    place::PlacerSpec wm_spec;
    wm_spec.preset = place::Preset::kWiremask;
    wm_spec.wiremask.grid_dim = 32;
    wm_spec.wiremask.initial_gp.max_iterations = 6;
    wm_spec.wiremask.final_gp.max_iterations = 8;
    const place::PlaceResult wm = place::run(d_wm, wm_spec);

    place::PlacerSpec an_spec;
    an_spec.preset = place::Preset::kAnalytic;
    an_spec.analytic.mixed_gp.max_iterations = 12;
    an_spec.analytic.final_gp.max_iterations = 8;
    const place::PlaceResult an = place::run(d_an, an_spec);

    place::PlacerSpec ours_spec;
    ours_spec.preset = place::Preset::kMcts;
    ours_spec.mcts_rl = bench::default_flow_options();
    util::Timer ours_timer;
    const place::PlaceResult ours = place::run(d_ours, ours_spec);

    rows.push_back({rl.hpwl, wm.hpwl, an.hpwl, ours.hpwl});
    table.row(spec.name, {rl.hpwl, wm.hpwl, an.hpwl, ours.hpwl,
                          ours_timer.seconds()});
  }

  // Normalized row: geometric mean of (method / ours), paper's bottom row.
  std::vector<double> nor = bench::normalized_row(rows, /*reference=*/3);
  nor.push_back(0.0);
  table.row("Nor.", nor);
  return 0;
}
