// Table III reproduction: HPWL comparison on the 17 ICCAD04-like circuits
// (ibm01-ibm18 minus ibm05) between
//   CT-like      — RL-only placer (pre-trained policy, greedy rollout) [27]
//   MaskPlace-like — wiremask greedy placer                            [19]
//   RePlAce-like — analytical mixed-size placer                        [10]
//   Ours         — MCTS guided by the pre-trained RL agent
// plus the paper's normalized geometric-mean row ("Nor.", ours = 1).
//
// Circuits are synthesized at the published macro/cell/net counts scaled by
// REPRO_MACRO_SCALE / REPRO_SCALE (see common.hpp); expected *shape*: ours
// best, RL-only worst of the learned methods, analytical close to ours.

#include <cstdio>

#include "common.hpp"
#include "place/analytic_placer.hpp"
#include "place/rl_only_placer.hpp"
#include "place/wiremask_placer.hpp"
#include "util/timer.hpp"

using namespace mp;

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  const int circuits = util::env_int(
      "REPRO_TABLE3_CIRCUITS",
      static_cast<int>(benchgen::iccad04_names().size()));
  std::printf(
      "# Table III — HPWL on ICCAD04-like circuits (macro_scale=%.2f "
      "cell_scale=%.3f)\n",
      bench::macro_scale(), bench::cell_scale());
  bench::Table table("table3_iccad04", "circuit",
                     {"CT-like", "MaskPl-like", "RePlAce-like", "Ours",
                      "ours_s"});

  std::vector<std::vector<double>> rows;
  for (int i = 0; i < circuits; ++i) {
    const benchgen::BenchSpec spec = bench::scale_macros(
        benchgen::iccad04_spec(static_cast<std::size_t>(i),
                               bench::cell_scale()));

    // Each placer gets its own identical copy of the circuit.
    netlist::Design d_rl = benchgen::generate(spec);
    netlist::Design d_wm = benchgen::generate(spec);
    netlist::Design d_an = benchgen::generate(spec);
    netlist::Design d_ours = benchgen::generate(spec);

    const place::MctsRlOptions options = bench::default_flow_options();

    const place::RlOnlyResult rl = place::rl_only_place(d_rl, options);

    place::WiremaskOptions wm_options;
    wm_options.grid_dim = 32;
    wm_options.initial_gp.max_iterations = 6;
    wm_options.final_gp.max_iterations = 8;
    const place::WiremaskResult wm = place::wiremask_place(d_wm, wm_options);

    place::AnalyticOptions an_options;
    an_options.mixed_gp.max_iterations = 12;
    an_options.final_gp.max_iterations = 8;
    const place::AnalyticResult an = place::analytic_place(d_an, an_options);

    util::Timer ours_timer;
    const place::MctsRlResult ours = place::mcts_rl_place(d_ours, options);

    rows.push_back({rl.hpwl, wm.hpwl, an.hpwl, ours.hpwl});
    table.row(spec.name, {rl.hpwl, wm.hpwl, an.hpwl, ours.hpwl,
                          ours_timer.seconds()});
  }

  // Normalized row: geometric mean of (method / ours), paper's bottom row.
  std::vector<double> nor = bench::normalized_row(rows, /*reference=*/3);
  nor.push_back(0.0);
  table.row("Nor.", nor);
  return 0;
}
