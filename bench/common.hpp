#pragma once
// Shared plumbing for the reproduction benches: scale knobs, option presets
// and table formatting.
//
// Every bench honors:
//   REPRO_SCALE        in (0,1]  — global shrink factor applied to std-cell/
//                                  net counts AND episode/exploration budgets
//                                  (default 1 = the committed bench defaults).
//   REPRO_MACRO_SCALE  in (0,1]  — shrink factor for *macro* counts; the
//                                  committed default 0.25 keeps CPU runtimes
//                                  in minutes.  Set 1 for the published macro
//                                  counts (hours on CPU, as in the paper).
//   REPRO_EPISODES, REPRO_GAMMA, REPRO_CHANNELS, REPRO_BLOCKS — direct
//                                  overrides of the RL/MCTS budgets.
// The committed outputs (EXPERIMENTS.md) use the defaults.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <cstdlib>
#include <cstring>

#include "artifact.hpp"
#include "benchgen/presets.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/placer.hpp"
#include "util/env.hpp"

namespace mp::bench {

/// Thread-count convention shared by every bench driver: `--threads N` (or
/// `--threads=N`) beats the MP_THREADS environment variable, which beats
/// hardware concurrency.  Call first thing in main(); without the flag the
/// par:: pool resolves MP_THREADS lazily on first use.
inline void init_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      par::set_num_threads(std::atoi(argv[i + 1]));
      return;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      par::set_num_threads(std::atoi(argv[i] + 10));
      return;
    }
  }
}

inline double scale() { return util::repro_scale(); }

inline double macro_scale() {
  const double s = util::env_double("REPRO_MACRO_SCALE", 0.25);
  return std::clamp(s, 0.01, 1.0);
}

/// Applies macro scaling to a preset spec (cells/nets already scaled by the
/// caller via the preset's `scale` argument).
inline benchgen::BenchSpec scale_macros(benchgen::BenchSpec spec) {
  const double ms = macro_scale();
  spec.movable_macros =
      std::max(4, static_cast<int>(spec.movable_macros * ms));
  spec.preplaced_macros = static_cast<int>(spec.preplaced_macros * ms);
  return spec;
}

/// Cell/net scale for the big table benches (the published counts run for
/// hours through a CPU QP placer; 3% preserves ordering and structure).
inline double cell_scale() {
  return std::clamp(0.03 * scale(), 0.001, 1.0);
}

/// RL/MCTS budgets used by the table benches.
struct Budgets {
  int episodes;
  int calibration;
  int gamma;
  int channels;
  int blocks;
};

inline Budgets budgets() {
  Budgets b;
  b.episodes = util::env_int("REPRO_EPISODES",
                             std::max(6, static_cast<int>(24 * scale())));
  b.calibration = std::max(5, b.episodes / 3);
  b.gamma = util::env_int("REPRO_GAMMA",
                          std::max(6, static_cast<int>(32 * scale())));
  b.channels = util::env_int("REPRO_CHANNELS", 24);
  b.blocks = util::env_int("REPRO_BLOCKS", 2);
  return b;
}

/// Leaf-evaluation mode for the benches.  Default is the QP partial-
/// placement completion estimate: at the scaled-down CPU training budgets
/// the value network is under-trained and the paper's pure value-network
/// evaluation degenerates (see DESIGN.md "Substitutions" and the ablation
/// bench).  REPRO_LEAF=value|partial|rollout overrides.
inline mcts::LeafEvaluation leaf_evaluation() {
  const char* raw = std::getenv("REPRO_LEAF");
  if (raw != nullptr) {
    if (std::strcmp(raw, "value") == 0) return mcts::LeafEvaluation::kValueNetwork;
    if (std::strcmp(raw, "rollout") == 0) return mcts::LeafEvaluation::kRandomRollout;
  }
  return mcts::LeafEvaluation::kPartialPlacement;
}

inline place::MctsRlOptions default_flow_options() {
  const Budgets b = budgets();
  place::MctsRlOptions o;
  o.flow.grid_dim = 16;  // paper ζ
  o.flow.initial_gp.max_iterations = 6;
  o.flow.final_gp.max_iterations = 8;
  o.agent.channels = b.channels;
  o.agent.res_blocks = b.blocks;
  o.train.episodes = b.episodes;
  o.train.update_window = std::min(30, std::max(3, b.episodes / 4));
  o.train.calibration_episodes = b.calibration;
  o.mcts.explorations_per_move = b.gamma;
  o.mcts.leaf_evaluation = leaf_evaluation();
  // Benches batch leaf evaluations to the pool size (0 = auto); at
  // --threads 1 this resolves to the serial search, so single-threaded
  // bench results remain bit-identical to the pre-parallel flow.
  o.mcts.eval_batch = 0;
  return o;
}

/// Prints "name  v1  v2 ..." rows with a fixed-width first column.
inline void print_row(const std::string& name,
                      const std::vector<double>& values) {
  std::printf("%-8s", name.c_str());
  for (double v : values) std::printf("  %12.4g", v);
  std::printf("\n");
}

inline void print_header(const std::string& first,
                         const std::vector<std::string>& columns) {
  std::printf("%-8s", first.c_str());
  for (const std::string& c : columns) std::printf("  %12s", c.c_str());
  std::printf("\n");
}

/// Bench table that prints paper-style rows to stdout AND mirrors them as
/// one machine-readable JSONL object through obs::ReportWriter (MP_OBS_OUT)
/// when telemetry is enabled — benches stay scrapable by eye and by tooling
/// (scripts/obs_summary.py) at the same time.  The JSON artifact is written
/// when the table goes out of scope.  With MP_BENCH_JSON set (truthy;
/// scripts/run_benches.sh sets it) the destructor additionally writes a
/// BENCH_<bench>.json perf artifact (bench/artifact.hpp) flattening each
/// cell to a "row.column" metric.
class Table {
 public:
  Table(std::string bench, const std::string& first,
        std::vector<std::string> columns)
      : bench_(std::move(bench)), columns_(std::move(columns)) {
    print_header(first, columns_);
  }

  void row(const std::string& name, const std::vector<double>& values) {
    print_row(name, values);
    rows_.emplace_back(name, values);
    std::fflush(stdout);
  }

  ~Table() {
    const char* bench_json = std::getenv("MP_BENCH_JSON");
    if (bench_json != nullptr && bench_json[0] != '\0' &&
        std::strcmp(bench_json, "0") != 0) {
      BenchArtifact artifact;
      artifact.name = bench_;
      artifact.config["repro_scale"] = scale();
      artifact.config["repro_macro_scale"] = macro_scale();
      for (const auto& [name, values] : rows_) {
        for (std::size_t c = 0; c < values.size() && c < columns_.size(); ++c) {
          artifact.metrics[name + "." + columns_[c]] = values[c];
        }
      }
      artifact.write();
    }
    if (!obs::enabled()) return;
    obs::ReportWriter writer = obs::ReportWriter::from_env();
    if (writer.valid()) writer.write_table(bench_, columns_, rows_);
  }
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

 private:
  std::string bench_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

/// Normalized geomean row (paper's "Nor." row): each column's geometric mean
/// of ratio vs the reference column.
inline std::vector<double> normalized_row(
    const std::vector<std::vector<double>>& rows, std::size_t reference) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  std::vector<double> out(cols, 0.0);
  for (std::size_t c = 0; c < cols; ++c) {
    double log_sum = 0.0;
    int n = 0;
    for (const auto& row : rows) {
      if (row[c] > 0.0 && row[reference] > 0.0) {
        log_sum += std::log(row[c] / row[reference]);
        ++n;
      }
    }
    out[c] = n > 0 ? std::exp(log_sum / n) : 0.0;
  }
  return out;
}

}  // namespace mp::bench
