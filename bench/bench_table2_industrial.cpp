// Table II reproduction: HPWL comparison on the six industrial-like circuits
// (design hierarchy + preplaced macros) between
//   SE-like    — simulated-annealing macro placer (stand-in for [26])
//   DMP-like   — analytical mixed-size placer (stand-in for DREAMPlace [25])
//   Ours       — MCTS guided by pre-trained RL
// plus the normalized row (ours = 1).  Expected shape: ours <= SE-like (~5%
// gap in the paper) < analytical (~23% gap).

#include <cstdio>

#include "common.hpp"
#include "place/placer.hpp"
#include "util/timer.hpp"

using namespace mp;

int main(int argc, char** argv) {
  bench::init_threads(argc, argv);
  std::printf(
      "# Table II — HPWL on industrial-like circuits (hierarchy + preplaced "
      "macros; macro_scale=%.2f cell_scale=%.3f)\n",
      bench::macro_scale(), bench::cell_scale());
  bench::Table table("table2_industrial", "circuit",
                     {"#mov", "#prep", "SE-like", "DMP-like", "Ours"});

  const int sa_iterations =
      util::env_int("REPRO_SA_ITERS",
                    std::max(2000, static_cast<int>(20000 * bench::scale())));

  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < benchgen::industrial_names().size(); ++i) {
    const benchgen::BenchSpec spec =
        bench::scale_macros(benchgen::industrial_spec(i, bench::cell_scale()));

    netlist::Design d_sa = benchgen::generate(spec);
    netlist::Design d_an = benchgen::generate(spec);
    netlist::Design d_ours = benchgen::generate(spec);

    place::PlacerSpec sa_spec;
    sa_spec.preset = place::Preset::kSa;
    sa_spec.sa.iterations = sa_iterations;
    sa_spec.sa.initial_gp.max_iterations = 6;
    sa_spec.sa.final_gp.max_iterations = 8;
    const place::PlaceResult sa = place::run(d_sa, sa_spec);

    place::PlacerSpec an_spec;
    an_spec.preset = place::Preset::kAnalytic;
    an_spec.analytic.mixed_gp.max_iterations = 12;
    an_spec.analytic.final_gp.max_iterations = 8;
    const place::PlaceResult an = place::run(d_an, an_spec);

    place::PlacerSpec ours_spec;
    ours_spec.preset = place::Preset::kMcts;
    ours_spec.mcts_rl = bench::default_flow_options();
    const place::PlaceResult ours = place::run(d_ours, ours_spec);

    rows.push_back({sa.hpwl, an.hpwl, ours.hpwl});
    table.row(spec.name,
              {static_cast<double>(spec.movable_macros),
               static_cast<double>(spec.preplaced_macros), sa.hpwl, an.hpwl,
               ours.hpwl});
  }

  const std::vector<double> nor = bench::normalized_row(rows, /*reference=*/2);
  table.row("Nor.", {0.0, 0.0, nor[0], nor[1], nor[2]});
  return 0;
}
