// Long-lived placement service daemon:
//
//   ./mp_serve --socket /tmp/mp.sock [--max-queued N] [--threads N]
//             [--workers N]
//
// Speaks newline-delimited JSON over a Unix domain socket (protocol in
// src/svc/server.hpp and docs/SERVICE.md); submit work with mp_submit.
// SIGTERM/SIGINT drain gracefully: the socket stops accepting, the running
// job and the queued backlog complete, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace.hpp"
#include "par/par.hpp"
#include "svc/server.hpp"

namespace {

mp::svc::Server* g_server = nullptr;

// Async-signal-safe: request_shutdown is one atomic store + one pipe write.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: mp_serve --socket PATH [--max-queued N] [--threads N] "
               "[--workers N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  mp::svc::ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      options.max_queued = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      mp::par::set_num_threads(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();

  mp::svc::LocalService service(options);
  mp::svc::Server server(service, socket_path);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("mp_serve: listening on %s (max %d queued, %d workers)\n",
              socket_path.c_str(), options.max_queued, service.workers());
  std::fflush(stdout);
  server.serve();

  // serve() returns only after the drain completed.
  int done = 0, failed = 0, cancelled = 0;
  for (const mp::svc::JobSnapshot& snap : service.jobs()) {
    if (snap.state == mp::svc::JobState::kDone) ++done;
    else if (snap.state == mp::svc::JobState::kFailed) ++failed;
    else if (snap.state == mp::svc::JobState::kCancelled) ++cancelled;
  }
  std::printf("mp_serve: drained (%d done, %d failed, %d cancelled)\n", done,
              failed, cancelled);
  // With MP_OBS_TRACE set, persist the span timeline now that every job has
  // finished (the atexit flush would also fire, but an explicit flush after
  // the drain makes the file complete even if exit paths change).
  if (mp::obs::trace_enabled() && mp::obs::trace_flush()) {
    std::printf("mp_serve: trace written to %s\n",
                std::getenv("MP_OBS_TRACE") != nullptr
                    ? std::getenv("MP_OBS_TRACE") : "(trace path)");
  }
  g_server = nullptr;
  return 0;
}
