// Long-lived placement service daemon:
//
//   ./mp_serve --socket /tmp/mp.sock [--max-queued N] [--threads N]
//             [--workers N] [--backlog N] [--infer [0|1]]
//   ./mp_serve --listen tcp:0.0.0.0:7411 --peers tcp:hostB:7411,tcp:hostC:7411
//
// Speaks newline-delimited JSON over a Unix domain socket or TCP (protocol
// in src/svc/server.hpp, endpoint grammar in src/net/endpoint.hpp; submit
// work with mp_submit, or front a fleet of these with mp_route —
// docs/DISTRIBUTED.md).  --peers lists the OTHER backends' endpoints; on a
// cache miss this backend then fetches warm artifacts from them instead of
// rebuilding.  --infer shares one batched inference engine across all jobs'
// MCTS searches (docs/INFERENCE.md; default follows the MP_INFER env var,
// and MP_INFER_BATCH / MP_INFER_WAIT_US / MP_INFER_THREADS tune the engine).
// SIGTERM/SIGINT drain gracefully: the socket stops accepting,
// the running job and the queued backlog complete, then the process exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/peer.hpp"
#include "obs/trace.hpp"
#include "par/par.hpp"
#include "svc/server.hpp"

namespace {

mp::svc::Server* g_server = nullptr;

// Async-signal-safe: request_shutdown is one atomic store + one pipe write.
void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: mp_serve (--socket PATH | --listen URI) [--max-queued "
               "N] [--threads N] [--workers N] [--backlog N] [--infer [0|1]] "
               "[--peers URI,URI,...]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_uri;
  std::string peers_csv;
  mp::svc::ServiceOptions options;
  mp::svc::ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--socket") == 0 ||
         std::strcmp(argv[i], "--listen") == 0) &&
        i + 1 < argc) {
      listen_uri = argv[++i];
    } else if (std::strcmp(argv[i], "--max-queued") == 0 && i + 1 < argc) {
      options.max_queued = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      mp::par::set_num_threads(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--backlog") == 0 && i + 1 < argc) {
      server_options.backlog = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--infer") == 0) {
      // Bare --infer enables; --infer 0/1 sets explicitly.
      options.infer = (i + 1 < argc && (std::strcmp(argv[i + 1], "0") == 0 ||
                                        std::strcmp(argv[i + 1], "1") == 0))
                          ? std::atoi(argv[++i])
                          : 1;
    } else if (std::strcmp(argv[i], "--peers") == 0 && i + 1 < argc) {
      peers_csv = argv[++i];
    } else {
      return usage();
    }
  }
  if (listen_uri.empty() || server_options.backlog < 1) return usage();

  mp::svc::LocalService service(options);
  std::unique_ptr<mp::net::PeerFetcher> peer_fetcher;
  if (!peers_csv.empty()) {
    peer_fetcher =
        std::make_unique<mp::net::PeerFetcher>(split_csv(peers_csv));
    mp::net::PeerFetcher* fetcher = peer_fetcher.get();
    service.set_peer_fetcher([fetcher](const std::string& kind,
                                       const std::string& key,
                                       std::string* blob) {
      return fetcher->fetch(kind, key, blob);
    });
  }
  mp::svc::Server server(service, listen_uri, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("mp_serve: listening on %s (max %d queued, %d workers, %zu "
              "peers)\n",
              server.bound_uri().c_str(), options.max_queued,
              service.workers(),
              peer_fetcher != nullptr ? peer_fetcher->peers().size()
                                      : static_cast<std::size_t>(0));
  std::fflush(stdout);
  server.serve();

  // serve() returns only after the drain completed.
  int done = 0, failed = 0, cancelled = 0;
  for (const mp::svc::JobSnapshot& snap : service.jobs()) {
    if (snap.state == mp::svc::JobState::kDone) ++done;
    else if (snap.state == mp::svc::JobState::kFailed) ++failed;
    else if (snap.state == mp::svc::JobState::kCancelled) ++cancelled;
  }
  std::printf("mp_serve: drained (%d done, %d failed, %d cancelled)\n", done,
              failed, cancelled);
  // With MP_OBS_TRACE set, persist the span timeline now that every job has
  // finished (the atexit flush would also fire, but an explicit flush after
  // the drain makes the file complete even if exit paths change).
  if (mp::obs::trace_enabled() && mp::obs::trace_flush()) {
    std::printf("mp_serve: trace written to %s\n",
                std::getenv("MP_OBS_TRACE") != nullptr
                    ? std::getenv("MP_OBS_TRACE") : "(trace path)");
  }
  g_server = nullptr;
  return 0;
}
