// Industrial scenario (the paper's Table II setting): a circuit with design
// hierarchy and preplaced macros.  Shows how
//   * hierarchy names feed the Γ clustering score (Eq. 1),
//   * preplaced macros act as fixed obstacles in the grid occupancy,
//   * the flow compares against the simulated-annealing baseline.
//
//   ./industrial_flow

#include <cstdio>

#include "benchgen/presets.hpp"
#include "io/plot.hpp"
#include "place/placer.hpp"

int main() {
  // Cir1-like circuit at reduced size (see DESIGN.md on substitutions).
  mp::benchgen::BenchSpec spec = mp::benchgen::industrial_spec(0, /*scale=*/0.02);
  spec.movable_macros = 20;
  spec.preplaced_macros = 6;

  mp::netlist::Design ours_design = mp::benchgen::generate(spec);
  mp::netlist::Design sa_design = mp::benchgen::generate(spec);

  std::printf("industrial circuit: %d movable + %d preplaced macros, "
              "%zu cells, hierarchy depth 3\n",
              spec.movable_macros, spec.preplaced_macros,
              ours_design.std_cells().size());

  // Our flow.  Hierarchy-aware clustering happens inside prepare_flow; the δ
  // weight of Eq. (1) controls how strongly same-module macros group.
  mp::place::PlacerSpec ours_spec;
  ours_spec.preset = mp::place::Preset::kMcts;
  ours_spec.mcts_rl.flow.cluster.delta = 0.001;  // paper default
  ours_spec.mcts_rl.agent.channels = 16;
  ours_spec.mcts_rl.agent.res_blocks = 2;
  ours_spec.mcts_rl.train.episodes = 16;
  ours_spec.mcts_rl.train.update_window = 4;
  ours_spec.mcts_rl.train.calibration_episodes = 8;
  ours_spec.mcts_rl.mcts.explorations_per_move = 10;
  const mp::place::PlaceResult ours = mp::place::run(ours_design, ours_spec);

  // SE-style simulated-annealing baseline [26].
  mp::place::PlacerSpec sa_spec;
  sa_spec.preset = mp::place::Preset::kSa;
  sa_spec.sa.iterations = 6000;
  const mp::place::PlaceResult sa = mp::place::run(sa_design, sa_spec);

  std::printf("\n%-22s  %12s  %10s\n", "placer", "HPWL", "seconds");
  std::printf("%-22s  %12.5g  %10.1f\n", "MCTS+RL (ours)", ours.hpwl,
              ours.seconds);
  std::printf("%-22s  %12.5g  %10.1f\n", "simulated annealing", sa.hpwl,
              sa.seconds);
  std::printf("\nratio SA/ours = %.3f (paper's Table II reports 1.05)\n",
              sa.hpwl / ours.hpwl);

  mp::io::plot_placement(ours_design, "industrial_ours.ppm");
  mp::io::plot_placement(sa_design, "industrial_sa.ppm");
  std::printf("wrote industrial_ours.ppm / industrial_sa.ppm\n");
  return 0;
}
