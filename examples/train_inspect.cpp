// Training-introspection example: pre-train an agent, watch the Eq. (9)
// reward curve, snapshot/restore checkpoints, persist the agent to disk and
// reload it — the API surface for users who want to manage their own
// training schedules (the paper's "halt at any time" workflow, Sec. V).
//
//   ./train_inspect [episodes]

#include <cstdio>
#include <cstdlib>

#include "benchgen/generator.hpp"
#include "nn/serialize.hpp"
#include "place/flow.hpp"
#include "rl/coarse_evaluator.hpp"
#include "rl/trainer.hpp"

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 30;

  mp::benchgen::BenchSpec spec;
  spec.movable_macros = 16;
  spec.std_cells = 600;
  spec.nets = 900;
  spec.seed = 7;
  mp::netlist::Design design = mp::benchgen::generate(spec);

  mp::place::FlowOptions flow;
  flow.grid_dim = 8;
  mp::place::FlowContext context = mp::place::prepare_flow(design, flow);
  std::printf("%zu macro groups, %zu cell groups\n",
              context.clustering.macro_groups.size(),
              context.clustering.cell_groups.size());

  mp::rl::PlacementEnv env(context.coarse, context.clustering, context.spec);
  mp::rl::CoarseEvaluator evaluator(context.coarse, context.spec);

  mp::rl::AgentConfig agent_config;
  agent_config.grid_dim = flow.grid_dim;
  agent_config.channels = 16;
  agent_config.res_blocks = 2;
  mp::rl::AgentNetwork agent(agent_config);
  std::printf("agent: %zu parameters\n", agent.num_parameters());

  // Checkpoint halfway through training.
  std::vector<mp::nn::Tensor> halfway;
  mp::rl::TrainOptions options;
  options.episodes = episodes;
  options.update_window = std::max(3, episodes / 6);
  options.calibration_episodes = 10;
  options.on_episode = [&](int episode, double reward, double wirelength) {
    if (episode % 5 == 0) {
      std::printf("  episode %3d  reward %7.4f  wirelength %.4g\n", episode,
                  reward, wirelength);
    }
    if (episode + 1 == episodes / 2) {
      halfway = mp::nn::snapshot_parameters(agent.parameters());
    }
  };
  const mp::rl::TrainResult result =
      mp::rl::train_agent(env, evaluator, agent, options);

  std::printf("calibration: W in [%.4g, %.4g], mean %.4g\n",
              result.calibration.wl_min, result.calibration.wl_max,
              result.calibration.wl_mean);
  std::printf("best sampled wirelength: %.4g\n", result.best_wirelength);

  // Compare the final policy against the halfway checkpoint (greedy rollouts).
  std::vector<mp::grid::CellCoord> anchors;
  const double final_wl =
      mp::rl::play_greedy_episode(env, evaluator, agent, anchors);
  double halfway_wl = 0.0;
  if (!halfway.empty()) {
    const auto final_params = mp::nn::snapshot_parameters(agent.parameters());
    mp::nn::restore_parameters(agent.parameters(), halfway);
    halfway_wl = mp::rl::play_greedy_episode(env, evaluator, agent, anchors);
    mp::nn::restore_parameters(agent.parameters(), final_params);
  }
  std::printf("greedy rollout: halfway checkpoint %.4g, final %.4g\n",
              halfway_wl, final_wl);

  // Persist and reload.
  const std::string path = "train_inspect_agent.bin";
  mp::nn::save_parameters(agent.parameters(), path);
  mp::rl::AgentNetwork reloaded(agent_config);
  mp::nn::load_parameters(reloaded.parameters(), path);
  const double reloaded_wl =
      mp::rl::play_greedy_episode(env, evaluator, reloaded, anchors);
  std::printf("reloaded agent greedy rollout: %.4g (expect == final)\n",
              reloaded_wl);
  return 0;
}
