// Quickstart: place the macros of a synthetic design with the full
// MCTS-guided-by-pretrained-RL flow (Algorithm 1 of the paper) and write a
// picture of the result.
//
//   ./quickstart [seed]
//
// Walks through the library's main entry points: benchmark synthesis,
// PlacerSpec, place::run(), and the PPM plotter.

#include <cstdio>
#include <cstdlib>

#include "benchgen/generator.hpp"
#include "io/plot.hpp"
#include "place/placer.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // 1. Get a design.  Here we synthesize one; io::read_bookshelf() loads
  //    real Bookshelf (.nodes/.nets/.pl) circuits instead.
  mp::benchgen::BenchSpec spec;
  spec.name = "quickstart";
  spec.movable_macros = 24;
  spec.std_cells = 2000;
  spec.nets = 3000;
  spec.seed = seed;
  mp::netlist::Design design = mp::benchgen::generate(spec);
  const mp::netlist::DesignStats stats = design.stats();
  std::printf("design: %d macros, %d cells, %d nets\n", stats.movable_macros,
              stats.standard_cells, stats.nets);

  // 2. Configure the flow.  Defaults follow the paper (16x16 grid, PUCT
  //    c=1.05, reward Eq. 9); budgets here are sized for a ~1 minute demo.
  mp::place::PlacerSpec pspec;
  pspec.preset = mp::place::Preset::kMcts;
  pspec.mcts_rl.flow.grid_dim = 16;
  pspec.mcts_rl.agent.channels = 16;
  pspec.mcts_rl.agent.res_blocks = 2;
  pspec.mcts_rl.train.episodes = 20;
  pspec.mcts_rl.train.update_window = 5;
  pspec.mcts_rl.train.calibration_episodes = 10;
  pspec.mcts_rl.mcts.explorations_per_move = 12;

  // 3. Place.  The design is modified in place and ends up legal.
  const mp::place::PlaceResult result = mp::place::run(design, pspec);

  std::printf("macro groups: %d (from %d macros)\n", result.macro_groups,
              stats.movable_macros);
  std::printf("final HPWL:   %.4g\n", result.hpwl);
  std::printf("runtime:      %.1fs train, %.1fs MCTS\n", result.train_seconds,
              result.mcts_seconds);
  std::printf("macro overlap after legalization: %.3g (should be 0)\n",
              design.macro_overlap_area());

  // 4. Inspect the result.
  mp::io::PlotOptions plot;
  plot.draw_grid = true;
  plot.grid_dim = pspec.mcts_rl.flow.grid_dim;
  mp::io::plot_placement(design, "quickstart_placement.ppm", plot);
  std::printf("wrote quickstart_placement.ppm\n");
  return 0;
}
