// Fleet coordinator daemon (docs/DISTRIBUTED.md):
//
//   ./mp_route --listen tcp:0.0.0.0:7400 \
//              --backends tcp:hostA:7411,tcp:hostB:7411,tcp:hostC:7411 \
//              [--vnodes N] [--backlog N] [--health-period S]
//
// Speaks the same NDJSON protocol as mp_serve, so mp_submit pointed at the
// router works unchanged: submits are consistent-hashed onto the backend
// ring by spec content, job verbs follow the job wherever it runs, and a
// dead backend's jobs are re-submitted to the ring successor (deterministic
// jobs make the retry byte-identical).  SIGTERM/SIGINT stop accepting and
// exit; backends keep running their queues.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/router.hpp"

namespace {

mp::net::Router* g_router = nullptr;

void on_signal(int) {
  if (g_router != nullptr) g_router->request_shutdown();
}

int usage() {
  std::fprintf(stderr,
               "usage: mp_route --listen URI --backends URI,URI,... "
               "[--vnodes N] [--backlog N] [--health-period S]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_uri;
  mp::net::RouterOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_uri = argv[++i];
    } else if (std::strcmp(argv[i], "--backends") == 0 && i + 1 < argc) {
      options.backends = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--vnodes") == 0 && i + 1 < argc) {
      options.vnodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--backlog") == 0 && i + 1 < argc) {
      options.backlog = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--health-period") == 0 && i + 1 < argc) {
      options.health_period_s = std::atof(argv[++i]);
    } else {
      return usage();
    }
  }
  if (listen_uri.empty() || options.backends.empty() || options.vnodes < 1 ||
      options.backlog < 1) {
    return usage();
  }

  mp::net::Router router(listen_uri, options);
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_router = &router;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("mp_route: listening on %s (%zu backends, %d vnodes)\n",
              router.bound_uri().c_str(), options.backends.size(),
              options.vnodes);
  std::fflush(stdout);
  router.serve();
  std::printf("mp_route: stopped\n");
  g_router = nullptr;
  return 0;
}
