// Client CLI for the mp_serve daemon (or an mp_route fleet router — both
// speak the same protocol):
//
//   ./mp_submit --socket PATH submit <spec-json|@file> [--wait] [--watch]
//   ./mp_submit --endpoint tcp:host:port submit <spec-json|@file>
//   ./mp_submit --socket PATH status <job-id>
//   ./mp_submit --socket PATH result <job-id> [--timeout S]
//   ./mp_submit --socket PATH cancel <job-id>
//   ./mp_submit --socket PATH stats
//   ./mp_submit --socket PATH metrics [--prom]
//   ./mp_submit --socket PATH shutdown
//
// --socket and --endpoint are aliases; both take the net::parse_endpoint
// grammar (`unix:/path`, `tcp:host:port`, or a bare socket path).  The spec
// is a JSON job object (docs/SERVICE.md), inline or @file.  Replies print
// as one JSON line on stdout; exit status is 0 iff the server said ok.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "svc/client.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: mp_submit (--socket PATH | --endpoint URI) "
               "(submit <spec|@file> [--wait] [--watch] [--timeout S]"
               " | status <id> | result <id> [--timeout S]"
               " | cancel <id> | stats | metrics [--prom] | shutdown)\n");
  return 2;
}

bool reply_ok(const mp::svc::Json& reply) {
  const mp::svc::Json* ok = reply.find("ok");
  if (ok != nullptr && ok->is_bool()) return ok->as_bool();
  // watch's final line carries the job instead of "ok".
  return reply.find("event") != nullptr;
}

int finish(const mp::svc::Json& reply) {
  std::printf("%s\n", reply.dump().c_str());
  return reply_ok(reply) ? 0 : 1;
}

std::string load_spec_text(const std::string& arg) {
  if (arg.empty() || arg[0] != '@') return arg;
  std::ifstream f(arg.substr(1));
  if (!f) throw std::runtime_error("cannot open spec file " + arg.substr(1));
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, command, operand;
  bool wait = false, watch = false, prom = false;
  double timeout_s = 600.0;
  for (int i = 1; i < argc; ++i) {
    if ((std::strcmp(argv[i], "--socket") == 0 ||
         std::strcmp(argv[i], "--endpoint") == 0) &&
        i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      wait = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_s = std::atof(argv[++i]);
    } else if (command.empty()) {
      command = argv[i];
    } else if (operand.empty()) {
      operand = argv[i];
    } else {
      return usage();
    }
  }
  if (socket_path.empty() || command.empty()) return usage();

  mp::svc::Client client(socket_path);
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  try {
    if (command == "submit") {
      if (operand.empty()) return usage();
      const mp::svc::Json spec =
          mp::svc::Json::parse(load_spec_text(operand));
      const mp::svc::Json reply = client.submit(spec);
      if (!reply_ok(reply) || (!wait && !watch)) return finish(reply);
      const std::string id = reply.find("id")->as_string();
      if (watch) {
        return finish(client.watch(id, [](const mp::svc::Json& event) {
          std::printf("%s\n", event.dump().c_str());
          std::fflush(stdout);
        }));
      }
      return finish(client.result(id, timeout_s));
    }
    if (command == "status") {
      if (operand.empty()) return usage();
      return finish(client.status(operand));
    }
    if (command == "result") {
      if (operand.empty()) return usage();
      return finish(client.result(operand, timeout_s));
    }
    if (command == "cancel") {
      if (operand.empty()) return usage();
      return finish(client.cancel(operand));
    }
    if (command == "stats") return finish(client.stats());
    if (command == "metrics") {
      const mp::svc::Json reply = client.metrics(prom);
      if (prom && reply_ok(reply)) {
        // Unwrap the exposition so the output pipes straight into a
        // node_exporter textfile or promtool.
        const mp::svc::Json* text = reply.find("text");
        if (text != nullptr && text->is_string()) {
          std::fputs(text->as_string().c_str(), stdout);
          return 0;
        }
      }
      return finish(reply);
    }
    if (command == "shutdown") return finish(client.shutdown());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
