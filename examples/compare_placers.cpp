// Head-to-head of every placer in the library on one ICCAD04-like circuit —
// the Table III setting in miniature:
//   RL-only (CT-style), wiremask greedy (MaskPlace-style), analytical
//   mixed-size (RePlAce-style), simulated annealing (SE-style), and ours.
//
//   ./compare_placers [preset-index 0..16] [macro-count-override]

#include <cstdio>
#include <cstdlib>

#include "benchgen/presets.hpp"
#include "place/placer.hpp"

int main(int argc, char** argv) {
  const std::size_t preset = argc > 1
      ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
      : 0;
  mp::benchgen::BenchSpec spec = mp::benchgen::iccad04_spec(preset, 0.02);
  spec.movable_macros = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf("circuit %s-like: %d macros, %d cells, %d nets\n",
              spec.name.c_str(), spec.movable_macros,
              static_cast<int>(spec.std_cells * spec.scale),
              static_cast<int>(spec.nets * spec.scale));
  std::printf("%-24s  %12s  %10s\n", "placer", "HPWL", "seconds");

  const auto report = [](const char* name, double hpwl, double seconds) {
    std::printf("%-24s  %12.5g  %10.1f\n", name, hpwl, seconds);
    std::fflush(stdout);
  };

  // One spec per flow through the unified facade; the RL flows share the
  // same scaled-down knob set.
  mp::place::PlacerSpec spec_rl;
  spec_rl.mcts_rl.agent.channels = 16;
  spec_rl.mcts_rl.agent.res_blocks = 2;
  spec_rl.mcts_rl.train.episodes = 16;
  spec_rl.mcts_rl.train.update_window = 4;
  spec_rl.mcts_rl.train.calibration_episodes = 8;
  spec_rl.mcts_rl.mcts.explorations_per_move = 10;

  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::PlacerSpec s = spec_rl;
    s.preset = mp::place::Preset::kRlOnly;
    const auto r = mp::place::run(d, s);
    report("RL-only (CT-style)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::PlacerSpec s;
    s.preset = mp::place::Preset::kWiremask;
    s.wiremask.grid_dim = 32;
    const auto r = mp::place::run(d, s);
    report("wiremask (MaskPlace)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::PlacerSpec s;
    s.preset = mp::place::Preset::kAnalytic;
    const auto r = mp::place::run(d, s);
    report("analytical (RePlAce)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::PlacerSpec s;
    s.preset = mp::place::Preset::kSa;
    s.sa.iterations = 8000;
    const auto r = mp::place::run(d, s);
    report("annealing (SE-style)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::PlacerSpec s = spec_rl;
    s.preset = mp::place::Preset::kMcts;
    const auto r = mp::place::run(d, s);
    report("MCTS+RL (ours)", r.hpwl, r.seconds);
  }
  return 0;
}
