// Head-to-head of every placer in the library on one ICCAD04-like circuit —
// the Table III setting in miniature:
//   RL-only (CT-style), wiremask greedy (MaskPlace-style), analytical
//   mixed-size (RePlAce-style), simulated annealing (SE-style), and ours.
//
//   ./compare_placers [preset-index 0..16] [macro-count-override]

#include <cstdio>
#include <cstdlib>

#include "benchgen/presets.hpp"
#include "place/analytic_placer.hpp"
#include "place/placer.hpp"
#include "place/rl_only_placer.hpp"
#include "place/sa_placer.hpp"
#include "place/wiremask_placer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const std::size_t preset = argc > 1
      ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
      : 0;
  mp::benchgen::BenchSpec spec = mp::benchgen::iccad04_spec(preset, 0.02);
  spec.movable_macros = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf("circuit %s-like: %d macros, %d cells, %d nets\n",
              spec.name.c_str(), spec.movable_macros,
              static_cast<int>(spec.std_cells * spec.scale),
              static_cast<int>(spec.nets * spec.scale));
  std::printf("%-24s  %12s  %10s\n", "placer", "HPWL", "seconds");

  const auto report = [](const char* name, double hpwl, double seconds) {
    std::printf("%-24s  %12.5g  %10.1f\n", name, hpwl, seconds);
    std::fflush(stdout);
  };

  mp::place::MctsRlOptions options;
  options.agent.channels = 16;
  options.agent.res_blocks = 2;
  options.train.episodes = 16;
  options.train.update_window = 4;
  options.train.calibration_episodes = 8;
  options.mcts.explorations_per_move = 10;

  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    const auto r = mp::place::rl_only_place(d, options);
    report("RL-only (CT-style)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::WiremaskOptions wm;
    wm.grid_dim = 32;
    mp::util::Timer t;
    const auto r = mp::place::wiremask_place(d, wm);
    report("wiremask (MaskPlace)", r.hpwl, t.seconds());
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    const auto r = mp::place::analytic_place(d);
    report("analytical (RePlAce)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    mp::place::SaOptions sa;
    sa.iterations = 8000;
    const auto r = mp::place::sa_place(d, sa);
    report("annealing (SE-style)", r.hpwl, r.seconds);
  }
  {
    mp::netlist::Design d = mp::benchgen::generate(spec);
    const auto r = mp::place::mcts_rl_place(d, options);
    report("MCTS+RL (ours)", r.hpwl, r.total_seconds);
  }
  return 0;
}
