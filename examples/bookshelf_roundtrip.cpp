// Library-interop example: export a synthetic design to Bookshelf
// (.nodes/.nets/.pl), read it back, place the reloaded copy, and export the
// placed result — the workflow for using this placer with external circuits.
//
//   ./bookshelf_roundtrip [output-prefix]

#include <cstdio>

#include "benchgen/generator.hpp"
#include "io/bookshelf.hpp"
#include "place/placer.hpp"

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "roundtrip_demo";

  mp::benchgen::BenchSpec spec;
  spec.name = "roundtrip";
  spec.movable_macros = 12;
  spec.std_cells = 800;
  spec.nets = 1200;
  spec.seed = 5;
  const mp::netlist::Design original = mp::benchgen::generate(spec);
  mp::io::write_bookshelf(original, prefix);
  std::printf("wrote %s.{nodes,nets,pl} (%zu nodes, %zu nets)\n",
              prefix.c_str(), original.num_nodes(), original.num_nets());

  mp::netlist::Design reloaded = mp::io::read_bookshelf(prefix);
  std::printf("reloaded: %d macros classified, HPWL %.5g (original %.5g)\n",
              static_cast<int>(reloaded.macros().size()),
              reloaded.total_hpwl(), original.total_hpwl());

  mp::place::PlacerSpec pspec;
  pspec.preset = mp::place::Preset::kAnalytic;
  const mp::place::PlaceResult result = mp::place::run(reloaded, pspec);
  std::printf("placed reloaded copy: HPWL %.5g, overlap %.3g\n", result.hpwl,
              reloaded.macro_overlap_area());

  mp::io::write_bookshelf(reloaded, prefix + "_placed");
  std::printf("wrote %s_placed.{nodes,nets,pl}\n", prefix.c_str());
  return 0;
}
