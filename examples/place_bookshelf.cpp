// Command-line placer for Bookshelf circuits — the adoption entry point for
// external designs:
//
//   ./place_bookshelf <prefix> [options]
//     --placer ours|rl|sa|wiremask|analytic|regulate  (default ours)
//     --episodes N      RL pre-training episodes           (default 60)
//     --gamma N         MCTS explorations per move         (default 24)
//     --grid N          ζ — grid dimension                 (default 16)
//     --channels N      agent tower width                  (default 24)
//     --blocks N        agent tower depth                  (default 2)
//     --out PREFIX      write <PREFIX>.{nodes,nets,pl} + .ppm
//   regulate (ECO) only:
//     --initial-placement FILE  standalone .pl applied before refinement
//                               (default: the positions in <prefix>.pl)
//     --radius N        trust-region Chebyshev cell radius (default 2)
//     --max-moves N     cap on moved groups; 0 = unbounded (default 0)
//     --freeze NAME     pin a macro to its incumbent spot (repeatable)
//
// Reads <prefix>.nodes/.nets/.pl, places, reports HPWL and legality.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/bookshelf.hpp"
#include "io/plot.hpp"
#include "obs/report.hpp"
#include "par/par.hpp"
#include "place/placer.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: place_bookshelf <prefix> [--placer ours|rl|sa|wiremask|"
               "analytic|regulate] [--episodes N] [--gamma N] [--grid N] "
               "[--channels N] [--blocks N] [--threads N] [--out PREFIX]\n"
               "       regulate only: [--initial-placement FILE] [--radius N] "
               "[--max-moves N] [--freeze NAME]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string prefix = argv[1];
  std::string placer = "ours";
  std::string out;
  std::string initial_placement;
  std::vector<std::string> freeze;
  int episodes = 60, gamma = 24, grid = 16, channels = 24, blocks = 2;
  int radius = 2, max_moves = 0;

  for (int i = 2; i < argc; ++i) {
    const auto next = [&](int& value) {
      if (i + 1 >= argc) return false;
      value = std::atoi(argv[++i]);
      return true;
    };
    if (std::strcmp(argv[i], "--placer") == 0 && i + 1 < argc) placer = argv[++i];
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else if (std::strcmp(argv[i], "--episodes") == 0) { if (!next(episodes)) return usage(); }
    else if (std::strcmp(argv[i], "--gamma") == 0) { if (!next(gamma)) return usage(); }
    else if (std::strcmp(argv[i], "--grid") == 0) { if (!next(grid)) return usage(); }
    else if (std::strcmp(argv[i], "--channels") == 0) { if (!next(channels)) return usage(); }
    else if (std::strcmp(argv[i], "--blocks") == 0) { if (!next(blocks)) return usage(); }
    else if (std::strcmp(argv[i], "--initial-placement") == 0 && i + 1 < argc)
      initial_placement = argv[++i];
    else if (std::strcmp(argv[i], "--freeze") == 0 && i + 1 < argc)
      freeze.push_back(argv[++i]);
    else if (std::strcmp(argv[i], "--radius") == 0) { if (!next(radius)) return usage(); }
    else if (std::strcmp(argv[i], "--max-moves") == 0) { if (!next(max_moves)) return usage(); }
    else if (std::strcmp(argv[i], "--threads") == 0) {
      int threads = 0;
      if (!next(threads)) return usage();
      mp::par::set_num_threads(threads);
    }
    else return usage();
  }

  mp::netlist::Design design;
  try {
    design = mp::io::read_bookshelf(prefix);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const mp::netlist::DesignStats stats = design.stats();
  std::printf("loaded %s: %d movable macros, %d preplaced, %d cells, %d nets\n",
              prefix.c_str(), stats.movable_macros, stats.preplaced_macros,
              stats.standard_cells, stats.nets);

  mp::place::Preset preset;
  if (!mp::place::parse_preset(placer, preset)) return usage();
  mp::place::PresetKnobs knobs;
  knobs.episodes = episodes;
  knobs.gamma = gamma;
  knobs.grid = grid;
  knobs.channels = channels;
  knobs.blocks = blocks;
  knobs.regulate_radius = radius;
  knobs.regulate_max_moves = max_moves;
  knobs.regulate_frozen = freeze;
  if (preset == mp::place::Preset::kRegulate && !initial_placement.empty()) {
    try {
      const auto entries = mp::io::read_pl(initial_placement);
      const mp::io::PlacementApplyStats applied =
          mp::io::apply_placement(design, entries);
      std::printf("applied %s: %d positions (%d unknown names)\n",
                  initial_placement.c_str(), applied.applied, applied.unknown);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const mp::place::PlacerSpec spec = mp::place::spec_from_preset(preset, knobs);
  const double hpwl = mp::place::run(design, spec).hpwl;

  std::printf("placer=%s  HPWL=%.6g  macro_overlap=%.3g  in_region=%s\n",
              placer.c_str(), hpwl, design.macro_overlap_area(),
              design.all_inside_region() ? "yes" : "no");

  // MP_OBS_SUMMARY=1 prints the per-phase runtime table (docs/OBSERVABILITY.md)
  // to stderr; the JSONL report goes to MP_OBS_OUT as usual.
  const char* want_summary = std::getenv("MP_OBS_SUMMARY");
  if (want_summary != nullptr && want_summary[0] != '\0' &&
      std::strcmp(want_summary, "0") != 0) {
    const std::string summary = mp::obs::summary_table();
    if (!summary.empty()) std::fprintf(stderr, "%s", summary.c_str());
  }

  if (!out.empty()) {
    mp::io::write_bookshelf(design, out);
    mp::io::PlotOptions plot;
    plot.draw_grid = true;
    plot.grid_dim = grid;
    mp::io::plot_placement(design, out + ".ppm", plot);
    std::printf("wrote %s.{nodes,nets,pl,ppm}\n", out.c_str());
  }
  return 0;
}
