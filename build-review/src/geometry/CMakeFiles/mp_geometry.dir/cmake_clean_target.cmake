file(REMOVE_RECURSE
  "libmp_geometry.a"
)
