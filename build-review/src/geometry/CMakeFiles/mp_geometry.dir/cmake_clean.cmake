file(REMOVE_RECURSE
  "CMakeFiles/mp_geometry.dir/geometry.cpp.o"
  "CMakeFiles/mp_geometry.dir/geometry.cpp.o.d"
  "libmp_geometry.a"
  "libmp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
