# Empty dependencies file for mp_geometry.
# This may be replaced when dependencies are built.
