file(REMOVE_RECURSE
  "CMakeFiles/mp_legal.dir/legalizer.cpp.o"
  "CMakeFiles/mp_legal.dir/legalizer.cpp.o.d"
  "CMakeFiles/mp_legal.dir/lp_legalizer.cpp.o"
  "CMakeFiles/mp_legal.dir/lp_legalizer.cpp.o.d"
  "CMakeFiles/mp_legal.dir/sequence_pair.cpp.o"
  "CMakeFiles/mp_legal.dir/sequence_pair.cpp.o.d"
  "CMakeFiles/mp_legal.dir/shove.cpp.o"
  "CMakeFiles/mp_legal.dir/shove.cpp.o.d"
  "libmp_legal.a"
  "libmp_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
