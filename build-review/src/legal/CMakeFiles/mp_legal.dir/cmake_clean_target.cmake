file(REMOVE_RECURSE
  "libmp_legal.a"
)
