# Empty compiler generated dependencies file for mp_legal.
# This may be replaced when dependencies are built.
