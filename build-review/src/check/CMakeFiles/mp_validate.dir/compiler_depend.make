# Empty compiler generated dependencies file for mp_validate.
# This may be replaced when dependencies are built.
