file(REMOVE_RECURSE
  "CMakeFiles/mp_validate.dir/validators.cpp.o"
  "CMakeFiles/mp_validate.dir/validators.cpp.o.d"
  "libmp_validate.a"
  "libmp_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
