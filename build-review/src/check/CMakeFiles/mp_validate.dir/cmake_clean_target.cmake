file(REMOVE_RECURSE
  "libmp_validate.a"
)
