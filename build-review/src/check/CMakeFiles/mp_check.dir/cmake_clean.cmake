file(REMOVE_RECURSE
  "CMakeFiles/mp_check.dir/check.cpp.o"
  "CMakeFiles/mp_check.dir/check.cpp.o.d"
  "libmp_check.a"
  "libmp_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
