file(REMOVE_RECURSE
  "libmp_check.a"
)
