# Empty compiler generated dependencies file for mp_check.
# This may be replaced when dependencies are built.
