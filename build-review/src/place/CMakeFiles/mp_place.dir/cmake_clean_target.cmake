file(REMOVE_RECURSE
  "libmp_place.a"
)
