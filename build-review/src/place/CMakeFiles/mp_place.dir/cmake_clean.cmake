file(REMOVE_RECURSE
  "CMakeFiles/mp_place.dir/analytic_placer.cpp.o"
  "CMakeFiles/mp_place.dir/analytic_placer.cpp.o.d"
  "CMakeFiles/mp_place.dir/flow.cpp.o"
  "CMakeFiles/mp_place.dir/flow.cpp.o.d"
  "CMakeFiles/mp_place.dir/placer.cpp.o"
  "CMakeFiles/mp_place.dir/placer.cpp.o.d"
  "CMakeFiles/mp_place.dir/rl_only_placer.cpp.o"
  "CMakeFiles/mp_place.dir/rl_only_placer.cpp.o.d"
  "CMakeFiles/mp_place.dir/sa_placer.cpp.o"
  "CMakeFiles/mp_place.dir/sa_placer.cpp.o.d"
  "CMakeFiles/mp_place.dir/wiremask_placer.cpp.o"
  "CMakeFiles/mp_place.dir/wiremask_placer.cpp.o.d"
  "libmp_place.a"
  "libmp_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
