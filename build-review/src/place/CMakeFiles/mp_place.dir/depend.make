# Empty dependencies file for mp_place.
# This may be replaced when dependencies are built.
