file(REMOVE_RECURSE
  "CMakeFiles/mp_nn.dir/functional.cpp.o"
  "CMakeFiles/mp_nn.dir/functional.cpp.o.d"
  "CMakeFiles/mp_nn.dir/layers.cpp.o"
  "CMakeFiles/mp_nn.dir/layers.cpp.o.d"
  "CMakeFiles/mp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/mp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/mp_nn.dir/serialize.cpp.o"
  "CMakeFiles/mp_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/mp_nn.dir/tensor.cpp.o"
  "CMakeFiles/mp_nn.dir/tensor.cpp.o.d"
  "libmp_nn.a"
  "libmp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
