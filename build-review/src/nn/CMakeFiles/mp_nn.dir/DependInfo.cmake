
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/functional.cpp" "src/nn/CMakeFiles/mp_nn.dir/functional.cpp.o" "gcc" "src/nn/CMakeFiles/mp_nn.dir/functional.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/mp_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/mp_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/mp_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/mp_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/mp_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/mp_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/mp_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/mp_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
