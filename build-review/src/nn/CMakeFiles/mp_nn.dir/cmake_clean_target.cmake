file(REMOVE_RECURSE
  "libmp_nn.a"
)
