# Empty dependencies file for mp_nn.
# This may be replaced when dependencies are built.
