file(REMOVE_RECURSE
  "CMakeFiles/mp_util.dir/env.cpp.o"
  "CMakeFiles/mp_util.dir/env.cpp.o.d"
  "CMakeFiles/mp_util.dir/log.cpp.o"
  "CMakeFiles/mp_util.dir/log.cpp.o.d"
  "CMakeFiles/mp_util.dir/rng.cpp.o"
  "CMakeFiles/mp_util.dir/rng.cpp.o.d"
  "CMakeFiles/mp_util.dir/timer.cpp.o"
  "CMakeFiles/mp_util.dir/timer.cpp.o.d"
  "libmp_util.a"
  "libmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
