file(REMOVE_RECURSE
  "libmp_qp.a"
)
