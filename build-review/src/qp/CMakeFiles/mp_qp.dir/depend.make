# Empty dependencies file for mp_qp.
# This may be replaced when dependencies are built.
