file(REMOVE_RECURSE
  "CMakeFiles/mp_qp.dir/b2b.cpp.o"
  "CMakeFiles/mp_qp.dir/b2b.cpp.o.d"
  "CMakeFiles/mp_qp.dir/quadratic.cpp.o"
  "CMakeFiles/mp_qp.dir/quadratic.cpp.o.d"
  "libmp_qp.a"
  "libmp_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
