# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("par")
subdirs("obs")
subdirs("check")
subdirs("geometry")
subdirs("linalg")
subdirs("lp")
subdirs("netlist")
subdirs("io")
subdirs("grid")
subdirs("qp")
subdirs("gp")
subdirs("dp")
subdirs("cluster")
subdirs("legal")
subdirs("nn")
subdirs("rl")
subdirs("mcts")
subdirs("benchgen")
subdirs("place")
