file(REMOVE_RECURSE
  "libmp_dp.a"
)
