file(REMOVE_RECURSE
  "CMakeFiles/mp_dp.dir/detailed.cpp.o"
  "CMakeFiles/mp_dp.dir/detailed.cpp.o.d"
  "CMakeFiles/mp_dp.dir/row_legalizer.cpp.o"
  "CMakeFiles/mp_dp.dir/row_legalizer.cpp.o.d"
  "libmp_dp.a"
  "libmp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
