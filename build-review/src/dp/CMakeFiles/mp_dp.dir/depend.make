# Empty dependencies file for mp_dp.
# This may be replaced when dependencies are built.
