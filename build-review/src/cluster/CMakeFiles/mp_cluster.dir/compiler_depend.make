# Empty compiler generated dependencies file for mp_cluster.
# This may be replaced when dependencies are built.
