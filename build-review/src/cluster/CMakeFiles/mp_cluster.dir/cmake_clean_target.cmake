file(REMOVE_RECURSE
  "libmp_cluster.a"
)
