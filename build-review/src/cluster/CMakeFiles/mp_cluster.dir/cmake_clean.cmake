file(REMOVE_RECURSE
  "CMakeFiles/mp_cluster.dir/clustering.cpp.o"
  "CMakeFiles/mp_cluster.dir/clustering.cpp.o.d"
  "CMakeFiles/mp_cluster.dir/coarse.cpp.o"
  "CMakeFiles/mp_cluster.dir/coarse.cpp.o.d"
  "libmp_cluster.a"
  "libmp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
