file(REMOVE_RECURSE
  "libmp_obs.a"
)
