
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/obs.cpp" "src/obs/CMakeFiles/mp_obs.dir/obs.cpp.o" "gcc" "src/obs/CMakeFiles/mp_obs.dir/obs.cpp.o.d"
  "/root/repo/src/obs/report.cpp" "src/obs/CMakeFiles/mp_obs.dir/report.cpp.o" "gcc" "src/obs/CMakeFiles/mp_obs.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/mp_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
