file(REMOVE_RECURSE
  "CMakeFiles/mp_obs.dir/obs.cpp.o"
  "CMakeFiles/mp_obs.dir/obs.cpp.o.d"
  "CMakeFiles/mp_obs.dir/report.cpp.o"
  "CMakeFiles/mp_obs.dir/report.cpp.o.d"
  "libmp_obs.a"
  "libmp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
