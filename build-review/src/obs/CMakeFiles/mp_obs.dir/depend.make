# Empty dependencies file for mp_obs.
# This may be replaced when dependencies are built.
