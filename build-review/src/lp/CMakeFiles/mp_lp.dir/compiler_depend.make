# Empty compiler generated dependencies file for mp_lp.
# This may be replaced when dependencies are built.
