file(REMOVE_RECURSE
  "libmp_lp.a"
)
