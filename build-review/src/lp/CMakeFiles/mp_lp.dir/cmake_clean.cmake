file(REMOVE_RECURSE
  "CMakeFiles/mp_lp.dir/simplex.cpp.o"
  "CMakeFiles/mp_lp.dir/simplex.cpp.o.d"
  "libmp_lp.a"
  "libmp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
