file(REMOVE_RECURSE
  "CMakeFiles/mp_netlist.dir/design.cpp.o"
  "CMakeFiles/mp_netlist.dir/design.cpp.o.d"
  "CMakeFiles/mp_netlist.dir/hierarchy.cpp.o"
  "CMakeFiles/mp_netlist.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mp_netlist.dir/stats.cpp.o"
  "CMakeFiles/mp_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/mp_netlist.dir/validate.cpp.o"
  "CMakeFiles/mp_netlist.dir/validate.cpp.o.d"
  "libmp_netlist.a"
  "libmp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
