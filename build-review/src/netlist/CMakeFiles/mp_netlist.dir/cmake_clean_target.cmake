file(REMOVE_RECURSE
  "libmp_netlist.a"
)
