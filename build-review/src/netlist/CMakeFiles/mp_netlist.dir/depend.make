# Empty dependencies file for mp_netlist.
# This may be replaced when dependencies are built.
