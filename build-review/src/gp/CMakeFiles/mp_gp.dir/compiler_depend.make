# Empty compiler generated dependencies file for mp_gp.
# This may be replaced when dependencies are built.
