file(REMOVE_RECURSE
  "CMakeFiles/mp_gp.dir/density.cpp.o"
  "CMakeFiles/mp_gp.dir/density.cpp.o.d"
  "CMakeFiles/mp_gp.dir/global_placer.cpp.o"
  "CMakeFiles/mp_gp.dir/global_placer.cpp.o.d"
  "CMakeFiles/mp_gp.dir/rudy.cpp.o"
  "CMakeFiles/mp_gp.dir/rudy.cpp.o.d"
  "libmp_gp.a"
  "libmp_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
