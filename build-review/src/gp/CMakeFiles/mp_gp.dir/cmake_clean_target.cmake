file(REMOVE_RECURSE
  "libmp_gp.a"
)
