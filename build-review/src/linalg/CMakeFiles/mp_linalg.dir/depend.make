# Empty dependencies file for mp_linalg.
# This may be replaced when dependencies are built.
