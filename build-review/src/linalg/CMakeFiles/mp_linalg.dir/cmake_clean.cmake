file(REMOVE_RECURSE
  "CMakeFiles/mp_linalg.dir/cg.cpp.o"
  "CMakeFiles/mp_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/dense.cpp.o"
  "CMakeFiles/mp_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/mp_linalg.dir/sparse.cpp.o"
  "CMakeFiles/mp_linalg.dir/sparse.cpp.o.d"
  "libmp_linalg.a"
  "libmp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
