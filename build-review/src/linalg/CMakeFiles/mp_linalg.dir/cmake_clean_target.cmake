file(REMOVE_RECURSE
  "libmp_linalg.a"
)
