file(REMOVE_RECURSE
  "libmp_rl.a"
)
