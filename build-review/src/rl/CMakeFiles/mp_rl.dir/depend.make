# Empty dependencies file for mp_rl.
# This may be replaced when dependencies are built.
