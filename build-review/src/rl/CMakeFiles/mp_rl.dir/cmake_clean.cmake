file(REMOVE_RECURSE
  "CMakeFiles/mp_rl.dir/agent.cpp.o"
  "CMakeFiles/mp_rl.dir/agent.cpp.o.d"
  "CMakeFiles/mp_rl.dir/coarse_evaluator.cpp.o"
  "CMakeFiles/mp_rl.dir/coarse_evaluator.cpp.o.d"
  "CMakeFiles/mp_rl.dir/env.cpp.o"
  "CMakeFiles/mp_rl.dir/env.cpp.o.d"
  "CMakeFiles/mp_rl.dir/reward.cpp.o"
  "CMakeFiles/mp_rl.dir/reward.cpp.o.d"
  "CMakeFiles/mp_rl.dir/trainer.cpp.o"
  "CMakeFiles/mp_rl.dir/trainer.cpp.o.d"
  "libmp_rl.a"
  "libmp_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
