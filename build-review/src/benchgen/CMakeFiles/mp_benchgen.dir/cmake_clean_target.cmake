file(REMOVE_RECURSE
  "libmp_benchgen.a"
)
