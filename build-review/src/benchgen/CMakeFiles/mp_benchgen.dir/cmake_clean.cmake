file(REMOVE_RECURSE
  "CMakeFiles/mp_benchgen.dir/generator.cpp.o"
  "CMakeFiles/mp_benchgen.dir/generator.cpp.o.d"
  "CMakeFiles/mp_benchgen.dir/presets.cpp.o"
  "CMakeFiles/mp_benchgen.dir/presets.cpp.o.d"
  "libmp_benchgen.a"
  "libmp_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
