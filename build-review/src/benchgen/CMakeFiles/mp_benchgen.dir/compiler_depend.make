# Empty compiler generated dependencies file for mp_benchgen.
# This may be replaced when dependencies are built.
