file(REMOVE_RECURSE
  "CMakeFiles/mp_grid.dir/grid.cpp.o"
  "CMakeFiles/mp_grid.dir/grid.cpp.o.d"
  "CMakeFiles/mp_grid.dir/occupancy.cpp.o"
  "CMakeFiles/mp_grid.dir/occupancy.cpp.o.d"
  "libmp_grid.a"
  "libmp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
