file(REMOVE_RECURSE
  "libmp_grid.a"
)
