# Empty compiler generated dependencies file for mp_grid.
# This may be replaced when dependencies are built.
