# Empty dependencies file for mp_io.
# This may be replaced when dependencies are built.
