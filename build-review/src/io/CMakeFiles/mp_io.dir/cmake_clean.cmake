file(REMOVE_RECURSE
  "CMakeFiles/mp_io.dir/bookshelf.cpp.o"
  "CMakeFiles/mp_io.dir/bookshelf.cpp.o.d"
  "CMakeFiles/mp_io.dir/plot.cpp.o"
  "CMakeFiles/mp_io.dir/plot.cpp.o.d"
  "libmp_io.a"
  "libmp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
