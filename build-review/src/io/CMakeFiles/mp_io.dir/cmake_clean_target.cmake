file(REMOVE_RECURSE
  "libmp_io.a"
)
