# Empty dependencies file for mp_par.
# This may be replaced when dependencies are built.
