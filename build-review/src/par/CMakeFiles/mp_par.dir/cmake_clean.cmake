file(REMOVE_RECURSE
  "CMakeFiles/mp_par.dir/par.cpp.o"
  "CMakeFiles/mp_par.dir/par.cpp.o.d"
  "libmp_par.a"
  "libmp_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
