file(REMOVE_RECURSE
  "libmp_par.a"
)
