file(REMOVE_RECURSE
  "CMakeFiles/mp_mcts.dir/mcts.cpp.o"
  "CMakeFiles/mp_mcts.dir/mcts.cpp.o.d"
  "libmp_mcts.a"
  "libmp_mcts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
