# Empty compiler generated dependencies file for mp_mcts.
# This may be replaced when dependencies are built.
