file(REMOVE_RECURSE
  "libmp_mcts.a"
)
