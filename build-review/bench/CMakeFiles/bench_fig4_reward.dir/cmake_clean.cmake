file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_reward.dir/bench_fig4_reward.cpp.o"
  "CMakeFiles/bench_fig4_reward.dir/bench_fig4_reward.cpp.o.d"
  "bench_fig4_reward"
  "bench_fig4_reward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
