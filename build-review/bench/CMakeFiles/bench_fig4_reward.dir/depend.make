# Empty dependencies file for bench_fig4_reward.
# This may be replaced when dependencies are built.
