# Empty compiler generated dependencies file for bench_fig5_mcts_vs_rl.
# This may be replaced when dependencies are built.
