file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mcts_vs_rl.dir/bench_fig5_mcts_vs_rl.cpp.o"
  "CMakeFiles/bench_fig5_mcts_vs_rl.dir/bench_fig5_mcts_vs_rl.cpp.o.d"
  "bench_fig5_mcts_vs_rl"
  "bench_fig5_mcts_vs_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mcts_vs_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
