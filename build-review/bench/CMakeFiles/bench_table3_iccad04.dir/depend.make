# Empty dependencies file for bench_table3_iccad04.
# This may be replaced when dependencies are built.
