file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_iccad04.dir/bench_table3_iccad04.cpp.o"
  "CMakeFiles/bench_table3_iccad04.dir/bench_table3_iccad04.cpp.o.d"
  "bench_table3_iccad04"
  "bench_table3_iccad04.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_iccad04.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
