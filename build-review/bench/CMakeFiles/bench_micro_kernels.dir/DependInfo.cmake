
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_kernels.cpp" "bench/CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/place/CMakeFiles/mp_place.dir/DependInfo.cmake"
  "/root/repo/build-review/src/benchgen/CMakeFiles/mp_benchgen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mcts/CMakeFiles/mp_mcts.dir/DependInfo.cmake"
  "/root/repo/build-review/src/rl/CMakeFiles/mp_rl.dir/DependInfo.cmake"
  "/root/repo/build-review/src/legal/CMakeFiles/mp_legal.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cluster/CMakeFiles/mp_cluster.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/mp_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gp/CMakeFiles/mp_gp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/qp/CMakeFiles/mp_qp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/mp_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dp/CMakeFiles/mp_dp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build-review/src/check/CMakeFiles/mp_validate.dir/DependInfo.cmake"
  "/root/repo/build-review/src/netlist/CMakeFiles/mp_netlist.dir/DependInfo.cmake"
  "/root/repo/build-review/src/nn/CMakeFiles/mp_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/grid/CMakeFiles/mp_grid.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geometry/CMakeFiles/mp_geometry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/check/CMakeFiles/mp_check.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/mp_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/par/CMakeFiles/mp_par.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
