file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_industrial.dir/bench_table2_industrial.cpp.o"
  "CMakeFiles/bench_table2_industrial.dir/bench_table2_industrial.cpp.o.d"
  "bench_table2_industrial"
  "bench_table2_industrial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_industrial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
