# Empty compiler generated dependencies file for bench_table2_industrial.
# This may be replaced when dependencies are built.
