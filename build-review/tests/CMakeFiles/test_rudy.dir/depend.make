# Empty dependencies file for test_rudy.
# This may be replaced when dependencies are built.
