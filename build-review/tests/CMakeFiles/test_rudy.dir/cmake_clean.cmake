file(REMOVE_RECURSE
  "CMakeFiles/test_rudy.dir/test_rudy.cpp.o"
  "CMakeFiles/test_rudy.dir/test_rudy.cpp.o.d"
  "test_rudy"
  "test_rudy.pdb"
  "test_rudy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
