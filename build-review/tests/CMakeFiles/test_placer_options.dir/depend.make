# Empty dependencies file for test_placer_options.
# This may be replaced when dependencies are built.
