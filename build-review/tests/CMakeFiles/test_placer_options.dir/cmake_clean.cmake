file(REMOVE_RECURSE
  "CMakeFiles/test_placer_options.dir/test_placer_options.cpp.o"
  "CMakeFiles/test_placer_options.dir/test_placer_options.cpp.o.d"
  "test_placer_options"
  "test_placer_options.pdb"
  "test_placer_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placer_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
