file(REMOVE_RECURSE
  "CMakeFiles/test_nn_sweep.dir/test_nn_sweep.cpp.o"
  "CMakeFiles/test_nn_sweep.dir/test_nn_sweep.cpp.o.d"
  "test_nn_sweep"
  "test_nn_sweep.pdb"
  "test_nn_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
