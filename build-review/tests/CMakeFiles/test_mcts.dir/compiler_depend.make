# Empty compiler generated dependencies file for test_mcts.
# This may be replaced when dependencies are built.
