file(REMOVE_RECURSE
  "CMakeFiles/test_mcts.dir/test_mcts.cpp.o"
  "CMakeFiles/test_mcts.dir/test_mcts.cpp.o.d"
  "test_mcts"
  "test_mcts.pdb"
  "test_mcts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
