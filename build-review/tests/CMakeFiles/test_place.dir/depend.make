# Empty dependencies file for test_place.
# This may be replaced when dependencies are built.
