file(REMOVE_RECURSE
  "CMakeFiles/test_place.dir/test_place.cpp.o"
  "CMakeFiles/test_place.dir/test_place.cpp.o.d"
  "test_place"
  "test_place.pdb"
  "test_place[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
