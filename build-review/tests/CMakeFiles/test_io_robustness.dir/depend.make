# Empty dependencies file for test_io_robustness.
# This may be replaced when dependencies are built.
