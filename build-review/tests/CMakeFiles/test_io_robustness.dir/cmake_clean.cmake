file(REMOVE_RECURSE
  "CMakeFiles/test_io_robustness.dir/test_io_robustness.cpp.o"
  "CMakeFiles/test_io_robustness.dir/test_io_robustness.cpp.o.d"
  "test_io_robustness"
  "test_io_robustness.pdb"
  "test_io_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
