file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_sweep.dir/test_cluster_sweep.cpp.o"
  "CMakeFiles/test_cluster_sweep.dir/test_cluster_sweep.cpp.o.d"
  "test_cluster_sweep"
  "test_cluster_sweep.pdb"
  "test_cluster_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
