# Empty compiler generated dependencies file for test_cluster_sweep.
# This may be replaced when dependencies are built.
