file(REMOVE_RECURSE
  "CMakeFiles/test_sa_wiremask_units.dir/test_sa_wiremask_units.cpp.o"
  "CMakeFiles/test_sa_wiremask_units.dir/test_sa_wiremask_units.cpp.o.d"
  "test_sa_wiremask_units"
  "test_sa_wiremask_units.pdb"
  "test_sa_wiremask_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sa_wiremask_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
