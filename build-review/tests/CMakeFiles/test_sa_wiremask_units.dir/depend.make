# Empty dependencies file for test_sa_wiremask_units.
# This may be replaced when dependencies are built.
