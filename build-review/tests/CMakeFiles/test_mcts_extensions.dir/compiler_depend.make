# Empty compiler generated dependencies file for test_mcts_extensions.
# This may be replaced when dependencies are built.
