file(REMOVE_RECURSE
  "CMakeFiles/test_mcts_extensions.dir/test_mcts_extensions.cpp.o"
  "CMakeFiles/test_mcts_extensions.dir/test_mcts_extensions.cpp.o.d"
  "test_mcts_extensions"
  "test_mcts_extensions.pdb"
  "test_mcts_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcts_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
