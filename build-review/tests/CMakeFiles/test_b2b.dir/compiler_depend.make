# Empty compiler generated dependencies file for test_b2b.
# This may be replaced when dependencies are built.
