file(REMOVE_RECURSE
  "CMakeFiles/test_b2b.dir/test_b2b.cpp.o"
  "CMakeFiles/test_b2b.dir/test_b2b.cpp.o.d"
  "test_b2b"
  "test_b2b.pdb"
  "test_b2b[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_b2b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
