file(REMOVE_RECURSE
  "CMakeFiles/check"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
