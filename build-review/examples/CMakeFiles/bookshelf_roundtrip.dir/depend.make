# Empty dependencies file for bookshelf_roundtrip.
# This may be replaced when dependencies are built.
