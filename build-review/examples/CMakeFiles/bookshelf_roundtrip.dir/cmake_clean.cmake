file(REMOVE_RECURSE
  "CMakeFiles/bookshelf_roundtrip.dir/bookshelf_roundtrip.cpp.o"
  "CMakeFiles/bookshelf_roundtrip.dir/bookshelf_roundtrip.cpp.o.d"
  "bookshelf_roundtrip"
  "bookshelf_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookshelf_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
