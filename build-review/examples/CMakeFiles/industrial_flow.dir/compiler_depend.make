# Empty compiler generated dependencies file for industrial_flow.
# This may be replaced when dependencies are built.
