file(REMOVE_RECURSE
  "CMakeFiles/industrial_flow.dir/industrial_flow.cpp.o"
  "CMakeFiles/industrial_flow.dir/industrial_flow.cpp.o.d"
  "industrial_flow"
  "industrial_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
