file(REMOVE_RECURSE
  "CMakeFiles/compare_placers.dir/compare_placers.cpp.o"
  "CMakeFiles/compare_placers.dir/compare_placers.cpp.o.d"
  "compare_placers"
  "compare_placers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_placers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
