# Empty dependencies file for compare_placers.
# This may be replaced when dependencies are built.
