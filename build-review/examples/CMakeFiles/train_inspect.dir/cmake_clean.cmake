file(REMOVE_RECURSE
  "CMakeFiles/train_inspect.dir/train_inspect.cpp.o"
  "CMakeFiles/train_inspect.dir/train_inspect.cpp.o.d"
  "train_inspect"
  "train_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
