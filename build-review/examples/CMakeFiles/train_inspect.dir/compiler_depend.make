# Empty compiler generated dependencies file for train_inspect.
# This may be replaced when dependencies are built.
