# Empty compiler generated dependencies file for place_bookshelf.
# This may be replaced when dependencies are built.
