file(REMOVE_RECURSE
  "CMakeFiles/place_bookshelf.dir/place_bookshelf.cpp.o"
  "CMakeFiles/place_bookshelf.dir/place_bookshelf.cpp.o.d"
  "place_bookshelf"
  "place_bookshelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/place_bookshelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
