#pragma once
// ζ×ζ partition of the placement region (Sec. II-A of the paper; ζ=16 in the
// paper's experiments).  Grid cells are addressed either by (gx, gy) column/
// row coordinates or by a flat index gy*dim + gx, which is also the action
// index of the RL policy and the MCTS branching factor.

#include <cstddef>

#include "geometry/geometry.hpp"

namespace mp::grid {

struct CellCoord {
  int gx = 0;
  int gy = 0;
  bool operator==(const CellCoord& o) const { return gx == o.gx && gy == o.gy; }
};

class GridSpec {
 public:
  GridSpec() = default;
  GridSpec(const geometry::Rect& region, int dim);

  const geometry::Rect& region() const { return region_; }
  int dim() const { return dim_; }
  int num_cells() const { return dim_ * dim_; }

  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }
  double cell_area() const { return cell_w_ * cell_h_; }

  int flat_index(const CellCoord& c) const { return c.gy * dim_ + c.gx; }
  CellCoord coord(int flat) const { return {flat % dim_, flat / dim_}; }
  bool in_bounds(const CellCoord& c) const {
    return c.gx >= 0 && c.gy >= 0 && c.gx < dim_ && c.gy < dim_;
  }

  /// Geometry of one cell.
  geometry::Rect cell_rect(const CellCoord& c) const;

  /// Lower-left corner of a cell — where a group anchored at `c` is aligned.
  geometry::Point cell_origin(const CellCoord& c) const;

  /// Cell containing a point (clamped to the grid for boundary points).
  CellCoord cell_of(const geometry::Point& p) const;

  /// Number of cells a w×h object spans per axis when aligned to a cell
  /// origin (at least 1 each).
  CellCoord footprint_cells(double w, double h) const;

 private:
  geometry::Rect region_;
  int dim_ = 1;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
};

}  // namespace mp::grid
