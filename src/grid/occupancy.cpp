#include "grid/occupancy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mp::grid {

Footprint make_footprint(const GridSpec& spec, double w, double h) {
  Footprint fp;
  const CellCoord span = spec.footprint_cells(w, h);
  fp.nx = span.gx;
  fp.ny = span.gy;
  fp.util.assign(static_cast<std::size_t>(fp.nx) * fp.ny, 0.0);
  const double cw = spec.cell_width();
  const double ch = spec.cell_height();
  for (int iy = 0; iy < fp.ny; ++iy) {
    // Vertical overlap of the object with row iy when aligned at y=0.
    const double oy =
        std::clamp(h - iy * ch, 0.0, ch);
    for (int ix = 0; ix < fp.nx; ++ix) {
      const double ox = std::clamp(w - ix * cw, 0.0, cw);
      const double frac = (ox * oy) / (cw * ch);
      fp.util[static_cast<std::size_t>(iy) * fp.nx + ix] =
          std::clamp(frac, 0.0, 1.0);
    }
  }
  return fp;
}

OccupancyMap::OccupancyMap(const GridSpec& spec)
    : spec_(spec),
      occupied_(static_cast<std::size_t>(spec.num_cells()), 0.0) {}

bool OccupancyMap::fits(const Footprint& fp, const CellCoord& anchor) const {
  return anchor.gx >= 0 && anchor.gy >= 0 &&
         anchor.gx + fp.nx <= spec_.dim() && anchor.gy + fp.ny <= spec_.dim();
}

void OccupancyMap::place(const Footprint& fp, const CellCoord& anchor) {
  assert(fits(fp, anchor));
  const double cell_area = spec_.cell_area();
  for (int iy = 0; iy < fp.ny; ++iy) {
    for (int ix = 0; ix < fp.nx; ++ix) {
      const CellCoord c{anchor.gx + ix, anchor.gy + iy};
      occupied_[static_cast<std::size_t>(spec_.flat_index(c))] +=
          fp.at(ix, iy) * cell_area;
    }
  }
}

void OccupancyMap::remove(const Footprint& fp, const CellCoord& anchor) {
  assert(fits(fp, anchor));
  const double cell_area = spec_.cell_area();
  for (int iy = 0; iy < fp.ny; ++iy) {
    for (int ix = 0; ix < fp.nx; ++ix) {
      const CellCoord c{anchor.gx + ix, anchor.gy + iy};
      double& occ = occupied_[static_cast<std::size_t>(spec_.flat_index(c))];
      occ = std::max(0.0, occ - fp.at(ix, iy) * cell_area);
    }
  }
}

double OccupancyMap::occupied_area(const CellCoord& c) const {
  return occupied_[static_cast<std::size_t>(spec_.flat_index(c))];
}

double OccupancyMap::utilization(const CellCoord& c) const {
  return std::min(1.0, occupied_area(c) / spec_.cell_area());
}

std::vector<double> OccupancyMap::utilization_map() const {
  std::vector<double> out(occupied_.size());
  const double cell_area = spec_.cell_area();
  for (std::size_t i = 0; i < occupied_.size(); ++i) {
    out[i] = std::min(1.0, occupied_[i] / cell_area);
  }
  return out;
}

double OccupancyMap::total_overflow() const {
  const double capacity = spec_.cell_area();
  double overflow = 0.0;
  for (double occ : occupied_) overflow += std::max(0.0, occ - capacity);
  return overflow;
}

void OccupancyMap::clear() { std::fill(occupied_.begin(), occupied_.end(), 0.0); }

std::vector<double> availability_map(const OccupancyMap& occupancy,
                                     const Footprint& fp) {
  const GridSpec& spec = occupancy.spec();
  const int dim = spec.dim();
  std::vector<double> out(static_cast<std::size_t>(dim) * dim, 0.0);
  const std::vector<double> sp = occupancy.utilization_map();
  const double inv_n = 1.0 / static_cast<double>(fp.cells());

  // Footprint cells that the group covers completely would zero the product
  // for every anchor (1 - s_m = 0), making multi-cell groups unplaceable
  // anywhere.  The group's own coverage is therefore soft-clamped; existing
  // occupancy (s_p) stays hard: a full cell yields zero availability.
  constexpr double kMaxSelfCoverage = 0.995;

  for (int gy = 0; gy < dim; ++gy) {
    for (int gx = 0; gx < dim; ++gx) {
      const CellCoord anchor{gx, gy};
      if (!occupancy.fits(fp, anchor)) continue;  // stays 0: off-chip
      double log_product = 0.0;
      bool zero = false;
      for (int iy = 0; iy < fp.ny && !zero; ++iy) {
        for (int ix = 0; ix < fp.nx && !zero; ++ix) {
          const CellCoord c{gx + ix, gy + iy};
          const double sm = std::min(fp.at(ix, iy), kMaxSelfCoverage);
          const double term =
              (1.0 - sm) *
              (1.0 - sp[static_cast<std::size_t>(spec.flat_index(c))]);
          if (term <= 0.0) {
            zero = true;
          } else {
            log_product += std::log(term);
          }
        }
      }
      out[static_cast<std::size_t>(spec.flat_index(anchor))] =
          zero ? 0.0 : std::exp(log_product * inv_n);
    }
  }
  return out;
}

}  // namespace mp::grid
