#include "grid/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mp::grid {

GridSpec::GridSpec(const geometry::Rect& region, int dim)
    : region_(region), dim_(dim) {
  assert(dim >= 1);
  assert(region.w > 0.0 && region.h > 0.0);
  cell_w_ = region.w / dim;
  cell_h_ = region.h / dim;
}

geometry::Rect GridSpec::cell_rect(const CellCoord& c) const {
  return geometry::Rect(region_.x + c.gx * cell_w_, region_.y + c.gy * cell_h_,
                        cell_w_, cell_h_);
}

geometry::Point GridSpec::cell_origin(const CellCoord& c) const {
  return {region_.x + c.gx * cell_w_, region_.y + c.gy * cell_h_};
}

CellCoord GridSpec::cell_of(const geometry::Point& p) const {
  int gx = static_cast<int>(std::floor((p.x - region_.x) / cell_w_));
  int gy = static_cast<int>(std::floor((p.y - region_.y) / cell_h_));
  gx = std::clamp(gx, 0, dim_ - 1);
  gy = std::clamp(gy, 0, dim_ - 1);
  return {gx, gy};
}

CellCoord GridSpec::footprint_cells(double w, double h) const {
  // A group aligned to a cell origin spans ceil(w / cell_w) columns; guard
  // against floating-point edges (w == k * cell_w must give exactly k).
  constexpr double kSlack = 1e-9;
  const int nx = std::max(1, static_cast<int>(std::ceil(w / cell_w_ - kSlack)));
  const int ny = std::max(1, static_cast<int>(std::ceil(h / cell_h_ - kSlack)));
  return {nx, ny};
}

}  // namespace mp::grid
