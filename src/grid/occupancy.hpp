#pragma once
// Grid occupancy bookkeeping and the paper's state maps:
//
//  * OccupancyMap  — per-cell occupied area; its capped utilization is the
//    paper's s_p (Sec. III-B): groups are aligned to the lower-left corner of
//    their anchor cell, contribute their geometric overlap to each covered
//    cell, and a cell's utilization saturates at 1.
//  * Footprint     — the paper's s_m: the per-cell utilization pattern of the
//    next macro group, an (nx × ny) matrix.
//  * availability_map — the paper's s_a via Eq. (4): for each anchor cell g,
//    the n-th-root of ∏ (1 - s_m(g_i)) (1 - s_p(g_i)) over the n covered
//    cells, 0 when the footprint leaves the chip.

#include <vector>

#include "grid/grid.hpp"

namespace mp::grid {

/// Per-cell utilization pattern of one object aligned to a cell origin.
struct Footprint {
  int nx = 1;                 ///< covered columns
  int ny = 1;                 ///< covered rows
  std::vector<double> util;   ///< row-major (ny rows × nx cols), in [0, 1]

  double at(int ix, int iy) const { return util[static_cast<std::size_t>(iy) * nx + ix]; }
  int cells() const { return nx * ny; }
};

/// Builds the footprint (s_m) of a w×h object on `spec`.
Footprint make_footprint(const GridSpec& spec, double w, double h);

/// Tracks occupied area per grid cell.
class OccupancyMap {
 public:
  explicit OccupancyMap(const GridSpec& spec);

  const GridSpec& spec() const { return spec_; }

  /// Adds (or removes, with negative sign convention via `remove`) the area
  /// contribution of `fp` anchored at `anchor`.  Out-of-bounds cells of the
  /// footprint are a precondition violation.
  void place(const Footprint& fp, const CellCoord& anchor);
  void remove(const Footprint& fp, const CellCoord& anchor);

  /// Whether the footprint stays inside the grid when anchored at `anchor`.
  bool fits(const Footprint& fp, const CellCoord& anchor) const;

  /// Raw occupied area of one cell (not capped).
  double occupied_area(const CellCoord& c) const;

  /// Capped utilization in [0, 1] — the paper's s_p value for one cell.
  double utilization(const CellCoord& c) const;

  /// Full utilization map, row-major dim×dim — the s_p plane fed to the
  /// policy/value networks.
  std::vector<double> utilization_map() const;

  /// Sum over cells of max(0, occupied - capacity): a measure of grid-level
  /// congestion used by tests and the SA baseline's overflow penalty.
  double total_overflow() const;

  void clear();

 private:
  GridSpec spec_;
  std::vector<double> occupied_;
};

/// Eq. (4): availability value for anchoring `fp` at every grid cell.
/// Returns a dim×dim row-major vector; entries where the footprint would
/// cross the chip boundary are 0.
std::vector<double> availability_map(const OccupancyMap& occupancy,
                                     const Footprint& fp);

}  // namespace mp::grid
