#pragma once
// Bookshelf-subset reader/writer (.nodes / .nets / .pl) so designs round-trip
// to the format used by the ICCAD04 mixed-size benchmarks.  The subset covers
// what the placers need: node dimensions, terminal markers, pin offsets and
// locations; SCL row information is not modeled (the global placer spreads
// over a continuous region).

#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace mp::io {

/// One `.pl` line: a node name and its placed lower-left corner.
struct PlEntry {
  std::string name;
  geometry::Point position;
};

/// Stats from applying a parsed placement onto a design (ECO jobs tolerate
/// entries whose node no longer exists in a revised netlist — those count as
/// `unknown` instead of failing).
struct PlacementApplyStats {
  int applied = 0;  ///< nodes whose position was set
  int unknown = 0;  ///< entries naming no node in the design
};

/// Writes `<prefix>.nodes`, `<prefix>.nets` and `<prefix>.pl`.
/// Throws std::runtime_error when a file cannot be opened.
void write_bookshelf(const netlist::Design& design, const std::string& prefix);

/// Reads a design from `<prefix>.nodes`, `<prefix>.nets`, `<prefix>.pl`.
/// Nodes marked `terminal` whose area exceeds `macro_area_threshold` times
/// the median movable area are classified as macros; smaller terminals
/// become pads.  Movable nodes above the threshold are movable macros.
/// Throws std::runtime_error on parse errors.
netlist::Design read_bookshelf(const std::string& prefix,
                               double macro_area_threshold = 4.0);

/// Parses standalone `.pl` text (the placement third of the Bookshelf triple,
/// also the service's `initial_placement` artifact payload) into name →
/// position entries, without needing the .nodes/.nets files.  Accepts the
/// same subset write_pl emits; throws std::runtime_error on malformed lines.
std::vector<PlEntry> parse_pl(std::istream& is);

/// File wrapper around parse_pl.  Throws when `path` cannot be opened.
std::vector<PlEntry> read_pl(const std::string& path);

/// Applies `entries` onto `design` by node name.  Fixed nodes keep their
/// position (an incumbent placement must not move preplaced obstacles);
/// unknown names are counted, not errors — an ECO netlist may have dropped
/// nodes since the placement was produced.
PlacementApplyStats apply_placement(netlist::Design& design,
                                    const std::vector<PlEntry>& entries);

// Stream-level entry points (used by tests; file versions wrap these).
void write_nodes(const netlist::Design& design, std::ostream& os);
void write_nets(const netlist::Design& design, std::ostream& os);
void write_pl(const netlist::Design& design, std::ostream& os);

}  // namespace mp::io
