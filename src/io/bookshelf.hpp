#pragma once
// Bookshelf-subset reader/writer (.nodes / .nets / .pl) so designs round-trip
// to the format used by the ICCAD04 mixed-size benchmarks.  The subset covers
// what the placers need: node dimensions, terminal markers, pin offsets and
// locations; SCL row information is not modeled (the global placer spreads
// over a continuous region).

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace mp::io {

/// Writes `<prefix>.nodes`, `<prefix>.nets` and `<prefix>.pl`.
/// Throws std::runtime_error when a file cannot be opened.
void write_bookshelf(const netlist::Design& design, const std::string& prefix);

/// Reads a design from `<prefix>.nodes`, `<prefix>.nets`, `<prefix>.pl`.
/// Nodes marked `terminal` whose area exceeds `macro_area_threshold` times
/// the median movable area are classified as macros; smaller terminals
/// become pads.  Movable nodes above the threshold are movable macros.
/// Throws std::runtime_error on parse errors.
netlist::Design read_bookshelf(const std::string& prefix,
                               double macro_area_threshold = 4.0);

// Stream-level entry points (used by tests; file versions wrap these).
void write_nodes(const netlist::Design& design, std::ostream& os);
void write_nets(const netlist::Design& design, std::ostream& os);
void write_pl(const netlist::Design& design, std::ostream& os);

}  // namespace mp::io
