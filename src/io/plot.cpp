#include "io/plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mp::io {

namespace {

struct Rgb {
  unsigned char r, g, b;
};

constexpr Rgb kBackground{245, 245, 245};
constexpr Rgb kMacroMovable{66, 133, 244};
constexpr Rgb kMacroFixed{120, 120, 120};
constexpr Rgb kCell{221, 148, 72};
constexpr Rgb kPad{40, 160, 90};
constexpr Rgb kGridLine{200, 200, 210};

class Canvas {
 public:
  Canvas(int w, int h) : w_(w), h_(h), pixels_(static_cast<std::size_t>(w) * h, kBackground) {}

  void set(int x, int y, Rgb color) {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return;
    // Flip y so the image has math orientation (y up).
    pixels_[static_cast<std::size_t>(h_ - 1 - y) * w_ + x] = color;
  }

  void fill_rect(int x0, int y0, int x1, int y1, Rgb color) {
    for (int y = std::max(0, y0); y <= std::min(h_ - 1, y1); ++y) {
      for (int x = std::max(0, x0); x <= std::min(w_ - 1, x1); ++x) {
        set(x, y, color);
      }
    }
  }

  void outline_rect(int x0, int y0, int x1, int y1, Rgb color) {
    for (int x = x0; x <= x1; ++x) {
      set(x, y0, color);
      set(x, y1, color);
    }
    for (int y = y0; y <= y1; ++y) {
      set(x0, y, color);
      set(x1, y, color);
    }
  }

  void write_ppm(const std::string& path) const {
    std::ofstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("cannot open for writing: " + path);
    f << "P6\n" << w_ << " " << h_ << "\n255\n";
    for (const Rgb& p : pixels_) {
      f.put(static_cast<char>(p.r));
      f.put(static_cast<char>(p.g));
      f.put(static_cast<char>(p.b));
    }
  }

 private:
  int w_, h_;
  std::vector<Rgb> pixels_;
};

}  // namespace

void plot_placement(const netlist::Design& design, const std::string& path,
                    const PlotOptions& options) {
  const geometry::Rect region = design.region();
  const double aspect = (region.w > 0.0) ? region.h / region.w : 1.0;
  const int width = std::max(16, options.width_px);
  const int height = std::max(16, static_cast<int>(std::lround(width * aspect)));
  Canvas canvas(width, height);

  const double sx = (region.w > 0.0) ? width / region.w : 1.0;
  const double sy = (region.h > 0.0) ? height / region.h : 1.0;
  const auto to_px_x = [&](double x) {
    return static_cast<int>(std::lround((x - region.x) * sx));
  };
  const auto to_px_y = [&](double y) {
    return static_cast<int>(std::lround((y - region.y) * sy));
  };

  if (options.draw_grid && options.grid_dim > 0) {
    for (int g = 0; g <= options.grid_dim; ++g) {
      const int px = static_cast<int>(std::lround(
          static_cast<double>(g) * width / options.grid_dim));
      const int py = static_cast<int>(std::lround(
          static_cast<double>(g) * height / options.grid_dim));
      canvas.fill_rect(px, 0, px, height - 1, kGridLine);
      canvas.fill_rect(0, py, width - 1, py, kGridLine);
    }
  }

  // Cells first (background layer), then macros, then pads.
  if (options.draw_cells) {
    for (const netlist::Node& n : design.nodes()) {
      if (n.kind != netlist::NodeKind::kStdCell) continue;
      canvas.set(to_px_x(n.center().x), to_px_y(n.center().y), kCell);
    }
  }
  for (const netlist::Node& n : design.nodes()) {
    if (n.kind != netlist::NodeKind::kMacro) continue;
    const Rgb color = n.fixed ? kMacroFixed : kMacroMovable;
    canvas.fill_rect(to_px_x(n.position.x), to_px_y(n.position.y),
                     to_px_x(n.position.x + n.width),
                     to_px_y(n.position.y + n.height), color);
    canvas.outline_rect(to_px_x(n.position.x), to_px_y(n.position.y),
                        to_px_x(n.position.x + n.width),
                        to_px_y(n.position.y + n.height), Rgb{30, 30, 30});
  }
  for (const netlist::Node& n : design.nodes()) {
    if (n.kind != netlist::NodeKind::kPad) continue;
    const int px = to_px_x(n.center().x);
    const int py = to_px_y(n.center().y);
    canvas.fill_rect(px - 1, py - 1, px + 1, py + 1, kPad);
  }

  canvas.write_ppm(path);
}

}  // namespace mp::io
