#pragma once
// Placement visualization: renders a design to a binary PPM image (macros,
// cells and pads in distinct colors) so results can be inspected without any
// external dependency.

#include <string>

#include "netlist/design.hpp"

namespace mp::io {

struct PlotOptions {
  int width_px = 800;          ///< image width; height follows aspect ratio
  bool draw_cells = true;      ///< cells drawn as single pixels
  bool draw_grid = false;      ///< overlay ζ×ζ grid lines
  int grid_dim = 16;
};

/// Writes a PPM (P6) image of the current placement.
/// Throws std::runtime_error when the file cannot be opened.
void plot_placement(const netlist::Design& design, const std::string& path,
                    const PlotOptions& options = {});

}  // namespace mp::io
