#include "io/bookshelf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace mp::io {

using netlist::Design;
using netlist::Net;
using netlist::Node;
using netlist::NodeKind;
using netlist::PinRef;

void write_nodes(const Design& design, std::ostream& os) {
  os << std::setprecision(17);
  os << "UCLA nodes 1.0\n";
  std::size_t terminals = 0;
  for (const Node& n : design.nodes()) {
    if (n.fixed || n.kind == NodeKind::kPad) ++terminals;
  }
  os << "NumNodes : " << design.num_nodes() << "\n";
  os << "NumTerminals : " << terminals << "\n";
  for (const Node& n : design.nodes()) {
    os << "  " << n.name << " " << n.width << " " << n.height;
    if (n.fixed || n.kind == NodeKind::kPad) os << " terminal";
    os << "\n";
  }
}

void write_nets(const Design& design, std::ostream& os) {
  os << std::setprecision(17);
  os << "UCLA nets 1.0\n";
  std::size_t pins = 0;
  for (const Net& net : design.nets()) pins += net.pins.size();
  os << "NumNets : " << design.num_nets() << "\n";
  os << "NumPins : " << pins << "\n";
  for (std::size_t i = 0; i < design.num_nets(); ++i) {
    const Net& net = design.net(static_cast<netlist::NetId>(i));
    os << "NetDegree : " << net.pins.size() << " " << net.name << "\n";
    for (const PinRef& pin : net.pins) {
      const Node& owner = design.node(pin.node);
      // Bookshelf pin offsets are measured from the node center.
      const double cx = pin.dx - owner.width / 2.0;
      const double cy = pin.dy - owner.height / 2.0;
      os << "  " << owner.name << " B : " << cx << " " << cy << "\n";
    }
  }
}

void write_pl(const Design& design, std::ostream& os) {
  os << std::setprecision(17);
  os << "UCLA pl 1.0\n";
  for (const Node& n : design.nodes()) {
    os << n.name << " " << n.position.x << " " << n.position.y << " : N";
    if (n.fixed || n.kind == NodeKind::kPad) os << " /FIXED";
    os << "\n";
  }
}

void write_bookshelf(const Design& design, const std::string& prefix) {
  const auto open = [](const std::string& path) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open for writing: " + path);
    return f;
  };
  {
    auto f = open(prefix + ".nodes");
    write_nodes(design, f);
  }
  {
    auto f = open(prefix + ".nets");
    write_nets(design, f);
  }
  {
    auto f = open(prefix + ".pl");
    write_pl(design, f);
  }
}

namespace {

// Strips comments (#...) and returns trimmed line; empty when blank.
std::string clean_line(const std::string& raw) {
  std::string line = raw;
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  line.erase(line.begin(), std::find_if(line.begin(), line.end(), not_space));
  line.erase(std::find_if(line.rbegin(), line.rend(), not_space).base(),
             line.end());
  return line;
}

struct RawNode {
  std::string name;
  double w = 0.0;
  double h = 0.0;
  bool terminal = false;
};

}  // namespace

std::vector<PlEntry> parse_pl(std::istream& is) {
  std::vector<PlEntry> entries;
  std::string line;
  while (std::getline(is, line)) {
    line = clean_line(line);
    if (line.empty() || line.rfind("UCLA", 0) == 0) continue;
    std::istringstream ss(line);
    PlEntry entry;
    if (!(ss >> entry.name >> entry.position.x >> entry.position.y)) {
      throw std::runtime_error("bad .pl line: " + line);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<PlEntry> read_pl(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return parse_pl(f);
}

PlacementApplyStats apply_placement(Design& design,
                                    const std::vector<PlEntry>& entries) {
  PlacementApplyStats stats;
  for (const PlEntry& entry : entries) {
    const auto id = design.find_node(entry.name);
    if (!id.has_value()) {
      ++stats.unknown;
      continue;
    }
    Node& node = design.node(*id);
    if (!node.fixed) node.position = entry.position;
    ++stats.applied;
  }
  return stats;
}

Design read_bookshelf(const std::string& prefix, double macro_area_threshold) {
  // --- .nodes ---
  std::ifstream nodes_file(prefix + ".nodes");
  if (!nodes_file) throw std::runtime_error("cannot open " + prefix + ".nodes");
  std::vector<RawNode> raw_nodes;
  std::string line;
  while (std::getline(nodes_file, line)) {
    line = clean_line(line);
    if (line.empty() || line.rfind("UCLA", 0) == 0 ||
        line.rfind("NumNodes", 0) == 0 || line.rfind("NumTerminals", 0) == 0) {
      continue;
    }
    std::istringstream ss(line);
    RawNode rn;
    std::string tag;
    if (!(ss >> rn.name >> rn.w >> rn.h)) {
      throw std::runtime_error("bad .nodes line: " + line);
    }
    if (ss >> tag && tag == "terminal") rn.terminal = true;
    raw_nodes.push_back(rn);
  }

  // Median movable area for macro classification.
  std::vector<double> movable_areas;
  for (const RawNode& rn : raw_nodes) {
    if (!rn.terminal) movable_areas.push_back(rn.w * rn.h);
  }
  double median_area = 1.0;
  if (!movable_areas.empty()) {
    std::nth_element(movable_areas.begin(),
                     movable_areas.begin() + movable_areas.size() / 2,
                     movable_areas.end());
    median_area = std::max(1e-12, movable_areas[movable_areas.size() / 2]);
  }

  Design design(prefix, geometry::Rect());
  std::unordered_map<std::string, netlist::NodeId> ids;
  for (const RawNode& rn : raw_nodes) {
    Node node;
    node.name = rn.name;
    node.width = rn.w;
    node.height = rn.h;
    const double area = rn.w * rn.h;
    if (rn.terminal) {
      node.kind = (area > macro_area_threshold * median_area)
                      ? NodeKind::kMacro
                      : NodeKind::kPad;
      node.fixed = true;
    } else {
      node.kind = (area > macro_area_threshold * median_area)
                      ? NodeKind::kMacro
                      : NodeKind::kStdCell;
      node.fixed = false;
    }
    ids[rn.name] = design.add_node(node);
  }

  // --- .nets ---
  std::ifstream nets_file(prefix + ".nets");
  if (!nets_file) throw std::runtime_error("cannot open " + prefix + ".nets");
  Net current;
  bool in_net = false;
  int net_counter = 0;
  const auto flush_net = [&]() {
    if (in_net && !current.pins.empty()) design.add_net(current);
    current = Net{};
    in_net = false;
  };
  while (std::getline(nets_file, line)) {
    line = clean_line(line);
    if (line.empty() || line.rfind("UCLA", 0) == 0 ||
        line.rfind("NumNets", 0) == 0 || line.rfind("NumPins", 0) == 0) {
      continue;
    }
    if (line.rfind("NetDegree", 0) == 0) {
      flush_net();
      std::istringstream ss(line);
      std::string tag, colon, name;
      int degree = 0;
      ss >> tag >> colon >> degree;
      if (colon != ":") {
        // "NetDegree : N name" vs "NetDegree:N" variants
        throw std::runtime_error("bad NetDegree line: " + line);
      }
      if (!(ss >> name)) name = "n" + std::to_string(net_counter);
      ++net_counter;
      current.name = name;
      in_net = true;
      continue;
    }
    if (!in_net) continue;
    std::istringstream ss(line);
    std::string node_name, direction, colon;
    double cx = 0.0, cy = 0.0;
    ss >> node_name >> direction;
    if (ss >> colon && colon == ":") ss >> cx >> cy;
    const auto it = ids.find(node_name);
    if (it == ids.end()) {
      throw std::runtime_error("net references unknown node: " + node_name);
    }
    const Node& owner = design.node(it->second);
    PinRef pin;
    pin.node = it->second;
    pin.dx = cx + owner.width / 2.0;
    pin.dy = cy + owner.height / 2.0;
    current.pins.push_back(pin);
  }
  flush_net();

  // --- .pl ---
  std::ifstream pl_file(prefix + ".pl");
  if (!pl_file) throw std::runtime_error("cannot open " + prefix + ".pl");
  while (std::getline(pl_file, line)) {
    line = clean_line(line);
    if (line.empty() || line.rfind("UCLA", 0) == 0) continue;
    std::istringstream ss(line);
    std::string name;
    double x = 0.0, y = 0.0;
    if (!(ss >> name >> x >> y)) continue;
    const auto it = ids.find(name);
    if (it == ids.end()) continue;
    design.node(it->second).position = {x, y};
  }

  // Derive the region as the bounding box of everything.
  geometry::BoundingBox box;
  for (const Node& n : design.nodes()) {
    box.add(n.position);
    box.add({n.position.x + n.width, n.position.y + n.height});
  }
  if (!box.empty()) {
    design.set_region(geometry::Rect(box.min_x(), box.min_y(), box.width(),
                                     box.height()));
  }
  return design;
}

}  // namespace mp::io
