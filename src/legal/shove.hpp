#pragma once
// Greedy displacement-minimizing legalizer used as the final safety net: it
// guarantees an overlap-free macro placement whenever total macro area fits
// in the region, regardless of what the LP produced.

#include <vector>

#include "netlist/design.hpp"

namespace mp::legal {

struct ShoveOptions {
  /// Search-ring step as a fraction of the average macro dimension.
  double step_fraction = 0.25;
  /// Give up on a macro after this many search rings (it is then clamped to
  /// the closest in-region position even if overlapping).
  int max_rings = 256;
};

struct ShoveResult {
  int moved = 0;     ///< macros displaced from their desired spot
  int unplaced = 0;  ///< macros that could not be made overlap-free
};

/// Legalizes `macros` inside `region` by greedy nearest-free-position search,
/// biggest macros first; also avoids the fixed obstacles in `obstacles`.
ShoveResult shove_legalize(netlist::Design& design,
                           const std::vector<netlist::NodeId>& macros,
                           const geometry::Rect& region,
                           const std::vector<geometry::Rect>& obstacles = {},
                           const ShoveOptions& options = {});

}  // namespace mp::legal
