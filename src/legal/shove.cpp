#include "legal/shove.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mp::legal {

using netlist::Design;
using netlist::NodeId;

namespace {

bool position_free(const geometry::Rect& candidate,
                   const std::vector<geometry::Rect>& placed,
                   const std::vector<geometry::Rect>& obstacles) {
  for (const geometry::Rect& r : placed) {
    if (candidate.overlaps(r)) return false;
  }
  for (const geometry::Rect& r : obstacles) {
    if (candidate.overlaps(r)) return false;
  }
  return true;
}

}  // namespace

ShoveResult shove_legalize(Design& design, const std::vector<NodeId>& macros,
                           const geometry::Rect& region,
                           const std::vector<geometry::Rect>& obstacles,
                           const ShoveOptions& options) {
  ShoveResult result;
  if (macros.empty()) return result;

  // Biggest first: large macros have the fewest options.
  std::vector<NodeId> order = macros;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return design.node(a).area() > design.node(b).area();
  });

  double avg_dim = 0.0;
  for (NodeId id : order) {
    avg_dim += (design.node(id).width + design.node(id).height) / 2.0;
  }
  avg_dim /= static_cast<double>(order.size());
  const double step = std::max(1e-6, options.step_fraction * avg_dim);

  std::vector<geometry::Rect> placed;
  placed.reserve(order.size());

  for (NodeId id : order) {
    netlist::Node& node = design.node(id);
    const double w = node.width;
    const double h = node.height;
    const auto clamp_pos = [&](geometry::Point p) {
      p.x = geometry::fit_interval(p.x, w, region.left(), region.right());
      p.y = geometry::fit_interval(p.y, h, region.bottom(), region.top());
      return p;
    };

    const geometry::Point desired = clamp_pos(node.position);
    geometry::Point best = desired;
    bool found = false;

    // Ring search around the desired position.
    for (int ring = 0; ring <= options.max_rings && !found; ++ring) {
      const double radius = ring * step;
      // Candidate points on the ring (8 directions + axis-aligned fill).
      const int samples = std::max(1, 8 * ring);
      for (int s = 0; s < samples; ++s) {
        const double angle =
            2.0 * 3.14159265358979323846 * static_cast<double>(s) / samples;
        const geometry::Point candidate = clamp_pos(
            {desired.x + radius * std::cos(angle), desired.y + radius * std::sin(angle)});
        const geometry::Rect rect(candidate.x, candidate.y, w, h);
        if (region.contains(rect) && position_free(rect, placed, obstacles)) {
          best = candidate;
          found = true;
          if (ring > 0) ++result.moved;
          break;
        }
        if (ring == 0) break;  // ring 0 has a single candidate
      }
    }
    if (!found) ++result.unplaced;
    node.position = best;
    placed.push_back(node.rect());
  }
  return result;
}

}  // namespace mp::legal
