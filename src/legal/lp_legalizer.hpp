#pragma once
// LP-based overlap removal (Eq. (3), after Tang-Tian-Wong): given a set of
// movable macros, a bounding region and the sequence pair extracted from
// their current positions, solve — per axis, independently — a linear
// program that satisfies the sequence-pair separation constraints, keeps each
// macro inside its allowed region, and minimizes the weighted one-dimensional
// half-perimeter wirelength of the nets touching those macros.
//
// Net HPWL is linearized with the usual max/min auxiliary variables:
//     minimize Σ λ_n (u_n − l_n)
//     u_n ≥ x_i + off_i        for every movable pin on net n
//     l_n ≤ x_i + off_i
//     u_n ≥ fmax_n,  l_n ≤ fmin_n   (bounding box of the net's fixed pins)

#include <vector>

#include "netlist/design.hpp"

namespace mp::legal {

struct LpLegalizeOptions {
  /// Most-weighted nets kept in the objective (per component); the rest are
  /// dropped — they only affect the objective, never feasibility.
  std::size_t max_nets = 120;
  /// Nets above this pin count are ignored (global nets).
  std::size_t max_net_degree = 64;
  int simplex_iteration_limit = 20000;
  /// Components larger than this skip the LP entirely (the sequence-pair
  /// constraint count is O(n²) and the dense simplex tableau becomes
  /// minutes-slow); they fall through to longest-path packing / shove.
  std::size_t max_lp_macros = 18;
};

struct LpLegalizeResult {
  bool lp_solved_x = false;  ///< x LP reached optimality (else packed fallback)
  bool lp_solved_y = false;
  double objective_x = 0.0;
  double objective_y = 0.0;
};

/// Legalizes `macros` (node ids into `design`) inside `region`.  Current
/// positions seed the sequence pair; final positions are written back.
/// `allowed` optionally restricts each macro to its own sub-region (same
/// length as `macros`); pass empty to use `region` for all.
LpLegalizeResult lp_legalize_component(
    netlist::Design& design, const std::vector<netlist::NodeId>& macros,
    const geometry::Rect& region,
    const std::vector<geometry::Rect>& allowed = {},
    const LpLegalizeOptions& options = {});

}  // namespace mp::legal
