#pragma once
// Top-level macro legalization (Sec. II-B): after RL/MCTS allocates macro
// groups to grid cells,
//   step 1  pins each macro group at the center of its allocated cells and
//           determines cell-group locations by QP on the coarse netlist,
//   step 2  decomposes the groups: member macros get relative locations by QP
//           on the original netlist (cell groups fixed), box-bounded to their
//           group's allocated cells,
//   step 3  removes the remaining overlaps per overlap-component with the
//           sequence-pair + LP formulation (Eq. 3), fixed macros acting as
//           pinned members; a greedy shove pass guarantees a legal result.

#include <vector>

#include "cluster/coarse.hpp"
#include "grid/grid.hpp"
#include "legal/lp_legalizer.hpp"
#include "qp/quadratic.hpp"

namespace mp::legal {

struct MacroLegalizeOptions {
  LpLegalizeOptions lp;
  qp::QpOptions qp;
  /// Rounds of component re-detection + LP after step 3 before shoving.
  int component_rounds = 2;
  /// Step 4 (refinement): after the in-grid legalization, macros get one
  /// more net-driven QP bounded to their group's cells inflated by this many
  /// grid cells, followed by another LP/shove round.  Only useful when the
  /// std cells already sit at meaningful positions; the flow-level
  /// refinement (FlowOptions::refine_rounds) interleaves this with cell
  /// placement instead, so the default here is off (the paper's strict
  /// "inside their own grids" behaviour).
  double refine_inflation_cells = 0.0;
};

struct MacroLegalizeResult {
  double overlap_before = 0.0;  ///< total pairwise macro overlap area
  double overlap_after = 0.0;
  int components = 0;   ///< overlap components processed by the LP
  bool used_shove = false;
};

/// Full three-step pipeline.  `group_anchors[g]` is the grid cell that RL or
/// MCTS assigned to macro group g.  Cell-group and macro positions in both
/// designs are updated; original std cells are moved to their group centers
/// (the cell placer refines them afterwards).
MacroLegalizeResult legalize_groups(netlist::Design& original,
                                    cluster::CoarseDesign& coarse,
                                    const cluster::Clustering& clustering,
                                    const grid::GridSpec& grid,
                                    const std::vector<grid::CellCoord>& group_anchors,
                                    const MacroLegalizeOptions& options = {});

/// Flat legalization for baselines that place macros directly (SA, wiremask):
/// overlap components are resolved with the LP inside the whole region, then
/// a shove pass guarantees legality.  Fixed macros are respected.
MacroLegalizeResult legalize_flat(netlist::Design& design,
                                  const MacroLegalizeOptions& options = {});

}  // namespace mp::legal
