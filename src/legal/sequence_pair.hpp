#pragma once
// Sequence-pair representation [Murata et al., ICCAD'95] used by the macro
// legalizer (Sec. II-B step 3): the geometric relations of an existing
// placement are captured as two permutations (S+, S-); the LP then removes
// overlaps while honoring those relations.
//
// Convention: for macros i, j
//   i before j in S+ AND in S-  =>  i is left of j   (x_j - x_i >= w_i)
//   i after  j in S+, before in S-  =>  i is below j (y_j - y_i >= h_i)

#include <vector>

#include "geometry/geometry.hpp"

namespace mp::legal {

struct SequencePair {
  std::vector<int> s_plus;   ///< permutation of 0..n-1
  std::vector<int> s_minus;  ///< permutation of 0..n-1

  std::size_t size() const { return s_plus.size(); }
};

/// Derives a sequence pair from rectangle centers: S+ orders by the
/// anti-diagonal key (cx - cy), S- by the diagonal key (cx + cy) — the
/// stepline construction, which reproduces left-of/below relations of any
/// overlap-free placement and gives a consistent relation for overlapping
/// ones.  Ties break by index so the result is deterministic.
SequencePair sequence_pair_from_placement(const std::vector<geometry::Rect>& rects);

/// Relation of an ordered pair under a sequence pair.
enum class PairRelation { kLeftOf, kBelow };

/// All ordered pairs (i, j) with their relation: for kLeftOf, i is left of j;
/// for kBelow, i is below j.  Exactly one relation per unordered pair.
struct PairConstraint {
  int i = 0;
  int j = 0;
  PairRelation relation = PairRelation::kLeftOf;
};

std::vector<PairConstraint> extract_constraints(const SequencePair& sp);

/// True when both vectors are permutations of 0..n-1 with equal n.
bool is_valid_sequence_pair(const SequencePair& sp);

/// Worst violation of the separation constraints implied by `sp` over the
/// placement `rects` (<= 0 when every relation holds): for i left of j the
/// slack deficit is x_i + w_i - x_j, for i below j it is y_i + h_i - y_j.
/// Used by the MP_VALIDATE_LEVEL layer to certify that an LP-legalized
/// placement still honors the sequence pair it was derived from.
double max_constraint_violation(const SequencePair& sp,
                                const std::vector<geometry::Rect>& rects);

/// Packed placement by longest paths: x from left edge honoring horizontal
/// constraints, y from bottom honoring vertical ones (no wirelength
/// objective; used as an LP fallback and by tests as a feasibility witness).
void pack_longest_path(const SequencePair& sp,
                       const std::vector<double>& widths,
                       const std::vector<double>& heights,
                       const geometry::Point& origin,
                       std::vector<geometry::Point>& positions);

}  // namespace mp::legal
