#include "legal/lp_legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "check/check.hpp"
#include "legal/sequence_pair.hpp"
#include "lp/simplex.hpp"
#include "util/log.hpp"

namespace mp::legal {

using netlist::Design;
using netlist::Net;
using netlist::NetId;
using netlist::NodeId;
using netlist::PinRef;

namespace {

// One axis worth of net data for the LP objective.
struct NetTerm {
  double weight = 1.0;
  // (macro local index, pin offset along the axis) for movable pins.
  std::vector<std::pair<int, double>> movable_pins;
  double fixed_min = std::numeric_limits<double>::infinity();
  double fixed_max = -std::numeric_limits<double>::infinity();
  bool has_fixed = false;
};

// Solves one axis.  `sizes` are widths (x axis) or heights; `lo`/`hi` are the
// per-macro allowed intervals for the coordinate (lower-left corner).
// Returns true when the LP solved; positions written into `coords`.
bool solve_axis(const std::vector<PairConstraint>& constraints,
                PairRelation relation, const std::vector<double>& sizes,
                const std::vector<double>& lo, const std::vector<double>& hi,
                const std::vector<NetTerm>& nets, std::vector<double>& coords,
                int iteration_limit) {
  const std::size_t n = sizes.size();
  const std::size_t num_nets = nets.size();

  // Global shift so all variable values are non-negative.
  double shift = 0.0;
  for (double v : lo) shift = std::min(shift, v);
  for (const NetTerm& net : nets) {
    if (net.has_fixed) shift = std::min(shift, net.fixed_min);
  }
  shift -= 1.0;

  const std::size_t num_vars = n + 2 * num_nets;  // x_i, then u_k, l_k
  lp::LinearProgram lp(num_vars);
  for (std::size_t k = 0; k < num_nets; ++k) {
    lp.set_objective(n + 2 * k, nets[k].weight);        // u_k
    lp.set_objective(n + 2 * k + 1, -nets[k].weight);   // -l_k
  }
  // Separation constraints for the requested relation only.
  for (const PairConstraint& c : constraints) {
    if (c.relation != relation) continue;
    lp.add_difference_ge(static_cast<std::size_t>(c.j),
                         static_cast<std::size_t>(c.i),
                         sizes[static_cast<std::size_t>(c.i)]);
  }
  // Bounds.
  for (std::size_t i = 0; i < n; ++i) {
    lp.add_lower_bound(i, lo[i] - shift);
    lp.add_upper_bound(i, std::max(lo[i], hi[i]) - shift);
  }
  // Net linearization.
  for (std::size_t k = 0; k < num_nets; ++k) {
    const std::size_t u = n + 2 * k;
    const std::size_t l = n + 2 * k + 1;
    for (const auto& [macro, off] : nets[k].movable_pins) {
      // u >= x_i + off   <=>  u - x_i >= off
      std::vector<double> row_u(num_vars, 0.0);
      row_u[u] = 1.0;
      row_u[static_cast<std::size_t>(macro)] = -1.0;
      lp.add_constraint(std::move(row_u), lp::Relation::kGreaterEqual, off);
      // l <= x_i + off   <=>  x_i - l >= -off
      std::vector<double> row_l(num_vars, 0.0);
      row_l[static_cast<std::size_t>(macro)] = 1.0;
      row_l[l] = -1.0;
      lp.add_constraint(std::move(row_l), lp::Relation::kGreaterEqual, -off);
    }
    if (nets[k].has_fixed) {
      lp.add_lower_bound(u, nets[k].fixed_max - shift);
      lp.add_upper_bound(l, nets[k].fixed_min - shift);
    }
  }

  const lp::LpResult result = lp.solve(iteration_limit);
  if (result.status != lp::LpStatus::kOptimal) return false;
  coords.resize(n);
  for (std::size_t i = 0; i < n; ++i) coords[i] = result.x[i] + shift;
  return true;
}

}  // namespace

LpLegalizeResult lp_legalize_component(Design& design,
                                       const std::vector<NodeId>& macros,
                                       const geometry::Rect& region,
                                       const std::vector<geometry::Rect>& allowed,
                                       const LpLegalizeOptions& options) {
  LpLegalizeResult out;
  const std::size_t n = macros.size();
  if (n == 0) return out;

  std::vector<geometry::Rect> rects(n);
  if (n > options.max_lp_macros) {
    // Dense-simplex cost is prohibitive; use longest-path packing from the
    // region origin instead (always overlap-free).
    std::vector<double> widths(n), heights(n);
    for (std::size_t i = 0; i < n; ++i) {
      rects[i] = design.node(macros[i]).rect();
      widths[i] = rects[i].w;
      heights[i] = rects[i].h;
    }
    const SequencePair sp = sequence_pair_from_placement(rects);
    std::vector<geometry::Point> packed;
    pack_longest_path(sp, widths, heights, region.lower_left(), packed);
    for (std::size_t i = 0; i < n; ++i) {
      design.node(macros[i]).position = {
          geometry::fit_interval(packed[i].x, widths[i], region.left(),
                                 region.right()),
          geometry::fit_interval(packed[i].y, heights[i], region.bottom(),
                                 region.top())};
    }
    return out;
  }

  std::vector<double> widths(n), heights(n);
  for (std::size_t i = 0; i < n; ++i) {
    rects[i] = design.node(macros[i]).rect();
    widths[i] = rects[i].w;
    heights[i] = rects[i].h;
  }
  const SequencePair sp = sequence_pair_from_placement(rects);
  if (check::validate_level() >= 1) {
    MP_CHECK(is_valid_sequence_pair(sp),
             "stepline construction produced a non-permutation sequence pair");
  }
  const std::vector<PairConstraint> constraints = extract_constraints(sp);

  // Per-macro allowed interval per axis, clipped to the component region.
  std::vector<double> lo_x(n), hi_x(n), lo_y(n), hi_y(n);
  for (std::size_t i = 0; i < n; ++i) {
    geometry::Rect box = allowed.empty() ? region : allowed[i];
    lo_x[i] = std::max(box.left(), region.left());
    hi_x[i] = std::min(box.right(), region.right()) - widths[i];
    lo_y[i] = std::max(box.bottom(), region.bottom());
    hi_y[i] = std::min(box.top(), region.top()) - heights[i];
    if (hi_x[i] < lo_x[i]) hi_x[i] = lo_x[i];
    if (hi_y[i] < lo_y[i]) hi_y[i] = lo_y[i];
  }

  // Collect nets touching the component's macros.
  std::vector<int> local_of(design.num_nodes(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    local_of[static_cast<std::size_t>(macros[i])] = static_cast<int>(i);
  }
  std::set<NetId> net_ids;
  const auto& adjacency = design.node_nets();
  for (NodeId m : macros) {
    for (NetId net : adjacency[static_cast<std::size_t>(m)]) net_ids.insert(net);
  }
  struct ScoredNet {
    NetId id;
    double weight;
  };
  std::vector<ScoredNet> scored;
  for (NetId id : net_ids) {
    const Net& net = design.net(id);
    if (net.pins.size() < 2 || net.pins.size() > options.max_net_degree) continue;
    scored.push_back({id, net.weight});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredNet& a, const ScoredNet& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.id < b.id;
            });
  if (scored.size() > options.max_nets) scored.resize(options.max_nets);

  std::vector<NetTerm> nets_x, nets_y;
  for (const ScoredNet& sn : scored) {
    const Net& net = design.net(sn.id);
    NetTerm tx, ty;
    tx.weight = ty.weight = net.weight;
    for (const PinRef& pin : net.pins) {
      const int local = local_of[static_cast<std::size_t>(pin.node)];
      if (local >= 0) {
        tx.movable_pins.emplace_back(local, pin.dx);
        ty.movable_pins.emplace_back(local, pin.dy);
      } else {
        const geometry::Point p = design.pin_position(pin);
        tx.fixed_min = std::min(tx.fixed_min, p.x);
        tx.fixed_max = std::max(tx.fixed_max, p.x);
        tx.has_fixed = true;
        ty.fixed_min = std::min(ty.fixed_min, p.y);
        ty.fixed_max = std::max(ty.fixed_max, p.y);
        ty.has_fixed = true;
      }
    }
    if (tx.movable_pins.empty()) continue;
    // A single movable pin and no fixed pins gives a vacuous objective term.
    if (!tx.has_fixed && tx.movable_pins.size() < 2) continue;
    nets_x.push_back(std::move(tx));
    nets_y.push_back(std::move(ty));
  }

  std::vector<double> xs(n), ys(n);
  out.lp_solved_x =
      solve_axis(constraints, PairRelation::kLeftOf, widths, lo_x, hi_x,
                 nets_x, xs, options.simplex_iteration_limit);
  out.lp_solved_y =
      solve_axis(constraints, PairRelation::kBelow, heights, lo_y, hi_y,
                 nets_y, ys, options.simplex_iteration_limit);

  if (!out.lp_solved_x || !out.lp_solved_y) {
    // Fallback: longest-path packing from the region origin (always
    // overlap-free; may exceed the region when the component cannot fit).
    std::vector<geometry::Point> packed;
    pack_longest_path(sp, widths, heights, region.lower_left(), packed);
    for (std::size_t i = 0; i < n; ++i) {
      if (!out.lp_solved_x) xs[i] = packed[i].x;
      if (!out.lp_solved_y) ys[i] = packed[i].y;
    }
    util::log_debug() << "lp_legalize: fallback packing used for component of "
                      << n << " macros";
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Guard against 1-ulp bound violations from the simplex arithmetic.
    design.node(macros[i]).position = {
        geometry::fit_interval(xs[i], widths[i], region.left(), region.right()),
        geometry::fit_interval(ys[i], heights[i], region.bottom(),
                               region.top())};
  }

  // Sequence-pair ↔ placement consistency (MP_VALIDATE_LEVEL >= 1): when
  // both axis LPs solved, the written-back positions must still honor every
  // separation relation of the sequence pair the LPs were built from.  The
  // packed fallback keeps the relations by construction but may be clamped
  // into the region afterwards, so only the solved case is certified.
  if (out.lp_solved_x && out.lp_solved_y && check::validate_level() >= 1) {
    std::vector<geometry::Rect> placed(n);
    for (std::size_t i = 0; i < n; ++i) {
      placed[i] = design.node(macros[i]).rect();
    }
    const double tol =
        1e-6 * std::max(1.0, std::max(region.w, region.h));
    MP_CHECK_LE(max_constraint_violation(sp, placed), tol,
                "LP-legalized component of %zu macros violates its sequence "
                "pair", n);
  }
  return out;
}

}  // namespace mp::legal
