#include "legal/legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "legal/shove.hpp"
#include "util/log.hpp"

namespace mp::legal {

using netlist::Design;
using netlist::NodeId;

namespace {

// Union-find over macro indices for overlap components.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
};

// Resolves overlap components among `movable` macros (fixed macros join a
// component as pinned members).  Returns the number of components processed.
int resolve_components(Design& design, const std::vector<NodeId>& movable,
                       const geometry::Rect& region,
                       const std::vector<geometry::Rect>& movable_allowed,
                       const MacroLegalizeOptions& options) {
  // All macros participate in overlap detection.
  std::vector<NodeId> all = movable;
  std::vector<bool> pinned(movable.size(), false);
  for (NodeId id : design.macros()) {
    if (design.node(id).fixed) {
      all.push_back(id);
      pinned.push_back(true);
    }
  }
  const std::size_t n = all.size();
  UnionFind uf(n);
  bool any_overlap = false;
  for (std::size_t i = 0; i < n; ++i) {
    const geometry::Rect ri = design.node(all[i]).rect();
    for (std::size_t j = i + 1; j < n; ++j) {
      if (ri.overlaps(design.node(all[j]).rect())) {
        uf.unite(static_cast<int>(i), static_cast<int>(j));
        any_overlap = true;
      }
    }
  }
  if (!any_overlap) return 0;

  // Gather components with at least one movable member and size >= 2.
  std::vector<std::vector<std::size_t>> components(n);
  for (std::size_t i = 0; i < n; ++i) {
    components[static_cast<std::size_t>(uf.find(static_cast<int>(i)))].push_back(i);
  }
  int processed = 0;
  for (const auto& comp : components) {
    if (comp.size() < 2) continue;
    bool has_movable = false;
    for (std::size_t i : comp) has_movable |= !pinned[i];
    if (!has_movable) continue;

    std::vector<NodeId> ids;
    std::vector<geometry::Rect> allowed;
    geometry::BoundingBox box;
    for (std::size_t i : comp) {
      ids.push_back(all[i]);
      const geometry::Rect rect = design.node(all[i]).rect();
      box.add({rect.left(), rect.bottom()});
      box.add({rect.right(), rect.top()});
      if (pinned[i]) {
        allowed.push_back(rect);  // zero-slack box pins the macro
      } else if (i < movable_allowed.size() && !movable_allowed.empty()) {
        allowed.push_back(movable_allowed[i]);
      } else {
        allowed.push_back(region);
      }
    }
    // Component working region: the joint bounding box inflated by half the
    // component area, clipped to the chip.
    const double inflate =
        0.5 * std::sqrt(std::max(1e-12, box.width() * box.height()));
    geometry::Rect comp_region = geometry::Rect::from_corners(
        std::max(region.left(), box.min_x() - inflate),
        std::max(region.bottom(), box.min_y() - inflate),
        std::min(region.right(), box.max_x() + inflate),
        std::min(region.top(), box.max_y() + inflate));
    if (comp_region.w <= 0.0 || comp_region.h <= 0.0) comp_region = region;
    // Remember pinned (fixed) member positions: the LP holds them with
    // zero-slack bounds, but simplex arithmetic can drift them by ~1e-9.
    std::vector<std::pair<NodeId, geometry::Point>> pinned_positions;
    for (std::size_t k = 0; k < comp.size(); ++k) {
      if (pinned[comp[k]]) {
        pinned_positions.emplace_back(ids[k], design.node(ids[k]).position);
      }
    }
    lp_legalize_component(design, ids, comp_region, allowed, options.lp);
    for (const auto& [id, pos] : pinned_positions) design.node(id).position = pos;
    ++processed;
  }
  return processed;
}

void final_shove_if_needed(Design& design, const std::vector<NodeId>& movable,
                           const geometry::Rect& region,
                           MacroLegalizeResult& result,
                           const MacroLegalizeOptions& options) {
  (void)options;
  result.overlap_after = design.macro_overlap_area();
  const double area_scale = std::max(1.0, region.area());
  if (result.overlap_after / area_scale > 1e-9) {
    std::vector<geometry::Rect> obstacles;
    for (NodeId id : design.macros()) {
      if (design.node(id).fixed) obstacles.push_back(design.node(id).rect());
    }
    shove_legalize(design, movable, region, obstacles);
    result.used_shove = true;
    result.overlap_after = design.macro_overlap_area();
  }
}

}  // namespace

MacroLegalizeResult legalize_groups(Design& original,
                                    cluster::CoarseDesign& coarse,
                                    const cluster::Clustering& clustering,
                                    const grid::GridSpec& grid,
                                    const std::vector<grid::CellCoord>& group_anchors,
                                    const MacroLegalizeOptions& options) {
  MacroLegalizeResult result;
  const geometry::Rect region = original.region();

  // --- Step 0: pin macro groups at the centers of their allocated cells. ---
  std::vector<geometry::Rect> group_region(clustering.macro_groups.size());
  for (std::size_t g = 0; g < clustering.macro_groups.size(); ++g) {
    const cluster::Group& group = clustering.macro_groups[g];
    netlist::Node& node = coarse.design.node(coarse.macro_group_nodes[g]);
    const grid::CellCoord fp = grid.footprint_cells(group.width, group.height);
    const geometry::Point origin = grid.cell_origin(group_anchors[g]);
    const geometry::Rect cells(origin.x, origin.y, fp.gx * grid.cell_width(),
                               fp.gy * grid.cell_height());
    node.position = {cells.center().x - node.width / 2.0,
                     cells.center().y - node.height / 2.0};
    group_region[g] = cells;
  }

  // --- Step 1: QP over cell groups with macro groups fixed. ---
  qp::solve_quadratic_placement(coarse.design, coarse.cell_group_nodes, {}, {},
                                options.qp);

  // --- Step 2: decompose groups; QP over original macros with cells fixed at
  // their group centers, each macro box-bounded to its group's cells. ---
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const int cg = clustering.cell_group_of[i];
    if (cg < 0) continue;
    const netlist::Node& group_node =
        coarse.design.node(coarse.cell_group_nodes[static_cast<std::size_t>(cg)]);
    netlist::Node& cell = original.node(static_cast<NodeId>(i));
    const geometry::Point c = group_node.center();
    cell.position = {c.x - cell.width / 2.0, c.y - cell.height / 2.0};
  }
  // Seed macro positions near their group region centers before the QP (the
  // QP is convex, but the box projection benefits from an interior start).
  std::vector<NodeId> movable;
  std::vector<geometry::Rect> movable_allowed;
  std::vector<qp::BoxBound> bounds;
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const int mg = clustering.macro_group_of[i];
    if (mg < 0) continue;
    const NodeId id = static_cast<NodeId>(i);
    netlist::Node& macro = original.node(id);
    const geometry::Rect& box = group_region[static_cast<std::size_t>(mg)];
    movable.push_back(id);
    movable_allowed.push_back(box);
    // Center box for the macro center: shrink by half the macro size.
    geometry::Rect center_box = geometry::Rect::from_corners(
        box.left() + macro.width / 2.0,
        box.bottom() + macro.height / 2.0,
        std::max(box.left() + macro.width / 2.0, box.right() - macro.width / 2.0),
        std::max(box.bottom() + macro.height / 2.0, box.top() - macro.height / 2.0));
    bounds.push_back({id, center_box});
  }
  qp::solve_quadratic_placement(original, movable, {}, bounds, options.qp);
  result.overlap_before = original.macro_overlap_area();

  // --- Step 3: sequence-pair + LP overlap removal, per component. ---
  for (int round = 0; round < options.component_rounds; ++round) {
    const int processed =
        resolve_components(original, movable, region, movable_allowed, options);
    result.components += processed;
    if (processed == 0) break;
  }

  // --- Step 4 (refinement): bounded net-driven QP + another LP round. ---
  if (options.refine_inflation_cells > 0.0) {
    const double dx = options.refine_inflation_cells * grid.cell_width();
    const double dy = options.refine_inflation_cells * grid.cell_height();
    std::vector<qp::BoxBound> refine_bounds;
    std::vector<geometry::Rect> refine_allowed(movable.size());
    for (std::size_t k = 0; k < movable.size(); ++k) {
      const netlist::Node& macro = original.node(movable[k]);
      const geometry::Rect& base = movable_allowed[k];
      const geometry::Rect inflated = geometry::Rect::from_corners(
          std::max(region.left(), base.left() - dx),
          std::max(region.bottom(), base.bottom() - dy),
          std::min(region.right(), base.right() + dx),
          std::min(region.top(), base.top() + dy));
      refine_allowed[k] = inflated;
      const geometry::Rect center_box = geometry::Rect::from_corners(
          inflated.left() + macro.width / 2.0,
          inflated.bottom() + macro.height / 2.0,
          std::max(inflated.left() + macro.width / 2.0,
                   inflated.right() - macro.width / 2.0),
          std::max(inflated.bottom() + macro.height / 2.0,
                   inflated.top() - macro.height / 2.0));
      refine_bounds.push_back({movable[k], center_box});
    }
    qp::solve_quadratic_placement(original, movable, {}, refine_bounds,
                                  options.qp);
    for (int round = 0; round < options.component_rounds; ++round) {
      const int processed =
          resolve_components(original, movable, region, refine_allowed, options);
      result.components += processed;
      if (processed == 0) break;
    }
  }
  final_shove_if_needed(original, movable, region, result, options);
  // Stage-boundary validation: the pipeline's contract is a legal (overlap-
  // free, in-region) macro placement; the shove pass is the last resort that
  // guarantees it, so a violation here is a real legalizer bug.
  check::validate_placement_legal(original, "legal.legalize_groups");
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(result.overlap_after, "legalize_groups overlap_after");
    MP_CHECK_GE(result.overlap_before, 0.0, "legalize_groups overlap_before");
  }
  util::log_debug() << "legalize_groups: overlap " << result.overlap_before
                    << " -> " << result.overlap_after << " ("
                    << result.components << " components, shove="
                    << result.used_shove << ")";
  return result;
}

MacroLegalizeResult legalize_flat(Design& design,
                                  const MacroLegalizeOptions& options) {
  MacroLegalizeResult result;
  const geometry::Rect region = design.region();
  const std::vector<NodeId> movable = design.movable_macros();
  result.overlap_before = design.macro_overlap_area();
  for (int round = 0; round < options.component_rounds; ++round) {
    const int processed = resolve_components(design, movable, region, {}, options);
    result.components += processed;
    if (processed == 0) break;
  }
  final_shove_if_needed(design, movable, region, result, options);
  check::validate_placement_legal(design, "legal.legalize_flat");
  return result;
}

}  // namespace mp::legal
