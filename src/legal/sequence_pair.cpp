#include "legal/sequence_pair.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace mp::legal {

SequencePair sequence_pair_from_placement(
    const std::vector<geometry::Rect>& rects) {
  const std::size_t n = rects.size();
  SequencePair sp;
  sp.s_plus.resize(n);
  sp.s_minus.resize(n);
  std::iota(sp.s_plus.begin(), sp.s_plus.end(), 0);
  std::iota(sp.s_minus.begin(), sp.s_minus.end(), 0);

  const auto anti_key = [&](int i) {
    const geometry::Point c = rects[static_cast<std::size_t>(i)].center();
    return c.x - c.y;
  };
  const auto diag_key = [&](int i) {
    const geometry::Point c = rects[static_cast<std::size_t>(i)].center();
    return c.x + c.y;
  };
  std::sort(sp.s_plus.begin(), sp.s_plus.end(), [&](int a, int b) {
    const double ka = anti_key(a), kb = anti_key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  std::sort(sp.s_minus.begin(), sp.s_minus.end(), [&](int a, int b) {
    const double ka = diag_key(a), kb = diag_key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });
  return sp;
}

std::vector<PairConstraint> extract_constraints(const SequencePair& sp) {
  const std::size_t n = sp.size();
  std::vector<int> pos_plus(n), pos_minus(n);
  for (std::size_t k = 0; k < n; ++k) {
    pos_plus[static_cast<std::size_t>(sp.s_plus[k])] = static_cast<int>(k);
    pos_minus[static_cast<std::size_t>(sp.s_minus[k])] = static_cast<int>(k);
  }
  std::vector<PairConstraint> out;
  out.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool i_first_plus = pos_plus[i] < pos_plus[j];
      const bool i_first_minus = pos_minus[i] < pos_minus[j];
      PairConstraint c;
      if (i_first_plus && i_first_minus) {
        c = {static_cast<int>(i), static_cast<int>(j), PairRelation::kLeftOf};
      } else if (!i_first_plus && i_first_minus) {
        c = {static_cast<int>(i), static_cast<int>(j), PairRelation::kBelow};
      } else if (i_first_plus && !i_first_minus) {
        // j below i.
        c = {static_cast<int>(j), static_cast<int>(i), PairRelation::kBelow};
      } else {
        // j left of i.
        c = {static_cast<int>(j), static_cast<int>(i), PairRelation::kLeftOf};
      }
      out.push_back(c);
    }
  }
  return out;
}

bool is_valid_sequence_pair(const SequencePair& sp) {
  if (sp.s_plus.size() != sp.s_minus.size()) return false;
  const std::size_t n = sp.size();
  std::vector<bool> seen(n, false);
  for (int v : sp.s_plus) {
    if (v < 0 || static_cast<std::size_t>(v) >= n || seen[static_cast<std::size_t>(v)])
      return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  std::fill(seen.begin(), seen.end(), false);
  for (int v : sp.s_minus) {
    if (v < 0 || static_cast<std::size_t>(v) >= n || seen[static_cast<std::size_t>(v)])
      return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

double max_constraint_violation(const SequencePair& sp,
                                const std::vector<geometry::Rect>& rects) {
  assert(rects.size() == sp.size());
  double worst = -std::numeric_limits<double>::infinity();
  for (const PairConstraint& c : extract_constraints(sp)) {
    const geometry::Rect& a = rects[static_cast<std::size_t>(c.i)];
    const geometry::Rect& b = rects[static_cast<std::size_t>(c.j)];
    const double deficit = (c.relation == PairRelation::kLeftOf)
                               ? a.right() - b.left()
                               : a.top() - b.bottom();
    worst = std::max(worst, deficit);
  }
  return worst;
}

void pack_longest_path(const SequencePair& sp, const std::vector<double>& widths,
                       const std::vector<double>& heights,
                       const geometry::Point& origin,
                       std::vector<geometry::Point>& positions) {
  const std::size_t n = sp.size();
  assert(widths.size() == n && heights.size() == n);
  positions.assign(n, origin);
  const std::vector<PairConstraint> constraints = extract_constraints(sp);

  // Longest path via repeated relaxation in topological-ish order; the
  // constraint graph is a DAG, and processing pairs sorted by S+ position
  // relaxes each edge after its source is final (both edge kinds point from
  // earlier to later... below-edges point from the S- -earlier node; use
  // simple Bellman-Ford style sweeps, n is small).
  bool changed = true;
  std::size_t sweeps = 0;
  while (changed && sweeps <= n + 1) {
    changed = false;
    ++sweeps;
    for (const PairConstraint& c : constraints) {
      const std::size_t i = static_cast<std::size_t>(c.i);
      const std::size_t j = static_cast<std::size_t>(c.j);
      if (c.relation == PairRelation::kLeftOf) {
        const double need = positions[i].x + widths[i];
        if (positions[j].x < need) {
          positions[j].x = need;
          changed = true;
        }
      } else {
        const double need = positions[i].y + heights[i];
        if (positions[j].y < need) {
          positions[j].y = need;
          changed = true;
        }
      }
    }
  }
}

}  // namespace mp::legal
