#pragma once
// Basic planar geometry used everywhere: points, axis-aligned rectangles,
// bounding boxes.  Coordinates are doubles in micrometres (the unit used by
// the paper's wirelength tables).

#include <algorithm>
#include <limits>
#include <ostream>

namespace mp::geometry {

struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Manhattan (L1) distance between two points.
double manhattan(const Point& a, const Point& b);

/// Euclidean (L2) distance between two points.
double euclidean(const Point& a, const Point& b);

/// Axis-aligned rectangle described by its lower-left corner and extents.
/// Invariant: width >= 0 and height >= 0 for rectangles produced by the
/// factory functions; an empty Rect (default) has zero extents.
struct Rect {
  double x = 0.0;   ///< lower-left x
  double y = 0.0;   ///< lower-left y
  double w = 0.0;   ///< width
  double h = 0.0;   ///< height

  Rect() = default;
  Rect(double lx, double ly, double width, double height)
      : x(lx), y(ly), w(width), h(height) {}

  static Rect from_corners(double x0, double y0, double x1, double y1) {
    return Rect(std::min(x0, x1), std::min(y0, y1), std::abs(x1 - x0),
                std::abs(y1 - y0));
  }

  double left() const { return x; }
  double right() const { return x + w; }
  double bottom() const { return y; }
  double top() const { return y + h; }
  double area() const { return w * h; }
  Point center() const { return {x + w / 2.0, y + h / 2.0}; }
  Point lower_left() const { return {x, y}; }

  bool contains(const Point& p) const {
    return p.x >= left() && p.x <= right() && p.y >= bottom() && p.y <= top();
  }

  /// True if `inner` lies fully inside (or on the border of) this rect.
  bool contains(const Rect& inner) const {
    return inner.left() >= left() && inner.right() <= right() &&
           inner.bottom() >= bottom() && inner.top() <= top();
  }

  /// True when the interiors intersect (touching edges do not overlap).
  bool overlaps(const Rect& o) const {
    return left() < o.right() && o.left() < right() && bottom() < o.top() &&
           o.bottom() < top();
  }

  bool operator==(const Rect& o) const {
    return x == o.x && y == o.y && w == o.w && h == o.h;
  }
};

/// Area of the intersection of two rectangles (0 when disjoint).
double overlap_area(const Rect& a, const Rect& b);

/// Clamps a lower-left coordinate so the interval [pos, pos + size] lies in
/// [lo, hi] *in floating point*: plain `clamp(v, lo, hi - size)` can leave
/// `pos + size` one ulp past `hi`, which breaks exact containment checks.
/// When size > hi - lo the result is lo.
double fit_interval(double desired, double size, double lo, double hi);

/// Incrementally grown bounding box; starts empty.
class BoundingBox {
 public:
  void add(const Point& p) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }

  bool empty() const { return min_x_ > max_x_; }

  /// Half-perimeter of the box; 0 for empty or single-point boxes.
  double half_perimeter() const {
    if (empty()) return 0.0;
    return (max_x_ - min_x_) + (max_y_ - min_y_);
  }

  double width() const { return empty() ? 0.0 : max_x_ - min_x_; }
  double height() const { return empty() ? 0.0 : max_y_ - min_y_; }
  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

 private:
  double min_x_ = std::numeric_limits<double>::infinity();
  double min_y_ = std::numeric_limits<double>::infinity();
  double max_x_ = -std::numeric_limits<double>::infinity();
  double max_y_ = -std::numeric_limits<double>::infinity();
};

std::ostream& operator<<(std::ostream& os, const Point& p);
std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace mp::geometry
