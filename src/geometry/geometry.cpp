#include "geometry/geometry.hpp"

#include <cmath>

namespace mp::geometry {

double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double overlap_area(const Rect& a, const Rect& b) {
  const double ox = std::min(a.right(), b.right()) - std::max(a.left(), b.left());
  const double oy = std::min(a.top(), b.top()) - std::max(a.bottom(), b.bottom());
  if (ox <= 0.0 || oy <= 0.0) return 0.0;
  return ox * oy;
}

double fit_interval(double desired, double size, double lo, double hi) {
  double pos = std::clamp(desired, lo, std::max(lo, hi - size));
  // Nudge down until pos + size <= hi holds exactly (at most a few ulps).
  while (pos > lo && pos + size > hi) {
    pos = std::nextafter(pos, lo);
  }
  return pos;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[x=" << r.x << " y=" << r.y << " w=" << r.w << " h=" << r.h
            << "]";
}

}  // namespace mp::geometry
