#include "cluster/clustering.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "netlist/hierarchy.hpp"
#include "netlist/stats.hpp"
#include "util/log.hpp"

namespace mp::cluster {

using netlist::Design;
using netlist::NodeId;

namespace {

// Internal mutable cluster state during agglomeration.
struct Entity {
  bool alive = true;
  int version = 0;  // bumped on every merge for lazy heap invalidation
  std::vector<NodeId> members;
  double area = 0.0;
  double weighted_x = 0.0;  // area-weighted centroid accumulators
  double weighted_y = 0.0;
  std::string hierarchy;
  // Connectivity to other entities: entity index -> weight.
  std::unordered_map<int, double> adjacency;

  geometry::Point centroid() const {
    if (area <= 0.0) return {weighted_x, weighted_y};
    return {weighted_x / area, weighted_y / area};
  }
};

struct Candidate {
  double score;
  int a, b;
  int version_a, version_b;
  bool operator<(const Candidate& o) const { return score < o.score; }
};

constexpr double kDistanceEpsilon = 1e-6;

// Γ (Eq. 1) for two macro entities.
double macro_score(const Entity& a, const Entity& b, double connectivity,
                   const ClusterParams& p) {
  const double dist =
      std::max(kDistanceEpsilon, geometry::euclidean(a.centroid(), b.centroid()));
  const double hierarchy_common = (a.hierarchy.empty() || b.hierarchy.empty())
      ? 0.0
      : static_cast<double>(
            netlist::common_hierarchy_depth(a.hierarchy, b.hierarchy));
  const double area_diff = std::abs(a.area - b.area);
  return 1.0 / dist + p.delta * hierarchy_common + p.epsilon * connectivity +
         p.kappa / (area_diff + 1.0);
}

// φ (Eq. 2) for two cell entities.
double cell_score(const Entity& a, const Entity& b, double connectivity,
                  const ClusterParams& p) {
  const double dist =
      std::max(kDistanceEpsilon, geometry::euclidean(a.centroid(), b.centroid()));
  return 1.0 / dist + p.rho * connectivity / (a.area + b.area);
}

// Common hierarchy prefix of two paths as a string.
std::string common_prefix_path(const std::string& a, const std::string& b) {
  const int depth = netlist::common_hierarchy_depth(a, b);
  if (depth == 0) return {};
  auto parts = netlist::split_hierarchy(a);
  parts.resize(static_cast<std::size_t>(depth));
  return netlist::join_hierarchy(parts);
}

// Generic agglomeration.  `score` evaluates a candidate pair.  Entities with
// area <= cell_area are "undersize"; merging requires at least one undersize
// participant and a merged area below the cap.
std::vector<Group> agglomerate(
    const Design& design, const std::vector<NodeId>& nodes,
    const netlist::ConnectivityMap& connectivity, const ClusterParams& params,
    double cell_area, bool use_macro_score, bool all_pairs,
    std::vector<int>& group_of) {
  std::vector<Entity> entities;
  entities.reserve(nodes.size() * 2);
  std::vector<int> entity_of_node(design.num_nodes(), -1);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const netlist::Node& node = design.node(nodes[i]);
    Entity e;
    e.members = {nodes[i]};
    e.area = node.area();
    e.weighted_x = node.center().x * std::max(node.area(), kDistanceEpsilon);
    e.weighted_y = node.center().y * std::max(node.area(), kDistanceEpsilon);
    if (node.area() <= 0.0) e.area = kDistanceEpsilon;
    e.hierarchy = node.hierarchy;
    entities.push_back(std::move(e));
    entity_of_node[static_cast<std::size_t>(nodes[i])] = static_cast<int>(i);
  }
  // Seed adjacency from the connectivity map.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& [nbr, w] : connectivity.neighbors(nodes[i])) {
      const int j = entity_of_node[static_cast<std::size_t>(nbr)];
      if (j >= 0 && j != static_cast<int>(i)) {
        entities[i].adjacency[j] += w;
      }
    }
  }

  const auto pair_score = [&](int a, int b) {
    double w = 0.0;
    const auto it = entities[static_cast<std::size_t>(a)].adjacency.find(b);
    if (it != entities[static_cast<std::size_t>(a)].adjacency.end()) w = it->second;
    return use_macro_score
               ? macro_score(entities[static_cast<std::size_t>(a)],
                             entities[static_cast<std::size_t>(b)], w, params)
               : cell_score(entities[static_cast<std::size_t>(a)],
                            entities[static_cast<std::size_t>(b)], w, params);
  };

  const double max_merged_area = params.max_merged_cells * cell_area;
  const auto mergeable = [&](int a, int b) {
    const Entity& ea = entities[static_cast<std::size_t>(a)];
    const Entity& eb = entities[static_cast<std::size_t>(b)];
    if (!ea.alive || !eb.alive) return false;
    if (ea.area > cell_area && eb.area > cell_area) return false;
    if (ea.area + eb.area > max_merged_area) return false;
    return true;
  };

  std::priority_queue<Candidate> heap;
  const auto push_candidate = [&](int a, int b) {
    if (a == b || !mergeable(a, b)) return;
    heap.push(Candidate{pair_score(a, b), a, b,
                        entities[static_cast<std::size_t>(a)].version,
                        entities[static_cast<std::size_t>(b)].version});
  };

  if (all_pairs) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        push_candidate(static_cast<int>(i), static_cast<int>(j));
      }
    }
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (const auto& [j, w] : entities[i].adjacency) {
        (void)w;
        if (static_cast<int>(i) < j) push_candidate(static_cast<int>(i), j);
      }
    }
  }

  while (!heap.empty()) {
    const Candidate top = heap.top();
    heap.pop();
    const Entity& ea = entities[static_cast<std::size_t>(top.a)];
    const Entity& eb = entities[static_cast<std::size_t>(top.b)];
    if (ea.version != top.version_a || eb.version != top.version_b) continue;
    if (!mergeable(top.a, top.b)) continue;
    if (top.score < params.nu) break;

    // Merge b into a new entity.
    const int id = static_cast<int>(entities.size());
    Entity merged;
    merged.members = ea.members;
    merged.members.insert(merged.members.end(), eb.members.begin(),
                          eb.members.end());
    merged.area = ea.area + eb.area;
    merged.weighted_x = ea.weighted_x + eb.weighted_x;
    merged.weighted_y = ea.weighted_y + eb.weighted_y;
    merged.hierarchy = common_prefix_path(ea.hierarchy, eb.hierarchy);
    // Union adjacency, dropping references to the two dead entities.
    for (const auto* src : {&ea.adjacency, &eb.adjacency}) {
      for (const auto& [k, w] : *src) {
        if (k == top.a || k == top.b) continue;
        merged.adjacency[k] += w;
      }
    }
    entities.push_back(std::move(merged));
    entities[static_cast<std::size_t>(top.a)].alive = false;
    entities[static_cast<std::size_t>(top.a)].version++;
    entities[static_cast<std::size_t>(top.b)].alive = false;
    entities[static_cast<std::size_t>(top.b)].version++;

    // Update the neighbors' adjacency to point at the merged entity and push
    // refreshed candidates.
    for (const auto& [k, w] : entities[static_cast<std::size_t>(id)].adjacency) {
      Entity& nbr = entities[static_cast<std::size_t>(k)];
      if (!nbr.alive) continue;
      nbr.adjacency.erase(top.a);
      nbr.adjacency.erase(top.b);
      nbr.adjacency[id] += w;
      push_candidate(id, k);
    }
    if (all_pairs) {
      for (std::size_t k = 0; k < entities.size(); ++k) {
        if (entities[k].alive && static_cast<int>(k) != id) {
          push_candidate(id, static_cast<int>(k));
        }
      }
    }
  }

  // Harvest alive entities into Groups.
  std::vector<Group> groups;
  group_of.assign(design.num_nodes(), -1);
  for (const Entity& e : entities) {
    if (!e.alive) continue;
    Group g;
    g.members = e.members;
    g.area = 0.0;
    for (NodeId m : e.members) g.area += design.node(m).area();
    g.centroid = e.centroid();
    g.hierarchy = e.hierarchy;
    assign_group_shape(g, design);
    const int idx = static_cast<int>(groups.size());
    for (NodeId m : e.members) group_of[static_cast<std::size_t>(m)] = idx;
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace

void assign_group_shape(Group& group, const Design& design, double whitespace) {
  double max_w = 0.0, max_h = 0.0;
  for (NodeId m : group.members) {
    max_w = std::max(max_w, design.node(m).width);
    max_h = std::max(max_h, design.node(m).height);
  }
  const double target_area = group.area * (1.0 + whitespace);
  double w = std::max(max_w, std::sqrt(target_area));
  double h = std::max(max_h, target_area / std::max(w, kDistanceEpsilon));
  // Height growth (for a tall member) may demand more width again.
  w = std::max(w, target_area / std::max(h, kDistanceEpsilon));
  group.width = w;
  group.height = h;
}

Clustering cluster_design(const Design& design, const grid::GridSpec& grid,
                          const ClusterParams& params) {
  Clustering result;
  const double cell_area = grid.cell_area();

  // Macro groups: movable macros only; all pairs considered (count is small).
  {
    const auto& macros = design.movable_macros();
    netlist::ConnectivityMap conn(design, macros, params.max_net_degree);
    // All-pairs candidate generation is O(n^2); guard very large macro counts
    // by falling back to graph neighbors only.
    const bool all_pairs = macros.size() <= 2000;
    result.macro_groups =
        agglomerate(design, macros, conn, params, cell_area,
                    /*use_macro_score=*/true, all_pairs, result.macro_group_of);
    std::vector<int> rank(result.macro_groups.size());
    // Sort groups by non-increasing area (placement priority, Sec. V).
    std::vector<std::size_t> order(result.macro_groups.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return result.macro_groups[a].area > result.macro_groups[b].area;
    });
    std::vector<Group> sorted;
    sorted.reserve(order.size());
    std::vector<int> new_index(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      new_index[order[i]] = static_cast<int>(i);
      sorted.push_back(std::move(result.macro_groups[order[i]]));
    }
    result.macro_groups = std::move(sorted);
    for (int& g : result.macro_group_of) {
      if (g >= 0) g = new_index[static_cast<std::size_t>(g)];
    }
  }

  // Cell groups: graph-neighbor candidates only (cells are numerous).
  {
    const auto& cells = design.std_cells();
    netlist::ConnectivityMap conn(design, cells, params.max_net_degree);
    result.cell_groups =
        agglomerate(design, cells, conn, params, cell_area,
                    /*use_macro_score=*/false, /*all_pairs=*/false,
                    result.cell_group_of);
  }

  util::log_info() << "clustering: " << design.movable_macros().size()
                   << " macros -> " << result.macro_groups.size()
                   << " groups; " << design.std_cells().size() << " cells -> "
                   << result.cell_groups.size() << " groups";
  return result;
}

}  // namespace mp::cluster
