#pragma once
// Coarsened netlist: a Design whose movable nodes are the macro groups and
// cell groups produced by clustering, with pads and preplaced macros copied
// through as fixed terminals.  RL pre-training, MCTS and legalization step 1
// all operate on this design; parallel nets between the same group set are
// merged with accumulated weight so its net count is small.

#include <vector>

#include "cluster/clustering.hpp"
#include "netlist/design.hpp"

namespace mp::cluster {

struct CoarseDesign {
  netlist::Design design;
  /// Coarse node id of each macro group (indexed like Clustering::macro_groups).
  std::vector<netlist::NodeId> macro_group_nodes;
  /// Coarse node id of each cell group.
  std::vector<netlist::NodeId> cell_group_nodes;
  /// Original node id -> coarse node id (group node, or the copied fixed
  /// node; kInvalidNode for original nodes dropped from the coarse model).
  std::vector<netlist::NodeId> coarse_of_original;
};

/// Builds the coarse design from an original design and its clustering.
/// Group positions are initialized at the group centroids.
CoarseDesign build_coarse_design(const netlist::Design& original,
                                 const Clustering& clustering);

/// Copies macro-group placements from the coarse design back onto the
/// original: each movable macro is translated so the group's members keep
/// their relative offsets around the group's new center.  (The precise
/// per-macro legalization is done later by legal/.)
void apply_group_positions(const CoarseDesign& coarse,
                           const Clustering& clustering,
                           netlist::Design& original);

}  // namespace mp::cluster
