#pragma once
// Coarsened-netlist generation (Sec. II-A): macros are merged into macro
// groups by the score Γ (Eq. 1) and std cells into cell groups by φ (Eq. 2),
// agglomeratively, until every group exceeds one grid cell in area or the
// best merge score drops below the threshold ν.
//
// Both phases share one lazy-heap agglomerator whose merge candidates are
// connectivity-graph neighbors (macros additionally consider all pairs, as
// their count is small); scores are recomputed on pop when stale.

#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "netlist/design.hpp"

namespace mp::cluster {

/// A group of macros or cells with an aggregate rectangular shape.
struct Group {
  std::vector<netlist::NodeId> members;
  double area = 0.0;         ///< sum of member areas
  double width = 0.0;        ///< synthesized rectangular shape (see notes)
  double height = 0.0;
  geometry::Point centroid;  ///< area-weighted member centroid (initial placement)
  std::string hierarchy;     ///< common hierarchy prefix of the members
};

/// Γ / φ parameters; defaults are the paper's experimental values.
struct ClusterParams {
  // Macro score Γ (Eq. 1).
  double delta = 0.001;    ///< hierarchy term weight δ
  double epsilon = 0.0003; ///< connectivity term weight ε
  double kappa = 1.0;      ///< area-difference term weight κ
  // Cell score φ (Eq. 2).
  double rho = 1.0;        ///< connectivity/area term weight ϱ
  // Termination.
  double nu = 0.001;       ///< merge-score threshold ν
  /// Merges stop involving groups whose area exceeds one grid cell; a merge
  /// may not produce a group larger than `max_merged_cells` grid cells.
  double max_merged_cells = 4.0;
  /// Nets above this degree are ignored for connectivity.
  std::size_t max_net_degree = 64;
};

struct Clustering {
  std::vector<Group> macro_groups;  ///< sorted by area, non-increasing
  std::vector<Group> cell_groups;
  /// Original node id -> index into macro_groups / cell_groups (-1 when the
  /// node is not part of any group: pads, fixed macros, other kind).
  std::vector<int> macro_group_of;
  std::vector<int> cell_group_of;
};

/// Clusters the movable macros and std cells of `design`.  Node positions
/// must already hold an initial (analytical) placement — the distance terms
/// of Γ and φ read them.
Clustering cluster_design(const netlist::Design& design,
                          const grid::GridSpec& grid,
                          const ClusterParams& params = {});

/// Synthesizes the rectangular shape of a group: wide enough for its widest
/// member, tall enough for its tallest, area-preserving (plus `whitespace`
/// slack) and near-square otherwise.
void assign_group_shape(Group& group, const netlist::Design& design,
                        double whitespace = 0.05);

}  // namespace mp::cluster
