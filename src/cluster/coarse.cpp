#include "cluster/coarse.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace mp::cluster {

using netlist::Design;
using netlist::Net;
using netlist::NetId;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using netlist::PinRef;

CoarseDesign build_coarse_design(const Design& original,
                                 const Clustering& clustering) {
  CoarseDesign out;
  out.design = Design(original.name() + "_coarse", original.region());
  out.coarse_of_original.assign(original.num_nodes(), netlist::kInvalidNode);

  // Macro-group nodes.
  out.macro_group_nodes.reserve(clustering.macro_groups.size());
  for (std::size_t g = 0; g < clustering.macro_groups.size(); ++g) {
    const Group& group = clustering.macro_groups[g];
    Node node;
    node.name = "mg" + std::to_string(g);
    node.kind = NodeKind::kMacro;
    node.width = group.width;
    node.height = group.height;
    node.position = {group.centroid.x - group.width / 2.0,
                     group.centroid.y - group.height / 2.0};
    node.fixed = false;
    node.hierarchy = group.hierarchy;
    out.macro_group_nodes.push_back(out.design.add_node(node));
  }
  // Cell-group nodes.
  out.cell_group_nodes.reserve(clustering.cell_groups.size());
  for (std::size_t g = 0; g < clustering.cell_groups.size(); ++g) {
    const Group& group = clustering.cell_groups[g];
    Node node;
    node.name = "cg" + std::to_string(g);
    node.kind = NodeKind::kStdCell;
    node.width = group.width;
    node.height = group.height;
    node.position = {group.centroid.x - group.width / 2.0,
                     group.centroid.y - group.height / 2.0};
    node.fixed = false;
    node.hierarchy = group.hierarchy;
    out.cell_group_nodes.push_back(out.design.add_node(node));
  }
  // Fixed terminals copied through: pads and preplaced (fixed) macros.
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const Node& node = original.node(static_cast<NodeId>(i));
    const bool copy = node.kind == NodeKind::kPad ||
                      (node.kind == NodeKind::kMacro && node.fixed);
    if (!copy) continue;
    Node fixed = node;
    fixed.fixed = true;
    out.coarse_of_original[i] = out.design.add_node(fixed);
  }
  // Map group members.
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const int mg = clustering.macro_group_of.empty()
                       ? -1
                       : clustering.macro_group_of[i];
    const int cg = clustering.cell_group_of.empty()
                       ? -1
                       : clustering.cell_group_of[i];
    if (mg >= 0) {
      out.coarse_of_original[i] = out.macro_group_nodes[static_cast<std::size_t>(mg)];
    } else if (cg >= 0) {
      out.coarse_of_original[i] = out.cell_group_nodes[static_cast<std::size_t>(cg)];
    }
  }

  // Coarse nets: dedupe pins per net, merge parallel nets by weight.
  std::map<std::vector<NodeId>, double> merged;
  for (std::size_t n = 0; n < original.num_nets(); ++n) {
    const Net& net = original.net(static_cast<NetId>(n));
    std::vector<NodeId> coarse_nodes;
    for (const PinRef& pin : net.pins) {
      const NodeId c = out.coarse_of_original[static_cast<std::size_t>(pin.node)];
      if (c != netlist::kInvalidNode) coarse_nodes.push_back(c);
    }
    std::sort(coarse_nodes.begin(), coarse_nodes.end());
    coarse_nodes.erase(std::unique(coarse_nodes.begin(), coarse_nodes.end()),
                       coarse_nodes.end());
    if (coarse_nodes.size() < 2) continue;
    merged[coarse_nodes] += net.weight;
  }
  int net_counter = 0;
  for (const auto& [nodes, weight] : merged) {
    Net net;
    net.name = "cn" + std::to_string(net_counter++);
    net.weight = weight;
    for (NodeId id : nodes) {
      const Node& node = out.design.node(id);
      // Pins at node centers.
      net.pins.push_back(PinRef{id, node.width / 2.0, node.height / 2.0});
    }
    out.design.add_net(net);
  }
  return out;
}

void apply_group_positions(const CoarseDesign& coarse,
                           const Clustering& clustering, Design& original) {
  for (std::size_t g = 0; g < clustering.macro_groups.size(); ++g) {
    const Group& group = clustering.macro_groups[g];
    const Node& coarse_node =
        coarse.design.node(coarse.macro_group_nodes[g]);
    const geometry::Point new_center = coarse_node.center();
    const geometry::Point shift = new_center - group.centroid;
    for (NodeId m : group.members) {
      Node& macro = original.node(m);
      macro.position = macro.position + shift;
    }
  }
}

}  // namespace mp::cluster
