#include "mcts/mcts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "check/check.hpp"
#include "check/validators.hpp"
#include "infer/engine.hpp"
#include "obs/obs.hpp"
#include "par/par.hpp"
#include "util/log.hpp"

namespace mp::mcts {

MctsPlacer::MctsPlacer(rl::PlacementEnv& env, rl::AllocationEvaluator& evaluator,
                       rl::AgentNetwork& agent, rl::RewardFn reward,
                       const MctsOptions& options)
    : env_(env),
      evaluator_(evaluator),
      agent_(agent),
      reward_(std::move(reward)),
      options_(options),
      rng_(options.seed) {
  // eval_batch == 0 means "match the worker pool"; the library default of 1
  // keeps the serial path unless a caller opts in.
  if (options_.eval_batch <= 0) options_.eval_batch = par::num_threads();
  nodes_.push_back(Node{});  // root
  if (options_.infer_engine != nullptr) {
    snapshot_ = options_.infer_engine->acquire(agent_);
    have_snapshot_ = true;
  }
}

MctsPlacer::~MctsPlacer() {
  if (have_snapshot_) options_.infer_engine->release(snapshot_);
}

rl::AgentOutput MctsPlacer::net_forward(const rl::PlacementEnv& env,
                                        rl::AgentNetwork& agent) {
  const std::vector<double> sp = env.placement_state();
  const std::vector<double> availability = env.availability();
  if (options_.infer_engine != nullptr && have_snapshot_) {
    std::vector<rl::NetInput> batch(1);
    batch[0].sp = sp;
    batch[0].availability = availability;
    batch[0].t = env.current_step();
    batch[0].total_steps = env.num_steps();
    std::vector<rl::AgentOutput> outs =
        options_.infer_engine->forward(snapshot_, std::move(batch));
    return std::move(outs[0]);
  }
  return agent.forward(sp, availability, env.current_step(), env.num_steps(),
                       /*train=*/false);
}

bool MctsPlacer::replay(const std::vector<int>& actions) {
  env_.reset();
  for (int action : actions) {
    if (!env_.step(action)) return false;
  }
  return true;
}

int MctsPlacer::select_edge(const Node& node) const {
  // Eq. (10)-(11): argmax over children of Q + c * P * sqrt(ΣN) / (1 + N).
  // Q is min-max normalized over all values seen so far, and unvisited edges
  // fall back to the node's own evaluation (first-play urgency) — without
  // both, the positive reward scale of Eq. (9) drowns the exploration term
  // and the search degenerates into one exploited line.
  double sum_visits = 0.0;
  for (const Edge& e : node.edges) sum_visits += e.visits + e.virtual_loss;
  const double sqrt_sum = std::sqrt(std::max(1.0, sum_visits));
  const double fpu = value_bounds_.normalize(node.eval_value);

  int best = -1;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    const Edge& e = node.edges[i];
    double q = (e.visits > 0)
                   ? value_bounds_.normalize(e.mean_value())
                   : fpu;
    double visit_count = e.visits;
    if (e.virtual_loss > 0) {
      // Batch mode: score the in-flight visits as if they had returned the
      // worst value seen (normalized 0), steering the remaining slots of
      // this batch onto other lines.  The branch keeps the vl == 0 math —
      // and so the serial path — bit-identical to the pre-batch code.
      q = q * e.visits / (e.visits + e.virtual_loss);
      visit_count += e.virtual_loss;
    }
    const double u = options_.c_puct * e.prior * sqrt_sum / (1.0 + visit_count);
    const double score = q + u;
    if (score > best_score) {
      best_score = score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void MctsPlacer::expand_node(Node& node, const std::vector<int>& legal,
                             const nn::Tensor& probs, int step) {
  // Children: every on-chip anchor; priors from the masked policy, with a
  // uniform floor so zero-availability (but feasible) anchors stay
  // reachable.
  node.edges.reserve(legal.size());
  double prior_sum = 0.0;
  for (int action : legal) {
    Edge e;
    e.action = action;
    e.prior = static_cast<double>(probs[static_cast<std::size_t>(action)]);
    prior_sum += e.prior;
    node.edges.push_back(e);
  }
  if (prior_sum <= 1e-12) {
    for (Edge& e : node.edges) e.prior = 1.0 / static_cast<double>(legal.size());
  } else {
    for (Edge& e : node.edges) e.prior /= prior_sum;
  }
  // Optional analytic prior bias (DESIGN.md "Substitutions").
  if (options_.prior_bonus) {
    double bonus_sum = 0.0;
    for (Edge& e : node.edges) {
      e.prior *= std::max(0.0, options_.prior_bonus(step, e.action));
      bonus_sum += e.prior;
    }
    if (bonus_sum > 1e-12) {
      for (Edge& e : node.edges) e.prior /= bonus_sum;
    } else {
      for (Edge& e : node.edges) {
        e.prior = 1.0 / static_cast<double>(node.edges.size());
      }
    }
  }
  node.expanded = true;
}

double MctsPlacer::expand_and_evaluate(int node_index) {
  // Terminal: evaluate the actual allocation (Sec. IV-B3), once per node.
  if (env_.done()) {
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (!node.has_terminal_value) {
      const double w = evaluator_.evaluate(env_.anchors());
      ++stats_.terminal_evaluations;
      MP_OBS_COUNT("mcts.terminal_evaluations", 1);
      MP_OBS_HIST("mcts.terminal_wirelength", w);
      node.eval_value = reward_(w);
      if (check::validate_level() >= 1) {
        MP_CHECK_FINITE(w, "terminal wirelength in MCTS");
        MP_CHECK_FINITE(node.eval_value, "terminal reward in MCTS");
      }
      node.has_terminal_value = true;
      if (w < best_terminal_wirelength_) {
        best_terminal_wirelength_ = w;
        best_terminal_anchors_ = env_.anchors();
      }
    }
    return node.eval_value;
  }

  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const bool already_expanded = node.expanded;
  const rl::AgentOutput out = net_forward(env_, agent_);
  // A NaN value or poisoned prior would silently corrupt every backup on
  // this line of play; catch it at the network boundary.
  if (check::validate_level() >= 1) {
    MP_CHECK_FINITE(out.value, "value head output in MCTS expansion");
    check::validate_probabilities(out.probs, "policy head output",
                                  "mcts.expand");
  }
  ++stats_.nn_evaluations;
  MP_OBS_COUNT("mcts.nn_evaluations", 1);
  if (!already_expanded) MP_OBS_COUNT("mcts.expansions", 1);

  // Expansion first (it reads the node's own environment state; the rollout
  // leaf evaluation below advances the environment).
  if (!already_expanded) {
    expand_node(node, env_.legal_actions(), out.probs, env_.current_step());
  }

  // Leaf value per the configured evaluation mode.
  double value = static_cast<double>(out.value);
  switch (options_.leaf_evaluation) {
    case LeafEvaluation::kValueNetwork:
      break;
    case LeafEvaluation::kPartialPlacement:
      value = reward_(evaluator_.evaluate_partial(env_.anchors()));
      break;
    case LeafEvaluation::kRandomRollout: {
      // Complete the episode randomly from the current state (the caller
      // replays the environment for every exploration, so no restore).
      bool ok = true;
      while (!env_.done()) {
        const std::vector<int> legal = env_.legal_actions();
        if (legal.empty()) {
          ok = false;
          break;
        }
        env_.step(legal[static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<int>(legal.size()) - 1))]);
      }
      if (ok) {
        const double w = evaluator_.evaluate(env_.anchors());
        ++stats_.terminal_evaluations;
        MP_OBS_COUNT("mcts.terminal_evaluations", 1);
        MP_OBS_HIST("mcts.terminal_wirelength", w);
        value = reward_(w);
        if (w < best_terminal_wirelength_) {
          best_terminal_wirelength_ = w;
          best_terminal_anchors_ = env_.anchors();
        }
      }
      break;
    }
  }
  node.eval_value = value;
  return value;
}

void MctsPlacer::explore() {
  MP_OBS_COUNT("mcts.simulations", 1);
  if (!replay(committed_)) {
    util::log_warn() << "mcts: committed prefix became unplayable";
    return;
  }
  // Selection: descend until an unexplored node or terminal state.
  std::vector<std::pair<int, int>> path;  // (node index, edge index)
  int node_index = root_;
  while (nodes_[static_cast<std::size_t>(node_index)].expanded && !env_.done()) {
    const int edge_index = select_edge(nodes_[static_cast<std::size_t>(node_index)]);
    if (edge_index < 0) break;  // no legal children (full chip)
    Edge& edge =
        nodes_[static_cast<std::size_t>(node_index)].edges[static_cast<std::size_t>(edge_index)];
    if (!env_.step(edge.action)) break;
    if (edge.child < 0) {
      edge.child = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      ++stats_.nodes_created;
    }
    path.emplace_back(node_index, edge_index);
    node_index = edge.child;
  }

  MP_OBS_HIST("mcts.path_depth", static_cast<double>(path.size()));

  // Expansion + evaluation.
  const double value = expand_and_evaluate(node_index);
  if (check::validate_level() >= 1) {
    // Eq. (12) accumulates this into every edge on the path; a single NaN
    // would permanently poison their Q means and the min-max bounds.
    MP_CHECK_FINITE(value, "leaf value entering PUCT backup");
  }
  value_bounds_.update(value);

  // Backpropagation (Eq. 12).
  for (const auto& [n, e] : path) {
    Edge& edge = nodes_[static_cast<std::size_t>(n)].edges[static_cast<std::size_t>(e)];
    edge.visits += 1;
    edge.total_value += value;
    value_bounds_.update(edge.mean_value());
  }
}

void MctsPlacer::ensure_contexts(int batch) {
  while (static_cast<int>(contexts_.size()) < batch) {
    WorkerContext ctx;
    // Engine mode never touches per-slot agents — every forward goes
    // through the shared snapshot — so skip the parameter copies.
    if (options_.infer_engine == nullptr) ctx.agent = agent_.clone();
    ctx.evaluator = evaluator_.clone();
    contexts_.push_back(std::move(ctx));
  }
}

void MctsPlacer::engine_fill_outputs(std::vector<PendingLeaf>& leaves) {
  if (options_.infer_engine == nullptr || !have_snapshot_) return;
  std::vector<std::size_t> idx;
  std::vector<rl::NetInput> inputs;
  for (std::size_t k = 0; k < leaves.size(); ++k) {
    const PendingLeaf& leaf = leaves[k];
    if (!leaf.valid || leaf.cached_terminal || leaf.terminal ||
        !leaf.env.has_value()) {
      continue;
    }
    rl::NetInput in;
    in.sp = leaf.env->placement_state();
    in.availability = leaf.env->availability();
    in.t = leaf.env->current_step();
    in.total_steps = leaf.env->num_steps();
    inputs.push_back(std::move(in));
    idx.push_back(k);
  }
  if (inputs.empty()) return;
  // One coalescible request for the whole batch; the engine may merge it
  // with concurrent jobs' requests, which cannot change any per-sample
  // result (forward_many is per-sample bit-identical to forward).
  std::vector<rl::AgentOutput> outs =
      options_.infer_engine->forward(snapshot_, std::move(inputs));
  for (std::size_t i = 0; i < idx.size(); ++i) {
    PendingLeaf& leaf = leaves[idx[i]];
    leaf.out = std::move(outs[i]);
    leaf.have_out = true;
    leaf.legal = leaf.env->legal_actions();
    leaf.value = static_cast<double>(leaf.out.value);
  }
}

void MctsPlacer::run_batch(int batch) {
  ensure_contexts(batch);
  std::vector<PendingLeaf> leaves(static_cast<std::size_t>(batch));

  // --- Phase 1: serial selection under virtual loss. ---------------------
  // Slot k sees the virtual losses applied by slots 0..k-1, so the batch
  // fans out over distinct lines; every virtual visit is drained in phase 3.
  for (int k = 0; k < batch; ++k) {
    PendingLeaf& leaf = leaves[static_cast<std::size_t>(k)];
    MP_OBS_COUNT("mcts.simulations", 1);
    if (!replay(committed_)) {
      util::log_warn() << "mcts: committed prefix became unplayable";
      continue;
    }
    int node_index = root_;
    while (nodes_[static_cast<std::size_t>(node_index)].expanded && !env_.done()) {
      const int edge_index =
          select_edge(nodes_[static_cast<std::size_t>(node_index)]);
      if (edge_index < 0) break;  // no legal children (full chip)
      Edge& edge = nodes_[static_cast<std::size_t>(node_index)]
                       .edges[static_cast<std::size_t>(edge_index)];
      if (!env_.step(edge.action)) break;
      if (edge.child < 0) {
        edge.child = static_cast<int>(nodes_.size());
        nodes_.push_back(Node{});
        ++stats_.nodes_created;
      }
      edge.virtual_loss += std::max(1, options_.virtual_loss);
      leaf.path.emplace_back(node_index, edge_index);
      node_index = edge.child;
    }
    MP_OBS_HIST("mcts.path_depth", static_cast<double>(leaf.path.size()));
    leaf.valid = true;
    leaf.node_index = node_index;
    leaf.terminal = env_.done();
    leaf.step = env_.current_step();
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    leaf.cached_terminal = leaf.terminal && node.has_terminal_value;
    if (leaf.cached_terminal) {
      leaf.value = node.eval_value;
    } else {
      leaf.env.emplace(env_);  // private copy of the leaf state
    }
  }

  // --- Phase 2: leaf evaluation, concurrent when resources allow. --------
  // Engine mode first folds every network forward of the batch into ONE
  // coalescible engine request, then routes terminal / partial evaluations
  // through the evaluator's batched entry points; only rollout completion
  // still needs the per-slot loop below (with the forward already done).
  // Per-leaf results are bit-identical to the engine-off path.
  const bool engine_mode = options_.infer_engine != nullptr && have_snapshot_;
  if (engine_mode) {
    engine_fill_outputs(leaves);
    std::vector<std::size_t> term;
    std::vector<std::vector<grid::CellCoord>> term_sets;
    for (std::size_t k = 0; k < leaves.size(); ++k) {
      const PendingLeaf& leaf = leaves[k];
      if (leaf.valid && leaf.terminal && !leaf.cached_terminal &&
          leaf.env.has_value()) {
        term.push_back(k);
        term_sets.push_back(leaf.env->anchors());
      }
    }
    if (!term_sets.empty()) {
      const std::vector<double> ws = evaluator_.evaluate_many(term_sets);
      for (std::size_t i = 0; i < term.size(); ++i) {
        PendingLeaf& leaf = leaves[term[i]];
        leaf.wirelength = ws[i];
        leaf.have_wirelength = true;
        leaf.anchors = std::move(term_sets[i]);
        leaf.value = reward_(leaf.wirelength);
      }
    }
    if (options_.leaf_evaluation == LeafEvaluation::kPartialPlacement) {
      std::vector<std::size_t> part;
      std::vector<std::vector<grid::CellCoord>> part_sets;
      for (std::size_t k = 0; k < leaves.size(); ++k) {
        const PendingLeaf& leaf = leaves[k];
        if (leaf.have_out) {
          part.push_back(k);
          part_sets.push_back(leaf.env->anchors());
        }
      }
      if (!part_sets.empty()) {
        const std::vector<double> vals =
            evaluator_.evaluate_partial_many(part_sets);
        for (std::size_t i = 0; i < part.size(); ++i) {
          leaves[part[i]].value = reward_(vals[i]);
        }
      }
    }
  }

  // Each slot works only on its own env copy, agent clone, evaluator clone
  // and rng_.split stream, so the outputs are a pure function of the slot —
  // identical at every thread count.  A null evaluator clone means the
  // evaluator is not clonable; then the loop runs inline on the shared one.
  const bool cloned_eval = contexts_[0].evaluator != nullptr;
  // In engine mode, value-network and partial-placement leaves are already
  // fully scored above; only rollout completion still runs per slot.
  const bool need_slot_eval =
      !engine_mode ||
      options_.leaf_evaluation == LeafEvaluation::kRandomRollout;
  auto evaluate_slot = [&](std::size_t k) {
    PendingLeaf& leaf = leaves[k];
    if (!leaf.valid || leaf.cached_terminal || !leaf.env.has_value()) return;
    rl::PlacementEnv& env = *leaf.env;
    rl::AllocationEvaluator& evaluator =
        cloned_eval ? *contexts_[k].evaluator : evaluator_;
    if (leaf.terminal) {
      if (leaf.have_wirelength) return;  // engine path already scored it
      leaf.wirelength = evaluator.evaluate(env.anchors());
      leaf.have_wirelength = true;
      leaf.anchors = env.anchors();
      leaf.value = reward_(leaf.wirelength);
      return;
    }
    if (!leaf.have_out) {
      // Engine off: per-slot forward on the slot's own agent clone.  (The
      // clone is only made when no engine is configured.)
      rl::AgentNetwork& agent = cloned_eval ? *contexts_[k].agent : agent_;
      const std::vector<double> sp = env.placement_state();
      const std::vector<double> availability = env.availability();
      leaf.out =
          agent.forward(sp, availability, env.current_step(), env.num_steps(),
                        /*train=*/false);
      leaf.legal = env.legal_actions();
    }
    double value = static_cast<double>(leaf.out.value);
    switch (options_.leaf_evaluation) {
      case LeafEvaluation::kValueNetwork:
        break;
      case LeafEvaluation::kPartialPlacement:
        value = reward_(evaluator.evaluate_partial(env.anchors()));
        break;
      case LeafEvaluation::kRandomRollout: {
        util::Rng rng = rng_.split(exploration_counter_ + k);
        bool ok = true;
        while (!env.done()) {
          const std::vector<int> legal = env.legal_actions();
          if (legal.empty()) {
            ok = false;
            break;
          }
          env.step(legal[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(legal.size()) - 1))]);
        }
        if (ok) {
          leaf.wirelength = evaluator.evaluate(env.anchors());
          leaf.have_wirelength = true;
          leaf.anchors = env.anchors();
          value = reward_(leaf.wirelength);
        }
        break;
      }
    }
    leaf.value = value;
  };
  if (need_slot_eval) {
    if (cloned_eval && par::current_threads() > 1) {
      par::parallel_for(0, static_cast<std::size_t>(batch), 1,
                        [&](std::size_t lo, std::size_t hi) {
                          for (std::size_t k = lo; k < hi; ++k) {
                            evaluate_slot(k);
                          }
                        });
    } else {
      for (std::size_t k = 0; k < static_cast<std::size_t>(batch); ++k) {
        evaluate_slot(k);
      }
    }
  }

  // --- Phase 3: serial apply in slot order. -------------------------------
  // Drains virtual loss, commits node state and backs values up exactly as
  // the serial loop would, so the tree after the batch depends only on the
  // slot results (deterministic) and their fixed order.
  for (int k = 0; k < batch; ++k) {
    PendingLeaf& leaf = leaves[static_cast<std::size_t>(k)];
    const int vl = std::max(1, options_.virtual_loss);
    for (const auto& [n, e] : leaf.path) {
      nodes_[static_cast<std::size_t>(n)]
          .edges[static_cast<std::size_t>(e)]
          .virtual_loss -= vl;
    }
    if (!leaf.valid) continue;
    Node& node = nodes_[static_cast<std::size_t>(leaf.node_index)];
    if (leaf.terminal) {
      if (!leaf.cached_terminal && leaf.have_wirelength) {
        ++stats_.terminal_evaluations;
        MP_OBS_COUNT("mcts.terminal_evaluations", 1);
        MP_OBS_HIST("mcts.terminal_wirelength", leaf.wirelength);
        if (check::validate_level() >= 1) {
          MP_CHECK_FINITE(leaf.wirelength, "terminal wirelength in MCTS");
          MP_CHECK_FINITE(leaf.value, "terminal reward in MCTS");
        }
        if (!node.has_terminal_value) {
          node.eval_value = leaf.value;
          node.has_terminal_value = true;
        } else {
          // A sibling slot of this batch evaluated the same node; keep the
          // cached value (bit-identical anyway for a deterministic
          // evaluator).
          leaf.value = node.eval_value;
        }
        if (leaf.wirelength < best_terminal_wirelength_) {
          best_terminal_wirelength_ = leaf.wirelength;
          best_terminal_anchors_ = leaf.anchors;
        }
      }
    } else {
      ++stats_.nn_evaluations;
      MP_OBS_COUNT("mcts.nn_evaluations", 1);
      if (check::validate_level() >= 1) {
        MP_CHECK_FINITE(leaf.out.value, "value head output in MCTS expansion");
        check::validate_probabilities(leaf.out.probs, "policy head output",
                                      "mcts.expand");
      }
      if (!node.expanded) {
        MP_OBS_COUNT("mcts.expansions", 1);
        expand_node(node, leaf.legal, leaf.out.probs, leaf.step);
      }
      if (leaf.have_wirelength) {
        ++stats_.terminal_evaluations;
        MP_OBS_COUNT("mcts.terminal_evaluations", 1);
        MP_OBS_HIST("mcts.terminal_wirelength", leaf.wirelength);
        if (leaf.wirelength < best_terminal_wirelength_) {
          best_terminal_wirelength_ = leaf.wirelength;
          best_terminal_anchors_ = leaf.anchors;
        }
      }
      node.eval_value = leaf.value;
    }
    if (check::validate_level() >= 1) {
      MP_CHECK_FINITE(leaf.value, "leaf value entering PUCT backup");
    }
    value_bounds_.update(leaf.value);
    for (const auto& [n, e] : leaf.path) {
      Edge& edge =
          nodes_[static_cast<std::size_t>(n)].edges[static_cast<std::size_t>(e)];
      edge.visits += 1;
      edge.total_value += leaf.value;
      value_bounds_.update(edge.mean_value());
    }
  }
  exploration_counter_ += static_cast<std::uint64_t>(batch);
}

void MctsPlacer::seed_path(const std::vector<int>& actions) {
  if (!replay(committed_)) return;
  int node_index = root_;
  std::vector<std::pair<int, int>> path;
  for (std::size_t k = committed_.size(); k < actions.size(); ++k) {
    if (env_.done()) break;
    Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (!node.expanded) {
      // Expanding consumes the env state *before* stepping.
      expand_and_evaluate(node_index);
      if (options_.leaf_evaluation == LeafEvaluation::kRandomRollout) {
        // The rollout advanced the environment; restore this node's state.
        std::vector<int> prefix(committed_);
        prefix.insert(prefix.end(), actions.begin() + static_cast<long>(committed_.size()),
                      actions.begin() + static_cast<long>(k));
        if (!replay(prefix)) return;
      }
    }
    Node& expanded = nodes_[static_cast<std::size_t>(node_index)];
    int edge_index = -1;
    for (std::size_t i = 0; i < expanded.edges.size(); ++i) {
      if (expanded.edges[i].action == actions[k]) {
        edge_index = static_cast<int>(i);
        break;
      }
    }
    if (edge_index < 0) return;  // seed action not legal here; abandon
    Edge& edge = expanded.edges[static_cast<std::size_t>(edge_index)];
    if (!env_.step(edge.action)) return;
    if (edge.child < 0) {
      edge.child = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      ++stats_.nodes_created;
    }
    path.emplace_back(node_index, edge_index);
    node_index = edge.child;
  }
  if (!env_.done()) return;
  const double value = expand_and_evaluate(node_index);  // cached terminal
  value_bounds_.update(value);
  const int visits = std::max(1, options_.seed_visits);
  for (const auto& [n, e] : path) {
    Edge& edge = nodes_[static_cast<std::size_t>(n)].edges[static_cast<std::size_t>(e)];
    edge.visits += visits;
    edge.total_value += value * visits;
    value_bounds_.update(edge.mean_value());
  }
}

MctsResult MctsPlacer::run() {
  const int total_steps = env_.num_steps();
  const int batch = std::max(1, options_.eval_batch);
  for (const std::vector<int>& seed : options_.seed_paths) seed_path(seed);
  bool cancelled = false;
  for (int t = 0; t < total_steps && !cancelled; ++t) {
    if (options_.auto_commit_forced && replay(committed_) && !env_.done()) {
      const std::vector<int> legal = env_.legal_actions();
      if (legal.size() == 1) {
        // Forced move: commit through the tree (keeping subtree reuse and
        // the committed-path replay consistent) without any exploration.
        Node& root = nodes_[static_cast<std::size_t>(root_)];
        int edge_index = -1;
        for (std::size_t i = 0; i < root.edges.size(); ++i) {
          if (root.edges[i].action == legal[0]) {
            edge_index = static_cast<int>(i);
            break;
          }
        }
        if (edge_index < 0) {
          Edge e;
          e.action = legal[0];
          e.prior = 1.0;
          root.edges.push_back(e);
          root.expanded = true;
          edge_index = static_cast<int>(root.edges.size()) - 1;
        }
        Edge& chosen = root.edges[static_cast<std::size_t>(edge_index)];
        committed_.push_back(chosen.action);
        if (chosen.child < 0) {
          chosen.child = static_cast<int>(nodes_.size());
          nodes_.push_back(Node{});
          ++stats_.nodes_created;
        }
        root_ = chosen.child;
        ++stats_.forced_moves;
        MP_OBS_COUNT("mcts.forced_moves", 1);
        MP_OBS_COUNT("mcts.moves", 1);
        continue;
      }
    }
    if (batch <= 1) {
      // Serial path: bit-identical to the pre-parallel implementation.
      for (int g = 0; g < options_.explorations_per_move; ++g) {
        if (options_.cancel.cancelled()) {
          cancelled = true;
          break;
        }
        explore();
      }
    } else {
      int remaining = options_.explorations_per_move;
      while (remaining > 0) {
        if (options_.cancel.cancelled()) {
          cancelled = true;
          break;
        }
        const int b = std::min(remaining, batch);
        run_batch(b);
        remaining -= b;
      }
      if (check::validate_level() >= 2) {
        // Every virtual visit must be drained before a move is committed —
        // a leak would permanently bias select_edge away from that line.
        for (const Node& node : nodes_) {
          for (const Edge& e : node.edges) {
            MP_CHECK_EQ(e.virtual_loss, 0,
                        "virtual loss drained after MCTS batch");
          }
        }
      }
    }
    if (cancelled) break;  // commit nothing on a cancelled move
    MP_OBS_COUNT("mcts.moves", 1);
    MP_OBS_HIST("mcts.tree_nodes_per_move", static_cast<double>(nodes_.size()));

    // Commit the most-visited root edge (ties by mean value, then prior).
    Node& root = nodes_[static_cast<std::size_t>(root_)];
    if (!root.expanded || root.edges.empty()) {
      // The root was never expanded (e.g. γ == 0); expand it now.
      if (replay(committed_)) expand_and_evaluate(root_);
    }
    Node& r = nodes_[static_cast<std::size_t>(root_)];
    if (r.edges.empty()) {
      util::log_error() << "mcts: no legal action at step " << t;
      break;
    }
    int best = 0;
    for (std::size_t i = 1; i < r.edges.size(); ++i) {
      const Edge& a = r.edges[i];
      const Edge& b = r.edges[static_cast<std::size_t>(best)];
      const bool better =
          a.visits > b.visits ||
          (a.visits == b.visits && a.mean_value() > b.mean_value()) ||
          (a.visits == b.visits && a.mean_value() == b.mean_value() &&
           a.prior > b.prior);
      if (better) best = static_cast<int>(i);
    }
    Edge& chosen = r.edges[static_cast<std::size_t>(best)];
    committed_.push_back(chosen.action);
    if (chosen.child < 0) {
      chosen.child = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      ++stats_.nodes_created;
    }
    root_ = chosen.child;  // subtree reuse
  }

  MctsResult result = stats_;
  result.cancelled = cancelled;
  if (replay(committed_) && env_.done()) {
    result.anchors = env_.anchors();
    result.committed_wirelength = evaluator_.evaluate(result.anchors);
    result.wirelength = result.committed_wirelength;
  } else {
    if (!cancelled) util::log_error() << "mcts: final allocation incomplete";
    result.committed_wirelength = std::numeric_limits<double>::infinity();
    result.wirelength = result.committed_wirelength;
  }
  // The search evaluates many complete allocations (terminal leaves, seed
  // lines); return the best one when it beats the traced path.
  if (best_terminal_wirelength_ < result.wirelength &&
      !best_terminal_anchors_.empty()) {
    result.anchors = best_terminal_anchors_;
    result.wirelength = best_terminal_wirelength_;
  }
  result.reward = std::isfinite(result.wirelength)
                      ? reward_(result.wirelength)
                      : -std::numeric_limits<double>::infinity();
  MP_OBS_GAUGE("mcts.tree_nodes", static_cast<double>(nodes_.size()));
  MP_OBS_GAUGE("mcts.value_bound_lo", value_bounds_.lo);
  MP_OBS_GAUGE("mcts.value_bound_hi", value_bounds_.hi);
  env_.reset();
  return result;
}

}  // namespace mp::mcts
