#pragma once
// Placement optimization by MCTS guided by the pre-trained agent (Sec. IV).
//
// For every macro group M_t the search runs γ explorations, each consisting
// of
//   selection      — descend by argmax Q + U with the PUCT bonus (Eqs. 10-11,
//                    c = 1.05 in the paper), priors P from π_θ,
//   expansion      — create all child edges of the reached unexplored node,
//   evaluation     — v_θ from the value network for non-terminal nodes; the
//                    *actual* placement flow (evaluator + reward) only for
//                    terminal nodes — the paper's key runtime reduction,
//   backpropagation— update N, W, Q along the path (Eq. 12).
// The most-visited root edge is then committed and its child becomes the new
// root (statistics are reused).

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "rl/agent.hpp"
#include "rl/reward.hpp"
#include "util/cancel.hpp"

namespace mp::infer {
class InferenceEngine;
}  // namespace mp::infer

namespace mp::mcts {

/// How non-terminal leaves are scored (Sec. IV-B3).
enum class LeafEvaluation {
  /// The paper's method: the value network's v_θ.  Needs a well-trained
  /// value head (the paper trains 3-10 h); with a short CPU budget the
  /// guidance is weak.
  kValueNetwork,
  /// QP completion estimate: pin the prefix, relax the remaining groups and
  /// cell groups, take the reward of the resulting coarse HPWL.  A strong,
  /// training-free evaluator (used by the scaled-down benches; see
  /// EXPERIMENTS.md) at the cost of one small QP per leaf.
  kPartialPlacement,
  /// Traditional MCTS: complete the episode with uniform random actions and
  /// run the full evaluation — the expensive baseline the paper argues
  /// against (kept for the ablation bench).
  kRandomRollout,
};

struct MctsOptions {
  int explorations_per_move = 40;  ///< γ
  double c_puct = 1.05;            ///< c in Eq. (11)
  LeafEvaluation leaf_evaluation = LeafEvaluation::kValueNetwork;
  std::uint64_t seed = 7;

  /// Optional warm-start lines: full action sequences (one action per macro
  /// group) walked, evaluated and backed up before the search starts, each
  /// with `seed_visits` virtual visits.  mcts_rl_place() seeds the
  /// analytic-placement-derived allocation and the best training episode —
  /// standing in for the prior a fully pre-trained agent would provide (the
  /// paper trains 3-10 h; see DESIGN.md "Substitutions").
  std::vector<std::vector<int>> seed_paths;
  int seed_visits = 4;

  /// Optional multiplicative prior re-weighting: bonus(step, action) >= 0 is
  /// multiplied into the policy prior at expansion.  Used to bias the search
  /// toward each group's analytical position; empty = pure π_θ (paper mode).
  std::function<double(int step, int action)> prior_bonus;

  /// Leaf evaluations per batch (tree parallelism).  1 (default) runs the
  /// classic serial loop, bit-identical to the pre-parallel implementation.
  /// 0 resolves to the par:: pool's thread count.  >1 selects that many
  /// leaves per batch under virtual loss, evaluates them concurrently on
  /// per-slot agent/evaluator clones and backs them up serially in slot
  /// order — the committed move sequence depends on eval_batch but NOT on
  /// how many threads execute the batch (see docs/PARALLELISM.md).
  int eval_batch = 1;

  /// Visits temporarily added to every edge on an in-flight selection path
  /// (scored as if they had returned the worst value seen), pushing the
  /// other slots of the same batch onto different lines.  Removed at backup.
  int virtual_loss = 3;

  /// Optional shared inference engine (must outlive the placer).  When set,
  /// the placer registers the agent as an engine snapshot and routes every
  /// value-network forward through the engine's batched path — a whole
  /// eval_batch becomes one coalescible request, and concurrent searches
  /// (service jobs) share batched forwards and snapshot storage instead of
  /// holding per-slot agent clones.  Results are bit-identical to
  /// infer_engine == nullptr at equal eval_batch: the engine's batched
  /// forward is per-sample bit-identical to the single-sample forward, and
  /// evaluator work keeps the same per-slot clone/rng-split structure.
  infer::InferenceEngine* infer_engine = nullptr;

  /// Commit steps with exactly one legal action directly instead of spending
  /// γ explorations on them.  Deterministic (the forced action is the only
  /// playable one) and off by default so existing searches keep their exact
  /// exploration schedule.  The regulate flow enables it: with frozen macros
  /// masked to their incumbent cell (rl::PlacementEnv::set_allowed_actions)
  /// most steps are forced, and skipping them spends the whole budget on the
  /// groups that may actually move.
  bool auto_commit_forced = false;

  /// Cooperative cancellation, polled between explorations (serial mode) or
  /// between batches, and between committed moves.  A cancelled search
  /// returns the best complete allocation evaluated so far (terminal leaves,
  /// seed lines) with MctsResult::cancelled set; when none exists the
  /// anchors are empty and the wirelength is +inf.  An inert or untriggered
  /// token leaves the search bit-identical.
  util::CancelToken cancel;
};

struct MctsResult {
  std::vector<grid::CellCoord> anchors;   ///< final allocation (best seen)
  double wirelength = 0.0;                ///< evaluator W of the allocation
  double reward = 0.0;                    ///< reward(W)
  /// W of the allocation committed by tracing the search path (Algorithm 1
  /// line 15); `wirelength` is min(committed, best terminal ever evaluated).
  double committed_wirelength = 0.0;
  long long nodes_created = 0;
  long long nn_evaluations = 0;           ///< value-network evaluations
  long long terminal_evaluations = 0;     ///< full placement evaluations
  long long forced_moves = 0;  ///< moves committed via auto_commit_forced
  bool cancelled = false;                 ///< stopped via MctsOptions::cancel
};

class MctsPlacer {
 public:
  /// All references must outlive the placer.  `reward` maps wirelength to
  /// value (higher is better) and must match the scale the agent's value
  /// head was trained on (use the trainer's calibrated Eq. 9 reward).
  MctsPlacer(rl::PlacementEnv& env, rl::AllocationEvaluator& evaluator,
             rl::AgentNetwork& agent, rl::RewardFn reward,
             const MctsOptions& options = {});
  /// Releases the engine snapshot, when one was acquired.
  ~MctsPlacer();

  MctsPlacer(const MctsPlacer&) = delete;
  MctsPlacer& operator=(const MctsPlacer&) = delete;

  /// Runs the full allocation (Algorithm 1 lines 11-15).
  MctsResult run();

 private:
  struct Edge {
    int action = -1;
    int child = -1;  ///< node index, -1 until visited
    double prior = 0.0;
    double total_value = 0.0;  ///< W(s_p, s_q)
    int visits = 0;            ///< N(s_p, s_q)
    /// In-flight batch-mode visits (pessimistically scored in select_edge);
    /// always 0 outside run_batch() and in the serial path.
    int virtual_loss = 0;
    double mean_value() const { return visits > 0 ? total_value / visits : 0.0; }
  };

  struct Node {
    bool expanded = false;
    /// v_θ of this node when it was expanded (first-play urgency for its
    /// unvisited edges), or the cached terminal reward.
    double eval_value = 0.0;
    bool has_terminal_value = false;
    std::vector<Edge> edges;
  };

  /// Running min/max of every backed-up value; Q is min-max normalized to
  /// [0, 1] inside the selection rule so the PUCT exploration term stays
  /// comparable to Q regardless of the reward calibration (the paper's
  /// rewards live in [α-0.5, α+0.5] while U ~ c/branching).
  struct MinMaxStats {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    void update(double v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    double normalize(double v) const {
      if (!(hi > lo)) return 0.5;
      return (v - lo) / (hi - lo);
    }
  };

  /// Per-batch-slot resources for concurrent leaf evaluation.  The agent is
  /// always clonable; the evaluator clone may be nullptr (un-clonable
  /// evaluator), in which case the batch evaluates serially through the
  /// shared evaluator — same results, no overlap.
  struct WorkerContext {
    std::unique_ptr<rl::AgentNetwork> agent;
    std::unique_ptr<rl::AllocationEvaluator> evaluator;
  };

  /// One selected-but-not-yet-applied leaf of a batch.
  struct PendingLeaf {
    std::vector<std::pair<int, int>> path;  ///< (node, edge) indices
    int node_index = -1;
    bool valid = false;             ///< selection reached a usable leaf
    bool terminal = false;          ///< env done at the leaf
    bool cached_terminal = false;   ///< terminal value already on the node
    int step = 0;                   ///< env step at the leaf
    std::optional<rl::PlacementEnv> env;  ///< private copy at the leaf state
    // Worker outputs (filled by the evaluation phase):
    double value = 0.0;
    bool have_wirelength = false;   ///< terminal / rollout produced a full W
    double wirelength = 0.0;
    std::vector<grid::CellCoord> anchors;  ///< allocation behind `wirelength`
    rl::AgentOutput out;            ///< non-terminal network output
    bool have_out = false;          ///< `out` pre-filled by the engine path
    std::vector<int> legal;         ///< legal actions at the leaf
  };

  // Replays env to the state given by `actions`; returns false on failure.
  bool replay(const std::vector<int>& actions);

  // One exploration from the current root; returns the leaf value.
  void explore();

  // Batch-mode exploration: selects `batch` leaves under virtual loss,
  // evaluates them in parallel, applies them serially in slot order.
  void run_batch(int batch);

  // Fills the node's edges from `legal` priors (masked policy + floor +
  // optional prior bonus) — shared by serial expansion and batch apply.
  void expand_node(Node& node, const std::vector<int>& legal,
                   const nn::Tensor& probs, int step);

  void ensure_contexts(int batch);

  /// Value-network forward for `env`'s state: through the shared engine
  /// when configured (one coalescible request), directly on `agent`
  /// otherwise.  Same result either way.
  rl::AgentOutput net_forward(const rl::PlacementEnv& env,
                              rl::AgentNetwork& agent);

  /// Batched engine forward for every leaf of a batch that needs the
  /// network; fills PendingLeaf::out/have_out/legal.  No-op without an
  /// engine.
  void engine_fill_outputs(std::vector<PendingLeaf>& leaves);

  // Walks one seed line from the current root, expanding nodes along it and
  // backing up its terminal value with options_.seed_visits virtual visits.
  void seed_path(const std::vector<int>& actions);

  // Expands `node` (whose env state is current) and returns its evaluation.
  double expand_and_evaluate(int node_index);

  int select_edge(const Node& node) const;

  MinMaxStats value_bounds_;
  double best_terminal_wirelength_ = std::numeric_limits<double>::infinity();
  std::vector<grid::CellCoord> best_terminal_anchors_;

  rl::PlacementEnv& env_;
  rl::AllocationEvaluator& evaluator_;
  rl::AgentNetwork& agent_;
  rl::RewardFn reward_;
  MctsOptions options_;
  util::Rng rng_;

  /// Engine snapshot of `agent_`'s parameters (valid while have_snapshot_).
  std::uint64_t snapshot_ = 0;
  bool have_snapshot_ = false;

  std::vector<WorkerContext> contexts_;
  /// Monotone exploration counter; batch slot k of the current batch draws
  /// its rollout randomness from rng_.split(counter + k) so results are a
  /// function of the slot index, not of worker scheduling.
  std::uint64_t exploration_counter_ = 0;

  std::vector<Node> nodes_;
  int root_ = 0;
  std::vector<int> committed_;  ///< actions fixed so far
  MctsResult stats_;
};

}  // namespace mp::mcts
