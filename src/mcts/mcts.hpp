#pragma once
// Placement optimization by MCTS guided by the pre-trained agent (Sec. IV).
//
// For every macro group M_t the search runs γ explorations, each consisting
// of
//   selection      — descend by argmax Q + U with the PUCT bonus (Eqs. 10-11,
//                    c = 1.05 in the paper), priors P from π_θ,
//   expansion      — create all child edges of the reached unexplored node,
//   evaluation     — v_θ from the value network for non-terminal nodes; the
//                    *actual* placement flow (evaluator + reward) only for
//                    terminal nodes — the paper's key runtime reduction,
//   backpropagation— update N, W, Q along the path (Eq. 12).
// The most-visited root edge is then committed and its child becomes the new
// root (statistics are reused).

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "rl/agent.hpp"
#include "rl/reward.hpp"

namespace mp::mcts {

/// How non-terminal leaves are scored (Sec. IV-B3).
enum class LeafEvaluation {
  /// The paper's method: the value network's v_θ.  Needs a well-trained
  /// value head (the paper trains 3-10 h); with a short CPU budget the
  /// guidance is weak.
  kValueNetwork,
  /// QP completion estimate: pin the prefix, relax the remaining groups and
  /// cell groups, take the reward of the resulting coarse HPWL.  A strong,
  /// training-free evaluator (used by the scaled-down benches; see
  /// EXPERIMENTS.md) at the cost of one small QP per leaf.
  kPartialPlacement,
  /// Traditional MCTS: complete the episode with uniform random actions and
  /// run the full evaluation — the expensive baseline the paper argues
  /// against (kept for the ablation bench).
  kRandomRollout,
};

struct MctsOptions {
  int explorations_per_move = 40;  ///< γ
  double c_puct = 1.05;            ///< c in Eq. (11)
  LeafEvaluation leaf_evaluation = LeafEvaluation::kValueNetwork;
  std::uint64_t seed = 7;

  /// Optional warm-start lines: full action sequences (one action per macro
  /// group) walked, evaluated and backed up before the search starts, each
  /// with `seed_visits` virtual visits.  mcts_rl_place() seeds the
  /// analytic-placement-derived allocation and the best training episode —
  /// standing in for the prior a fully pre-trained agent would provide (the
  /// paper trains 3-10 h; see DESIGN.md "Substitutions").
  std::vector<std::vector<int>> seed_paths;
  int seed_visits = 4;

  /// Optional multiplicative prior re-weighting: bonus(step, action) >= 0 is
  /// multiplied into the policy prior at expansion.  Used to bias the search
  /// toward each group's analytical position; empty = pure π_θ (paper mode).
  std::function<double(int step, int action)> prior_bonus;
};

struct MctsResult {
  std::vector<grid::CellCoord> anchors;   ///< final allocation (best seen)
  double wirelength = 0.0;                ///< evaluator W of the allocation
  double reward = 0.0;                    ///< reward(W)
  /// W of the allocation committed by tracing the search path (Algorithm 1
  /// line 15); `wirelength` is min(committed, best terminal ever evaluated).
  double committed_wirelength = 0.0;
  long long nodes_created = 0;
  long long nn_evaluations = 0;           ///< value-network evaluations
  long long terminal_evaluations = 0;     ///< full placement evaluations
};

class MctsPlacer {
 public:
  /// All references must outlive the placer.  `reward` maps wirelength to
  /// value (higher is better) and must match the scale the agent's value
  /// head was trained on (use the trainer's calibrated Eq. 9 reward).
  MctsPlacer(rl::PlacementEnv& env, rl::AllocationEvaluator& evaluator,
             rl::AgentNetwork& agent, rl::RewardFn reward,
             const MctsOptions& options = {});

  /// Runs the full allocation (Algorithm 1 lines 11-15).
  MctsResult run();

 private:
  struct Edge {
    int action = -1;
    int child = -1;  ///< node index, -1 until visited
    double prior = 0.0;
    double total_value = 0.0;  ///< W(s_p, s_q)
    int visits = 0;            ///< N(s_p, s_q)
    double mean_value() const { return visits > 0 ? total_value / visits : 0.0; }
  };

  struct Node {
    bool expanded = false;
    /// v_θ of this node when it was expanded (first-play urgency for its
    /// unvisited edges), or the cached terminal reward.
    double eval_value = 0.0;
    bool has_terminal_value = false;
    std::vector<Edge> edges;
  };

  /// Running min/max of every backed-up value; Q is min-max normalized to
  /// [0, 1] inside the selection rule so the PUCT exploration term stays
  /// comparable to Q regardless of the reward calibration (the paper's
  /// rewards live in [α-0.5, α+0.5] while U ~ c/branching).
  struct MinMaxStats {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    void update(double v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    double normalize(double v) const {
      if (!(hi > lo)) return 0.5;
      return (v - lo) / (hi - lo);
    }
  };

  // Replays env to the state given by `actions`; returns false on failure.
  bool replay(const std::vector<int>& actions);

  // One exploration from the current root; returns the leaf value.
  void explore();

  // Walks one seed line from the current root, expanding nodes along it and
  // backing up its terminal value with options_.seed_visits virtual visits.
  void seed_path(const std::vector<int>& actions);

  // Expands `node` (whose env state is current) and returns its evaluation.
  double expand_and_evaluate(int node_index);

  int select_edge(const Node& node) const;

  MinMaxStats value_bounds_;
  double best_terminal_wirelength_ = std::numeric_limits<double>::infinity();
  std::vector<grid::CellCoord> best_terminal_anchors_;

  rl::PlacementEnv& env_;
  rl::AllocationEvaluator& evaluator_;
  rl::AgentNetwork& agent_;
  rl::RewardFn reward_;
  MctsOptions options_;
  util::Rng rng_;

  std::vector<Node> nodes_;
  int root_ = 0;
  std::vector<int> committed_;  ///< actions fixed so far
  MctsResult stats_;
};

}  // namespace mp::mcts
