#pragma once
// Deterministic synthetic circuit generator.  The original evaluation
// circuits (ICCAD04 ibm01-18, the authors' industrial Cir1-8) are not
// redistributable, so benches synthesize circuits matching the *published
// statistics* (macro / std-cell / net / pad counts; hierarchy and preplaced
// macros for the industrial set) with realistic structure:
//   * a module tree provides hierarchy names and locality,
//   * every module has a home location; nodes scatter around it,
//   * nets pick a seed node and mostly-local partners, with a geometric
//     degree distribution dominated by 2-3 pin nets,
//   * pads sit on the boundary ring; a fraction of nets reaches a pad,
//   * preplaced macros occupy peripheral sites and are fixed.

#include <cstdint>
#include <string>

#include "netlist/design.hpp"

namespace mp::benchgen {

struct BenchSpec {
  std::string name = "synthetic";
  int movable_macros = 50;
  int preplaced_macros = 0;
  int io_pads = 128;
  int std_cells = 10000;
  int nets = 12000;
  bool hierarchy = false;      ///< emit module-path hierarchy names
  std::uint64_t seed = 1;
  /// Scales std_cells and nets (macro counts are preserved so the macro
  /// placement problem keeps its published size).  Clamped to (0, 1].
  double scale = 1.0;
  /// Fraction of total placeable area taken by macros.
  double macro_area_fraction = 0.4;
  /// Placeable area / region area.
  double utilization = 0.6;
};

/// Generates a design; same spec + seed => identical design.
netlist::Design generate(const BenchSpec& spec);

/// ECO-style netlist delta applied to an already-placed design — the input
/// generator for the regulate (incremental re-placement) benches and tests:
/// a design is placed by some from-scratch flow, perturbed here, and the
/// regulate preset must recover the HPWL the delta destroyed.
struct PerturbSpec {
  std::uint64_t seed = 1;
  /// Nets added between existing nodes (random 2-4 pin connections; each
  /// includes at least one macro pin so the delta actually tugs on macros).
  int add_nets = 0;
  /// Nets removed, sampled uniformly without replacement.
  int remove_nets = 0;
  /// Fraction of movable macros whose width/height is rescaled by
  /// `resize_scale` (area change = the classic ECO cell-swap).
  double resize_fraction = 0.0;
  double resize_scale = 1.1;
  /// Fraction of movable macros nudged from their incumbent position by a
  /// uniform offset up to `move_distance` in each axis (models upstream
  /// edits that dirtied the placement; positions are clamped to the region).
  double move_fraction = 0.0;
  double move_distance = 0.0;
  /// Appended to the design name ("<name><suffix>").
  std::string name_suffix = "_eco";
};

/// Returns a new design: `base` with the delta applied.  Node/net ids of
/// surviving objects are renumbered densely but names are preserved, so a
/// `.pl` written from `base` applies cleanly (io::apply_placement) to the
/// perturbed design.  Deterministic: same base + spec => identical output.
netlist::Design perturb(const netlist::Design& base, const PerturbSpec& spec);

}  // namespace mp::benchgen
