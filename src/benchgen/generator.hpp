#pragma once
// Deterministic synthetic circuit generator.  The original evaluation
// circuits (ICCAD04 ibm01-18, the authors' industrial Cir1-8) are not
// redistributable, so benches synthesize circuits matching the *published
// statistics* (macro / std-cell / net / pad counts; hierarchy and preplaced
// macros for the industrial set) with realistic structure:
//   * a module tree provides hierarchy names and locality,
//   * every module has a home location; nodes scatter around it,
//   * nets pick a seed node and mostly-local partners, with a geometric
//     degree distribution dominated by 2-3 pin nets,
//   * pads sit on the boundary ring; a fraction of nets reaches a pad,
//   * preplaced macros occupy peripheral sites and are fixed.

#include <cstdint>
#include <string>

#include "netlist/design.hpp"

namespace mp::benchgen {

struct BenchSpec {
  std::string name = "synthetic";
  int movable_macros = 50;
  int preplaced_macros = 0;
  int io_pads = 128;
  int std_cells = 10000;
  int nets = 12000;
  bool hierarchy = false;      ///< emit module-path hierarchy names
  std::uint64_t seed = 1;
  /// Scales std_cells and nets (macro counts are preserved so the macro
  /// placement problem keeps its published size).  Clamped to (0, 1].
  double scale = 1.0;
  /// Fraction of total placeable area taken by macros.
  double macro_area_fraction = 0.4;
  /// Placeable area / region area.
  double utilization = 0.6;
};

/// Generates a design; same spec + seed => identical design.
netlist::Design generate(const BenchSpec& spec);

}  // namespace mp::benchgen
