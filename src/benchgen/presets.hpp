#pragma once
// Benchmark presets reproducing the published circuit statistics:
//   * iccad04_spec(i)   — "ibmXX-like" circuits with the macro / std-cell /
//     net counts of Table III (no hierarchy, no preplaced macros; ibm05 is
//     skipped by the paper as it has no macros),
//   * industrial_spec(i) — "CirX-like" circuits with the counts of Table II
//     (design hierarchy + preplaced macros).
// `scale` (0, 1] shrinks std-cell and net counts for CPU-budget runs while
// preserving macro counts; see EXPERIMENTS.md for the committed settings.

#include <vector>

#include "benchgen/generator.hpp"

namespace mp::benchgen {

/// Names of the 17 ICCAD04 rows used by the paper (ibm01..ibm18 minus ibm05).
const std::vector<std::string>& iccad04_names();

/// Spec for iccad04_names()[index].
BenchSpec iccad04_spec(std::size_t index, double scale = 1.0);

/// Names Cir1..Cir6 (Table II; the paper could not run Cir7-8 baselines).
const std::vector<std::string>& industrial_names();

BenchSpec industrial_spec(std::size_t index, double scale = 1.0);

}  // namespace mp::benchgen
