#include <algorithm>
#include <set>
#include <vector>

#include "benchgen/generator.hpp"
#include "util/rng.hpp"

namespace mp::benchgen {

using netlist::Design;
using netlist::Net;
using netlist::NetId;
using netlist::Node;
using netlist::NodeId;
using netlist::PinRef;

Design perturb(const Design& base, const PerturbSpec& spec) {
  util::Rng rng(spec.seed);
  Design out(base.name() + spec.name_suffix, base.region());

  // --- Nodes: copy, with optional macro resize / position nudge -----------
  const std::vector<NodeId>& movable = base.movable_macros();
  std::set<NodeId> resized, moved;
  if (spec.resize_fraction > 0.0 && !movable.empty()) {
    const int count = std::min<int>(
        static_cast<int>(movable.size()),
        static_cast<int>(spec.resize_fraction * movable.size() + 0.5));
    while (static_cast<int>(resized.size()) < count) {
      resized.insert(movable[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1))]);
    }
  }
  if (spec.move_fraction > 0.0 && !movable.empty()) {
    const int count = std::min<int>(
        static_cast<int>(movable.size()),
        static_cast<int>(spec.move_fraction * movable.size() + 0.5));
    while (static_cast<int>(moved.size()) < count) {
      moved.insert(movable[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1))]);
    }
  }
  const geometry::Rect& region = base.region();
  for (std::size_t i = 0; i < base.num_nodes(); ++i) {
    Node node = base.node(static_cast<NodeId>(i));
    if (resized.count(static_cast<NodeId>(i)) != 0) {
      node.width *= spec.resize_scale;
      node.height *= spec.resize_scale;
    }
    if (moved.count(static_cast<NodeId>(i)) != 0) {
      node.position.x += rng.uniform(-spec.move_distance, spec.move_distance);
      node.position.y += rng.uniform(-spec.move_distance, spec.move_distance);
    }
    // Resizes and moves may push a node over the boundary; clamp so the
    // perturbed design stays a valid placement problem.
    node.position.x = std::clamp(node.position.x, region.left(),
                                 std::max(region.left(),
                                          region.right() - node.width));
    node.position.y = std::clamp(node.position.y, region.bottom(),
                                 std::max(region.bottom(),
                                          region.top() - node.height));
    out.add_node(std::move(node));
  }

  // --- Nets: drop `remove_nets`, copy the rest, append `add_nets` ---------
  std::set<NetId> removed;
  if (spec.remove_nets > 0 && base.num_nets() > 0) {
    const int count =
        std::min<int>(static_cast<int>(base.num_nets()), spec.remove_nets);
    while (static_cast<int>(removed.size()) < count) {
      removed.insert(
          rng.uniform_int(0, static_cast<int>(base.num_nets()) - 1));
    }
  }
  for (std::size_t i = 0; i < base.num_nets(); ++i) {
    if (removed.count(static_cast<NetId>(i)) != 0) continue;
    out.add_net(base.net(static_cast<NetId>(i)));
  }
  const auto random_pin = [&](NodeId id) {
    const Node& node = out.node(id);
    return PinRef{id, rng.uniform(0.0, node.width),
                  rng.uniform(0.0, node.height)};
  };
  for (int n = 0; n < spec.add_nets && !movable.empty(); ++n) {
    Net net;
    net.name = "eco_n" + std::to_string(n);
    // Anchor on a macro so the new connectivity pulls on the macro problem.
    net.pins.push_back(random_pin(movable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(movable.size()) - 1))]));
    const int degree = rng.uniform_int(1, 3);
    for (int d = 0; d < degree; ++d) {
      net.pins.push_back(random_pin(
          rng.uniform_int(0, static_cast<int>(out.num_nodes()) - 1)));
    }
    out.add_net(std::move(net));
  }
  return out;
}

}  // namespace mp::benchgen
