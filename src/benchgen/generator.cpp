#include "benchgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace mp::benchgen {

using netlist::Design;
using netlist::Net;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using netlist::PinRef;

namespace {

struct Module {
  std::string path;           // hierarchy name ("top/m2/s1")
  geometry::Point home;       // locality center
  double spread;              // scatter radius
};

// Builds a two-level module tree with homes on a jittered grid.
std::vector<Module> build_modules(const geometry::Rect& region, int top_count,
                                  int sub_count, bool hierarchy,
                                  util::Rng& rng) {
  std::vector<Module> modules;
  const int grid = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                    static_cast<double>(top_count)))));
  int made = 0;
  for (int ty = 0; ty < grid && made < top_count; ++ty) {
    for (int tx = 0; tx < grid && made < top_count; ++tx, ++made) {
      const double cx =
          region.x + region.w * (tx + 0.5 + rng.uniform(-0.15, 0.15)) / grid;
      const double cy =
          region.y + region.h * (ty + 0.5 + rng.uniform(-0.15, 0.15)) / grid;
      for (int s = 0; s < sub_count; ++s) {
        Module m;
        m.path = hierarchy ? "top/m" + std::to_string(made) + "/s" +
                                 std::to_string(s)
                           : "";
        const double jitter = region.w / grid * 0.2;
        m.home = {cx + rng.uniform(-jitter, jitter),
                  cy + rng.uniform(-jitter, jitter)};
        m.spread = region.w / grid * 0.5;
        modules.push_back(m);
      }
    }
  }
  return modules;
}

geometry::Point scatter(const Module& m, const geometry::Rect& region,
                        util::Rng& rng) {
  geometry::Point p{m.home.x + rng.normal(0.0, m.spread),
                    m.home.y + rng.normal(0.0, m.spread)};
  p.x = std::clamp(p.x, region.left(), region.right());
  p.y = std::clamp(p.y, region.bottom(), region.top());
  return p;
}

}  // namespace

Design generate(const BenchSpec& spec) {
  util::Rng rng(spec.seed);
  const double scale = std::clamp(spec.scale, 1e-3, 1.0);
  const int num_cells = std::max(1, static_cast<int>(spec.std_cells * scale));
  const int num_nets = std::max(1, static_cast<int>(spec.nets * scale));
  const int num_macros = spec.movable_macros;
  const int num_preplaced = spec.preplaced_macros;
  const int num_pads = spec.io_pads;

  // --- Sizing ------------------------------------------------------------
  // Std cells: fixed row height, variable width (units: µm-like).
  const double row_height = 12.0;
  std::vector<double> cell_widths(static_cast<std::size_t>(num_cells));
  double cell_area = 0.0;
  for (double& w : cell_widths) {
    w = rng.uniform(6.0, 36.0);
    cell_area += w * row_height;
  }
  // Macro area budget derives from the requested fraction.
  const double total_macro_area =
      cell_area * spec.macro_area_fraction / (1.0 - spec.macro_area_fraction);
  const int all_macros = num_macros + num_preplaced;
  std::vector<std::pair<double, double>> macro_dims;
  if (all_macros > 0) {
    // Lognormal-ish area mix normalized to the budget.
    std::vector<double> weights(static_cast<std::size_t>(all_macros));
    double weight_sum = 0.0;
    for (double& w : weights) {
      w = std::exp(rng.normal(0.0, 0.7));
      weight_sum += w;
    }
    // Real macros dwarf std cells; keep every macro at least 8 cells big so
    // area-based classification (Bookshelf readers, clustering) stays sharp.
    const double min_macro_area =
        8.0 * cell_area / std::max(1, num_cells);
    for (int i = 0; i < all_macros; ++i) {
      const double area = std::max(
          min_macro_area,
          total_macro_area * weights[static_cast<std::size_t>(i)] / weight_sum);
      const double aspect = std::exp(rng.normal(0.0, 0.35));
      const double w = std::sqrt(area * aspect);
      const double h = area / w;
      macro_dims.emplace_back(w, h);
    }
  }

  // Region sizing uses the *actual* macro areas (the per-macro minimum can
  // push the total above the requested fraction on tiny designs).
  double actual_macro_area = 0.0;
  for (const auto& [w, h] : macro_dims) actual_macro_area += w * h;
  const double placeable_area = cell_area + actual_macro_area;
  const double side = std::sqrt(placeable_area / spec.utilization);
  const geometry::Rect region(0.0, 0.0, side, side);

  Design design(spec.name, region);

  // --- Modules -----------------------------------------------------------
  const int top_modules = std::clamp(all_macros / 6 + 2, 2, 16);
  const int sub_modules = 3;
  const std::vector<Module> modules =
      build_modules(region, top_modules, sub_modules, spec.hierarchy, rng);
  const auto random_module = [&]() -> const Module& {
    return modules[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(modules.size()) - 1))];
  };

  std::vector<NodeId> macro_ids, cell_ids, pad_ids;

  // --- Preplaced macros: peripheral, fixed, non-overlapping ---------------
  // Walk the four edges with a per-edge cursor; fall back to rejection
  // sampling in the interior when the ring fills up.
  {
    const double margin = 1.0;
    int edge = 0;
    double cursor = margin;
    std::vector<geometry::Rect> placed;
    for (int i = 0; i < num_preplaced; ++i) {
      const auto [w, h] = macro_dims[static_cast<std::size_t>(i)];
      Node node;
      node.name = "pmacro" + std::to_string(i);
      node.kind = NodeKind::kMacro;
      node.fixed = true;
      node.width = w;
      node.height = h;
      node.hierarchy = spec.hierarchy ? random_module().path : "";

      bool found = false;
      for (int attempt = 0; attempt < 8 && !found; ++attempt) {
        const double extent = (edge % 2 == 0) ? w : h;
        if (cursor + extent + margin > side) {
          edge = (edge + 1) % 4;
          cursor = margin;
          continue;
        }
        geometry::Point p;
        switch (edge) {
          case 0: p = {cursor, margin}; break;                    // bottom
          case 1: p = {side - w - margin, cursor}; break;         // right
          case 2: p = {side - w - cursor, side - h - margin}; break;  // top
          default: p = {margin, side - h - cursor}; break;        // left
        }
        p.x = std::clamp(p.x, 0.0, std::max(0.0, side - w));
        p.y = std::clamp(p.y, 0.0, std::max(0.0, side - h));
        const geometry::Rect candidate(p.x, p.y, w, h);
        bool overlap = false;
        for (const geometry::Rect& r : placed) overlap |= candidate.overlaps(r);
        if (!overlap) {
          node.position = p;
          cursor += extent + margin;
          found = true;
        } else {
          cursor += extent * 0.5 + margin;
        }
      }
      while (!found) {  // interior rejection sampling (total area fits)
        const geometry::Point p{rng.uniform(0.0, side - w),
                                rng.uniform(0.0, side - h)};
        const geometry::Rect candidate(p.x, p.y, w, h);
        bool overlap = false;
        for (const geometry::Rect& r : placed) overlap |= candidate.overlaps(r);
        if (!overlap) {
          node.position = p;
          found = true;
        }
      }
      placed.push_back(node.rect());
      macro_ids.push_back(design.add_node(node));
    }
  }
  // --- Movable macros ------------------------------------------------------
  for (int i = 0; i < num_macros; ++i) {
    const auto [w, h] = macro_dims[static_cast<std::size_t>(num_preplaced + i)];
    const Module& m = random_module();
    Node node;
    node.name = "macro" + std::to_string(i);
    node.kind = NodeKind::kMacro;
    node.fixed = false;
    node.width = w;
    node.height = h;
    node.hierarchy = m.path;
    const geometry::Point c = scatter(m, region, rng);
    node.position = {std::clamp(c.x - w / 2.0, 0.0, side - w),
                     std::clamp(c.y - h / 2.0, 0.0, side - h)};
    macro_ids.push_back(design.add_node(node));
  }
  // --- Std cells -----------------------------------------------------------
  for (int i = 0; i < num_cells; ++i) {
    const Module& m = random_module();
    Node node;
    node.name = "c" + std::to_string(i);
    node.kind = NodeKind::kStdCell;
    node.width = cell_widths[static_cast<std::size_t>(i)];
    node.height = row_height;
    node.hierarchy = m.path;
    const geometry::Point c = scatter(m, region, rng);
    node.position = {std::clamp(c.x - node.width / 2.0, 0.0, side - node.width),
                     std::clamp(c.y - node.height / 2.0, 0.0, side - row_height)};
    cell_ids.push_back(design.add_node(node));
  }
  // --- Pads on the boundary ring -------------------------------------------
  for (int i = 0; i < num_pads; ++i) {
    Node node;
    node.name = "p" + std::to_string(i);
    node.kind = NodeKind::kPad;
    node.fixed = true;
    node.width = 2.0;
    node.height = 2.0;
    const double t = static_cast<double>(i) / num_pads * 4.0;
    const int edge = static_cast<int>(t);
    const double along = (t - edge) * side;
    switch (edge) {
      case 0: node.position = {along, 0.0}; break;
      case 1: node.position = {side - 2.0, along}; break;
      case 2: node.position = {side - 2.0 - along, side - 2.0}; break;
      default: node.position = {0.0, side - 2.0 - along}; break;
    }
    pad_ids.push_back(design.add_node(node));
  }

  // --- Locality index: nodes per module ------------------------------------
  // Group placeable nodes by module for local net generation.
  std::vector<std::vector<NodeId>> members(modules.size());
  {
    std::size_t module_index = 0;
    // Assign by hashing positions back to nearest module home (cheap and
    // deterministic).
    const auto nearest_module = [&](const geometry::Point& p) {
      std::size_t best = 0;
      double best_d = 1e300;
      for (std::size_t m = 0; m < modules.size(); ++m) {
        const double d = geometry::euclidean(p, modules[m].home);
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      return best;
    };
    (void)module_index;
    for (NodeId id : cell_ids) {
      members[nearest_module(design.node(id).center())].push_back(id);
    }
    for (NodeId id : macro_ids) {
      members[nearest_module(design.node(id).center())].push_back(id);
    }
    for (auto& v : members) {
      if (v.empty()) v.push_back(cell_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cell_ids.size()) - 1))]);
    }
  }

  // --- Nets -----------------------------------------------------------------
  const auto random_pin = [&](NodeId id) {
    const Node& node = design.node(id);
    return PinRef{id, rng.uniform(0.0, node.width), rng.uniform(0.0, node.height)};
  };
  // Macro pin quota: make sure every macro is connected several times so the
  // macro placement problem is meaningful.
  int net_counter = 0;
  const auto add_net = [&](Net&& net) {
    if (net.pins.size() >= 2) {
      net.name = "n" + std::to_string(net_counter++);
      design.add_net(std::move(net));
    }
  };
  for (NodeId macro : macro_ids) {
    const int fanout = rng.uniform_int(3, 8);
    for (int f = 0; f < fanout && net_counter < num_nets; ++f) {
      Net net;
      net.pins.push_back(random_pin(macro));
      const std::size_t m = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(modules.size()) - 1));
      const int degree = 1 + rng.uniform_int(1, 4);
      for (int d = 0; d < degree; ++d) {
        const auto& pool = rng.bernoulli(0.75)
                               ? members[m]
                               : members[static_cast<std::size_t>(rng.uniform_int(
                                     0, static_cast<int>(members.size()) - 1))];
        net.pins.push_back(random_pin(pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(pool.size()) - 1))]));
      }
      add_net(std::move(net));
    }
  }
  // Remaining nets: cell-to-cell with locality, occasional pad.
  while (net_counter < num_nets) {
    Net net;
    const std::size_t m = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(members.size()) - 1));
    const auto& pool = members[m];
    // Geometric-ish degree: mostly 2-3 pins, a thin tail.
    int degree = 2;
    while (degree < 12 && rng.bernoulli(0.35)) ++degree;
    for (int d = 0; d < degree; ++d) {
      const bool local = rng.bernoulli(0.8);
      const auto& src = local ? pool
                              : members[static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<int>(members.size()) - 1))];
      net.pins.push_back(random_pin(src[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(src.size()) - 1))]));
    }
    if (!pad_ids.empty() && rng.bernoulli(0.06)) {
      net.pins.push_back(PinRef{pad_ids[static_cast<std::size_t>(rng.uniform_int(
                                    0, static_cast<int>(pad_ids.size()) - 1))],
                                1.0, 1.0});
    }
    add_net(std::move(net));
  }

  return design;
}

}  // namespace mp::benchgen
