#include "benchgen/presets.hpp"

#include <stdexcept>

namespace mp::benchgen {

namespace {

struct IbmRow {
  const char* name;
  int macros;
  int cells;   // thousands in the paper; stored as absolute counts
  int nets;
};

// Table III rows (cells/nets given in thousands in the paper).
constexpr IbmRow kIbmRows[] = {
    {"ibm01", 246, 12000, 14000},  {"ibm02", 280, 19000, 19000},
    {"ibm03", 290, 22000, 27000},  {"ibm04", 608, 26000, 31000},
    {"ibm06", 178, 32000, 34000},  {"ibm07", 507, 45000, 48000},
    {"ibm08", 309, 51000, 50000},  {"ibm09", 253, 53000, 60000},
    {"ibm10", 786, 68000, 75000},  {"ibm11", 373, 70000, 81000},
    {"ibm12", 651, 70000, 77000},  {"ibm13", 424, 83000, 99000},
    {"ibm14", 614, 146000, 152000}, {"ibm15", 393, 161000, 186000},
    {"ibm16", 458, 183000, 190000}, {"ibm17", 760, 184000, 189000},
    {"ibm18", 285, 210000, 201000},
};

struct CirRow {
  const char* name;
  int movable_macros;
  int preplaced_macros;
  int pads;
  int cells;
  int nets;
};

// Table II rows.
constexpr CirRow kCirRows[] = {
    {"Cir1", 30, 13, 130, 157000, 181000},
    {"Cir2", 71, 47, 365, 1098000, 1126000},
    {"Cir3", 55, 15, 219, 232000, 235000},
    {"Cir4", 38, 15, 169, 321000, 327000},
    {"Cir5", 32, 12, 351, 347000, 352000},
    {"Cir6", 66, 3, 481, 209000, 217000},
};

}  // namespace

const std::vector<std::string>& iccad04_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const IbmRow& row : kIbmRows) v.emplace_back(row.name);
    return v;
  }();
  return names;
}

BenchSpec iccad04_spec(std::size_t index, double scale) {
  if (index >= std::size(kIbmRows)) {
    throw std::out_of_range("iccad04_spec index");
  }
  const IbmRow& row = kIbmRows[index];
  BenchSpec spec;
  spec.name = row.name;
  spec.movable_macros = row.macros;
  spec.preplaced_macros = 0;
  spec.io_pads = 256;
  spec.std_cells = row.cells;
  spec.nets = row.nets;
  spec.hierarchy = false;  // ICCAD04 benchmarks carry no hierarchy (Sec. VI-D)
  spec.seed = 0x1b00 + index;
  spec.scale = scale;
  return spec;
}

const std::vector<std::string>& industrial_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const CirRow& row : kCirRows) v.emplace_back(row.name);
    return v;
  }();
  return names;
}

BenchSpec industrial_spec(std::size_t index, double scale) {
  if (index >= std::size(kCirRows)) {
    throw std::out_of_range("industrial_spec index");
  }
  const CirRow& row = kCirRows[index];
  BenchSpec spec;
  spec.name = row.name;
  spec.movable_macros = row.movable_macros;
  spec.preplaced_macros = row.preplaced_macros;
  spec.io_pads = row.pads;
  spec.std_cells = row.cells;
  spec.nets = row.nets;
  spec.hierarchy = true;
  spec.seed = 0xc170 + index;
  spec.scale = scale;
  return spec;
}

}  // namespace mp::benchgen
