#pragma once
// Jacobi-preconditioned conjugate gradient for the SPD systems produced by
// quadratic placement.  The matrices are graph Laplacians plus fixed-pin
// diagonal terms, so they are symmetric positive definite whenever at least
// one fixed pin anchors each connected component.

#include "linalg/sparse.hpp"

namespace mp::linalg {

struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-8;  ///< relative residual ||r|| / ||b||
};

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Solves A x = b in place; `x` supplies the initial guess and receives the
/// solution.  Returns convergence statistics.
CgResult conjugate_gradient(const CsrMatrix& a, const Vec& b, Vec& x,
                            const CgOptions& options = {});

}  // namespace mp::linalg
