#pragma once
// Symmetric sparse matrices in CSR form for the quadratic-placement systems.
// Built from (row, col, value) triplets with duplicate coalescing, which is
// the natural output of clique/B2B net models.

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace mp::linalg {

/// Accumulates triplets; duplicates are summed when compiled to CSR.
class TripletBuilder {
 public:
  explicit TripletBuilder(std::size_t n) : n_(n) {}

  std::size_t dimension() const { return n_; }

  /// Adds value at (r, c). Out-of-range indices are a programming error.
  void add(std::size_t r, std::size_t c, double value);

  /// Convenience for symmetric stamps: adds `value` to (r,r) and (c,c) and
  /// `-value` to (r,c) and (c,r) — the graph-Laplacian pattern of a two-pin
  /// quadratic connection.
  void add_connection(std::size_t r, std::size_t c, double weight);

  /// Adds `weight` to the diagonal entry (r, r) — fixed-pin anchoring.
  void add_diagonal(std::size_t r, double weight);

  const std::vector<std::size_t>& rows() const { return rows_; }
  const std::vector<std::size_t>& cols() const { return cols_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> cols_;
  std::vector<double> values_;
};

/// Compressed-sparse-row square matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compiles triplets (duplicates summed, zeros kept out).
  static CsrMatrix from_triplets(const TripletBuilder& builder);

  std::size_t dimension() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  void multiply(const Vec& x, Vec& y) const;
  Vec multiply(const Vec& x) const;

  /// Diagonal entries (0 where absent); used by the Jacobi preconditioner.
  Vec diagonal() const;

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace mp::linalg
