#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "par/par.hpp"

namespace mp::linalg {

namespace {

// Rows per parallel chunk for SpMV.  Each y[row] is an independent serial
// dot product, so the parallel result is bit-identical to the serial loop
// at every thread count; the grain only bounds scheduling overhead.  Below
// ~4 chunks' worth of rows the dispatch isn't worth it.
constexpr std::size_t kSpmvGrain = 2048;

}  // namespace

void TripletBuilder::add(std::size_t r, std::size_t c, double value) {
  assert(r < n_ && c < n_);
  if (value == 0.0) return;
  rows_.push_back(r);
  cols_.push_back(c);
  values_.push_back(value);
}

void TripletBuilder::add_connection(std::size_t r, std::size_t c, double weight) {
  if (r == c || weight == 0.0) return;
  add(r, r, weight);
  add(c, c, weight);
  add(r, c, -weight);
  add(c, r, -weight);
}

void TripletBuilder::add_diagonal(std::size_t r, double weight) {
  add(r, r, weight);
}

CsrMatrix CsrMatrix::from_triplets(const TripletBuilder& builder) {
  const std::size_t n = builder.dimension();
  const auto& tr = builder.rows();
  const auto& tc = builder.cols();
  const auto& tv = builder.values();
  const std::size_t nnz_in = tv.size();

  // Sort triplet indices by (row, col).
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tr[a] != tr[b]) return tr[a] < tr[b];
    return tc[a] < tc[b];
  });

  CsrMatrix m;
  m.row_ptr_.assign(n + 1, 0);
  m.col_idx_.reserve(nnz_in);
  m.values_.reserve(nnz_in);

  std::size_t i = 0;
  for (std::size_t row = 0; row < n; ++row) {
    while (i < nnz_in && tr[order[i]] == row) {
      const std::size_t col = tc[order[i]];
      double sum = 0.0;
      while (i < nnz_in && tr[order[i]] == row && tc[order[i]] == col) {
        sum += tv[order[i]];
        ++i;
      }
      if (sum != 0.0) {
        m.col_idx_.push_back(col);
        m.values_.push_back(sum);
      }
    }
    m.row_ptr_[row + 1] = m.col_idx_.size();
  }
  return m;
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  const std::size_t n = dimension();
  assert(x.size() == n);
  y.assign(n, 0.0);
  par::parallel_for(0, n, kSpmvGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      double sum = 0.0;
      for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
        sum += values_[k] * x[col_idx_[k]];
      }
      y[row] = sum;
    }
  });
}

Vec CsrMatrix::multiply(const Vec& x) const {
  Vec y;
  multiply(x, y);
  return y;
}

Vec CsrMatrix::diagonal() const {
  const std::size_t n = dimension();
  Vec d(n, 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
      if (col_idx_[k] == row) d[row] = values_[k];
    }
  }
  return d;
}

}  // namespace mp::linalg
