#include "linalg/dense.hpp"

#include <cassert>
#include <cmath>

namespace mp::linalg {

double dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vec& v) { return std::sqrt(dot(v, v)); }

void axpy(double alpha, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vec& v, double alpha) {
  for (double& value : v) value *= alpha;
}

Vec DenseMatrix::multiply(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

}  // namespace mp::linalg
