#pragma once
// Small dense-vector helpers shared by the QP solver and the LP simplex.

#include <cstddef>
#include <vector>

namespace mp::linalg {

using Vec = std::vector<double>;

/// Dot product; vectors must have equal length.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& v);

/// y += alpha * x (lengths must match).
void axpy(double alpha, const Vec& x, Vec& y);

/// v *= alpha.
void scale(Vec& v, double alpha);

/// Row-major dense matrix, used only for small systems (simplex tableaus,
/// network blocks); large placement systems use the CSR path.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix-vector product; x.size() must equal cols().
  Vec multiply(const Vec& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mp::linalg
