#include "linalg/cg.hpp"

#include <cassert>
#include <cmath>

#include "check/check.hpp"

namespace mp::linalg {

namespace {

// MP_VALIDATE_LEVEL >= 1: the reported relative residual must be a finite
// non-negative number and the solution free of NaN/Inf.  Level >= 2
// recomputes ||b - Ax|| / ||b|| from scratch and certifies the report —
// catches residual-update drift (the recurrence accumulates error the true
// residual does not have).
void certify_cg(const CsrMatrix& a, const Vec& b, const Vec& x, double b_norm,
                const CgResult& result) {
  const int level = check::validate_level();
  if (level < 1) return;
  MP_CHECK_FINITE(result.residual, "CG reported residual");
  MP_CHECK_GE(result.residual, 0.0, "CG reported residual");
  for (std::size_t i = 0; i < x.size(); ++i) {
    MP_CHECK(std::isfinite(x[i]), "CG solution x[%zu] = %g not finite", i, x[i]);
  }
  if (level < 2) return;
  Vec r = a.multiply(x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const double true_residual = norm2(r) / b_norm;
  // The recurrence-tracked residual drifts from the true one by rounding
  // noise amplified by the iteration count; certify order of magnitude.
  MP_CHECK_NEAR(true_residual, result.residual,
                1e-6 + 0.5 * (true_residual + result.residual),
                "CG residual recurrence diverged from ||b - Ax|| / ||b||");
  if (result.converged) {
    MP_CHECK_LT(true_residual, 1.0,
                "CG claims convergence but the true residual did not drop");
  }
}

}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, const Vec& b, Vec& x,
                            const CgOptions& options) {
  const std::size_t n = a.dimension();
  assert(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity on zero pivots.
  Vec inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vec r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  Vec p = z;
  double rz = dot(r, z);

  Vec ap(n);
  for (int it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // loss of positive definiteness (numerical)
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    result.residual = norm2(r) / b_norm;
    if (result.residual < options.tolerance) {
      result.converged = true;
      certify_cg(a, b, x, b_norm, result);
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual = norm2(r) / b_norm;
  result.converged = result.residual < options.tolerance;
  certify_cg(a, b, x, b_norm, result);
  return result;
}

}  // namespace mp::linalg
