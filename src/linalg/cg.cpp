#include "linalg/cg.hpp"

#include <cassert>
#include <cmath>

namespace mp::linalg {

CgResult conjugate_gradient(const CsrMatrix& a, const Vec& b, Vec& x,
                            const CgOptions& options) {
  const std::size_t n = a.dimension();
  assert(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  CgResult result;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  // Jacobi preconditioner M = diag(A); fall back to identity on zero pivots.
  Vec inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  Vec r = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  Vec p = z;
  double rz = dot(r, z);

  Vec ap(n);
  for (int it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // loss of positive definiteness (numerical)
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    result.residual = norm2(r) / b_norm;
    if (result.residual < options.tolerance) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual = norm2(r) / b_norm;
  result.converged = result.residual < options.tolerance;
  return result;
}

}  // namespace mp::linalg
