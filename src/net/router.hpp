#pragma once
// mp_route — the fleet coordinator (docs/DISTRIBUTED.md).  Listens on one
// endpoint, owns a static list of backend endpoints, and consistent-hashes
// each job's content onto the backend ring (net/ring.hpp) so identical specs
// land on the same backend and reuse its warm artifact cache.  Forwards
// submit / status / result / cancel / watch / stats, serves its own
// "metrics" (the routing SLO registry), and answers "ping".
//
// Failure semantics: a backend that stops answering (health ping or a failed
// forward) is marked down and every non-terminal job routed to it is
// re-submitted to the ring successor.  Because job IDs are content hashes of
// canonical specs and jobs are deterministic, re-submission is idempotent —
// the re-run yields a byte-identical outcome, so clients never observe a
// lost or diverging job, only added latency (the at-most-once +
// deterministic-retry argument in docs/DISTRIBUTED.md).  Client-visible job
// IDs are minted by the router and stay stable across re-dispatch; replies
// are rewritten accordingly.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "net/endpoint.hpp"
#include "net/ring.hpp"
#include "obs/obs.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"

namespace mp::net {

struct RouterOptions {
  std::vector<std::string> backends;  ///< endpoint URIs, order = ring identity
  int vnodes = 64;                    ///< ring virtual nodes per backend
  int backlog = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  double health_period_s = 0.5;   ///< ping cadence (0 disables the thread)
  double ping_timeout_s = 2.0;    ///< reply budget for one health ping
  double connect_timeout_s = 2.0; ///< per-forward connect budget
};

class Router {
 public:
  Router(std::string listen_uri, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds + listens and starts the health thread.  False with *error set
  /// on a bad URI, an empty backend list, or a bind failure.
  bool start(std::string* error);

  /// Accept loop; returns after request_shutdown().
  void serve();

  void request_shutdown();
  bool shutdown_requested() const;

  std::string bound_uri() const { return bound_.uri(); }

  /// Routing SLO registry: net.forwarded / net.retries counters,
  /// net.backend_up.<i> gauges and net.backend_latency.<i> histograms
  /// (indices follow RouterOptions::backends order).
  const obs::Registry& registry() const { return obs_ctx_.registry(); }

  /// Live backends as seen by the health checks (tests; metrics).
  std::set<std::string> alive_backends() const;

 private:
  struct Connection {
    int fd = -1;  ///< written under write_mutex once the socket is live
    std::mutex write_mutex MP_GUARDS(fd);
    std::thread thread;
  };

  /// One client-visible job and where it currently runs.
  struct Route {
    std::string spec_dump;   ///< canonical spec JSON (for re-submission)
    std::string key;         ///< ring key (content hash of spec_dump)
    std::string backend;     ///< backend URI currently owning the job
    std::string backend_id;  ///< the job id that backend assigned
    bool terminal = false;   ///< done/failed/cancelled observed; never re-run
  };

  void handle_connection(Connection* conn);
  svc::Json handle_request(Connection* conn, const svc::Json& request);
  void close_all_connections();

  svc::Json handle_submit(const svc::Json& request);
  svc::Json handle_job_verb(const svc::Json& request);
  svc::Json handle_watch(Connection* conn, const svc::Json& request);
  svc::Json handle_stats();
  svc::Json handle_metrics(const svc::Json& request);

  /// One request/reply round-trip against `backend` (fresh connection, so
  /// forwards never head-of-line block each other).  Null Json + *error on
  /// transport failure, after which the caller marks the backend down.
  bool backend_request(const std::string& backend, const svc::Json& req,
                       svc::Json* reply, std::string* error,
                       double read_timeout_s = 0.0);

  void mark_up(const std::string& backend);
  /// Marks down and re-dispatches every route owned by `backend` —
  /// terminal ones included, since the dead backend held the only copy of
  /// their results — to its ring successor.  No-op when already down.
  void mark_down(const std::string& backend);
  void health_loop();

  /// Submits `route`'s spec to the ring successor of its current backend;
  /// true when a new backend accepted it (route updated in place).
  bool redispatch(const std::string& client_id, Route* route)
      MP_REQUIRES(routes_mutex_);

  int backend_index(const std::string& backend) const;

  std::string listen_uri_;
  RouterOptions options_;
  HashRing ring_;
  Endpoint endpoint_;
  Endpoint bound_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};
  std::thread health_thread_;

  mutable obs::Context obs_ctx_{"route"};

  mutable std::mutex state_mutex_ MP_GUARDS(up_);
  std::set<std::string> up_ MP_GUARDED_BY(state_mutex_);

  std::mutex routes_mutex_ MP_GUARDS(routes_, next_seq_);
  std::map<std::string, Route> routes_ MP_GUARDED_BY(routes_mutex_);
  long long next_seq_ MP_GUARDED_BY(routes_mutex_) = 0;

  /// Lock order: Connection::write_mutex before connections_mutex_, and
  /// routes_mutex_ before state_mutex_ (redispatch reads the alive set while
  /// rerouting); state_mutex_ is otherwise a leaf.  routes_mutex_ is held
  /// across the re-dispatch round-trips in mark_down — failover is rare and
  /// pausing routing during it is the simple-correct choice.
  std::mutex connections_mutex_ MP_GUARDS(connections_);
  std::vector<std::unique_ptr<Connection>> connections_
      MP_GUARDED_BY(connections_mutex_);
};

}  // namespace mp::net
