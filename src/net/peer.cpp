#include "net/peer.hpp"

#include "svc/client.hpp"
#include "util/log.hpp"

namespace mp::net {

PeerFetcher::PeerFetcher(std::vector<std::string> peers,
                         PeerFetchOptions options)
    : peers_(std::move(peers)),
      options_(options),
      ring_(peers_, options_.vnodes) {}

bool PeerFetcher::fetch(const std::string& kind, const std::string& key,
                        std::string* blob) const {
  if (peers_.empty()) return false;
  // Ask the ring owner of the key first — under router placement that is
  // the peer most likely to have built it — then the rest in listed order.
  std::vector<std::string> order;
  order.reserve(peers_.size());
  const std::string& owner = ring_.owner(key);
  if (!owner.empty()) order.push_back(owner);
  for (const std::string& p : peers_) {
    if (p != owner) order.push_back(p);
  }
  ConnectOptions copts;
  copts.timeout_s = options_.connect_timeout_s;
  copts.attempts = 1;  // a down peer is a skip, not a retry loop
  for (const std::string& peer : order) {
    svc::Client client(peer, copts);
    client.set_read_timeout(options_.read_timeout_s);
    std::string error;
    if (!client.connect(&error)) continue;
    try {
      const svc::Json reply = client.fetch_artifact(kind, key);
      const svc::Json* ok = reply.find("ok");
      const svc::Json* payload = reply.find("blob");
      if (ok != nullptr && ok->is_bool() && ok->as_bool() &&
          payload != nullptr && payload->is_string()) {
        *blob = payload->as_string();
        util::log_info() << "net: " << kind << " " << key << " fetched from "
                         << peer;
        return true;
      }
    } catch (const std::exception& e) {
      util::log_warn() << "net: fetch_artifact from " << peer
                       << " failed: " << e.what();
    }
  }
  return false;
}

}  // namespace mp::net
