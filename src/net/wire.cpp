#include "net/wire.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace mp::net {

namespace {

// ---------------------------------------------------------------------------
// Token writer/reader.  Tokens are space-separated; strings are
// length-prefixed so arbitrary bytes (node names, hierarchies) need no
// escaping and a truncated blob fails at the first short read.

void put_u(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
  out += ' ';
}

void put_i(std::string& out, long long v) {
  out += std::to_string(v);
  out += ' ';
}

void put_d(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "x%016llx ",
                static_cast<unsigned long long>(bits));
  out += buf;
}

void put_f(std::string& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[12];
  std::snprintf(buf, sizeof(buf), "f%08x ", bits);
  out += buf;
}

void put_s(std::string& out, const std::string& s) {
  out += std::to_string(s.size());
  out += ':';
  out += s;
  out += ' ';
}

class TokenReader {
 public:
  explicit TokenReader(const std::string& blob) : blob_(blob) {}

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("artifact blob: bad " + std::string(what) +
                             " at offset " + std::to_string(pos_));
  }

  std::uint64_t get_u(const char* what) {
    const std::string tok = token(what);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || tok.empty()) fail(what);
    return v;
  }

  long long get_i(const char* what) {
    const std::string tok = token(what);
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || tok.empty()) fail(what);
    return v;
  }

  double get_d(const char* what) {
    const std::string tok = token(what);
    if (tok.size() != 17 || tok[0] != 'x') fail(what);
    char* end = nullptr;
    const std::uint64_t bits = std::strtoull(tok.c_str() + 1, &end, 16);
    if (end == nullptr || *end != '\0') fail(what);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  float get_f(const char* what) {
    const std::string tok = token(what);
    if (tok.size() != 9 || tok[0] != 'f') fail(what);
    char* end = nullptr;
    const std::uint32_t bits =
        static_cast<std::uint32_t>(std::strtoull(tok.c_str() + 1, &end, 16));
    if (end == nullptr || *end != '\0') fail(what);
    float v = 0.0f;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_s(const char* what) {
    // "<len>:<bytes> "
    std::size_t len = 0;
    bool any = false;
    while (pos_ < blob_.size() && blob_[pos_] >= '0' && blob_[pos_] <= '9') {
      len = len * 10 + static_cast<std::size_t>(blob_[pos_] - '0');
      if (len > blob_.size()) fail(what);
      ++pos_;
      any = true;
    }
    if (!any || pos_ >= blob_.size() || blob_[pos_] != ':') fail(what);
    ++pos_;
    if (pos_ + len > blob_.size()) fail(what);
    std::string s = blob_.substr(pos_, len);
    pos_ += len;
    if (pos_ < blob_.size() && blob_[pos_] == ' ') ++pos_;
    return s;
  }

  void expect_magic(const char* magic) {
    const std::string tok = token("magic");
    if (tok != magic) {
      throw std::runtime_error("artifact blob: expected magic \"" +
                               std::string(magic) + "\", got \"" + tok + "\"");
    }
  }

  void expect_end() const {
    if (pos_ != blob_.size()) fail("trailing bytes");
  }

 private:
  std::string token(const char* what) {
    if (pos_ >= blob_.size()) fail(what);
    const std::size_t sp = blob_.find(' ', pos_);
    if (sp == std::string::npos) fail(what);
    std::string tok = blob_.substr(pos_, sp - pos_);
    pos_ = sp + 1;
    return tok;
  }

  const std::string& blob_;
  std::size_t pos_ = 0;
};

// Bounds used to reject absurd counts before allocating (a corrupt or
// hostile blob must not drive a multi-gigabyte reserve).
constexpr std::uint64_t kMaxCount = 1u << 28;

std::uint64_t checked_count(TokenReader& r, const char* what) {
  const std::uint64_t n = r.get_u(what);
  if (n > kMaxCount) r.fail(what);
  return n;
}

void put_design_body(std::string& out, const netlist::Design& design) {
  put_s(out, design.name());
  const geometry::Rect& region = design.region();
  put_d(out, region.x);
  put_d(out, region.y);
  put_d(out, region.w);
  put_d(out, region.h);
  put_u(out, design.num_nodes());
  for (const netlist::Node& node : design.nodes()) {
    put_s(out, node.name);
    put_i(out, static_cast<long long>(node.kind));
    put_d(out, node.width);
    put_d(out, node.height);
    put_d(out, node.position.x);
    put_d(out, node.position.y);
    put_u(out, node.fixed ? 1 : 0);
    put_s(out, node.hierarchy);
  }
  put_u(out, design.num_nets());
  for (const netlist::Net& net : design.nets()) {
    put_s(out, net.name);
    put_d(out, net.weight);
    put_u(out, net.pins.size());
    for (const netlist::PinRef& pin : net.pins) {
      put_i(out, pin.node);
      put_d(out, pin.dx);
      put_d(out, pin.dy);
    }
  }
}

netlist::Design get_design_body(TokenReader& r) {
  const std::string name = r.get_s("design name");
  geometry::Rect region;
  region.x = r.get_d("region.x");
  region.y = r.get_d("region.y");
  region.w = r.get_d("region.w");
  region.h = r.get_d("region.h");
  netlist::Design design(name, region);
  const std::uint64_t num_nodes = checked_count(r, "node count");
  for (std::uint64_t i = 0; i < num_nodes; ++i) {
    netlist::Node node;
    node.name = r.get_s("node name");
    const long long kind = r.get_i("node kind");
    if (kind < 0 || kind > 2) r.fail("node kind");
    node.kind = static_cast<netlist::NodeKind>(kind);
    node.width = r.get_d("node width");
    node.height = r.get_d("node height");
    node.position.x = r.get_d("node x");
    node.position.y = r.get_d("node y");
    node.fixed = r.get_u("node fixed") != 0;
    node.hierarchy = r.get_s("node hierarchy");
    design.add_node(std::move(node));
  }
  const std::uint64_t num_nets = checked_count(r, "net count");
  for (std::uint64_t i = 0; i < num_nets; ++i) {
    netlist::Net net;
    net.name = r.get_s("net name");
    net.weight = r.get_d("net weight");
    const std::uint64_t num_pins = checked_count(r, "pin count");
    net.pins.reserve(num_pins);
    for (std::uint64_t p = 0; p < num_pins; ++p) {
      netlist::PinRef pin;
      const long long node = r.get_i("pin node");
      if (node < 0 || node >= static_cast<long long>(num_nodes)) {
        r.fail("pin node");
      }
      pin.node = static_cast<netlist::NodeId>(node);
      pin.dx = r.get_d("pin dx");
      pin.dy = r.get_d("pin dy");
      net.pins.push_back(pin);
    }
    design.add_net(std::move(net));
  }
  return design;
}

void put_group(std::string& out, const cluster::Group& group) {
  put_u(out, group.members.size());
  for (const netlist::NodeId member : group.members) put_i(out, member);
  put_d(out, group.area);
  put_d(out, group.width);
  put_d(out, group.height);
  put_d(out, group.centroid.x);
  put_d(out, group.centroid.y);
  put_s(out, group.hierarchy);
}

cluster::Group get_group(TokenReader& r) {
  cluster::Group group;
  const std::uint64_t members = checked_count(r, "group member count");
  group.members.reserve(members);
  for (std::uint64_t i = 0; i < members; ++i) {
    group.members.push_back(
        static_cast<netlist::NodeId>(r.get_i("group member")));
  }
  group.area = r.get_d("group area");
  group.width = r.get_d("group width");
  group.height = r.get_d("group height");
  group.centroid.x = r.get_d("group centroid.x");
  group.centroid.y = r.get_d("group centroid.y");
  group.hierarchy = r.get_s("group hierarchy");
  return group;
}

void put_id_vector(std::string& out, const std::vector<netlist::NodeId>& v) {
  put_u(out, v.size());
  for (const netlist::NodeId id : v) put_i(out, id);
}

std::vector<netlist::NodeId> get_id_vector(TokenReader& r, const char* what) {
  const std::uint64_t n = checked_count(r, what);
  std::vector<netlist::NodeId> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(static_cast<netlist::NodeId>(r.get_i(what)));
  }
  return v;
}

void put_int_vector(std::string& out, const std::vector<int>& v) {
  put_u(out, v.size());
  for (const int x : v) put_i(out, x);
}

std::vector<int> get_int_vector(TokenReader& r, const char* what) {
  const std::uint64_t n = checked_count(r, what);
  std::vector<int> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(static_cast<int>(r.get_i(what)));
  }
  return v;
}

}  // namespace

std::string serialize_design(const netlist::Design& design) {
  std::string out;
  out.reserve(128 + design.num_nodes() * 96 + design.num_nets() * 64);
  out += "MPD1 ";
  put_design_body(out, design);
  return out;
}

netlist::Design deserialize_design(const std::string& blob) {
  TokenReader r(blob);
  r.expect_magic("MPD1");
  netlist::Design design = get_design_body(r);
  r.expect_end();
  return design;
}

std::string serialize_prepared(const netlist::Design& design,
                               const place::FlowContext& context) {
  std::string out;
  out.reserve(256 + design.num_nodes() * 96 + design.num_nets() * 64);
  out += "MPP1 ";
  put_design_body(out, design);
  // GridSpec is a pure function of (region, dim): serialize those and
  // reconstruct through the constructor so derived cell sizes stay
  // consistent by definition.
  const grid::GridSpec& spec = context.spec;
  put_d(out, spec.region().x);
  put_d(out, spec.region().y);
  put_d(out, spec.region().w);
  put_d(out, spec.region().h);
  put_i(out, spec.dim());
  const cluster::Clustering& clustering = context.clustering;
  put_u(out, clustering.macro_groups.size());
  for (const cluster::Group& g : clustering.macro_groups) put_group(out, g);
  put_u(out, clustering.cell_groups.size());
  for (const cluster::Group& g : clustering.cell_groups) put_group(out, g);
  put_int_vector(out, clustering.macro_group_of);
  put_int_vector(out, clustering.cell_group_of);
  const cluster::CoarseDesign& coarse = context.coarse;
  put_design_body(out, coarse.design);
  put_id_vector(out, coarse.macro_group_nodes);
  put_id_vector(out, coarse.cell_group_nodes);
  put_id_vector(out, coarse.coarse_of_original);
  return out;
}

void deserialize_prepared(const std::string& blob, netlist::Design* design,
                          place::FlowContext* context) {
  TokenReader r(blob);
  r.expect_magic("MPP1");
  *design = get_design_body(r);
  geometry::Rect region;
  region.x = r.get_d("grid region.x");
  region.y = r.get_d("grid region.y");
  region.w = r.get_d("grid region.w");
  region.h = r.get_d("grid region.h");
  const long long dim = r.get_i("grid dim");
  if (dim < 1 || dim > (1 << 20)) r.fail("grid dim");
  context->spec = grid::GridSpec(region, static_cast<int>(dim));
  cluster::Clustering clustering;
  const std::uint64_t macro_groups = checked_count(r, "macro group count");
  clustering.macro_groups.reserve(macro_groups);
  for (std::uint64_t i = 0; i < macro_groups; ++i) {
    clustering.macro_groups.push_back(get_group(r));
  }
  const std::uint64_t cell_groups = checked_count(r, "cell group count");
  clustering.cell_groups.reserve(cell_groups);
  for (std::uint64_t i = 0; i < cell_groups; ++i) {
    clustering.cell_groups.push_back(get_group(r));
  }
  clustering.macro_group_of = get_int_vector(r, "macro_group_of");
  clustering.cell_group_of = get_int_vector(r, "cell_group_of");
  context->clustering = std::move(clustering);
  cluster::CoarseDesign coarse;
  coarse.design = get_design_body(r);
  coarse.macro_group_nodes = get_id_vector(r, "macro_group_nodes");
  coarse.cell_group_nodes = get_id_vector(r, "cell_group_nodes");
  coarse.coarse_of_original = get_id_vector(r, "coarse_of_original");
  context->coarse = std::move(coarse);
  r.expect_end();
}

std::string serialize_weights(const std::vector<nn::Tensor>& parameters) {
  std::string out;
  std::size_t elems = 0;
  for (const nn::Tensor& t : parameters) elems += t.size();
  out.reserve(64 + parameters.size() * 32 + elems * 10);
  out += "MPW1 ";
  put_u(out, parameters.size());
  for (const nn::Tensor& t : parameters) {
    put_u(out, t.shape().size());
    for (const int d : t.shape()) put_i(out, d);
    for (std::size_t i = 0; i < t.size(); ++i) put_f(out, t[i]);
  }
  return out;
}

std::string serialize_placement(const std::vector<io::PlEntry>& entries) {
  std::string out;
  out.reserve(16 + entries.size() * 64);
  out += "MPL1 ";
  put_u(out, entries.size());
  for (const io::PlEntry& entry : entries) {
    put_s(out, entry.name);
    put_d(out, entry.position.x);
    put_d(out, entry.position.y);
  }
  return out;
}

std::vector<io::PlEntry> deserialize_placement(const std::string& blob) {
  TokenReader r(blob);
  r.expect_magic("MPL1");
  const std::uint64_t count = checked_count(r, "placement entry count");
  std::vector<io::PlEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    io::PlEntry entry;
    entry.name = r.get_s("placement name");
    entry.position.x = r.get_d("placement x");
    entry.position.y = r.get_d("placement y");
    entries.push_back(std::move(entry));
  }
  r.expect_end();
  return entries;
}

std::vector<nn::Tensor> deserialize_weights(const std::string& blob) {
  TokenReader r(blob);
  r.expect_magic("MPW1");
  const std::uint64_t count = checked_count(r, "tensor count");
  std::vector<nn::Tensor> parameters;
  parameters.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t rank = r.get_u("tensor rank");
    if (rank > 8) r.fail("tensor rank");
    std::vector<int> shape;
    shape.reserve(rank);
    std::uint64_t total = 1;
    for (std::uint64_t d = 0; d < rank; ++d) {
      const long long dim = r.get_i("tensor dim");
      if (dim < 0 || dim > (1 << 24)) r.fail("tensor dim");
      shape.push_back(static_cast<int>(dim));
      total *= static_cast<std::uint64_t>(dim);
    }
    if (total > kMaxCount) r.fail("tensor size");
    nn::Tensor t(shape);
    for (std::size_t e = 0; e < t.size(); ++e) t[e] = r.get_f("tensor value");
    parameters.push_back(std::move(t));
  }
  r.expect_end();
  return parameters;
}

}  // namespace mp::net
