#include "net/router.hpp"

#include "util/fnv.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/framing.hpp"
#include "obs/report.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace mp::net {

namespace {

svc::Json error_reply(const std::string& message) {
  svc::Json j = svc::Json::object();
  j["ok"] = svc::Json::boolean(false);
  j["error"] = svc::Json::string(message);
  return j;
}

const std::string& require_id(const svc::Json& request) {
  const svc::Json* id = request.find("id");
  if (id == nullptr || !id->is_string()) {
    throw svc::JsonError("request needs a string \"id\"");
  }
  return id->as_string();
}

/// True when a reply's job object is in a terminal state (never re-run).
bool job_is_terminal(const svc::Json& reply) {
  const svc::Json* job = reply.find("job");
  if (job == nullptr) return false;
  const svc::Json* state = job->find("state");
  if (state == nullptr || !state->is_string()) return false;
  const std::string& s = state->as_string();
  return s == "done" || s == "failed" || s == "cancelled";
}

}  // namespace

Router::Router(std::string listen_uri, RouterOptions options)
    : listen_uri_(std::move(listen_uri)),
      options_(std::move(options)),
      ring_(options_.backends, options_.vnodes) {}

Router::~Router() {
  request_shutdown();
  if (health_thread_.joinable()) health_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
  close_all_connections();
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

int Router::backend_index(const std::string& backend) const {
  for (std::size_t i = 0; i < options_.backends.size(); ++i) {
    if (options_.backends[i] == backend) return static_cast<int>(i);
  }
  return -1;
}

bool Router::start(std::string* error) {
  if (options_.backends.empty()) {
    if (error != nullptr) *error = "router needs at least one backend";
    return false;
  }
  std::string parse_error;
  if (!parse_endpoint(listen_uri_, &endpoint_, &parse_error)) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error != nullptr) {
      *error = std::string("pipe: ") + std::strerror(errno);
    }
    return false;
  }
  listen_fd_ = listen_endpoint(endpoint_, options_.backlog, error);
  if (listen_fd_ < 0) return false;
  bound_ = local_endpoint(listen_fd_, endpoint_);

  // Optimistically assume every backend is up; the first failed forward or
  // health ping corrects the picture.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const std::string& b : options_.backends) up_.insert(b);
  }
  obs::Registry& reg = obs_ctx_.registry();
  for (std::size_t i = 0; i < options_.backends.size(); ++i) {
    reg.gauge("net.backend_up." + std::to_string(i)).set(1.0);
  }
  if (options_.health_period_s > 0.0) {
    health_thread_ = std::thread([this] { health_loop(); });
  }
  util::log_info() << "route: listening on " << bound_.uri() << " ("
                   << options_.backends.size() << " backends, "
                   << options_.vnodes << " vnodes)";
  return true;
}

void Router::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const char byte = 1;
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

bool Router::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}

std::set<std::string> Router::alive_backends() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return up_;
}

void Router::serve() {
  while (!shutdown_requested()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      util::log_warn() << "route: poll failed: " << std::strerror(errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      obs_ctx_.registry().counter("net.accept.error").add(1);
      util::log_warn() << "route: accept failed: " << std::strerror(errno);
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }
  close_all_connections();
  util::log_info() << "route: stopped";
}

void Router::close_all_connections() {
  std::vector<Connection*> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& c : connections_) {
      conns.push_back(c.get());
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  for (Connection* c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (const std::unique_ptr<Connection>& c : connections_) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  connections_.clear();
}

bool Router::backend_request(const std::string& backend, const svc::Json& req,
                             svc::Json* reply, std::string* error,
                             double read_timeout_s) {
  ConnectOptions copts;
  copts.timeout_s = options_.connect_timeout_s;
  copts.attempts = 1;  // fail fast; the ring successor is the retry path
  svc::Client client(backend, copts);
  if (read_timeout_s > 0.0) client.set_read_timeout(read_timeout_s);
  if (!client.connect(error)) return false;
  util::Timer timer;
  try {
    *reply = client.request(req);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  const int idx = backend_index(backend);
  if (idx >= 0) {
    obs_ctx_.registry()
        .histogram("net.backend_latency." + std::to_string(idx))
        .record(timer.seconds());
  }
  return true;
}

void Router::mark_up(const std::string& backend) {
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    changed = up_.insert(backend).second;
  }
  if (!changed) return;
  const int idx = backend_index(backend);
  if (idx >= 0) {
    obs_ctx_.registry().gauge("net.backend_up." + std::to_string(idx)).set(1.0);
  }
  util::log_info() << "route: backend up: " << backend;
}

void Router::mark_down(const std::string& backend) {
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    changed = up_.erase(backend) > 0;
  }
  if (!changed) return;
  const int idx = backend_index(backend);
  if (idx >= 0) {
    obs_ctx_.registry().gauge("net.backend_up." + std::to_string(idx)).set(0.0);
  }
  util::log_warn() << "route: backend down: " << backend
                   << "; re-dispatching its jobs";
  // Idempotent failover: every job routed to the dead backend is
  // re-submitted to its ring successor — terminal ones too, because the
  // dead backend held the only copy of their results.  Content-hash IDs +
  // determinism make the re-run byte-identical, so this is exactly-once in
  // effect and a later `result` serves the same bytes.
  std::lock_guard<std::mutex> lock(routes_mutex_);
  for (auto& [client_id, route] : routes_) {
    if (route.backend != backend) continue;
    if (redispatch(client_id, &route)) route.terminal = false;
  }
}

bool Router::redispatch(const std::string& client_id, Route* route) {
  svc::Json req = svc::Json::object();
  req["verb"] = svc::Json::string("submit");
  req["spec"] = svc::Json::parse(route->spec_dump);
  for (;;) {
    const std::string next =
        ring_.owner_among(route->key, alive_backends());
    if (next.empty()) {
      util::log_warn() << "route: no live backend for " << client_id;
      return false;
    }
    svc::Json reply;
    std::string error;
    if (!backend_request(next, req, &reply, &error)) {
      // Mark the failing successor down inline (mark_down would re-enter
      // routes_mutex_) and keep walking the ring.
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        up_.erase(next);
      }
      const int idx = backend_index(next);
      if (idx >= 0) {
        obs_ctx_.registry()
            .gauge("net.backend_up." + std::to_string(idx))
            .set(0.0);
      }
      util::log_warn() << "route: re-dispatch to " << next
                       << " failed: " << error;
      continue;  // walk further around the ring
    }
    const svc::Json* ok = reply.find("ok");
    const svc::Json* id = reply.find("id");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool() || id == nullptr) {
      // The backend is alive but rejected the job (e.g. full queue); leave
      // the route as-is so a later attempt can retry.
      util::log_warn() << "route: " << next << " rejected re-dispatch of "
                       << client_id;
      return false;
    }
    obs_ctx_.registry().counter("net.retries").add(1);
    route->backend = next;
    route->backend_id = id->as_string();
    util::log_info() << "route: " << client_id << " re-dispatched to " << next;
    return true;
  }
}

void Router::health_loop() {
  svc::Json ping = svc::Json::object();
  ping["verb"] = svc::Json::string("ping");
  while (!shutdown_requested()) {
    for (const std::string& backend : options_.backends) {
      if (shutdown_requested()) return;
      svc::Json reply;
      std::string error;
      if (backend_request(backend, ping, &reply, &error,
                          options_.ping_timeout_s)) {
        mark_up(backend);
      } else {
        mark_down(backend);
      }
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options_.health_period_s));
  }
}

svc::Json Router::handle_submit(const svc::Json& request) {
  const svc::Json* spec = request.find("spec");
  if (spec == nullptr) return error_reply("submit needs a \"spec\"");
  const std::string spec_dump = spec->dump();  // canonical: sorted keys
  const std::string key = util::hash_hex(util::fnv1a64(spec_dump));

  svc::Json forward = svc::Json::object();
  forward["verb"] = svc::Json::string("submit");
  forward["spec"] = *spec;

  for (;;) {
    const std::string backend = ring_.owner_among(key, alive_backends());
    if (backend.empty()) return error_reply("no live backends");
    svc::Json reply;
    std::string error;
    if (!backend_request(backend, forward, &reply, &error)) {
      mark_down(backend);
      continue;  // ring successor
    }
    obs_ctx_.registry().counter("net.forwarded").add(1);
    const svc::Json* ok = reply.find("ok");
    const svc::Json* id = reply.find("id");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool() || id == nullptr ||
        !id->is_string()) {
      return reply;  // admission error; relay verbatim
    }
    // Mint the stable client-visible id: the spec's content hash plus a
    // router sequence number (the same spec submitted twice is two jobs,
    // like the backends' own content-hash + seq scheme).
    std::string client_id;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      client_id = "r" + key.substr(0, 10) + "-" + std::to_string(next_seq_++);
      Route route;
      route.spec_dump = spec_dump;
      route.key = key;
      route.backend = backend;
      route.backend_id = id->as_string();
      routes_[client_id] = route;
    }
    svc::Json j = svc::Json::object();
    j["ok"] = svc::Json::boolean(true);
    j["id"] = svc::Json::string(client_id);
    j["backend"] = svc::Json::string(backend);
    return j;
  }
}

svc::Json Router::handle_job_verb(const svc::Json& request) {
  const std::string client_id = require_id(request);
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string backend, backend_id;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      const auto it = routes_.find(client_id);
      if (it == routes_.end()) {
        return error_reply("unknown job " + client_id);
      }
      backend = it->second.backend;
      backend_id = it->second.backend_id;
    }
    svc::Json forward = request;
    forward["id"] = svc::Json::string(backend_id);
    svc::Json reply;
    std::string error;
    if (!backend_request(backend, forward, &reply, &error)) {
      mark_down(backend);  // re-dispatches this route too (no-op when the
                           // health thread already marked it down)
      {
        // If the route still points at the dead backend — mark_down was a
        // no-op, or its earlier re-dispatch round failed — re-dispatch this
        // route directly so the retry below has somewhere to go.
        std::lock_guard<std::mutex> lock(routes_mutex_);
        const auto it = routes_.find(client_id);
        if (it != routes_.end() && it->second.backend == backend) {
          if (redispatch(client_id, &it->second)) it->second.terminal = false;
        }
      }
      continue;  // second attempt follows the new route
    }
    obs_ctx_.registry().counter("net.forwarded").add(1);
    if (reply.find("job") != nullptr) {
      reply["job"]["id"] = svc::Json::string(client_id);
      if (job_is_terminal(reply)) {
        std::lock_guard<std::mutex> lock(routes_mutex_);
        const auto it = routes_.find(client_id);
        if (it != routes_.end()) it->second.terminal = true;
      }
    }
    return reply;
  }
  return error_reply("job " + client_id + ": backends unreachable");
}

svc::Json Router::handle_watch(Connection* conn, const svc::Json& request) {
  const std::string client_id = require_id(request);
  std::string backend, backend_id;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(client_id);
    if (it == routes_.end()) return error_reply("unknown job " + client_id);
    backend = it->second.backend;
    backend_id = it->second.backend_id;
  }
  ConnectOptions copts;
  copts.timeout_s = options_.connect_timeout_s;
  svc::Client client(backend, copts);
  std::string error;
  if (!client.connect(&error)) {
    mark_down(backend);
    return error_reply("backend " + backend + " unreachable: " + error);
  }
  try {
    svc::Json done = client.watch(backend_id, [&](const svc::Json& event) {
      svc::Json line = event;
      if (line.find("job") != nullptr) {
        line["job"] = svc::Json::string(client_id);
      }
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->fd >= 0) write_frame(conn->fd, line.dump());
    });
    if (done.find("job") != nullptr && done.find("job")->is_object()) {
      done["job"]["id"] = svc::Json::string(client_id);
    }
    obs_ctx_.registry().counter("net.forwarded").add(1);
    return done;
  } catch (const std::exception& e) {
    mark_down(backend);
    return error_reply("watch of " + client_id + " failed: " + e.what());
  }
}

svc::Json Router::handle_stats() {
  // Fan the stats verb out to every live backend; the reply nests each
  // backend's own object so fleet dashboards see the whole picture.
  svc::Json req = svc::Json::object();
  req["verb"] = svc::Json::string("stats");
  svc::Json backends = svc::Json::object();
  for (std::size_t i = 0; i < options_.backends.size(); ++i) {
    const std::string& backend = options_.backends[i];
    svc::Json reply;
    std::string error;
    if (backend_request(backend, req, &reply, &error,
                        options_.ping_timeout_s)) {
      backends[backend] = reply;
    } else {
      backends[backend] = error_reply(error);
    }
  }
  svc::Json j = svc::Json::object();
  j["ok"] = svc::Json::boolean(true);
  j["backends"] = backends;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    j["routes"] = svc::Json::number(static_cast<long long>(routes_.size()));
  }
  return j;
}

svc::Json Router::handle_metrics(const svc::Json& request) {
  const svc::Json* format = request.find("format");
  if (format != nullptr && format->is_string() &&
      format->as_string() == "prom") {
    svc::Json j = svc::Json::object();
    j["ok"] = svc::Json::boolean(true);
    j["format"] = svc::Json::string("prom");
    j["text"] = svc::Json::string(
        obs::prometheus_text(obs_ctx_.registry().snapshot()));
    return j;
  }
  const obs::RegistrySnapshot snap = obs_ctx_.registry().snapshot();
  svc::Json j = svc::Json::object();
  j["ok"] = svc::Json::boolean(true);
  svc::Json counters = svc::Json::object();
  for (const auto& [name, value] : snap.counters) {
    counters[name] = svc::Json::number(static_cast<long long>(value));
  }
  j["counters"] = counters;
  svc::Json gauges = svc::Json::object();
  for (const auto& [name, value] : snap.gauges) {
    gauges[name] = svc::Json::number(value);
  }
  j["gauges"] = gauges;
  svc::Json hists = svc::Json::object();
  for (const auto& [name, h] : snap.histograms) {
    svc::Json hj = svc::Json::object();
    hj["count"] = svc::Json::number(static_cast<long long>(h.count));
    hj["mean"] = svc::Json::number(h.mean());
    hj["p50"] = svc::Json::number(h.quantile(0.5));
    hj["p95"] = svc::Json::number(h.quantile(0.95));
    hj["p99"] = svc::Json::number(h.quantile(0.99));
    hists[name] = hj;
  }
  j["histograms"] = hists;
  // Index → URI mapping for the net.backend_*.N metric names.
  svc::Json list = svc::Json::array();
  for (const std::string& b : options_.backends) {
    list.push_back(svc::Json::string(b));
  }
  j["backends"] = list;
  return j;
}

svc::Json Router::handle_request(Connection* conn, const svc::Json& request) {
  const svc::Json* verb_field = request.find("verb");
  if (verb_field == nullptr || !verb_field->is_string()) {
    return error_reply("request needs a string \"verb\"");
  }
  const std::string& verb = verb_field->as_string();
  if (verb == "submit") return handle_submit(request);
  if (verb == "status" || verb == "result" || verb == "cancel") {
    return handle_job_verb(request);
  }
  if (verb == "watch") return handle_watch(conn, request);
  if (verb == "stats") return handle_stats();
  if (verb == "metrics") return handle_metrics(request);
  if (verb == "ping") {
    svc::Json j = svc::Json::object();
    j["ok"] = svc::Json::boolean(true);
    j["pong"] = svc::Json::boolean(true);
    return j;
  }
  if (verb == "shutdown") {
    svc::Json j = svc::Json::object();
    j["ok"] = svc::Json::boolean(true);
    return j;
  }
  return error_reply("unknown verb \"" + verb + "\" (the router forwards "
                     "submit/status/result/cancel/watch/stats/metrics)");
}

void Router::handle_connection(Connection* conn) {
  FrameReader reader(conn->fd, options_.max_frame_bytes);
  std::string line;
  for (;;) {
    const ReadStatus status = reader.next(line);
    if (status == ReadStatus::kOversized) {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (conn->fd < 0 ||
          !write_frame(conn->fd,
                       error_reply("request line exceeds " +
                                   std::to_string(options_.max_frame_bytes) +
                                   " bytes")
                           .dump())) {
        break;
      }
      continue;
    }
    if (status != ReadStatus::kOk) break;
    if (line.empty()) continue;
    svc::Json reply;
    bool shutdown_after = false;
    try {
      const svc::Json request = svc::Json::parse(line);
      reply = handle_request(conn, request);
      const svc::Json* verb = request.find("verb");
      shutdown_after = verb != nullptr && verb->is_string() &&
                       verb->as_string() == "shutdown";
    } catch (const std::exception& e) {
      reply = error_reply(e.what());
    }
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      if (!write_frame(conn->fd, reply.dump())) break;
    }
    if (shutdown_after) {
      request_shutdown();
      break;
    }
  }
  std::lock_guard<std::mutex> write_lock(conn->write_mutex);
  std::lock_guard<std::mutex> lock(connections_mutex_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

}  // namespace mp::net

#else  // non-POSIX stub: the fleet runs on Unix only.

namespace mp::net {

Router::Router(std::string listen_uri, RouterOptions options)
    : listen_uri_(std::move(listen_uri)),
      options_(std::move(options)),
      ring_(options_.backends, options_.vnodes) {}
Router::~Router() = default;
bool Router::start(std::string* error) {
  if (error != nullptr) *error = "sockets unavailable on this platform";
  return false;
}
void Router::serve() {}
void Router::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
}
bool Router::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_acquire);
}
std::set<std::string> Router::alive_backends() const { return {}; }
void Router::close_all_connections() {}
void Router::handle_connection(Connection*) {}
svc::Json Router::handle_request(Connection*, const svc::Json&) {
  return svc::Json();
}

}  // namespace mp::net

#endif
