#include "net/ring.hpp"

#include <algorithm>

#include "util/fnv.hpp"

namespace mp::net {

namespace {

const std::string kNone;  // returned by reference when no backend qualifies

// splitmix64 finalizer over the FNV-1a hash.  Raw FNV of short, similar
// strings ("backend#3", "backend#4", ...) clusters badly in the high bits,
// which lower_bound on the ring turns into multi-x ownership skew; the
// finalizer's avalanche restores uniform point spacing (the balance test
// pins <= 2x mean at 64 vnodes).  Pure arithmetic on the hash value, so
// ring positions stay deterministic across processes.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t ring_position(const std::string& s) {
  return mix64(util::fnv1a64(s));
}

}  // namespace

HashRing::HashRing(std::vector<std::string> backends, int vnodes)
    : backends_(std::move(backends)), vnodes_(vnodes < 1 ? 1 : vnodes) {
  points_.reserve(backends_.size() * static_cast<std::size_t>(vnodes_));
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    for (int v = 0; v < vnodes_; ++v) {
      const std::string label = backends_[b] + "#" + std::to_string(v);
      points_.push_back({ring_position(label), static_cast<int>(b)});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Hash ties (vanishingly rare) break on backend index so the order — and
    // therefore ownership — is deterministic regardless of insertion order.
    return a.hash != b.hash ? a.hash < b.hash : a.backend < b.backend;
  });
}

std::size_t HashRing::first_point(std::uint64_t h) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  if (it == points_.end()) return 0;  // wrap to the smallest point
  return static_cast<std::size_t>(it - points_.begin());
}

const std::string& HashRing::owner(const std::string& key) const {
  if (points_.empty()) return kNone;
  return backends_[static_cast<std::size_t>(
      points_[first_point(ring_position(key))].backend)];
}

const std::string& HashRing::owner_among(
    const std::string& key, const std::set<std::string>& alive) const {
  if (points_.empty()) return kNone;
  const std::size_t start = first_point(ring_position(key));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::string& backend = backends_[static_cast<std::size_t>(
        points_[(start + i) % points_.size()].backend)];
    if (alive.count(backend) > 0) return backend;
  }
  return kNone;
}

const std::string& HashRing::successor(const std::string& key,
                                       const std::string& from,
                                       const std::set<std::string>& alive) const {
  if (points_.empty()) return kNone;
  const std::size_t start = first_point(ring_position(key));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const std::string& backend = backends_[static_cast<std::size_t>(
        points_[(start + i) % points_.size()].backend)];
    if (backend != from && alive.count(backend) > 0) return backend;
  }
  return kNone;
}

}  // namespace mp::net
