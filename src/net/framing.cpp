#include "net/framing.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <poll.h>
#include <unistd.h>

namespace mp::net {

bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, p + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool write_frame(int fd, const std::string& line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed = line;
  framed += '\n';
  return write_all(fd, framed.data(), framed.size());
}

ReadStatus FrameReader::next(std::string& line) {
  line.clear();
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      if (discarding_ || pos > max_frame_bytes_) {
        // Tail of an oversized line (or one that arrived whole in a single
        // read burst): drop through its terminator and report the
        // truncation once; the caller decides whether to keep reading.
        buffer_.erase(0, pos + 1);
        discarding_ = false;
        return ReadStatus::kOversized;
      }
      line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return ReadStatus::kOk;
    }
    if (!discarding_ && buffer_.size() > max_frame_bytes_) {
      // The line under assembly already exceeds the ceiling: stop buffering
      // it (bound memory) and discard until its '\n' arrives.
      buffer_.clear();
      discarding_ = true;
    }
    if (discarding_) buffer_.clear();

    if (timeout_s_ > 0.0) {
      pollfd pfd{fd_, POLLIN, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout_s_ * 1000.0));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) return ReadStatus::kTimeout;
      if (rc < 0) return ReadStatus::kError;
    }
    char chunk[1 << 16];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (n == 0) return ReadStatus::kEof;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mp::net

#else  // non-POSIX stub

namespace mp::net {
bool write_all(int, const void*, std::size_t) { return false; }
bool write_frame(int, const std::string&) { return false; }
ReadStatus FrameReader::next(std::string&) { return ReadStatus::kError; }
}  // namespace mp::net

#endif
