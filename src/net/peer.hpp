#pragma once
// Peer-to-peer artifact replication client (docs/DISTRIBUTED.md).  A fleet
// backend installs a PeerFetcher as its ArtifactCache peer source: on a
// cache miss it asks the ring peers — the consistent-hash owner of the
// content key first, then clockwise — for the serialized artifact
// (fetch_artifact verb) before paying for a cold rebuild.  Any reachable
// peer that holds the key answers; a fleet therefore builds each artifact
// once, not once per backend.
//
// Thread-safe: fetch() opens a fresh connection per call and touches no
// shared mutable state, so concurrent cache misses fetch in parallel.

#include <functional>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "net/ring.hpp"

namespace mp::net {

struct PeerFetchOptions {
  int vnodes = 64;              ///< must match the router's ring
  double connect_timeout_s = 2.0;
  double read_timeout_s = 30.0; ///< serialized designs can be large
};

class PeerFetcher {
 public:
  /// `peers` are the OTHER backends' endpoint URIs (exclude this process's
  /// own listen address, or every miss would ask itself first).
  explicit PeerFetcher(std::vector<std::string> peers,
                       PeerFetchOptions options = {});

  /// ArtifactCache::PeerFetchFn shape: true with *blob set when some peer's
  /// cache holds `key`.  Never throws; unreachable peers are skipped.
  bool fetch(const std::string& kind, const std::string& key,
             std::string* blob) const;

  const std::vector<std::string>& peers() const { return peers_; }

 private:
  std::vector<std::string> peers_;
  PeerFetchOptions options_;
  HashRing ring_;
};

}  // namespace mp::net
