#pragma once
// Wire codecs for peer-to-peer artifact replication (docs/DISTRIBUTED.md):
// bit-exact text serialization of the three warm-cache artifact payloads —
// parsed designs, prepared flows (design + FlowContext), and pre-trained
// weights — so a backend can serve its cache to ring peers over the NDJSON
// protocol's `fetch_artifact` verb instead of every node rebuilding cold.
//
// Format notes:
//   * text-only (fits inside one JSON string on the wire), versioned with a
//     leading magic token per kind ("MPD1" design, "MPP1" prepared, "MPW1"
//     weights) so format evolution fails loudly;
//   * floating-point values travel as hex bit patterns (x<16 hex> for
//     doubles, f<8 hex> for floats) — decode is bit-identical, which the
//     service's determinism contract requires: a peer-fetched artifact must
//     produce byte-identical placements to a locally built one;
//   * strings are length-prefixed ("<len>:<bytes>"), so node names need no
//     escaping and a truncated blob fails at the first bad token.
//
// Decoders throw std::runtime_error naming the failing field; callers treat
// a corrupt blob as a cache miss and rebuild locally.

#include <string>
#include <vector>

#include "io/bookshelf.hpp"
#include "netlist/design.hpp"
#include "nn/tensor.hpp"
#include "place/flow.hpp"

namespace mp::net {

std::string serialize_design(const netlist::Design& design);
netlist::Design deserialize_design(const std::string& blob);

/// The prepared-flow artifact: the post-prepare_flow design plus its
/// FlowContext (grid spec, clustering, coarse netlist).
std::string serialize_prepared(const netlist::Design& design,
                               const place::FlowContext& context);
void deserialize_prepared(const std::string& blob, netlist::Design* design,
                          place::FlowContext* context);

std::string serialize_weights(const std::vector<nn::Tensor>& parameters);
std::vector<nn::Tensor> deserialize_weights(const std::string& blob);

/// The incumbent-placement artifact of ECO jobs ("MPL1"): the parsed name →
/// position entries of a `.pl` payload.  Positions travel as hex bit
/// patterns, so a peer-fetched placement reproduces the regulate flow
/// bit-identically.
std::string serialize_placement(const std::vector<io::PlEntry>& entries);
std::vector<io::PlEntry> deserialize_placement(const std::string& blob);

}  // namespace mp::net
