#pragma once
// Consistent-hash ring mapping content-addressed job/artifact keys onto a
// static backend list (docs/DISTRIBUTED.md).  Each backend contributes
// `vnodes` points on a 64-bit ring at mix64(fnv1a64(backend + "#" + i)) —
// FNV-1a for the shared content-hash vocabulary, a splitmix64 finalizer for
// uniform point spacing (ring.cpp) — and a key owns the first point
// clockwise of its own mixed hash.  Properties the fleet relies on
// (tests/test_net.cpp pins all three):
//
//   * deterministic across processes — pure FNV-1a of strings, no seeding,
//     no pointer or iteration-order dependence, so mp_route replicas and
//     backends resolve identical owners;
//   * balanced — with 64 vnodes no backend owns more than ~2x the mean over
//     a large key population;
//   * minimal remapping — removing a backend moves only the keys it owned
//     (its points vanish; every other point is unchanged).
//
// owner() takes an optional alive-set so a router can skip backends its
// health pings marked down: the walk continues clockwise to the ring
// successor, which is exactly the idempotent re-submit target.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace mp::net {

class HashRing {
 public:
  explicit HashRing(std::vector<std::string> backends, int vnodes = 64);

  const std::vector<std::string>& backends() const { return backends_; }
  int vnodes() const { return vnodes_; }
  bool empty() const { return points_.empty(); }

  /// The backend owning `key`, or "" on an empty ring.
  const std::string& owner(const std::string& key) const;

  /// The first backend clockwise of `key` that is in `alive`; "" when none
  /// are.  owner(key) == owner_among(key, all-backends).
  const std::string& owner_among(const std::string& key,
                                 const std::set<std::string>& alive) const;

  /// The next distinct backend clockwise after `from` for this key — the
  /// re-submit target when `from` is lost.  Skips backends not in `alive`;
  /// "" when `alive` has no candidate other than `from`.
  const std::string& successor(const std::string& key, const std::string& from,
                               const std::set<std::string>& alive) const;

 private:
  struct Point {
    std::uint64_t hash;
    int backend;  ///< index into backends_
  };

  /// Index into points_ of the first point with hash >= h (wrapping).
  std::size_t first_point(std::uint64_t h) const;

  std::vector<std::string> backends_;
  int vnodes_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace mp::net
