#pragma once
// Endpoint abstraction of the distributed serving stack (docs/DISTRIBUTED.md):
// one URI grammar covering both transports the fleet speaks —
//
//   unix:/path/to.sock   Unix domain socket (single-host; mp_serve default)
//   tcp:host:port        TCP (fleet transport; port 0 binds an ephemeral
//                        port, read back via local_endpoint())
//   /path/to.sock        bare path, kept as an alias for unix:/path (every
//                        pre-fleet --socket flag and test keeps working)
//
// plus the two POSIX operations everything above the framing layer needs:
// a bound listening socket and a connected client socket with a connect
// timeout and bounded exponential backoff.  Unix-only like the rest of the
// socket stack; the non-POSIX stubs fail with a message.

#include <string>

namespace mp::net {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix: socket path
  std::string host;  ///< tcp: host (name or dotted quad)
  int port = 0;      ///< tcp: port (0 = ephemeral bind)

  /// Canonical URI ("unix:/p" / "tcp:host:port").
  std::string uri() const;
};

/// Parses the endpoint grammar above.  False with *error set (never throws)
/// on an empty string, a bad port, or a missing host/path.
bool parse_endpoint(const std::string& uri, Endpoint* out, std::string* error);

/// Connect retry policy: `attempts` tries spaced by an exponential backoff
/// starting at `initial_backoff_s`, doubling, capped at `max_backoff_s`.
/// Each individual connect() is bounded by `timeout_s` (<= 0: OS default).
struct ConnectOptions {
  double timeout_s = 5.0;
  int attempts = 1;
  double initial_backoff_s = 0.05;
  double max_backoff_s = 1.0;
};

/// Binds + listens; returns the fd or -1 with *error set.  A unix endpoint
/// unlinks a stale socket file first; a tcp endpoint sets SO_REUSEADDR so
/// restarts do not fight TIME_WAIT.
int listen_endpoint(const Endpoint& ep, int backlog, std::string* error);

/// Connects with ConnectOptions' timeout/backoff schedule; returns the fd or
/// -1 with *error set to the last failure.
int connect_endpoint(const Endpoint& ep, const ConnectOptions& options,
                     std::string* error);

/// The endpoint a listening fd is actually bound to — resolves a tcp port 0
/// to the kernel-assigned ephemeral port.  Falls back to `ep` on error.
Endpoint local_endpoint(int listen_fd, const Endpoint& ep);

}  // namespace mp::net
