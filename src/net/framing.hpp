#pragma once
// NDJSON framing shared by every socket speaker in the serving stack
// (mp_serve, mp_submit, mp_route, the peer artifact fetcher): one JSON value
// per '\n'-terminated line.  Generalizes the original src/svc/net.* helpers
// with the hardening a fleet needs against malformed or hostile peers:
//
//   * write_all / write_frame retry EINTR and short writes, so one shared
//     copy of the partial-write loop serves every caller;
//   * FrameReader enforces a maximum line length — an oversized frame is
//     reported (and the rest of that line discarded) instead of growing the
//     buffer without bound, so a garbage peer cannot OOM the server — and
//     supports an optional per-read timeout (poll before read) so routers
//     never hang forever on a stuck backend.
//
// The reader returns a ReadStatus instead of bool so servers can answer an
// oversized frame with a JSON error and keep the connection alive.

#include <cstddef>
#include <string>

namespace mp::net {

/// Default frame-size ceiling: generous enough for serialized design
/// artifacts (net/wire.hpp), far below anything that could OOM a host.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Writes all `n` bytes, retrying EINTR and short writes; false on any other
/// error or EOF.  Callers serialize per fd (e.g. a per-connection mutex).
bool write_all(int fd, const void* data, std::size_t n);

/// Frames `line` with a trailing '\n' and write_all()s it.
bool write_frame(int fd, const std::string& line);

enum class ReadStatus {
  kOk,         ///< one complete line delivered
  kEof,        ///< orderly peer close
  kError,      ///< read failure (errno-level)
  kTimeout,    ///< no data within the configured timeout
  kOversized,  ///< line exceeded max_frame_bytes; its remainder is discarded
};

/// Buffered line reader for one fd; strips '\n' (and a trailing '\r').
class FrameReader {
 public:
  /// `timeout_s` <= 0 blocks forever; otherwise each next() call waits at
  /// most that long for the line to complete.
  explicit FrameReader(int fd,
                       std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                       double timeout_s = 0.0)
      : fd_(fd), max_frame_bytes_(max_frame_bytes), timeout_s_(timeout_s) {}

  /// Blocks until one full line arrives (or EOF/error/timeout/limit).  On
  /// kOversized the offending line's bytes are dropped through its
  /// terminating '\n' — the next call resumes with the following line — and
  /// `line` is left empty.  A final unterminated fragment at EOF is
  /// discarded (the protocol is strictly newline-delimited).
  ReadStatus next(std::string& line);

  void set_timeout(double timeout_s) { timeout_s_ = timeout_s; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  int fd_;
  std::size_t max_frame_bytes_;
  double timeout_s_;
  std::string buffer_;
  bool discarding_ = false;  ///< inside an oversized line, pre-'\n'
};

}  // namespace mp::net
