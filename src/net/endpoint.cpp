#include "net/endpoint.hpp"

#include <cstdlib>

namespace mp::net {

std::string Endpoint::uri() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool parse_endpoint(const std::string& uri, Endpoint* out, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = "endpoint \"" + uri + "\": " + what;
    return false;
  };
  if (uri.empty()) return fail("empty");
  Endpoint ep;
  if (uri.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = uri.substr(5);
    if (ep.path.empty()) return fail("missing socket path");
  } else if (uri.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = uri.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return fail("expected tcp:host:port");
    }
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty()) return fail("missing port");
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
      return fail("bad port \"" + port_text + "\"");
    }
    ep.port = static_cast<int>(port);
  } else {
    // Bare path: the pre-fleet --socket form.
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = uri;
  }
  if (out != nullptr) *out = ep;
  return true;
}

}  // namespace mp::net

#if defined(__unix__) || defined(__APPLE__)

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace mp::net {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

bool fill_unix_addr(const Endpoint& ep, sockaddr_un* addr,
                    std::string* error) {
  *addr = {};
  addr->sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + ep.path;
    return false;
  }
  std::strncpy(addr->sun_path, ep.path.c_str(), sizeof(addr->sun_path) - 1);
  return true;
}

bool fill_tcp_addr(const Endpoint& ep, sockaddr_in* addr, std::string* error) {
  *addr = {};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(ep.port));
  if (ep.host.empty() || ep.host == "*") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr->sin_addr) == 1) return true;
  // Name lookup (IPv4 only — the fleet config uses numeric addresses or
  // resolvable short names).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (error != nullptr) {
      *error = "cannot resolve host \"" + ep.host + "\": " + gai_strerror(rc);
    }
    return false;
  }
  addr->sin_addr =
      reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return true;
}

/// One connect() bounded by timeout_s via non-blocking connect + poll.
int connect_once(const Endpoint& ep, double timeout_s, std::string* error) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t len = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&storage);
    if (!fill_unix_addr(ep, addr, error)) return -1;
    len = sizeof(sockaddr_un);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  } else {
    auto* addr = reinterpret_cast<sockaddr_in*>(&storage);
    if (!fill_tcp_addr(ep, addr, error)) return -1;
    len = sizeof(sockaddr_in);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
  }
  if (fd < 0) {
    set_error(error, "socket");
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_s > 0.0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), len);
  if (rc != 0 && errno == EINTR) {
    // An interrupted connect continues asynchronously; wait for it below
    // like EINPROGRESS.
    errno = EINPROGRESS;
    rc = -1;
  }
  if (rc != 0 && errno == EINPROGRESS && timeout_s > 0.0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout_s * 1000.0);
    int prc;
    do {
      prc = ::poll(&pfd, 1, timeout_ms);
    } while (prc < 0 && errno == EINTR);
    if (prc <= 0) {
      if (error != nullptr) *error = "connect " + ep.uri() + ": timed out";
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    if (so_error != 0) {
      errno = so_error;
      set_error(error, "connect " + ep.uri());
      ::close(fd);
      return -1;
    }
    rc = 0;
  }
  if (rc != 0) {
    set_error(error, "connect " + ep.uri());
    ::close(fd);
    return -1;
  }
  if (timeout_s > 0.0) ::fcntl(fd, F_SETFL, flags);  // back to blocking
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

int listen_endpoint(const Endpoint& ep, int backlog, std::string* error) {
  if (backlog < 1) backlog = 1;
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!fill_unix_addr(ep, &addr, error)) return -1;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      set_error(error, "socket");
      return -1;
    }
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      set_error(error, "bind " + ep.uri());
      ::close(fd);
      return -1;
    }
  } else {
    sockaddr_in addr{};
    if (!fill_tcp_addr(ep, &addr, error)) return -1;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      set_error(error, "socket");
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      set_error(error, "bind " + ep.uri());
      ::close(fd);
      return -1;
    }
  }
  if (::listen(fd, backlog) != 0) {
    set_error(error, "listen " + ep.uri());
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_endpoint(const Endpoint& ep, const ConnectOptions& options,
                     std::string* error) {
  const int attempts = options.attempts < 1 ? 1 : options.attempts;
  double backoff = options.initial_backoff_s;
  std::string last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2.0, options.max_backoff_s);
    }
    const int fd = connect_once(ep, options.timeout_s, &last_error);
    if (fd >= 0) return fd;
  }
  if (error != nullptr) *error = last_error;
  return -1;
}

Endpoint local_endpoint(int listen_fd, const Endpoint& ep) {
  if (ep.kind != Endpoint::Kind::kTcp) return ep;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ep;
  }
  Endpoint bound = ep;
  bound.port = static_cast<int>(ntohs(addr.sin_port));
  if (bound.host.empty() || bound.host == "*") bound.host = "127.0.0.1";
  return bound;
}

}  // namespace mp::net

#else  // non-POSIX: sockets unavailable (LocalService still works in-process).

namespace mp::net {

int listen_endpoint(const Endpoint&, int, std::string* error) {
  if (error != nullptr) *error = "sockets unavailable on this platform";
  return -1;
}
int connect_endpoint(const Endpoint&, const ConnectOptions&,
                     std::string* error) {
  if (error != nullptr) *error = "sockets unavailable on this platform";
  return -1;
}
Endpoint local_endpoint(int, const Endpoint& ep) { return ep; }

}  // namespace mp::net

#endif
