#pragma once
// Structured telemetry: Registries of named counters, gauges and log-scale
// histograms, plus an RAII Span that times a scoped phase and aggregates
// into a parent/child tree (one node per unique span path).
//
// Recording targets the calling thread's *current* registry: the process
// global one by default, or a job-scoped Context installed with
// ScopedContext (the placement service gives every job its own, tagged with
// the job id, so concurrent jobs never mix metrics).  The context rides
// par::context_slot(), so work a job fans out to pool workers still records
// into that job's registry.
//
// Recording is gated by MP_OBS_LEVEL (off|on, default on, case-insensitive)
// or programmatically via set_enabled(); every macro below is a cheap branchy
// no-op when disabled, so instrumentation never perturbs the algorithms —
// only reads state and records.  Reports are emitted separately (see
// obs/report.hpp, MP_OBS_OUT).  Metric names and the span hierarchy are
// documented in docs/OBSERVABILITY.md.

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/annotations.hpp"
#include "util/timer.hpp"

namespace mp::obs {

/// True when telemetry recording is enabled (MP_OBS_LEVEL != off, or the
/// last set_enabled() call).  The env var is read once, lazily.
bool enabled();

/// Programmatic override of MP_OBS_LEVEL (tests, embedding applications).
void set_enabled(bool on);

/// Monotonic event count.  Lock-free; relaxed ordering is enough because
/// readers only ever see snapshots between phases.
class Counter {
 public:
  void add(long long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-written scalar (tree size, overflow ratio, value bounds, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram at one point in time.  Quantiles are
/// estimated from the log-scale bins by geometric interpolation inside the
/// bin holding the target rank: with kSubBins bins per octave a bin spans
/// [2^(k/kSubBins), 2^((k+1)/kSubBins)), so both the true quantile and the
/// interpolated estimate lie in the same bin and the relative error is
/// bounded by the bin width, 2^(1/kSubBins) - 1 (~19% at kSubBins = 4;
/// exact when all mass of the pivot bin is one repeated value, because the
/// result is clamped to the observed [min, max]).
struct HistogramSnapshot {
  long long count = 0;
  long long underflow = 0;  ///< samples <= 0 (kept out of the log bins)
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// False when concurrent record() calls overlapped every snapshot attempt
  /// and the fields may be torn (count vs sum vs bins); see
  /// Histogram::snapshot().
  bool consistent = true;
  std::vector<long long> bins;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  double quantile(double q) const;
};

/// Log-scale histogram for positive samples: kSubBins bins per power of two,
/// covering 2^-32 .. 2^32; non-positive samples land in an underflow bucket.
/// record() is lock-free (relaxed atomics: bins and counts via fetch_add,
/// sum/min/max via CAS loops) so worker threads — parallel MCTS leaf
/// evaluations, RL rollout workers — can record concurrently without a
/// mutex.
///
/// snapshot() is torn-read safe for live readers (the mp_serve `metrics`
/// endpoint scrapes mid-run): record() brackets its field updates with a
/// begun/done write-counter pair, and snapshot() retries until it observes
/// a window with no recorder in flight — so a returned snapshot's count,
/// sum and bins describe the same set of samples.  Under sustained
/// concurrent recording the retry loop is bounded; the (rare) fallback
/// snapshot is marked `consistent = false` instead of blocking the reader.
class Histogram {
 public:
  static constexpr int kSubBins = 4;
  static constexpr int kNumBins = 256;
  static constexpr int kZeroBin = kNumBins / 2;  // bin of v == 1
  /// snapshot() consistency-retry bound (attempts before giving up and
  /// returning a possibly-torn snapshot flagged inconsistent).
  static constexpr int kSnapshotRetries = 64;

  void record(double v);
  void reset();
  HistogramSnapshot snapshot() const;

  long long count() const { return snapshot().count; }
  double sum() const { return snapshot().sum; }
  double mean() const { return snapshot().mean(); }
  double quantile(double q) const { return snapshot().quantile(q); }

  /// Geometric midpoint of bin `index` (the representative sample value).
  static double bin_value(int index);

 private:
  /// Write-window counters for torn-read-safe snapshots: a record() call
  /// increments writes_begun_ before touching any field and writes_done_
  /// after the last update.  A reader that sees writes_begun_ (after its
  /// field reads) equal to writes_done_ (before them) observed a quiescent
  /// window: every write that started also finished before the read began.
  std::atomic<long long> writes_begun_{0};
  std::atomic<long long> writes_done_{0};
  std::atomic<long long> count_{0};
  std::atomic<long long> underflow_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<long long> bins_[kNumBins] = {};
};

namespace detail {

/// Process-wide dense id for a metric name, assigned on first call and
/// stable for the process lifetime.  Two call sites naming the same metric
/// share one id.  The MP_OBS_* macros intern once per call site (function-
/// local static) and then resolve through Registry's lock-free fast slots,
/// so the per-hit cost stays one branch + two loads even though the target
/// registry can change between hits (job contexts).
std::size_t intern_metric(const char* name);

/// One node of the aggregated span tree: all Span instances sharing the same
/// path ("flow.finalize" under "mcts_rl_place", say) accumulate here.
struct SpanNode {
  std::string name;
  SpanNode* parent = nullptr;
  long long count = 0;
  double total_seconds = 0.0;
  std::map<std::string, std::unique_ptr<SpanNode>> children;
};
}  // namespace detail

/// Aggregated timing of one span path; self time excludes child spans.
struct SpanSnapshot {
  std::string name;
  long long count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
  std::vector<SpanSnapshot> children;
};

/// Full registry state at one point in time (entries sorted by name).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<SpanSnapshot> spans;  ///< top-level spans (root's children)
};

/// Metric registry: the process-wide one (global()) plus one per job-scoped
/// Context.  Entries are created on first use and never removed while the
/// registry lives, so references returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime.  reset_values() zeroes every
/// metric and span statistic in place without invalidating those references.
///
/// Interned-id fast path: *_fast(id, name) resolves an interned metric id
/// (detail::intern_metric) through a lock-free per-registry slot array —
/// one acquire load when warm — falling back to the mutex-guarded name map
/// to create the entry (and publish the slot) on the first hit.  Ids beyond
/// kFastSlots still work; they just take the map path every time.
class Registry {
 public:
  static constexpr std::size_t kFastSlots = 512;

  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Counter& counter_fast(std::size_t id, const char* name) {
    if (id < kFastSlots) {
      Counter* c = fast_counters_[id].load(std::memory_order_acquire);
      if (c != nullptr) return *c;
    }
    return counter_slow(id, name);
  }
  Gauge& gauge_fast(std::size_t id, const char* name) {
    if (id < kFastSlots) {
      Gauge* g = fast_gauges_[id].load(std::memory_order_acquire);
      if (g != nullptr) return *g;
    }
    return gauge_slow(id, name);
  }
  Histogram& histogram_fast(std::size_t id, const char* name) {
    if (id < kFastSlots) {
      Histogram* h = fast_histograms_[id].load(std::memory_order_acquire);
      if (h != nullptr) return *h;
    }
    return histogram_slow(id, name);
  }

  void reset_values();
  RegistrySnapshot snapshot() const;

  // Span plumbing (used by Span; the cursor is thread-local, rooted at this
  // registry's span tree).
  detail::SpanNode* enter_span(const char* name);
  void exit_span(detail::SpanNode* node, double seconds);

 private:
  Counter& counter_slow(std::size_t id, const char* name);
  Gauge& gauge_slow(std::size_t id, const char* name);
  Histogram& histogram_slow(std::size_t id, const char* name);

  /// Guards the name maps and the span tree's *structure* (node creation in
  /// enter_span, statistics in exit_span); the metric objects themselves are
  /// lock-free and the fast slots are atomics published under this mutex.
  mutable std::mutex mutex_ MP_GUARDS(counters_, gauges_, histograms_,
                                      span_root_);
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      MP_GUARDED_BY(mutex_);
  detail::SpanNode span_root_ MP_GUARDED_BY(mutex_);
  std::atomic<Counter*> fast_counters_[kFastSlots] = {};
  std::atomic<Gauge*> fast_gauges_[kFastSlots] = {};
  std::atomic<Histogram*> fast_histograms_[kFastSlots] = {};
};

/// Job-scoped telemetry context: a private Registry plus a tag (the job id)
/// that reports and span listeners use to attribute output to the owning
/// job.  Install with ScopedContext; the context must outlive every thread
/// still recording into it (the service destroys it only after the job's
/// sub-pool has drained).
class Context {
 public:
  explicit Context(std::string tag) : tag_(std::move(tag)) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const std::string& tag() const { return tag_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

 private:
  std::string tag_;
  Registry registry_;
};

/// Binds `context` as the calling thread's current telemetry context for the
/// scope (nullptr rebinds the global registry).  Saves and restores both the
/// context binding and this thread's span cursor, so spans open in the outer
/// scope are untouched and spans opened inside must close before the scope
/// ends.  The binding propagates to par pool workers executing work this
/// thread submits (via par::context_slot()).
class ScopedContext {
 public:
  explicit ScopedContext(Context* context);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  void* previous_slot_;
  detail::SpanNode* previous_cursor_;
};

/// The calling thread's bound context, or nullptr when recording is global.
Context* current_context();

/// The registry the calling thread records into: the bound context's, else
/// Registry::global().
Registry& current_registry();

/// Tag of the bound context ("" when none) — the owning job id inside the
/// placement service.  Safe on any thread, including pool workers.
const std::string& current_context_tag();

/// Zeroes every metric of the calling thread's current registry (used at the
/// start of a run so each JSONL report line describes exactly one run).
void reset_values();

/// Live span notification: called on every span enter (`seconds` is 0) and
/// exit (`seconds` is the span's wall time) while a listener is installed.
/// `path` is the slash-joined span path, `depth` its nesting level (1 =
/// top-level).  Invoked on whichever thread runs the span, after the
/// registry mutex is released — the listener may read the registry but must
/// not open spans of its own, and should return quickly (it sits on the hot
/// instrumentation path).  Used by the service layer to stream per-phase
/// progress to clients (src/svc/service.cpp).
using SpanListener =
    std::function<void(const std::string& path, int depth, bool enter,
                       double seconds)>;

/// Installs (or, with an empty function, removes) the process-wide span
/// listener.  Thread-safe; in-flight notifications finish with the listener
/// they captured.
void set_span_listener(SpanListener listener);

/// Slash-joined path of the calling thread's active span stack (e.g.
/// "flow.finalize/flow.legalize"), empty when no span is open.  Used by the
/// MP_CHECK fail handler so an aborting invariant names the phase it died
/// in; safe to call from signal-free failure paths (no locks taken).
std::string current_span_path();

/// RAII phase timer.  Nests: a Span constructed while another is alive on
/// the same thread becomes its child in the aggregated tree.  Binds the
/// registry current at construction, so it closes into the same tree even
/// if the context binding changes underneath it.  Inert when telemetry is
/// disabled.
class Span {
 public:
  explicit Span(const char* name) {
    if (!enabled()) return;
    registry_ = &current_registry();
    node_ = registry_->enter_span(name);
    timer_.reset();
  }
  ~Span() {
    if (node_ != nullptr) registry_->exit_span(node_, timer_.seconds());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Registry* registry_ = nullptr;
  detail::SpanNode* node_ = nullptr;
  util::Timer timer_;
};

}  // namespace mp::obs

// Instrumentation macros.  Each checks enabled() first, interns the metric
// name once per call site (function-local static id — `name` must therefore
// be the same string on every execution, i.e. a literal), then resolves the
// id in the calling thread's *current* registry via the lock-free fast
// slots.  Disabled cost is one predictable branch; enabled cost is a
// thread-local read plus two loads once the slot is warm.
#define MP_OBS_CONCAT_INNER(a, b) a##b
#define MP_OBS_CONCAT(a, b) MP_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope as span `name` (a string literal).
#define MP_OBS_SPAN(name) \
  ::mp::obs::Span MP_OBS_CONCAT(mp_obs_span_, __LINE__)(name)

/// Adds `n` to counter `name`.
#define MP_OBS_COUNT(name, n)                                          \
  do {                                                                 \
    if (::mp::obs::enabled()) {                                        \
      static const std::size_t MP_OBS_CONCAT(mp_obs_cid_, __LINE__) =  \
          ::mp::obs::detail::intern_metric(name);                      \
      ::mp::obs::current_registry()                                    \
          .counter_fast(MP_OBS_CONCAT(mp_obs_cid_, __LINE__), name)    \
          .add(n);                                                     \
    }                                                                  \
  } while (0)

/// Sets gauge `name` to `v`.
#define MP_OBS_GAUGE(name, v)                                          \
  do {                                                                 \
    if (::mp::obs::enabled()) {                                        \
      static const std::size_t MP_OBS_CONCAT(mp_obs_gid_, __LINE__) =  \
          ::mp::obs::detail::intern_metric(name);                      \
      ::mp::obs::current_registry()                                    \
          .gauge_fast(MP_OBS_CONCAT(mp_obs_gid_, __LINE__), name)      \
          .set(v);                                                     \
    }                                                                  \
  } while (0)

/// Records sample `v` into histogram `name`.
#define MP_OBS_HIST(name, v)                                           \
  do {                                                                 \
    if (::mp::obs::enabled()) {                                        \
      static const std::size_t MP_OBS_CONCAT(mp_obs_hid_, __LINE__) =  \
          ::mp::obs::detail::intern_metric(name);                      \
      ::mp::obs::current_registry()                                    \
          .histogram_fast(MP_OBS_CONCAT(mp_obs_hid_, __LINE__), name)  \
          .record(v);                                                  \
    }                                                                  \
  } while (0)
