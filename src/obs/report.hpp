#pragma once
// JSONL run reports and human-readable summaries over obs::Registry
// snapshots.  The destination is the MP_OBS_OUT environment variable: a file
// path (lines are appended) or "-" for stderr; unset/empty disables
// reporting.  One JSON object per line; the schema is documented in
// docs/OBSERVABILITY.md.

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace mp::obs {

/// Resolved report destination: MP_OBS_OUT verbatim ("" when unset).
std::string report_destination();

/// Serializes registry snapshots (and bench tables) as JSONL.
class ReportWriter {
 public:
  /// `destination` is a file path (append) or "-" (stderr); "" disables.
  explicit ReportWriter(std::string destination)
      : destination_(std::move(destination)) {}

  /// Writer for the MP_OBS_OUT destination.
  static ReportWriter from_env() { return ReportWriter(report_destination()); }

  bool valid() const { return !destination_.empty(); }
  const std::string& destination() const { return destination_; }

  /// Appends one run object: {"kind":"run","label":...,"counters":{...},
  /// "gauges":{...},"histograms":{...},"spans":[...]}.  `fields` adds extra
  /// top-level string members right after "label" (job IDs, design names,
  /// flow presets — see src/svc/service.cpp); keys must not collide with the
  /// fixed schema keys.
  void write_run(
      const std::string& label, const RegistrySnapshot& snapshot,
      const std::vector<std::pair<std::string, std::string>>& fields = {});

  /// Appends one bench-table object: {"kind":"table","bench":...,
  /// "columns":[...],"rows":[{"name":...,"values":[...]}]}.
  void write_table(
      const std::string& bench, const std::vector<std::string>& columns,
      const std::vector<std::pair<std::string, std::vector<double>>>& rows);

 private:
  void write_line(const std::string& line);

  std::string destination_;
};

/// Snapshots the global registry and appends one run line to MP_OBS_OUT.
/// No-op when telemetry is disabled or MP_OBS_OUT is unset.
void write_run_report(const std::string& label);

/// Same, with extra top-level string fields (see ReportWriter::write_run).
void write_run_report(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& fields);

/// Human-readable per-phase table of the global registry's span tree
/// (phase, calls, wall seconds, self seconds, share of total) followed by
/// the counters and a histogram quantile table (count, mean, p50/p90/p95/
/// p99).  Empty string when nothing was recorded.
std::string summary_table();

/// Prometheus text exposition (version 0.0.4) of a registry snapshot:
/// counters and gauges as-is, histograms as summaries with quantile="0.5|
/// 0.9|0.95|0.99" series plus _sum/_count.  Metric names are prefixed
/// "mp_" and sanitized (every byte outside [a-zA-Z0-9_:] becomes '_'), so
/// "svc.queue_wait" exports as mp_svc_queue_wait.  Served by the mp_serve
/// `metrics` command with {"format":"prom"}.
std::string prometheus_text(const RegistrySnapshot& snapshot);

}  // namespace mp::obs
