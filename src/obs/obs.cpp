#include "obs/obs.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "obs/trace.hpp"
#include "par/par.hpp"

namespace mp::obs {

namespace {

// -1 = not yet initialized from MP_OBS_LEVEL; 0 = off; 1 = on.
std::atomic<int> g_enabled{-1};

int level_from_env() {
  const char* raw = std::getenv("MP_OBS_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return 1;
  std::string v(raw);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "off" || v == "0" || v == "false" || v == "none") return 0;
  if (v == "on" || v == "1" || v == "true" || v == "full" || v == "all") return 1;
  std::fprintf(stderr,
               "[warn] MP_OBS_LEVEL=\"%s\" not recognized (expected off|on); "
               "telemetry stays on\n",
               raw);
  return 1;
}

// Per-thread position in the current registry's span tree.  A span chain
// always stays within one registry: ScopedContext saves/restores the cursor
// when it rebinds, and pool workers open and close their spans within one
// task, so the cursor is back to null before the binding can change.
thread_local detail::SpanNode* t_cursor = nullptr;

// Span listener slot.  The atomic flag keeps the common no-listener case to
// one relaxed-ish load on the span hot path; the shared_ptr lets an
// in-flight notification keep using the listener it captured even if
// set_span_listener() swaps it concurrently.
std::atomic<bool> g_has_listener{false};
std::mutex g_listener_mutex MP_GUARDS(g_listener);
std::shared_ptr<const SpanListener> g_listener MP_GUARDED_BY(g_listener_mutex);

// Invoked by enter_span/exit_span AFTER the registry mutex is released, so a
// listener that reads the registry (snapshots, counters) cannot deadlock.
// Path and depth come from the node's name/parent chain, which is immutable
// after creation.
void notify_span(const detail::SpanNode* node, bool enter, double seconds) {
  if (!g_has_listener.load(std::memory_order_acquire)) return;
  std::shared_ptr<const SpanListener> listener;
  {
    std::lock_guard<std::mutex> lock(g_listener_mutex);
    listener = g_listener;
  }
  if (!listener) return;
  std::vector<const detail::SpanNode*> stack;
  for (const detail::SpanNode* n = node;
       n != nullptr && n->parent != nullptr; n = n->parent) {
    stack.push_back(n);
  }
  std::string path;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (!path.empty()) path += '/';
    path += (*it)->name;
  }
  (*listener)(path, static_cast<int>(stack.size()), enter, seconds);
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = level_from_env();
    int expected = -1;
    // Another thread may have raced set_enabled(); keep its value.
    g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    v = g_enabled.load(std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) { g_enabled.store(on ? 1 : 0, std::memory_order_relaxed); }

// --- Histogram ---

namespace {

int bin_index(double v) {
  // kSubBins bins per octave, bin kZeroBin holds v in [1, 2^(1/kSubBins)).
  const double b = std::floor(std::log2(v) * Histogram::kSubBins);
  const double idx = b + Histogram::kZeroBin;
  if (idx < 0.0) return 0;
  if (idx >= Histogram::kNumBins) return Histogram::kNumBins - 1;
  return static_cast<int>(idx);
}

}  // namespace

double Histogram::bin_value(int index) {
  return std::exp2((index - kZeroBin + 0.5) / static_cast<double>(kSubBins));
}

namespace {

// Lock-free accumulation helpers (relaxed CAS loops; telemetry tolerates
// any interleaving as long as no update is lost).
void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(double v) {
  if (!std::isfinite(v)) return;
  // Open a write window for snapshot()'s consistency check: acq_rel keeps
  // the increment ordered before the field updates below.
  writes_begun_.fetch_add(1, std::memory_order_acq_rel);
  atomic_min(min_, v);
  atomic_max(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (v <= 0.0) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bins_[bin_index(v)].fetch_add(1, std::memory_order_relaxed);
  }
  writes_done_.fetch_add(1, std::memory_order_acq_rel);
}

void Histogram::reset() {
  writes_begun_.fetch_add(1, std::memory_order_acq_rel);
  count_.store(0, std::memory_order_relaxed);
  underflow_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
  writes_done_.fetch_add(1, std::memory_order_acq_rel);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (int attempt = 0; attempt < kSnapshotRetries; ++attempt) {
    const long long done_before = writes_done_.load(std::memory_order_acquire);
    s.count = count_.load(std::memory_order_relaxed);
    s.underflow = underflow_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    // Empty histograms report min = max = 0 (the pre-atomic behavior) rather
    // than the +/-inf accumulator sentinels.
    s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
    s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
    s.bins.clear();
    s.bins.reserve(kNumBins);
    for (const auto& bin : bins_) {
      s.bins.push_back(bin.load(std::memory_order_relaxed));
    }
    // The acquire fence keeps the field loads above from sinking below the
    // writes_begun_ load: if no write began before we finished reading that
    // had not already completed before we started, the window was quiescent
    // and the snapshot is internally consistent.
    std::atomic_thread_fence(std::memory_order_acquire);
    const long long begun_after = writes_begun_.load(std::memory_order_acquire);
    if (begun_after == done_before) {
      s.consistent = true;
      return s;
    }
  }
  // Recorders overlapped every attempt (sustained concurrent load): return
  // the last read, flagged, instead of spinning — live scrapes prefer a
  // slightly torn view over blocking the instrumented threads.
  s.consistent = false;
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank among all samples; underflow samples sort first and report min
  // (their exact values are not binned).
  const double target = q * static_cast<double>(count);
  double cum = static_cast<double>(underflow);
  if (cum >= target) return min;
  for (int i = 0; i < static_cast<int>(bins.size()); ++i) {
    const double in_bin = static_cast<double>(bins[static_cast<std::size_t>(i)]);
    if (cum + in_bin >= target) {
      // Geometric interpolation inside the pivot bin: the bin spans
      // [2^(k/kSubBins), 2^((k+1)/kSubBins)) with k = i - kZeroBin, and the
      // target rank sits `frac` of the way through its mass.  Both the true
      // quantile and this estimate lie inside the bin, so the relative
      // error stays below the bin width, 2^(1/kSubBins) - 1 (~19%).
      const double frac = in_bin > 0.0 ? (target - cum) / in_bin : 0.5;
      const double estimate = std::exp2(
          (static_cast<double>(i - Histogram::kZeroBin) + frac) /
          static_cast<double>(Histogram::kSubBins));
      return std::clamp(estimate, min, max);
    }
    cum += in_bin;
  }
  return max;
}

// --- Registry ---

Registry& Registry::global() {
  // Leaked on purpose: spans and cached metric references may be touched by
  // static destructors; a never-destroyed registry keeps them valid.
  static Registry* instance = new Registry();
  return *instance;
}

namespace detail {

std::size_t intern_metric(const char* name) {
  // Append-only process-wide name → id table.  Called once per call site
  // (function-local static in the macros), so the mutex is cold.
  static std::mutex intern_mutex MP_GUARDS(ids);
  static std::unordered_map<std::string, std::size_t> ids;
  std::lock_guard<std::mutex> lock(intern_mutex);
  return ids.try_emplace(name, ids.size()).first->second;
}

}  // namespace detail

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

// The *_slow resolvers create (or find) the named entry under the registry
// mutex and publish it into the interned-id fast slot.  Racing resolvers for
// the same id converge on the same map entry, so the slot is written the
// same pointer by every loser.

Counter& Registry::counter_slow(std::size_t id, const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  if (id < kFastSlots) {
    fast_counters_[id].store(slot.get(), std::memory_order_release);
  }
  return *slot;
}

Gauge& Registry::gauge_slow(std::size_t id, const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  if (id < kFastSlots) {
    fast_gauges_[id].store(slot.get(), std::memory_order_release);
  }
  return *slot;
}

Histogram& Registry::histogram_slow(std::size_t id, const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  if (id < kFastSlots) {
    fast_histograms_[id].store(slot.get(), std::memory_order_release);
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

detail::SpanNode* Registry::enter_span(const char* name) {
  detail::SpanNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    detail::SpanNode* parent = t_cursor != nullptr ? t_cursor : &span_root_;
    std::unique_ptr<detail::SpanNode>& slot = parent->children[name];
    if (!slot) {
      slot = std::make_unique<detail::SpanNode>();
      slot->name = name;
      slot->parent = parent;
    }
    t_cursor = slot.get();
    node = slot.get();
  }
  if (detail::trace_active()) detail::trace_span(node, /*begin=*/true);
  notify_span(node, /*enter=*/true, 0.0);
  return node;
}

void Registry::exit_span(detail::SpanNode* node, double seconds) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    node->count += 1;
    node->total_seconds += seconds;
    t_cursor = node->parent == &span_root_ ? nullptr : node->parent;
  }
  if (detail::trace_active()) detail::trace_span(node, /*begin=*/false);
  notify_span(node, /*enter=*/false, seconds);
}

namespace {

void reset_span_tree(detail::SpanNode& node) {
  node.count = 0;
  node.total_seconds = 0.0;
  for (auto& [name, child] : node.children) reset_span_tree(*child);
}

SpanSnapshot snapshot_span_tree(const detail::SpanNode& node) {
  SpanSnapshot s;
  s.name = node.name;
  s.count = node.count;
  s.total_seconds = node.total_seconds;
  double child_total = 0.0;
  for (const auto& [name, child] : node.children) {
    // Nodes survive reset_values() so cached references stay valid; prune
    // subtrees nothing was recorded into since, so snapshots describe only
    // the current run.
    SpanSnapshot cs = snapshot_span_tree(*child);
    if (cs.count == 0 && cs.children.empty()) continue;
    child_total += cs.total_seconds;
    s.children.push_back(std::move(cs));
  }
  s.self_seconds = std::max(0.0, s.total_seconds - child_total);
  return s;
}

}  // namespace

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  reset_span_tree(span_root_);
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  for (const auto& [name, child] : span_root_.children) {
    SpanSnapshot s = snapshot_span_tree(*child);
    if (s.count == 0 && s.children.empty()) continue;  // pruned (see above)
    snap.spans.push_back(std::move(s));
  }
  return snap;
}

// --- Contexts ---

ScopedContext::ScopedContext(Context* context)
    : previous_slot_(par::context_slot()), previous_cursor_(t_cursor) {
  par::set_context_slot(context);
  t_cursor = nullptr;
}

ScopedContext::~ScopedContext() {
  t_cursor = previous_cursor_;
  par::set_context_slot(previous_slot_);
}

Context* current_context() {
  return static_cast<Context*>(par::context_slot());
}

Registry& current_registry() {
  Context* ctx = current_context();
  return ctx != nullptr ? ctx->registry() : Registry::global();
}

const std::string& current_context_tag() {
  static const std::string kEmpty;
  Context* ctx = current_context();
  return ctx != nullptr ? ctx->tag() : kEmpty;
}

void reset_values() { current_registry().reset_values(); }

void set_span_listener(SpanListener listener) {
  std::lock_guard<std::mutex> lock(g_listener_mutex);
  if (listener) {
    g_listener = std::make_shared<const SpanListener>(std::move(listener));
    g_has_listener.store(true, std::memory_order_release);
  } else {
    g_has_listener.store(false, std::memory_order_release);
    g_listener.reset();
  }
}

std::string current_span_path() {
  // Walks this thread's cursor to the root.  Names and parent pointers are
  // immutable after node creation and the cursor is thread-local, so the
  // walk needs no lock — important because the caller may be aborting.
  std::vector<const detail::SpanNode*> stack;
  for (const detail::SpanNode* node = t_cursor;
       node != nullptr && node->parent != nullptr; node = node->parent) {
    stack.push_back(node);
  }
  std::string path;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (!path.empty()) path += '/';
    path += (*it)->name;
  }
  return path;
}

}  // namespace mp::obs
