#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "check/annotations.hpp"
#include "obs/obs.hpp"

namespace mp::obs {

namespace detail {

std::atomic<int> g_trace_state{-1};

}  // namespace detail

namespace {

// One buffered span boundary.  Name and track ids are interned indices so
// an event stays small and never dangles: job-scoped registries (and their
// SpanNodes) are destroyed when the job completes, which can be long before
// the trace is flushed.
struct TraceEvent {
  long long ts_us = 0;
  int name_id = 0;
  int pid = 0;   ///< context-tag track (1 = global/untagged)
  int tid = 0;   ///< OS-thread track
  char phase = 'B';
};

// All mutable trace state behind one mutex.  Recording under a mutex is
// acceptable here: tracing is an explicit opt-in diagnostic mode, and the
// critical section is a couple of map probes plus a push_back.
struct TraceState {
  std::mutex mutex MP_GUARDS(path, epoch, events, names, name_ids,
                             process_names, pids, dropped, atexit_registered);
  std::string path MP_GUARDED_BY(mutex);
  std::chrono::steady_clock::time_point epoch MP_GUARDED_BY(mutex);
  std::vector<TraceEvent> events MP_GUARDED_BY(mutex);
  /// name_id -> span name.
  std::vector<std::string> names MP_GUARDED_BY(mutex);
  std::map<std::string, int> name_ids MP_GUARDED_BY(mutex);
  /// pid - 1 -> track label.
  std::vector<std::string> process_names MP_GUARDED_BY(mutex);
  /// Context tag -> pid.
  std::map<std::string, int> pids MP_GUARDED_BY(mutex);
  long long dropped MP_GUARDED_BY(mutex) = 0;
  bool atexit_registered MP_GUARDED_BY(mutex) = false;
};

// Leaked on purpose (same discipline as Registry::global()): spans may fire
// from static destructors after main() returns.
TraceState& state() {
  static TraceState* instance = new TraceState();
  return *instance;
}

/// Buffer capacity.  256k events (~6 MB) covers minutes of service traffic;
/// beyond it events are dropped and counted rather than growing without
/// bound or stalling workers.
constexpr std::size_t kMaxEvents = 1u << 18;

int intern_name_locked(TraceState& s, const std::string& name) {
  auto [it, inserted] = s.name_ids.try_emplace(name, static_cast<int>(s.names.size()));
  if (inserted) s.names.push_back(name);
  return it->second;
}

int pid_for_tag_locked(TraceState& s, const std::string& tag) {
  auto [it, inserted] =
      s.pids.try_emplace(tag, static_cast<int>(s.process_names.size()) + 1);
  if (inserted) {
    s.process_names.push_back(tag.empty() ? std::string("global") : "job:" + tag);
  }
  return it->second;
}

int this_thread_tid() {
  static std::atomic<int> next_tid{1};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void json_escape_into(std::string& out, const std::string& in) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void enable_with_path_locked(TraceState& s, const std::string& path) {
  s.path = path;
  s.epoch = std::chrono::steady_clock::now();
  s.events.clear();
  s.names.clear();
  s.name_ids.clear();
  s.process_names.clear();
  s.pids.clear();
  s.dropped = 0;
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { trace_flush(); });
  }
}

}  // namespace

namespace detail {

bool trace_init_from_env() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  int cur = g_trace_state.load(std::memory_order_acquire);
  if (cur >= 0) return cur > 0;  // another thread initialized first
  const char* raw = std::getenv("MP_OBS_TRACE");
  if (raw == nullptr || raw[0] == '\0') {
    g_trace_state.store(0, std::memory_order_release);
    return false;
  }
  enable_with_path_locked(s, raw);
  g_trace_state.store(1, std::memory_order_release);
  return true;
}

void trace_span(const SpanNode* node, bool begin) {
  TraceState& s = state();
  TraceEvent ev;
  ev.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - s.epoch)
                 .count();
  ev.phase = begin ? 'B' : 'E';
  ev.tid = this_thread_tid();
  const std::string& tag = current_context_tag();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (g_trace_state.load(std::memory_order_acquire) <= 0) return;
  if (s.events.size() >= kMaxEvents) {
    ++s.dropped;
    return;
  }
  ev.name_id = intern_name_locked(s, node->name);
  ev.pid = pid_for_tag_locked(s, tag);
  s.events.push_back(ev);
}

}  // namespace detail

void set_trace_path(const std::string& path) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (path.empty()) {
    detail::g_trace_state.store(0, std::memory_order_release);
    s.path.clear();
    s.events.clear();
    s.dropped = 0;
    return;
  }
  enable_with_path_locked(s, path);
  detail::g_trace_state.store(1, std::memory_order_release);
}

bool trace_flush() {
  TraceState& s = state();
  // Copy out under the lock, serialize and write outside it so a slow disk
  // never stalls instrumented threads.
  std::string path;
  std::vector<TraceEvent> events;
  std::vector<std::string> names;
  std::vector<std::string> process_names;
  long long dropped = 0;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (detail::g_trace_state.load(std::memory_order_acquire) <= 0 || s.path.empty()) {
      return false;
    }
    path = s.path;
    events = s.events;
    names = s.names;
    process_names = s.process_names;
    dropped = s.dropped;
  }

  std::string out;
  out.reserve(events.size() * 64 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Track-name metadata events so Perfetto labels each lane with the job id
  // instead of a bare pid number.
  for (std::size_t i = 0; i < process_names.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(i + 1);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape_into(out, process_names[i]);
    out += "\"}}";
  }
  char buf[96];
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += ev.phase;
    out += "\",\"name\":\"";
    json_escape_into(out, names[static_cast<std::size_t>(ev.name_id)]);
    std::snprintf(buf, sizeof(buf), "\",\"cat\":\"span\",\"ts\":%lld,\"pid\":%d,\"tid\":%d}",
                  ev.ts_us, ev.pid, ev.tid);
    out += buf;
  }
  out += "],\"droppedEvents\":";
  out += std::to_string(dropped);
  out += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[warn] MP_OBS_TRACE: cannot open \"%s\" for writing\n",
                 path.c_str());
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace mp::obs
