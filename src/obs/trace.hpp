#pragma once
// Chrome trace_event / Perfetto timeline export for obs spans.
//
// When MP_OBS_TRACE=<path> is set (or set_trace_path() is called), every
// span enter/exit records a "B"/"E" duration event into a bounded in-memory
// buffer; trace_flush() — called automatically at process exit and
// explicitly by long-lived servers — writes the buffer as Chrome
// trace_event JSON ({"traceEvents": [...]}) that loads directly in
// chrome://tracing and https://ui.perfetto.dev.
//
// Track model: each telemetry context tag becomes one Perfetto "process"
// track (pid), so concurrent service jobs render as separate lanes; each OS
// thread becomes a "thread" track (tid) inside it, so work a job fans out
// to par:: pool workers shows up as parallel rows under that job's lane.
//
// Overhead: when tracing is not enabled the per-span cost is one atomic
// load and a predicted branch (same discipline as obs::enabled()); nothing
// is allocated and no clock is read.  When enabled, events beyond the
// buffer capacity are dropped (counted, reported in the flushed JSON) —
// tracing never blocks or unboundedly grows the instrumented process.

#include <atomic>
#include <string>

namespace mp::obs {

namespace detail {

struct SpanNode;

// -1 = not yet initialized from MP_OBS_TRACE; 0 = off; 1 = on.  Inline so
// the span hot path can gate on one acquire load without a function call
// into trace.cpp when tracing is off.
extern std::atomic<int> g_trace_state;

/// Reads MP_OBS_TRACE once and latches the state; returns true when tracing
/// became (or already was) enabled.
bool trace_init_from_env();

inline bool trace_active() {
  const int s = g_trace_state.load(std::memory_order_acquire);
  if (s >= 0) return s > 0;
  return trace_init_from_env();
}

/// Records one span boundary event ("B" on enter, "E" on exit) attributed
/// to the calling thread and its current context tag.  Called by
/// Registry::enter_span/exit_span after the registry mutex is released.
void trace_span(const SpanNode* node, bool begin);

}  // namespace detail

/// True when span trace export is active (MP_OBS_TRACE set to a path, or a
/// programmatic set_trace_path()).
inline bool trace_enabled() { return detail::trace_active(); }

/// Programmatic override of MP_OBS_TRACE (tests, embedders).  A non-empty
/// path enables tracing to that file and resets the event buffer and trace
/// clock; an empty path disables tracing and discards buffered events.
void set_trace_path(const std::string& path);

/// Writes all buffered events to the trace path as Chrome trace_event JSON
/// (rewrites the whole file, so it is safe to call repeatedly — servers
/// flush after every drained job).  Returns false when tracing is disabled
/// or the file cannot be written.  Also invoked automatically at process
/// exit once tracing has activated.
bool trace_flush();

}  // namespace mp::obs
