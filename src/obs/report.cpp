#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "par/par.hpp"
#include "util/log.hpp"

namespace mp::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_number(std::string& out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out += buf;
}

void append_histogram(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":";
  append_number(out, h.count);
  out += ",\"sum\":";
  append_number(out, h.sum);
  out += ",\"min\":";
  append_number(out, h.min);
  out += ",\"max\":";
  append_number(out, h.max);
  out += ",\"mean\":";
  append_number(out, h.mean());
  out += ",\"p50\":";
  append_number(out, h.quantile(0.5));
  out += ",\"p90\":";
  append_number(out, h.quantile(0.9));
  out += ",\"p99\":";
  append_number(out, h.quantile(0.99));
  out += '}';
}

void append_span(std::string& out, const SpanSnapshot& s) {
  out += "{\"name\":";
  append_escaped(out, s.name);
  out += ",\"count\":";
  append_number(out, s.count);
  out += ",\"wall_s\":";
  append_number(out, s.total_seconds);
  out += ",\"self_s\":";
  append_number(out, s.self_seconds);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i > 0) out += ',';
    append_span(out, s.children[i]);
  }
  out += "]}";
}

void flatten_spans(const SpanSnapshot& span, int depth,
                   std::vector<std::pair<std::string, const SpanSnapshot*>>& out) {
  out.emplace_back(std::string(static_cast<std::size_t>(depth) * 2, ' ') + span.name,
                   &span);
  for (const SpanSnapshot& child : span.children) {
    flatten_spans(child, depth + 1, out);
  }
}

}  // namespace

std::string report_destination() {
  const char* raw = std::getenv("MP_OBS_OUT");
  return raw != nullptr ? std::string(raw) : std::string();
}

void ReportWriter::write_line(const std::string& line) {
  if (destination_.empty()) return;
  if (destination_ == "-") {
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::FILE* f = std::fopen(destination_.c_str(), "a");
  if (f == nullptr) {
    util::log_warn() << "obs: cannot open report file " << destination_;
    return;
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

void ReportWriter::write_run(
    const std::string& label, const RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!valid()) return;
  std::string out;
  out.reserve(1024);
  out += "{\"kind\":\"run\",\"label\":";
  append_escaped(out, label);
  for (const auto& [key, value] : fields) {
    out += ',';
    append_escaped(out, key);
    out += ':';
    append_escaped(out, value);
  }
  // Thread count the run executed with (MP_THREADS / --threads, or the
  // job's granted lease inside the service), so JSONL entries stay
  // comparable across machines; per-phase wall time is in the span tree.
  out += ",\"threads\":";
  append_number(out, static_cast<long long>(par::current_threads()));
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.counters[i].first);
    out += ':';
    append_number(out, snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.gauges[i].first);
    out += ':';
    append_number(out, snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.histograms[i].first);
    out += ':';
    append_histogram(out, snapshot.histograms[i].second);
  }
  out += "},\"spans\":[";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out += ',';
    append_span(out, snapshot.spans[i]);
  }
  out += "]}";
  write_line(out);
}

void ReportWriter::write_table(
    const std::string& bench, const std::vector<std::string>& columns,
    const std::vector<std::pair<std::string, std::vector<double>>>& rows) {
  if (!valid()) return;
  std::string out;
  out.reserve(512);
  out += "{\"kind\":\"table\",\"bench\":";
  append_escaped(out, bench);
  out += ",\"columns\":[";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, columns[i]);
  }
  out += "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_escaped(out, rows[i].first);
    out += ",\"values\":[";
    for (std::size_t j = 0; j < rows[i].second.size(); ++j) {
      if (j > 0) out += ',';
      append_number(out, rows[i].second[j]);
    }
    out += "]}";
  }
  out += "]}";
  write_line(out);
}

void write_run_report(const std::string& label) { write_run_report(label, {}); }

void write_run_report(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!enabled()) return;
  ReportWriter writer = ReportWriter::from_env();
  if (!writer.valid()) return;
  // Snapshot the calling thread's current registry, and tag the line with
  // the owning context (job id) when one is bound so every JSONL entry is
  // attributable even when jobs run concurrently.
  const std::string& tag = current_context_tag();
  if (tag.empty()) {
    writer.write_run(label, current_registry().snapshot(), fields);
  } else {
    auto tagged = fields;
    tagged.emplace_back("ctx", tag);
    writer.write_run(label, current_registry().snapshot(), tagged);
  }
}

std::string summary_table() {
  const RegistrySnapshot snap = current_registry().snapshot();
  if (snap.spans.empty() && snap.counters.empty()) return {};

  std::vector<std::pair<std::string, const SpanSnapshot*>> flat;
  double total = 0.0;
  for (const SpanSnapshot& span : snap.spans) {
    flatten_spans(span, 0, flat);
    total += span.total_seconds;
  }

  std::string out;
  char buf[160];
  if (!flat.empty()) {
    std::snprintf(buf, sizeof(buf), "%-36s %8s %12s %12s %7s\n", "phase",
                  "calls", "wall_s", "self_s", "%");
    out += buf;
    for (const auto& [label, span] : flat) {
      const double share = total > 0.0 ? 100.0 * span->total_seconds / total : 0.0;
      std::snprintf(buf, sizeof(buf), "%-36s %8lld %12.4f %12.4f %6.1f%%\n",
                    label.c_str(), span->count, span->total_seconds,
                    span->self_seconds, share);
      out += buf;
    }
  }
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(buf, sizeof(buf), "  %-34s %12lld\n", name.c_str(), value);
      out += buf;
    }
  }
  return out;
}

}  // namespace mp::obs
