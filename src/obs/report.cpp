#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "check/annotations.hpp"
#include "par/par.hpp"
#include "util/log.hpp"

namespace mp::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_number(std::string& out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out += buf;
}

void append_histogram(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":";
  append_number(out, h.count);
  out += ",\"sum\":";
  append_number(out, h.sum);
  out += ",\"min\":";
  append_number(out, h.min);
  out += ",\"max\":";
  append_number(out, h.max);
  out += ",\"mean\":";
  append_number(out, h.mean());
  out += ",\"p50\":";
  append_number(out, h.quantile(0.5));
  out += ",\"p90\":";
  append_number(out, h.quantile(0.9));
  out += ",\"p95\":";
  append_number(out, h.quantile(0.95));
  out += ",\"p99\":";
  append_number(out, h.quantile(0.99));
  out += '}';
}

void append_span(std::string& out, const SpanSnapshot& s) {
  out += "{\"name\":";
  append_escaped(out, s.name);
  out += ",\"count\":";
  append_number(out, s.count);
  out += ",\"wall_s\":";
  append_number(out, s.total_seconds);
  out += ",\"self_s\":";
  append_number(out, s.self_seconds);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i > 0) out += ',';
    append_span(out, s.children[i]);
  }
  out += "]}";
}

void flatten_spans(const SpanSnapshot& span, int depth,
                   std::vector<std::pair<std::string, const SpanSnapshot*>>& out) {
  out.emplace_back(std::string(static_cast<std::size_t>(depth) * 2, ' ') + span.name,
                   &span);
  for (const SpanSnapshot& child : span.children) {
    flatten_spans(child, depth + 1, out);
  }
}

}  // namespace

std::string report_destination() {
  const char* raw = std::getenv("MP_OBS_OUT");
  return raw != nullptr ? std::string(raw) : std::string();
}

namespace {

// One mutex per report destination, shared by every ReportWriter aiming at
// it: concurrent service workers finishing jobs at the same instant each
// append a whole line, never an interleaving of two partial lines.  Entries
// are never removed (destinations are few: MP_OBS_OUT and test paths).
std::mutex& destination_mutex(const std::string& destination) {
  static std::mutex map_mutex MP_GUARDS(mutexes);
  static std::map<std::string, std::unique_ptr<std::mutex>> mutexes;
  std::lock_guard<std::mutex> lock(map_mutex);
  std::unique_ptr<std::mutex>& slot = mutexes[destination];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

}  // namespace

void ReportWriter::write_line(const std::string& line) {
  if (destination_.empty()) return;
  std::lock_guard<std::mutex> lock(destination_mutex(destination_));
  if (destination_ == "-") {
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::FILE* f = std::fopen(destination_.c_str(), "a");
  if (f == nullptr) {
    util::log_warn() << "obs: cannot open report file " << destination_;
    return;
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

void ReportWriter::write_run(
    const std::string& label, const RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!valid()) return;
  std::string out;
  out.reserve(1024);
  out += "{\"kind\":\"run\",\"label\":";
  append_escaped(out, label);
  for (const auto& [key, value] : fields) {
    out += ',';
    append_escaped(out, key);
    out += ':';
    append_escaped(out, value);
  }
  // Thread count the run executed with (MP_THREADS / --threads, or the
  // job's granted lease inside the service), so JSONL entries stay
  // comparable across machines; per-phase wall time is in the span tree.
  out += ",\"threads\":";
  append_number(out, static_cast<long long>(par::current_threads()));
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.counters[i].first);
    out += ':';
    append_number(out, snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.gauges[i].first);
    out += ':';
    append_number(out, snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, snapshot.histograms[i].first);
    out += ':';
    append_histogram(out, snapshot.histograms[i].second);
  }
  out += "},\"spans\":[";
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out += ',';
    append_span(out, snapshot.spans[i]);
  }
  out += "]}";
  write_line(out);
}

void ReportWriter::write_table(
    const std::string& bench, const std::vector<std::string>& columns,
    const std::vector<std::pair<std::string, std::vector<double>>>& rows) {
  if (!valid()) return;
  std::string out;
  out.reserve(512);
  out += "{\"kind\":\"table\",\"bench\":";
  append_escaped(out, bench);
  out += ",\"columns\":[";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, columns[i]);
  }
  out += "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_escaped(out, rows[i].first);
    out += ",\"values\":[";
    for (std::size_t j = 0; j < rows[i].second.size(); ++j) {
      if (j > 0) out += ',';
      append_number(out, rows[i].second[j]);
    }
    out += "]}";
  }
  out += "]}";
  write_line(out);
}

void write_run_report(const std::string& label) { write_run_report(label, {}); }

void write_run_report(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (!enabled()) return;
  ReportWriter writer = ReportWriter::from_env();
  if (!writer.valid()) return;
  // Snapshot the calling thread's current registry, and tag the line with
  // the owning context (job id) when one is bound so every JSONL entry is
  // attributable even when jobs run concurrently.
  const std::string& tag = current_context_tag();
  if (tag.empty()) {
    writer.write_run(label, current_registry().snapshot(), fields);
  } else {
    auto tagged = fields;
    tagged.emplace_back("ctx", tag);
    writer.write_run(label, current_registry().snapshot(), tagged);
  }
}

std::string summary_table() {
  const RegistrySnapshot snap = current_registry().snapshot();
  if (snap.spans.empty() && snap.counters.empty() && snap.histograms.empty()) {
    return {};
  }

  std::vector<std::pair<std::string, const SpanSnapshot*>> flat;
  double total = 0.0;
  for (const SpanSnapshot& span : snap.spans) {
    flatten_spans(span, 0, flat);
    total += span.total_seconds;
  }

  std::string out;
  char buf[160];
  if (!flat.empty()) {
    std::snprintf(buf, sizeof(buf), "%-36s %8s %12s %12s %7s\n", "phase",
                  "calls", "wall_s", "self_s", "%");
    out += buf;
    for (const auto& [label, span] : flat) {
      const double share = total > 0.0 ? 100.0 * span->total_seconds / total : 0.0;
      std::snprintf(buf, sizeof(buf), "%-36s %8lld %12.4f %12.4f %6.1f%%\n",
                    label.c_str(), span->count, span->total_seconds,
                    span->self_seconds, share);
      out += buf;
    }
  }
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(buf, sizeof(buf), "  %-34s %12lld\n", name.c_str(), value);
      out += buf;
    }
  }
  if (!snap.histograms.empty()) {
    std::snprintf(buf, sizeof(buf), "%-36s %8s %10s %10s %10s %10s %10s\n",
                  "histogram", "count", "mean", "p50", "p90", "p95", "p99");
    out += buf;
    for (const auto& [name, h] : snap.histograms) {
      if (h.count == 0) continue;
      std::snprintf(buf, sizeof(buf),
                    "%-36s %8lld %10.4g %10.4g %10.4g %10.4g %10.4g\n",
                    name.c_str(), h.count, h.mean(), h.quantile(0.5),
                    h.quantile(0.9), h.quantile(0.95), h.quantile(0.99));
      out += buf;
    }
  }
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted metric names
// ("svc.queue_wait") map dots and any other byte to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "mp_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void prom_value(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace

std::string prometheus_text(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  char buf[64];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %lld\n", n.c_str(), value);
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n" + n + ' ';
    prom_value(out, value);
    out += '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    // Exposed as a summary: quantiles are pre-computed from the log bins
    // (Prometheus histogram buckets would need cumulative le= bounds; the
    // summary form matches what the scraper actually wants — SLO quantiles).
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " summary\n";
    for (const double q : {0.5, 0.9, 0.95, 0.99}) {
      std::snprintf(buf, sizeof(buf), "%s{quantile=\"%g\"} ", n.c_str(), q);
      out += buf;
      prom_value(out, h.quantile(q));
      out += '\n';
    }
    out += n + "_sum ";
    prom_value(out, h.sum);
    out += '\n';
    std::snprintf(buf, sizeof(buf), "%s_count %lld\n", n.c_str(), h.count);
    out += buf;
  }
  return out;
}

}  // namespace mp::obs
