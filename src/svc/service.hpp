#pragma once
// LocalService — the placement service without the socket: scheduler +
// artifact cache + per-preset job runners, embeddable in tests and tools.
// The socket server (src/svc/server.hpp) is a thin protocol shim over this
// class, so everything observable over the wire is testable in-process.
//
// Determinism contract: jobs execute concurrently on the scheduler's worker
// threads, each inside its own obs context and on a private par:: sub-pool
// sized by its thread lease (parallelism lives *inside* a job; leases
// partition the machine).  Runners derive options through the one shared
// place::spec_from_preset, and warm-cache hits resume from a deterministic
// prepare_flow artifact — and since par:: results are thread-count
// independent, a job's placement is bit-identical to `place_bookshelf` at
// equal settings, warm or cold, at any worker count (verified by
// tests/test_svc.cpp and the scripts/check.sh smoke + TSan legs).

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "check/annotations.hpp"
#include "svc/cache.hpp"
#include "svc/scheduler.hpp"

namespace mp::infer {
class InferenceEngine;
}  // namespace mp::infer

namespace mp::svc {

struct ServiceOptions {
  int max_queued = 32;          ///< admission-control bound
  /// Concurrent job executors.  0 resolves MP_WORKERS (falling back to 1),
  /// so existing single-worker deployments keep their behavior; the thread
  /// budget (par::num_threads()) is partitioned across whatever runs.
  int workers = 0;
  std::size_t cache_designs = 8;
  std::size_t cache_prepared = 8;
  std::size_t cache_weights = 4;
  std::size_t cache_placements = 4;  ///< incumbent placements (ECO jobs)
  /// Stream per-phase progress by installing the process-wide
  /// obs::set_span_listener (removed again on destruction).  At most one
  /// service per process should enable this.
  bool stream_progress = true;
  /// Span depth cutoff for progress events: 1 is just the job envelope,
  /// 2 adds the flow phases (prepare / rl.train / mcts.search / finalize).
  int max_progress_depth = 2;
  /// Share one batched inference engine across all jobs' MCTS searches
  /// (docs/INFERENCE.md): value-network forwards from concurrent jobs
  /// coalesce into larger batched forwards and identical agents dedupe into
  /// content-hashed parameter snapshots.  Placements are bit-identical to
  /// engine-off at equal job specs.  <0 resolves the MP_INFER env var
  /// (default off); 0 off; >0 on.  Engine knobs come from MP_INFER_BATCH /
  /// MP_INFER_WAIT_US / MP_INFER_THREADS (infer::EngineOptions::from_env);
  /// its infer.* telemetry lands in the SLO registry (metrics verb).
  int infer = -1;
};

/// One streamed progress notification (span enter/exit of the running job).
struct ProgressEvent {
  std::string job_id;
  std::string phase;     ///< slash-joined span path, e.g. "svc.job/rl.train"
  int depth = 0;
  bool enter = false;    ///< true = phase started, false = finished
  double seconds = 0.0;  ///< wall time of the phase on exit, 0 on enter
};

class LocalService {
 public:
  using ProgressFn = std::function<void(const ProgressEvent&)>;

  explicit LocalService(ServiceOptions options = {});
  ~LocalService();  ///< shutdown_now + listener removal

  LocalService(const LocalService&) = delete;
  LocalService& operator=(const LocalService&) = delete;

  // Scheduler pass-throughs (see scheduler.hpp for semantics).
  Scheduler::SubmitResult submit(const JobSpec& spec);
  bool cancel(const std::string& id);
  std::optional<JobSnapshot> status(const std::string& id) const;
  std::vector<JobSnapshot> jobs() const;
  bool wait(const std::string& id, double timeout_s = 0.0) const;
  void drain();
  void shutdown_now();
  bool accepting() const;

  CacheStats cache_stats() const { return cache_.stats(); }
  int workers() const { return scheduler_->workers(); }

  /// Installs the fleet peer source consulted on a cache miss before a local
  /// rebuild (net::PeerFetcher; docs/DISTRIBUTED.md).  Call before serving.
  void set_peer_fetcher(ArtifactCache::PeerFetchFn fn) {
    cache_.set_peer_fetcher(std::move(fn));
  }

  /// Serves the `fetch_artifact` verb: serializes the cached artifact with
  /// the given content key (kind "design" / "prepared" / "weights") into
  /// `blob`.  False when the cache does not hold the key (the peer rebuilds)
  /// or the kind is unknown.
  bool artifact_blob(const std::string& kind, const std::string& key,
                     std::string* blob);
  /// Protocol "stats" object: job counts by state, queue depth, cache
  /// hit/miss counters, worker count, thread budget.
  Json stats_json() const;

  /// Protocol "metrics" object: a live snapshot of the service-global SLO
  /// registry — svc.queue_wait / svc.run_time / svc.submit_to_result
  /// histograms (count, mean, p50/p90/p95/p99), svc.queue_depth /
  /// svc.active_jobs gauges, svc.jobs.* counters, svc.cache_{hit,miss}
  /// totals.  Safe to call while jobs run (torn-read-safe snapshots).
  /// Non-const: refreshes the cache gauges before snapshotting.
  Json metrics_json();
  /// Same snapshot as Prometheus text exposition (obs::prometheus_text).
  std::string metrics_prom();
  /// The service-global SLO registry (scraped by metrics_json; tests).  The
  /// non-const overload lets the socket layer record transport counters
  /// (net.accept.*) next to the service SLOs.
  const obs::Registry& slo_registry() const { return slo_ctx_.registry(); }
  obs::Registry& slo_registry() { return slo_ctx_.registry(); }

  /// Registers a progress sink (server watch streams, tests); returns a
  /// token for remove_progress_listener.  Callbacks fire on the job's
  /// execution threads and must not block.
  int add_progress_listener(ProgressFn fn);
  void remove_progress_listener(int token);

  /// Protocol "job" object for a snapshot (docs/SERVICE.md schema).
  static Json job_to_json(const JobSnapshot& snap);

 private:
  JobOutcome execute(const std::string& id, const JobSpec& spec,
                     const util::CancelToken& cancel,
                     const Scheduler::RunContext& ctx);
  void on_span(const std::string& path, int depth, bool enter, double seconds);

  /// Syncs cache hit/miss totals into the SLO registry's gauges so a
  /// metrics scrape sees them next to the latency histograms.
  void refresh_slo_cache_gauges();

  ServiceOptions options_;
  ArtifactCache cache_;
  /// Service-global SLO telemetry (scheduler latencies, queue gauges).
  /// Declared before scheduler_: worker threads record into this registry
  /// until the scheduler joins them, so it must be destroyed after.
  obs::Context slo_ctx_{"svc"};
  /// Shared batched inference engine (ServiceOptions::infer); null when
  /// off.  Declared before scheduler_ so running jobs can use it until the
  /// workers join, and after slo_ctx_ so its telemetry registry outlives it.
  std::unique_ptr<infer::InferenceEngine> infer_engine_;
  std::unique_ptr<Scheduler> scheduler_;

  std::mutex listeners_mutex_ MP_GUARDS(listeners_, next_listener_token_);
  std::map<int, ProgressFn> listeners_ MP_GUARDED_BY(listeners_mutex_);
  int next_listener_token_ MP_GUARDED_BY(listeners_mutex_) = 1;
};

/// FNV-1a fingerprint over every node position's bit pattern, in node order.
/// Two bit-identical placements — e.g. a service job and the offline CLI at
/// equal settings — share it; any position differing in even one ulp does
/// not.
std::uint64_t placement_fingerprint(const netlist::Design& design);

}  // namespace mp::svc
