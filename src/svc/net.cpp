#include "svc/net.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <unistd.h>

namespace mp::svc {

bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::next(std::string& line) {
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mp::svc

#else  // non-POSIX: the service protocol is Unix-socket only.

namespace mp::svc {
bool write_line(int, const std::string&) { return false; }
bool LineReader::next(std::string&) { return false; }
}  // namespace mp::svc

#endif
