#include "svc/scheduler.hpp"

#include <chrono>

#include "obs/obs.hpp"
#include "par/par.hpp"
#include "util/log.hpp"

namespace mp::svc {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

namespace {

bool terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

}  // namespace

Scheduler::Scheduler(Runner runner, int max_queued, int workers,
                     int thread_budget, obs::Registry* slo)
    : runner_(std::move(runner)),
      max_queued_(static_cast<std::size_t>(max_queued < 1 ? 1 : max_queued)),
      slo_(slo),
      arbiter_(thread_budget > 0 ? thread_budget : par::num_threads()) {
  const int n = workers < 1 ? 1 : workers;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() { shutdown_now(); }

void Scheduler::update_slo_gauges_locked() {
  if (slo_ == nullptr) return;
  slo_->gauge("svc.queue_depth").set(static_cast<double>(pending_.size()));
  slo_->gauge("svc.active_jobs").set(static_cast<double>(running_.size()));
}

Scheduler::Record* Scheduler::find_locked(const std::string& id) {
  const auto it = records_.find(id);
  return it != records_.end() ? it->second.get() : nullptr;
}

const Scheduler::Record* Scheduler::find_locked(const std::string& id) const {
  const auto it = records_.find(id);
  return it != records_.end() ? it->second.get() : nullptr;
}

Scheduler::SubmitResult Scheduler::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  SubmitResult result;
  if (!accepting_) {
    result.error = "scheduler is draining; not accepting jobs";
    MP_OBS_COUNT("svc.jobs.rejected", 1);
    if (slo_ != nullptr) slo_->counter("svc.jobs.rejected").add(1);
    return result;
  }
  if (pending_.size() >= max_queued_) {
    result.error = "queue full (" + std::to_string(max_queued_) +
                   " jobs); retry later";
    MP_OBS_COUNT("svc.jobs.rejected", 1);
    if (slo_ != nullptr) slo_->counter("svc.jobs.rejected").add(1);
    return result;
  }
  const std::uint64_t seq = next_seq_++;
  auto record = std::make_unique<Record>();
  record->snap.id = make_job_id(spec, seq);
  record->snap.spec = spec;
  record->snap.seq = seq;
  record->cancel = util::CancelToken::make();
  result.accepted = true;
  result.id = record->snap.id;
  pending_.insert({-spec.priority, seq, record->snap.id});
  records_[record->snap.id] = std::move(record);
  MP_OBS_COUNT("svc.jobs.submitted", 1);
  if (slo_ != nullptr) slo_->counter("svc.jobs.submitted").add(1);
  update_slo_gauges_locked();
  cv_.notify_all();
  return result;
}

bool Scheduler::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Record* record = find_locked(id);
  if (record == nullptr || terminal(record->snap.state)) return false;
  record->cancel.request_cancel();
  if (record->snap.state == JobState::kQueued) {
    pending_.erase(
        {-record->snap.spec.priority, record->snap.seq, record->snap.id});
    record->snap.state = JobState::kCancelled;
    record->snap.queue_seconds = record->submitted.seconds();
    MP_OBS_COUNT("svc.jobs.cancelled", 1);
    if (slo_ != nullptr) slo_->counter("svc.jobs.cancelled").add(1);
    update_slo_gauges_locked();
    cv_.notify_all();
  }
  // A running job stops at its next poll; its worker records the terminal
  // state when the runner returns.
  return true;
}

std::optional<JobSnapshot> Scheduler::status(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Record* record = find_locked(id);
  if (record == nullptr) return std::nullopt;
  return record->snap;
}

std::vector<JobSnapshot> Scheduler::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobSnapshot> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(record->snap);
  return out;
}

bool Scheduler::wait(const std::string& id, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [&] {
    const Record* record = find_locked(id);
    return record != nullptr && terminal(record->snap.state);
  };
  if (find_locked(id) == nullptr) return false;
  if (timeout_s <= 0.0) {
    cv_.wait(lock, done);
    return true;
  }
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), done);
}

void Scheduler::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    // Never de-escalate a shutdown already in flight (kStopping) or undo a
    // finished one (kStopped).
    if (phase_ == Phase::kRunning) phase_ = Phase::kDraining;
    cv_.notify_all();
  }
  join_workers();
}

void Scheduler::shutdown_now() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    if (phase_ == Phase::kRunning || phase_ == Phase::kDraining) {
      phase_ = Phase::kStopping;
      // Drop the queue: jobs that never ran end kCancelled.
      for (const auto& [np, seq, id] : pending_) {
        Record* record = find_locked(id);
        record->snap.state = JobState::kCancelled;
        record->snap.queue_seconds = record->submitted.seconds();
        record->cancel.request_cancel();
        MP_OBS_COUNT("svc.jobs.cancelled", 1);
        if (slo_ != nullptr) slo_->counter("svc.jobs.cancelled").add(1);
      }
      pending_.clear();
      update_slo_gauges_locked();
      for (const std::string& id : running_) {
        if (Record* record = find_locked(id)) record->cancel.request_cancel();
      }
    }
    cv_.notify_all();
  }
  join_workers();
}

void Scheduler::join_workers() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (phase_ == Phase::kStopped) return;
  if (joiner_active_) {
    // Another drain()/shutdown_now()/destructor call is already joining;
    // joining the same std::thread twice is UB, so wait for its result.
    cv_.wait(lock, [&] { return phase_ == Phase::kStopped; });
    return;
  }
  joiner_active_ = true;
  // mplint: allow(manual-unlock): workers take mutex_ to finish their jobs,
  // so joining them while holding it would deadlock; relocked right after.
  lock.unlock();
  for (std::thread& w : workers_) w.join();
  lock.lock();
  phase_ = Phase::kStopped;
  cv_.notify_all();
}

bool Scheduler::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

int Scheduler::queued_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(pending_.size());
}

std::vector<std::string> Scheduler::running_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {running_.begin(), running_.end()};
}

void Scheduler::worker_loop(int worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [&] {
      return !pending_.empty() || phase_ != Phase::kRunning;
    });
    if (phase_ == Phase::kStopping) return;  // pending_ already dropped
    if (pending_.empty()) {
      if (phase_ != Phase::kRunning) return;  // drained dry
      continue;
    }

    const auto best = *pending_.begin();
    pending_.erase(pending_.begin());
    Record* record = find_locked(std::get<2>(best));
    record->snap.state = JobState::kRunning;
    record->snap.queue_seconds = record->submitted.seconds();
    running_.insert(record->snap.id);
    if (slo_ != nullptr) {
      slo_->histogram("svc.queue_wait").record(record->snap.queue_seconds);
    }
    update_slo_gauges_locked();
    // Thread-budget lease for the job's private pool; released (back to the
    // budget) when the job leaves the running set, on any path.
    ThreadLease lease = arbiter_.acquire(record->snap.spec.threads);
    record->snap.granted_threads = lease.threads();
    // Deadline is a *run* budget: armed now, not at submit, so queue wait
    // does not eat into it.
    if (record->snap.spec.deadline_s > 0.0) {
      record->cancel.set_deadline_after(record->snap.spec.deadline_s);
    }
    // Copies for the unlocked run (the record may be inspected concurrently).
    const std::string id = record->snap.id;
    const JobSpec spec = record->snap.spec;
    const util::CancelToken cancel = record->cancel;
    const RunContext ctx{lease.threads(), worker_index};
    cv_.notify_all();
    // mplint: allow(manual-unlock): the runner executes unlocked so other
    // workers keep dispatching; relocked below to record the outcome.
    lock.unlock();

    util::Timer run_timer;
    JobOutcome outcome;
    std::string error;
    bool failed = false;
    try {
      outcome = runner_(id, spec, cancel, ctx);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    const double run_seconds = run_timer.seconds();

    lock.lock();
    lease.release();
    record = find_locked(id);
    record->snap.outcome = outcome;
    record->snap.error = error;
    record->snap.run_seconds = run_seconds;
    if (failed) {
      record->snap.state = JobState::kFailed;
      MP_OBS_COUNT("svc.jobs.failed", 1);
      if (slo_ != nullptr) slo_->counter("svc.jobs.failed").add(1);
      util::log_warn() << "svc: job " << id << " failed: " << error;
    } else if (outcome.cancelled || cancel.cancelled()) {
      record->snap.outcome.cancelled = true;
      record->snap.state = JobState::kCancelled;
      MP_OBS_COUNT("svc.jobs.cancelled", 1);
      if (slo_ != nullptr) slo_->counter("svc.jobs.cancelled").add(1);
    } else {
      record->snap.state = JobState::kDone;
      MP_OBS_COUNT("svc.jobs.done", 1);
      if (slo_ != nullptr) slo_->counter("svc.jobs.done").add(1);
    }
    running_.erase(id);
    if (slo_ != nullptr) {
      // Service-global SLO latencies (per-job copies land in the job's own
      // context inside LocalService::execute): run time and the full
      // submit -> terminal-result age this scrape point cares about.
      slo_->histogram("svc.run_time").record(run_seconds);
      slo_->histogram("svc.submit_to_result").record(record->submitted.seconds());
    }
    update_slo_gauges_locked();
    cv_.notify_all();
  }
}

}  // namespace mp::svc
