#pragma once
// Minimal JSON value/parser/writer for the service protocol (job specs on
// disk, newline-delimited request/reply framing on the mp_serve socket).
// Scope is deliberately small: UTF-8 pass-through strings, doubles for all
// numbers (integers round-trip exactly up to 2^53 — seeds and counts in job
// specs stay below that), objects stored in sorted order so dump() is
// canonical and usable as a cache/hash key (src/svc/job.cpp).

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace mp::svc {

/// Thrown by Json::parse on malformed input (message carries the byte
/// offset) and by the typed accessors on a type mismatch.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// std::map (not unordered) so member order — and therefore dump() — is
  /// deterministic across platforms.
  using Object = std::map<std::string, Json>;

  Json() = default;  ///< null
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(long long v) { return number(static_cast<double>(v)); }
  static Json number(int v) { return number(static_cast<double>(v)); }
  static Json string(std::string v);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& items() const;      ///< array elements
  const Object& members() const;   ///< object members

  // Object helpers.
  bool has(const std::string& key) const;
  /// Member pointer or nullptr (valid on any type; non-objects have none).
  const Json* find(const std::string& key) const;
  /// Inserts a null member on first use; converts a null value to an object.
  Json& operator[](const std::string& key);

  // Array helpers.
  /// Appends to an array; converts a null value to an array.
  void push_back(Json v);
  std::size_t size() const;

  /// Parses exactly one JSON value (trailing whitespace allowed, anything
  /// else is an error).  Throws JsonError.
  static Json parse(const std::string& text);

  /// Compact canonical serialization (sorted object keys, no whitespace).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace mp::svc
