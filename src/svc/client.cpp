#include "svc/client.hpp"

#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mp::svc {

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

bool Client::connect(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    close();
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + socket_path_;
    return false;
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("connect " + socket_path_);
  }
  reader_ = std::make_unique<LineReader>(fd_);
  return true;
}

Json Client::request(const Json& req) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!write_line(fd_, req.dump())) {
    throw std::runtime_error("write to " + socket_path_ + " failed");
  }
  std::string line;
  if (!reader_->next(line)) {
    throw std::runtime_error("server closed connection");
  }
  return Json::parse(line);
}

Json Client::submit(const Json& spec) {
  Json req = Json::object();
  req["verb"] = Json::string("submit");
  req["spec"] = spec;
  return request(req);
}

namespace {

Json id_request(const char* verb, const std::string& id) {
  Json req = Json::object();
  req["verb"] = Json::string(verb);
  req["id"] = Json::string(id);
  return req;
}

}  // namespace

Json Client::status(const std::string& id) {
  return request(id_request("status", id));
}

Json Client::result(const std::string& id, double timeout_s) {
  Json req = id_request("result", id);
  req["timeout_s"] = Json::number(timeout_s);
  return request(req);
}

Json Client::cancel(const std::string& id) {
  return request(id_request("cancel", id));
}

Json Client::stats() {
  Json req = Json::object();
  req["verb"] = Json::string("stats");
  return request(req);
}

Json Client::metrics(bool prom) {
  Json req = Json::object();
  req["verb"] = Json::string("metrics");
  if (prom) req["format"] = Json::string("prom");
  return request(req);
}

Json Client::shutdown() {
  Json req = Json::object();
  req["verb"] = Json::string("shutdown");
  return request(req);
}

Json Client::watch(const std::string& id,
                   const std::function<void(const Json&)>& on_event) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!write_line(fd_, id_request("watch", id).dump())) {
    throw std::runtime_error("write to " + socket_path_ + " failed");
  }
  std::string line;
  while (reader_->next(line)) {
    Json event = Json::parse(line);
    const Json* kind = event.find("event");
    if (kind != nullptr && kind->is_string() &&
        kind->as_string() == "done") {
      return event;
    }
    // Error replies ({"ok":false,...}) terminate the stream too.
    if (event.find("ok") != nullptr) return event;
    if (on_event) on_event(event);
  }
  throw std::runtime_error("server closed connection mid-watch");
}

}  // namespace mp::svc

#else  // non-POSIX stub

namespace mp::svc {

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}
Client::~Client() = default;
void Client::close() {}
bool Client::connect(std::string* error) {
  if (error != nullptr) *error = "unix sockets unavailable on this platform";
  return false;
}
Json Client::request(const Json&) {
  throw std::runtime_error("unix sockets unavailable on this platform");
}
Json Client::submit(const Json&) { return request(Json()); }
Json Client::status(const std::string&) { return request(Json()); }
Json Client::result(const std::string&, double) { return request(Json()); }
Json Client::cancel(const std::string&) { return request(Json()); }
Json Client::stats() { return request(Json()); }
Json Client::metrics(bool) { return request(Json()); }
Json Client::shutdown() { return request(Json()); }
Json Client::watch(const std::string&,
                   const std::function<void(const Json&)>&) {
  return request(Json());
}

}  // namespace mp::svc

#endif
