#include "svc/client.hpp"

#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)

#include <unistd.h>

namespace mp::svc {

Client::Client(std::string endpoint_uri, net::ConnectOptions connect_opts)
    : endpoint_uri_(std::move(endpoint_uri)), connect_opts_(connect_opts) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
}

void Client::set_read_timeout(double timeout_s) {
  read_timeout_s_ = timeout_s;
  if (reader_ != nullptr) reader_->set_timeout(timeout_s);
}

bool Client::connect(std::string* error) {
  net::Endpoint ep;
  std::string parse_error;
  if (!net::parse_endpoint(endpoint_uri_, &ep, &parse_error)) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  fd_ = net::connect_endpoint(ep, connect_opts_, error);
  if (fd_ < 0) return false;
  reader_ = std::make_unique<net::FrameReader>(fd_, net::kDefaultMaxFrameBytes,
                                               read_timeout_s_);
  return true;
}

namespace {

[[noreturn]] void throw_read_failure(net::ReadStatus status,
                                     const std::string& endpoint) {
  switch (status) {
    case net::ReadStatus::kEof:
      throw std::runtime_error("server closed connection");
    case net::ReadStatus::kTimeout:
      throw std::runtime_error("read from " + endpoint + " timed out");
    case net::ReadStatus::kOversized:
      throw std::runtime_error("reply from " + endpoint +
                               " exceeds the frame-size limit");
    default:
      throw std::runtime_error("read from " + endpoint + " failed");
  }
}

}  // namespace

Json Client::request(const Json& req) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!net::write_frame(fd_, req.dump())) {
    throw std::runtime_error("write to " + endpoint_uri_ + " failed");
  }
  std::string line;
  const net::ReadStatus status = reader_->next(line);
  if (status != net::ReadStatus::kOk) throw_read_failure(status, endpoint_uri_);
  return Json::parse(line);
}

Json Client::submit(const Json& spec) {
  Json req = Json::object();
  req["verb"] = Json::string("submit");
  req["spec"] = spec;
  return request(req);
}

namespace {

Json id_request(const char* verb, const std::string& id) {
  Json req = Json::object();
  req["verb"] = Json::string(verb);
  req["id"] = Json::string(id);
  return req;
}

}  // namespace

Json Client::status(const std::string& id) {
  return request(id_request("status", id));
}

Json Client::result(const std::string& id, double timeout_s) {
  Json req = id_request("result", id);
  req["timeout_s"] = Json::number(timeout_s);
  return request(req);
}

Json Client::cancel(const std::string& id) {
  return request(id_request("cancel", id));
}

Json Client::stats() {
  Json req = Json::object();
  req["verb"] = Json::string("stats");
  return request(req);
}

Json Client::metrics(bool prom) {
  Json req = Json::object();
  req["verb"] = Json::string("metrics");
  if (prom) req["format"] = Json::string("prom");
  return request(req);
}

Json Client::ping() {
  Json req = Json::object();
  req["verb"] = Json::string("ping");
  return request(req);
}

Json Client::fetch_artifact(const std::string& kind, const std::string& key) {
  Json req = Json::object();
  req["verb"] = Json::string("fetch_artifact");
  req["kind"] = Json::string(kind);
  req["key"] = Json::string(key);
  return request(req);
}

Json Client::shutdown() {
  Json req = Json::object();
  req["verb"] = Json::string("shutdown");
  return request(req);
}

Json Client::watch(const std::string& id,
                   const std::function<void(const Json&)>& on_event) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  if (!net::write_frame(fd_, id_request("watch", id).dump())) {
    throw std::runtime_error("write to " + endpoint_uri_ + " failed");
  }
  std::string line;
  for (;;) {
    const net::ReadStatus status = reader_->next(line);
    if (status != net::ReadStatus::kOk) {
      if (status == net::ReadStatus::kEof) {
        throw std::runtime_error("server closed connection mid-watch");
      }
      throw_read_failure(status, endpoint_uri_);
    }
    Json event = Json::parse(line);
    const Json* kind = event.find("event");
    if (kind != nullptr && kind->is_string() &&
        kind->as_string() == "done") {
      return event;
    }
    // Error replies ({"ok":false,...}) terminate the stream too.
    if (event.find("ok") != nullptr) return event;
    if (on_event) on_event(event);
  }
}

}  // namespace mp::svc

#else  // non-POSIX stub

namespace mp::svc {

Client::Client(std::string endpoint_uri, net::ConnectOptions connect_opts)
    : endpoint_uri_(std::move(endpoint_uri)), connect_opts_(connect_opts) {}
Client::~Client() = default;
void Client::close() {}
void Client::set_read_timeout(double timeout_s) { read_timeout_s_ = timeout_s; }
bool Client::connect(std::string* error) {
  if (error != nullptr) *error = "sockets unavailable on this platform";
  return false;
}
Json Client::request(const Json&) {
  throw std::runtime_error("sockets unavailable on this platform");
}
Json Client::submit(const Json&) { return request(Json()); }
Json Client::status(const std::string&) { return request(Json()); }
Json Client::result(const std::string&, double) { return request(Json()); }
Json Client::cancel(const std::string&) { return request(Json()); }
Json Client::stats() { return request(Json()); }
Json Client::metrics(bool) { return request(Json()); }
Json Client::ping() { return request(Json()); }
Json Client::fetch_artifact(const std::string&, const std::string&) {
  return request(Json());
}
Json Client::shutdown() { return request(Json()); }
Json Client::watch(const std::string&,
                   const std::function<void(const Json&)>&) {
  return request(Json());
}

}  // namespace mp::svc

#endif
