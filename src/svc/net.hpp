#pragma once
// Small POSIX socket helpers shared by the mp_serve server and the
// mp_submit client: whole-buffer writes and buffered newline-delimited
// reads over a file descriptor.  Unix-only (guarded like server/client).

#include <string>

namespace mp::svc {

/// Writes all of `line` plus a trailing '\n'; false on error/EOF.
/// Thread-safe per fd only if callers serialize (the server holds a
/// per-connection write mutex).
bool write_line(int fd, const std::string& line);

/// Buffered line reader for one fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until one full line arrives; strips the terminator.  Returns
  /// false on EOF or error (a final unterminated fragment is discarded —
  /// the protocol is strictly newline-delimited).
  bool next(std::string& line);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace mp::svc
