#pragma once
// Client side of the mp_serve protocol (used by the mp_submit CLI and the
// socket-level tests): connects to the Unix socket, sends one JSON request
// per line, reads reply lines.  Blocking, single-threaded; open one Client
// per concurrent request stream.

#include <functional>
#include <memory>
#include <string>

#include "svc/json.hpp"
#include "svc/net.hpp"

namespace mp::svc {

class Client {
 public:
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects; false with `error` filled on failure.
  bool connect(std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One request/reply round-trip.  Throws std::runtime_error on transport
  /// failure and JsonError on an unparsable reply.
  Json request(const Json& req);

  // Verb wrappers (each one round-trip; reply object as documented in
  // server.hpp).
  Json submit(const Json& spec);
  Json status(const std::string& id);
  Json result(const std::string& id, double timeout_s = 600.0);
  Json cancel(const std::string& id);
  Json stats();
  /// SLO metrics snapshot; `prom` asks for the Prometheus text exposition
  /// (reply carries it in "text") instead of the JSON registry view.
  Json metrics(bool prom = false);
  Json shutdown();

  /// Streams a job: calls `on_event` for every {"event":"phase"} line and
  /// returns the final {"event":"done"} object.
  Json watch(const std::string& id,
             const std::function<void(const Json&)>& on_event);

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace mp::svc
