#pragma once
// Client side of the mp_serve protocol (used by the mp_submit CLI, the
// mp_route fleet router, the peer artifact fetcher and the socket-level
// tests): connects to a net::Endpoint — `unix:/path`, `tcp:host:port`, or a
// bare socket path — sends one JSON request per line, reads reply lines.
// Blocking, single-threaded; open one Client per concurrent request stream.

#include <functional>
#include <memory>
#include <string>

#include "net/endpoint.hpp"
#include "net/framing.hpp"
#include "svc/json.hpp"

namespace mp::svc {

class Client {
 public:
  /// `endpoint_uri` follows the net::parse_endpoint grammar.  `connect_opts`
  /// sets the connect timeout and retry/backoff schedule (the router retries
  /// backends; the CLI default is one attempt).
  explicit Client(std::string endpoint_uri,
                  net::ConnectOptions connect_opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects; false with `error` filled on failure.
  bool connect(std::string* error);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Per-read timeout for replies; <= 0 (default) blocks forever.  Routers
  /// set this so a stuck backend surfaces as an error instead of a hang.
  void set_read_timeout(double timeout_s);

  /// One request/reply round-trip.  Throws std::runtime_error on transport
  /// failure and JsonError on an unparsable reply.
  Json request(const Json& req);

  // Verb wrappers (each one round-trip; reply object as documented in
  // server.hpp).
  Json submit(const Json& spec);
  Json status(const std::string& id);
  Json result(const std::string& id, double timeout_s = 600.0);
  Json cancel(const std::string& id);
  Json stats();
  /// SLO metrics snapshot; `prom` asks for the Prometheus text exposition
  /// (reply carries it in "text") instead of the JSON registry view.
  Json metrics(bool prom = false);
  /// Health probe ({"verb":"ping"}); the router's liveness check.
  Json ping();
  /// Peer artifact fetch by content hash; kind is "design", "prepared" or
  /// "weights".  The reply carries the serialized blob on "blob" when the
  /// peer's cache holds the key, {"ok":false,...} when it does not.
  Json fetch_artifact(const std::string& kind, const std::string& key);
  Json shutdown();

  /// Streams a job: calls `on_event` for every {"event":"phase"} line and
  /// returns the final {"event":"done"} object.
  Json watch(const std::string& id,
             const std::function<void(const Json&)>& on_event);

  const std::string& endpoint_uri() const { return endpoint_uri_; }

 private:
  std::string endpoint_uri_;
  net::ConnectOptions connect_opts_;
  double read_timeout_s_ = 0.0;
  int fd_ = -1;
  std::unique_ptr<net::FrameReader> reader_;
};

}  // namespace mp::svc
