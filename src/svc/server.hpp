#pragma once
// Socket front end of the placement service (the mp_serve daemon).  Listens
// on a net::Endpoint — `unix:/path` for the classic single-host deployment,
// `tcp:host:port` so a backend can join a distributed fleet behind mp_route
// (docs/DISTRIBUTED.md).  Protocol: newline-delimited JSON, one request
// object per line, one reply line per request — except "watch", which
// streams progress event lines until the watched job finishes.  Verbs:
//
//   {"verb":"submit","spec":{...}}        -> {"ok":true,"id":"j..."}
//   {"verb":"status","id":"j..."}         -> {"ok":true,"job":{...}}
//   {"verb":"result","id":"j...",
//    "timeout_s":600}                     -> waits, then {"ok":true,"job":{...}}
//   {"verb":"cancel","id":"j..."}         -> {"ok":true|false,...}
//   {"verb":"watch","id":"j..."}          -> {"event":"phase",...}* then
//                                            {"event":"done","job":{...}}
//   {"verb":"jobs"} / {"verb":"stats"}    -> {"ok":true,...}
//   {"verb":"ping"}                       -> {"ok":true,"pong":true}
//                                            (router health checks)
//   {"verb":"fetch_artifact","kind":"design|prepared|weights",
//    "key":"..."}                         -> {"ok":true,"blob":"..."} when the
//                                            warm cache holds that content
//                                            hash (peer replication)
//   {"verb":"shutdown"}                   -> {"ok":true}, then the server
//                                            drains (runs queued jobs dry)
//                                            and exits serve()
//
// Every error reply is {"ok":false,"error":"..."} — including an oversized
// request line, which is rejected without buffering (net::FrameReader) while
// the connection stays up.  SIGTERM/SIGINT drain is wired by the mp_serve
// binary through request_shutdown(), which is safe to call from a signal
// handler (one write to a self-pipe).

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "net/endpoint.hpp"
#include "net/framing.hpp"
#include "svc/service.hpp"

namespace mp::svc {

struct ServerOptions {
  /// listen(2) backlog — connection bursts beyond it get RST/ECONNREFUSED,
  /// so fleets with many clients per backend should raise it (mp_serve
  /// --backlog).
  int backlog = 64;
  /// Request-line ceiling handed to net::FrameReader; longer lines are
  /// answered with a JSON error instead of buffered.
  std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
};

class Server {
 public:
  /// `service` must outlive the server.  `endpoint_uri` follows the
  /// net::parse_endpoint grammar (a bare path means a unix socket).
  Server(LocalService& service, std::string endpoint_uri,
         ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (removing a stale unix socket file first).  False
  /// with `error` filled on failure.  Does not accept yet; serve() does.
  bool start(std::string* error);

  /// Accept loop: blocks until a shutdown is requested (verb or signal),
  /// then drains the service (running + queued jobs complete), closes every
  /// connection and returns.  Call after start().
  void serve();

  /// Async-signal-safe shutdown request (self-pipe write).
  void request_shutdown();
  bool shutdown_requested() const;

  const std::string& endpoint_uri() const { return endpoint_uri_; }
  /// After start(): the bound address with a tcp port 0 resolved to the
  /// kernel-assigned ephemeral port (tests and fleet demos bind port 0).
  std::string bound_uri() const { return bound_.uri(); }

 private:
  struct Connection {
    int fd = -1;  ///< written under write_mutex once the socket is live
    /// Serializes progress-stream writes against reply writes, and fences
    /// fd against the close in close_all_connections().
    std::mutex write_mutex MP_GUARDS(fd);
    std::thread thread;
  };

  void handle_connection(Connection* conn);
  Json handle_request(Connection* conn, const Json& request);
  void close_all_connections();

  LocalService& service_;
  std::string endpoint_uri_;
  ServerOptions options_;
  net::Endpoint endpoint_;  ///< parsed at start()
  net::Endpoint bound_;     ///< actual bound address (ephemeral port resolved)
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};

  /// Lock order: Connection::write_mutex before connections_mutex_
  /// (close_all_connections never takes write_mutex, so no inversion).
  std::mutex connections_mutex_ MP_GUARDS(connections_);
  std::vector<std::unique_ptr<Connection>> connections_
      MP_GUARDED_BY(connections_mutex_);
};

}  // namespace mp::svc
