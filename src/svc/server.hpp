#pragma once
// Unix-domain-socket front end of the placement service (the mp_serve
// daemon).  Protocol: newline-delimited JSON, one request object per line,
// one reply line per request — except "watch", which streams progress event
// lines until the watched job finishes.  Verbs:
//
//   {"verb":"submit","spec":{...}}        -> {"ok":true,"id":"j..."}
//   {"verb":"status","id":"j..."}         -> {"ok":true,"job":{...}}
//   {"verb":"result","id":"j...",
//    "timeout_s":600}                     -> waits, then {"ok":true,"job":{...}}
//   {"verb":"cancel","id":"j..."}         -> {"ok":true|false,...}
//   {"verb":"watch","id":"j..."}          -> {"event":"phase",...}* then
//                                            {"event":"done","job":{...}}
//   {"verb":"jobs"} / {"verb":"stats"}    -> {"ok":true,...}
//   {"verb":"shutdown"}                   -> {"ok":true}, then the server
//                                            drains (runs queued jobs dry)
//                                            and exits serve()
//
// Every error reply is {"ok":false,"error":"..."}.  SIGTERM/SIGINT drain is
// wired by the mp_serve binary through request_shutdown(), which is safe to
// call from a signal handler (one write to a self-pipe).

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "svc/service.hpp"

namespace mp::svc {

class Server {
 public:
  /// `service` must outlive the server.
  Server(LocalService& service, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (removing a stale socket file first).  False with
  /// `error` filled on failure.  Does not accept yet; serve() does.
  bool start(std::string* error);

  /// Accept loop: blocks until a shutdown is requested (verb or signal),
  /// then drains the service (running + queued jobs complete), closes every
  /// connection and returns.  Call after start().
  void serve();

  /// Async-signal-safe shutdown request (self-pipe write).
  void request_shutdown();
  bool shutdown_requested() const;

  const std::string& socket_path() const { return socket_path_; }

 private:
  struct Connection {
    int fd = -1;  ///< written under write_mutex once the socket is live
    /// Serializes progress-stream writes against reply writes, and fences
    /// fd against the close in close_all_connections().
    std::mutex write_mutex MP_GUARDS(fd);
    std::thread thread;
  };

  void handle_connection(Connection* conn);
  Json handle_request(Connection* conn, const Json& request);
  void close_all_connections();

  LocalService& service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> shutdown_requested_{false};

  /// Lock order: Connection::write_mutex before connections_mutex_
  /// (close_all_connections never takes write_mutex, so no inversion).
  std::mutex connections_mutex_ MP_GUARDS(connections_);
  std::vector<std::unique_ptr<Connection>> connections_
      MP_GUARDED_BY(connections_mutex_);
};

}  // namespace mp::svc
