#pragma once
// Compatibility shim: the FNV-1a helpers moved to src/util/fnv.hpp so the
// net/ layer (consistent-hash ring, wire codecs) can share the exact hash
// the service uses for content-addressed job IDs.  Existing svc:: callers
// keep compiling through these using-declarations.

#include "util/fnv.hpp"

namespace mp::svc {

using util::kFnvOffset;
using util::kFnvPrime;
using util::fnv1a64;
using util::fnv1a64_double;
using util::hash_hex;

}  // namespace mp::svc
