#pragma once
// Job model of the placement service: a JobSpec describes one placement
// request — which design (a Bookshelf prefix on disk, or a synthetic
// benchgen spec), which flow preset, and the knobs the offline CLI exposes
// (place_bookshelf) so a service job at equal settings is bit-identical to
// the offline run.  Specs parse from / serialize to JSON with strict
// validation (unknown keys and out-of-range values are errors, not
// warnings: a typo'd knob silently falling back to a default would change
// results).  docs/SERVICE.md documents the schema.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchgen/generator.hpp"
#include "place/placer.hpp"
#include "svc/json.hpp"

namespace mp::svc {

/// Thrown by parse_job_spec on an invalid spec (the message names the
/// offending key).
class JobError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which placement flow a job runs — the unified placer API's preset
/// (place::Preset; mirrors place_bookshelf --placer).  The svc alias and
/// forwarders survive for existing callers.
using FlowPreset = place::Preset;

// Using-declarations (not wrappers): ADL on place::Preset already finds the
// place:: functions, so a second mp::svc overload would be ambiguous.
using place::parse_preset;
using place::preset_name;

struct JobSpec {
  /// Job JSON schema version.  1 is the original from-scratch job schema;
  /// 2 adds the ECO fields (`initial_placement`, the `regulate` knob block)
  /// and is required by preset "regulate".  v1 documents parse unchanged,
  /// and a v1 spec serializes without a "schema" key, so v1 canonical bytes
  /// — and therefore content-hash job IDs — are byte-stable across the v2
  /// introduction.
  int schema = 1;

  /// Bookshelf prefix (<prefix>.nodes/.nets/.pl).  Exactly one of
  /// `design_path` / `use_synthetic` must be set.
  std::string design_path;
  /// Synthetic design generated in-process (benchgen); deterministic from
  /// the spec, so it needs no files on disk.
  bool use_synthetic = false;
  benchgen::BenchSpec synthetic;

  FlowPreset preset = FlowPreset::kMcts;
  /// 0 keeps every library default seed — required for bit-identity with
  /// the offline CLI, which exposes no seed flag.  Non-zero overrides the
  /// preset's RNG seeds (train/mcts for the RL flows, the annealer for sa).
  std::uint64_t seed = 0;
  /// par:: pool size for this job; 0 keeps the server's current setting.
  /// Results are thread-count independent either way (docs/PARALLELISM.md).
  int threads = 0;
  /// Wall-clock run budget in seconds, armed when the job starts executing
  /// (queue wait does not count); <= 0 disables.  Enforced cooperatively
  /// via util::CancelToken, so an expired job still ends in a structurally
  /// valid state.
  double deadline_s = 0.0;
  /// Higher runs first; FIFO within equal priority.
  int priority = 0;

  // Flow knobs, defaults identical to place_bookshelf.
  int episodes = 60;   ///< RL pre-training episodes
  int gamma = 24;      ///< MCTS explorations per move
  int grid = 16;       ///< ζ — grid dimension
  int channels = 24;   ///< agent tower width
  int blocks = 2;      ///< agent tower depth

  /// Optional pre-trained agent parameters (nn::save_parameters file),
  /// restored into the agent before training; cached by content hash.
  std::string weights_path;
  /// Optional Bookshelf output prefix for the placed design.
  std::string out_prefix;

  // --- schema 2 (ECO / regulate jobs) ---
  /// Standalone `.pl` file holding the incumbent placement the regulate
  /// flow refines.  Required by preset "regulate"; cached by content hash
  /// like the weights file.
  std::string initial_placement_path;
  /// Trust-region Chebyshev radius in grid cells (regulate.radius).
  int regulate_radius = 2;
  /// Cap on moved groups, by descending tension; 0 = unbounded.
  int regulate_max_moves = 0;
  /// Macro names pinned to their incumbent position.
  std::vector<std::string> regulate_frozen;
};

/// Validates and converts; throws JobError naming the bad key.  The JSON
/// schema is the field list above; "design" is the Bookshelf prefix string
/// and "synthetic" an object of benchgen::BenchSpec fields.
JobSpec parse_job_spec(const Json& json);

/// Inverse of parse_job_spec (canonical: defaulted fields included, sorted
/// keys via Json::dump).
Json job_spec_to_json(const JobSpec& spec);

/// Canonical serialized form, the content-hash input for job IDs and the
/// prepared-artifact cache key prefix.
std::string job_canonical_string(const JobSpec& spec);

/// Stable job ID: "j<spec-hash-prefix>-<seq>".  The hash prefix is a pure
/// function of the spec (identical resubmissions share it, which makes
/// warm-cache hits visible in logs); `seq` disambiguates concurrent
/// submissions of the same spec.
std::string make_job_id(const JobSpec& spec, std::uint64_t seq);

}  // namespace mp::svc
