#pragma once
// Job scheduler of the placement service: a bounded priority queue feeding
// N worker threads (--workers / MP_WORKERS).  Jobs run concurrently, each
// on a private par:: sub-pool sized by a ThreadBudget lease (svc/budget.hpp)
// carved from the machine's global thread budget; leases are reclaimed on
// completion or cancel, so a lone job gets the whole machine.  Results stay
// bit-identical to the single-worker service at equal per-job thread
// requests: par:: chunking is grain-based (thread-count independent) and
// every job records into its own obs context, so concurrent jobs never
// perturb each other.
//
// Admission control: submit() rejects when the queue is full or the
// scheduler is draining, so callers get backpressure instead of unbounded
// memory growth.  Dispatch is priority-aware: the pending set is ordered
// (priority desc, submission seq asc) and every idle worker takes the
// front, so a high-priority job is admitted as soon as any worker frees up
// while lower-priority work keeps running.  Deadlines (JobSpec::deadline_s)
// arm the job's CancelToken when it starts running; cancel() works in any
// non-terminal state (a queued job is dropped without running).
//
// Shutdown is a single guarded state machine (Phase): drain() runs the
// queue dry, shutdown_now() cancels everything in flight; both are
// idempotent, callable concurrently (with each other, cancel(), and the
// destructor), and may escalate kDraining → kStopping but never the
// reverse.  Exactly one caller joins the workers; the rest wait for
// kStopped.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/annotations.hpp"
#include "obs/obs.hpp"
#include "svc/budget.hpp"
#include "svc/job.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace mp::svc {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* job_state_name(JobState state);

/// What a finished job produced; filled by the runner.
struct JobOutcome {
  double hpwl = 0.0;
  double coarse_wirelength = 0.0;
  bool cancelled = false;  ///< stopped early (explicit cancel or deadline)
  bool finalized = false;  ///< legalization + cell placement completed
  /// FNV-1a over every node position's bit pattern — the placement
  /// fingerprint clients use for bit-identity checks (docs/SERVICE.md).
  std::uint64_t placement_hash = 0;
  int macro_groups = 0;
  // --- regulate (ECO) jobs only ---
  double input_hpwl = 0.0;  ///< HPWL of the incumbent placement as received
  int moved_groups = 0;     ///< groups re-anchored inside the trust region
};

/// Copyable view of one job's lifecycle, returned by status()/jobs().
struct JobSnapshot {
  std::string id;
  JobSpec spec;
  JobState state = JobState::kQueued;
  JobOutcome outcome;
  std::string error;          ///< set when state == kFailed
  double queue_seconds = 0.0; ///< submit → start (or terminal, if never ran)
  double run_seconds = 0.0;   ///< start → terminal
  std::uint64_t seq = 0;      ///< submission order
  /// Thread-budget lease granted when the job started (0 while queued).
  int granted_threads = 0;
};

class Scheduler {
 public:
  /// Execution environment handed to the runner alongside the job.
  struct RunContext {
    int threads = 1;  ///< granted thread lease — size the job's pool to this
    int worker = 0;   ///< index of the worker thread running the job
  };

  /// Executes one job; runs on a worker thread (several run concurrently).
  /// Must poll `cancel` and may throw (the job is then kFailed with the
  /// exception message).
  using Runner = std::function<JobOutcome(
      const std::string& id, const JobSpec& spec,
      const util::CancelToken& cancel, const RunContext& ctx)>;

  struct SubmitResult {
    bool accepted = false;
    std::string id;
    std::string error;
  };

  /// `workers` threads (< 1 clamps to 1) share `thread_budget` pool threads
  /// (< 1 means par::num_threads()).  `slo`, when non-null, is a
  /// service-global registry the scheduler records SLO telemetry into
  /// (histograms svc.queue_wait / svc.run_time / svc.submit_to_result in
  /// seconds, gauges svc.queue_depth / svc.active_jobs); it must outlive the
  /// scheduler.  Per-job registries are unaffected — the runner records into
  /// the job's own context.
  Scheduler(Runner runner, int max_queued, int workers = 1,
            int thread_budget = 0, obs::Registry* slo = nullptr);
  /// Cancels running jobs, drops the queue, joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a job (higher JobSpec::priority first, FIFO within equal
  /// priority).  Rejects with `error` set when the queue is at capacity or
  /// the scheduler no longer accepts work.
  SubmitResult submit(const JobSpec& spec);

  /// Requests cancellation; true when the job exists and was not already
  /// terminal.  Queued jobs drop immediately; a running job stops at its
  /// next poll point and keeps whatever partial outcome the runner returns.
  bool cancel(const std::string& id);

  std::optional<JobSnapshot> status(const std::string& id) const;
  std::vector<JobSnapshot> jobs() const;

  /// Blocks until the job reaches a terminal state; false on timeout or
  /// unknown id.  timeout_s <= 0 waits forever.
  bool wait(const std::string& id, double timeout_s) const;

  /// Graceful shutdown: stop accepting, run the queue dry (running and all
  /// queued jobs complete), join the workers.  Idempotent and safe to call
  /// concurrently with shutdown_now()/cancel()/the destructor.
  void drain();

  /// Fast shutdown: stop accepting, cancel running jobs, mark queued jobs
  /// kCancelled without running them, join the workers.  Idempotent and
  /// safe to call concurrently with drain()/cancel()/the destructor.
  void shutdown_now();

  bool accepting() const;
  int queued_count() const;
  int workers() const { return static_cast<int>(workers_.size()); }
  int thread_budget() const { return arbiter_.total(); }
  /// Threads currently leased to running jobs.
  int threads_leased() const { return arbiter_.leased(); }
  /// Ids of all currently executing jobs (empty when idle).
  std::vector<std::string> running_jobs() const;

 private:
  /// Lifecycle: kRunning → kDraining (drain) → kStopped, or
  /// kRunning/kDraining → kStopping (shutdown_now) → kStopped.
  enum class Phase { kRunning, kDraining, kStopping, kStopped };

  struct Record {
    JobSnapshot snap;
    util::CancelToken cancel;
    util::Timer submitted;   ///< measures queue wait, then total age
  };

  void worker_loop(int worker_index) MP_EXCLUDES(mutex_);
  /// Single-joiner election: the first caller joins every worker and
  /// publishes kStopped; concurrent callers block until then.
  void join_workers() MP_EXCLUDES(mutex_);
  Record* find_locked(const std::string& id) MP_REQUIRES(mutex_);
  const Record* find_locked(const std::string& id) const MP_REQUIRES(mutex_);

  /// Updates the SLO queue-depth/active-jobs gauges (reads pending_/
  /// running_ sizes).  No-op without an SLO registry.
  void update_slo_gauges_locked() MP_REQUIRES(mutex_);

  Runner runner_;
  const std::size_t max_queued_;
  obs::Registry* const slo_;  ///< service-global SLO registry (may be null)
  ThreadArbiter arbiter_;

  mutable std::mutex mutex_ MP_GUARDS(records_, pending_, running_, next_seq_,
                                      accepting_, phase_, joiner_active_);
  /// Notified on queue + state changes.
  mutable std::condition_variable cv_ MP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Record>> records_
      MP_GUARDED_BY(mutex_);
  /// Pending ids ordered (priority desc, seq asc) — set iteration order is
  /// the dispatch order.
  std::set<std::tuple<int, std::uint64_t, std::string>> pending_
      MP_GUARDED_BY(mutex_);
  std::set<std::string> running_ MP_GUARDED_BY(mutex_);  ///< executing ids
  std::uint64_t next_seq_ MP_GUARDED_BY(mutex_) = 1;
  bool accepting_ MP_GUARDED_BY(mutex_) = true;
  Phase phase_ MP_GUARDED_BY(mutex_) = Phase::kRunning;
  /// A thread is inside workers_[i].join().
  bool joiner_active_ MP_GUARDED_BY(mutex_) = false;
  /// Spawned in the constructor, joined once by the elected joiner; the
  /// vector itself is immutable between those points.
  std::vector<std::thread> workers_;
};

}  // namespace mp::svc
