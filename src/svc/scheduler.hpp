#pragma once
// Job scheduler of the placement service: a bounded priority queue feeding
// one worker thread.  Jobs run strictly one at a time — each job parallelizes
// internally on the par:: pool, and serial execution keeps results
// bit-identical to the offline CLI (two placements sharing the pool would
// not perturb each other's results, but would fight over cores).
//
// Admission control: submit() rejects when the queue is full or the
// scheduler is draining, so callers get backpressure instead of unbounded
// memory growth.  Deadlines (JobSpec::deadline_s) arm the job's CancelToken
// when it starts running; cancel() works in any non-terminal state (a queued
// job is dropped without running).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "svc/job.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace mp::svc {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* job_state_name(JobState state);

/// What a finished job produced; filled by the runner.
struct JobOutcome {
  double hpwl = 0.0;
  double coarse_wirelength = 0.0;
  bool cancelled = false;  ///< stopped early (explicit cancel or deadline)
  bool finalized = false;  ///< legalization + cell placement completed
  /// FNV-1a over every node position's bit pattern — the placement
  /// fingerprint clients use for bit-identity checks (docs/SERVICE.md).
  std::uint64_t placement_hash = 0;
  int macro_groups = 0;
};

/// Copyable view of one job's lifecycle, returned by status()/jobs().
struct JobSnapshot {
  std::string id;
  JobSpec spec;
  JobState state = JobState::kQueued;
  JobOutcome outcome;
  std::string error;          ///< set when state == kFailed
  double queue_seconds = 0.0; ///< submit → start (or terminal, if never ran)
  double run_seconds = 0.0;   ///< start → terminal
  std::uint64_t seq = 0;      ///< submission order
};

class Scheduler {
 public:
  /// Executes one job; runs on the worker thread.  Must poll `cancel` and
  /// may throw (the job is then kFailed with the exception message).
  using Runner = std::function<JobOutcome(
      const std::string& id, const JobSpec& spec,
      const util::CancelToken& cancel)>;

  struct SubmitResult {
    bool accepted = false;
    std::string id;
    std::string error;
  };

  Scheduler(Runner runner, int max_queued);
  /// Cancels the running job, drops the queue, joins the worker.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a job (higher JobSpec::priority first, FIFO within equal
  /// priority).  Rejects with `error` set when the queue is at capacity or
  /// the scheduler no longer accepts work.
  SubmitResult submit(const JobSpec& spec);

  /// Requests cancellation; true when the job exists and was not already
  /// terminal.  Queued jobs drop immediately; a running job stops at its
  /// next poll point and keeps whatever partial outcome the runner returns.
  bool cancel(const std::string& id);

  std::optional<JobSnapshot> status(const std::string& id) const;
  std::vector<JobSnapshot> jobs() const;

  /// Blocks until the job reaches a terminal state; false on timeout or
  /// unknown id.  timeout_s <= 0 waits forever.
  bool wait(const std::string& id, double timeout_s) const;

  /// Graceful shutdown: stop accepting, run the queue dry (the running and
  /// all queued jobs complete), join the worker.  Idempotent.
  void drain();

  /// Fast shutdown: stop accepting, cancel the running job, mark queued
  /// jobs kCancelled without running them, join the worker.  Idempotent.
  void shutdown_now();

  bool accepting() const;
  int queued_count() const;
  /// Id of the currently executing job, "" when idle.  Used to attribute
  /// obs span events to a job (jobs run serially, so at most one is live).
  std::string running_job() const;

 private:
  struct Record {
    JobSnapshot snap;
    util::CancelToken cancel;
    util::Timer submitted;   ///< measures queue wait, then total age
  };

  void worker_loop();
  // Both expect mutex_ held.
  Record* find_locked(const std::string& id);
  const Record* find_locked(const std::string& id) const;

  Runner runner_;
  const std::size_t max_queued_;

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;  ///< notified on queue + state changes
  std::map<std::string, std::unique_ptr<Record>> records_;
  /// Pending ids ordered (priority desc, seq asc) — set iteration order is
  /// the dispatch order.
  std::set<std::tuple<int, std::uint64_t, std::string>> pending_;
  std::string running_id_;
  std::uint64_t next_seq_ = 1;
  bool accepting_ = true;
  bool stop_ = false;        ///< worker exits once pending_ is empty
  bool stop_immediate_ = false;
  std::thread worker_;
};

}  // namespace mp::svc
