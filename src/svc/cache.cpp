#include "svc/cache.hpp"

#include <fstream>
#include <sstream>

#include "benchgen/generator.hpp"
#include "io/bookshelf.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "svc/hash.hpp"
#include "util/log.hpp"

namespace mp::svc {

namespace {

// Content hash of one file; throws when it cannot be read (the job would
// fail later anyway — better to fail at admission with the path named).
std::uint64_t hash_file(const std::string& path, std::uint64_t seed) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  char buf[1 << 16];
  std::uint64_t h = seed;
  while (f) {
    f.read(buf, sizeof(buf));
    h = fnv1a64(buf, static_cast<std::size_t>(f.gcount()), h);
  }
  return h;
}

std::string design_key_for(const JobSpec& spec) {
  if (spec.use_synthetic) {
    // benchgen is deterministic from the spec, so the canonical spec string
    // is the content.
    std::ostringstream os;
    const benchgen::BenchSpec& s = spec.synthetic;
    os << s.name << '|' << s.movable_macros << '|' << s.preplaced_macros << '|'
       << s.io_pads << '|' << s.std_cells << '|' << s.nets << '|'
       << s.hierarchy << '|' << s.seed << '|' << s.scale << '|'
       << s.macro_area_fraction << '|' << s.utilization;
    return "gen:" + hash_hex(fnv1a64(os.str()));
  }
  std::uint64_t h = kFnvOffset;
  for (const char* ext : {".nodes", ".nets", ".pl"}) {
    h = hash_file(spec.design_path + ext, h);
  }
  return "bs:" + hash_hex(h);
}

}  // namespace

ArtifactCache::ArtifactCache(std::size_t designs, std::size_t prepared,
                             std::size_t weights)
    : designs_(designs), prepared_(prepared), weights_(weights) {}

std::shared_ptr<const DesignArtifact> ArtifactCache::design_for(
    const JobSpec& spec) {
  const std::string key = design_key_for(spec);
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::shared_ptr<const DesignArtifact> hit = designs_.get(key)) {
    ++stats_.design_hits;
    MP_OBS_COUNT("svc.cache.design.hits", 1);
    return hit;
  }
  ++stats_.design_misses;
  MP_OBS_COUNT("svc.cache.design.misses", 1);
  auto artifact = std::make_shared<DesignArtifact>();
  artifact->key = key;
  artifact->design = spec.use_synthetic
                         ? benchgen::generate(spec.synthetic)
                         : io::read_bookshelf(spec.design_path);
  util::log_info() << "svc: cached design " << key << " ("
                   << artifact->design.name() << ")";
  designs_.put(key, artifact);
  return artifact;
}

std::shared_ptr<const PreparedArtifact> ArtifactCache::prepared_for(
    const std::shared_ptr<const DesignArtifact>& design,
    const place::FlowOptions& flow) {
  // The service holds every preprocessing option other than the grid at its
  // default (see LocalService's option builders), so design + grid identify
  // the prepare_flow result.
  const std::string key =
      design->key + "|grid=" + std::to_string(flow.grid_dim);
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::shared_ptr<const PreparedArtifact> hit = prepared_.get(key)) {
    ++stats_.prepared_hits;
    MP_OBS_COUNT("svc.cache.prepared.hits", 1);
    return hit;
  }
  ++stats_.prepared_misses;
  MP_OBS_COUNT("svc.cache.prepared.misses", 1);
  auto artifact = std::make_shared<PreparedArtifact>();
  artifact->key = key;
  artifact->design = design->design;  // copy; prepare_flow mutates positions
  place::FlowOptions prep = flow;
  prep.cancel = {};  // the artifact is shared across jobs; never cancel it
  artifact->context = place::prepare_flow(artifact->design, prep);
  prepared_.put(key, artifact);
  return artifact;
}

std::shared_ptr<const WeightsArtifact> ArtifactCache::weights_for(
    const std::string& path) {
  const std::string key = "nn:" + hash_hex(hash_file(path, kFnvOffset));
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::shared_ptr<const WeightsArtifact> hit = weights_.get(key)) {
    ++stats_.weights_hits;
    MP_OBS_COUNT("svc.cache.weights.hits", 1);
    return hit;
  }
  ++stats_.weights_misses;
  MP_OBS_COUNT("svc.cache.weights.misses", 1);
  auto artifact = std::make_shared<WeightsArtifact>();
  artifact->key = key;
  artifact->parameters = nn::read_parameters_file(path);
  weights_.put(key, artifact);
  return artifact;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mp::svc
