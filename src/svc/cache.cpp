#include "svc/cache.hpp"

#include <fstream>
#include <sstream>

#include "benchgen/generator.hpp"
#include "io/bookshelf.hpp"
#include "net/wire.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "svc/hash.hpp"
#include "util/log.hpp"

namespace mp::svc {

namespace {

// Content hash of one file; throws when it cannot be read (the job would
// fail later anyway — better to fail at admission with the path named).
std::uint64_t hash_file(const std::string& path, std::uint64_t seed) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  char buf[1 << 16];
  std::uint64_t h = seed;
  while (f) {
    f.read(buf, sizeof(buf));
    h = fnv1a64(buf, static_cast<std::size_t>(f.gcount()), h);
  }
  return h;
}

std::string design_key_for(const JobSpec& spec) {
  if (spec.use_synthetic) {
    // benchgen is deterministic from the spec, so the canonical spec string
    // is the content.
    std::ostringstream os;
    const benchgen::BenchSpec& s = spec.synthetic;
    os << s.name << '|' << s.movable_macros << '|' << s.preplaced_macros << '|'
       << s.io_pads << '|' << s.std_cells << '|' << s.nets << '|'
       << s.hierarchy << '|' << s.seed << '|' << s.scale << '|'
       << s.macro_area_fraction << '|' << s.utilization;
    return "gen:" + hash_hex(fnv1a64(os.str()));
  }
  std::uint64_t h = kFnvOffset;
  for (const char* ext : {".nodes", ".nets", ".pl"}) {
    h = hash_file(spec.design_path + ext, h);
  }
  return "bs:" + hash_hex(h);
}

}  // namespace

ArtifactCache::ArtifactCache(std::size_t designs, std::size_t prepared,
                             std::size_t weights, std::size_t placements)
    : designs_(designs),
      prepared_(prepared),
      weights_(weights),
      placements_(placements) {}

void ArtifactCache::set_peer_fetcher(PeerFetchFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_fetcher_ = std::move(fn);
}

ArtifactCache::PeerFetchFn ArtifactCache::peer_fetcher_copy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peer_fetcher_;
}

template <typename V>
std::shared_ptr<const V> ArtifactCache::peek(LruPool<V>& pool,
                                             const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool.get(key);
}

std::shared_ptr<const DesignArtifact> ArtifactCache::peek_design(
    const std::string& key) {
  return peek(designs_, key);
}

std::shared_ptr<const PreparedArtifact> ArtifactCache::peek_prepared(
    const std::string& key) {
  return peek(prepared_, key);
}

std::shared_ptr<const WeightsArtifact> ArtifactCache::peek_weights(
    const std::string& key) {
  return peek(weights_, key);
}

std::shared_ptr<const PlacementArtifact> ArtifactCache::peek_placement(
    const std::string& key) {
  return peek(placements_, key);
}

template <typename V, typename Peer, typename Build>
std::shared_ptr<const V> ArtifactCache::resolve(
    LruPool<V>& pool, InFlightMap<V>& inflight, const std::string& key,
    long long& hits, long long& misses, long long& peer_hits,
    const char* hit_counter, const char* miss_counter,
    const char* peer_counter, Peer&& peer, Build&& build) {
  std::shared_ptr<detail::InFlight<V>> fl;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::shared_ptr<const V> hit = pool.get(key)) {
      ++hits;
      if (obs::enabled()) obs::current_registry().counter(hit_counter).add(1);
      return hit;
    }
    const auto it = inflight.find(key);
    if (it != inflight.end()) {
      // Someone is already building this key: the artifact is shared, not
      // rebuilt, so this is a hit; join their build below.
      ++hits;
      if (obs::enabled()) obs::current_registry().counter(hit_counter).add(1);
      fl = it->second;
    } else {
      // Hit-or-miss is decided below: a ring peer serving the artifact is a
      // (peer) hit, only a genuinely cold local build counts as the miss.
      fl = std::make_shared<detail::InFlight<V>>();
      inflight[key] = fl;
      builder = true;
    }
  }

  if (!builder) {
    std::unique_lock<std::mutex> wait_lock(fl->m);
    fl->cv.wait(wait_lock, [&] { return fl->done; });
    // A failed build fails every joiner the same way (the content itself is
    // bad); the key was removed from inflight so a retry rebuilds.
    if (fl->error) std::rethrow_exception(fl->error);
    return fl->value;
  }

  // Builder: peer fetch and the expensive construction run OUTSIDE the
  // cache mutex so different keys resolve concurrently.
  std::shared_ptr<const V> artifact;
  std::exception_ptr error;
  try {
    artifact = peer();
  } catch (...) {
    artifact = nullptr;  // a failing peer is a cold build, never an error
  }
  if (artifact != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits;
    ++peer_hits;
    if (obs::enabled()) {
      obs::current_registry().counter(hit_counter).add(1);
      obs::current_registry().counter(peer_counter).add(1);
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++misses;
      if (obs::enabled()) obs::current_registry().counter(miss_counter).add(1);
    }
    try {
      artifact = build();
    } catch (...) {
      error = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (artifact != nullptr) pool.put(key, artifact);
    inflight.erase(key);
  }
  {
    std::lock_guard<std::mutex> publish(fl->m);
    fl->value = artifact;
    fl->error = error;
    fl->done = true;
  }
  fl->cv.notify_all();
  if (error) std::rethrow_exception(error);
  return artifact;
}

std::shared_ptr<const DesignArtifact> ArtifactCache::design_for(
    const JobSpec& spec) {
  const std::string key = design_key_for(spec);
  return resolve(
      designs_, designs_inflight_, key, stats_.design_hits,
      stats_.design_misses, stats_.design_peer_hits, "svc.cache.design.hits",
      "svc.cache.design.misses", "svc.cache.design.peer_hits",
      [&]() -> std::shared_ptr<const DesignArtifact> {
        const PeerFetchFn fetch = peer_fetcher_copy();
        std::string blob;
        if (!fetch || !fetch("design", key, &blob)) return nullptr;
        try {
          auto artifact = std::make_shared<DesignArtifact>();
          artifact->key = key;
          artifact->design = net::deserialize_design(blob);
          util::log_info() << "svc: design " << key << " served by a peer";
          return artifact;
        } catch (const std::exception& e) {
          util::log_warn() << "svc: corrupt peer design blob for " << key
                           << ": " << e.what();
          return nullptr;
        }
      },
      [&]() -> std::shared_ptr<const DesignArtifact> {
        auto artifact = std::make_shared<DesignArtifact>();
        artifact->key = key;
        artifact->design = spec.use_synthetic
                               ? benchgen::generate(spec.synthetic)
                               : io::read_bookshelf(spec.design_path);
        util::log_info() << "svc: cached design " << key << " ("
                         << artifact->design.name() << ")";
        return artifact;
      });
}

std::shared_ptr<const PreparedArtifact> ArtifactCache::prepared_for(
    const std::shared_ptr<const DesignArtifact>& design,
    const place::FlowOptions& flow) {
  // The service holds every preprocessing option other than the grid at its
  // default (see place::spec_from_preset), so design + grid identify the
  // prepare_flow result.
  const std::string key =
      design->key + "|grid=" + std::to_string(flow.grid_dim);
  return resolve(
      prepared_, prepared_inflight_, key, stats_.prepared_hits,
      stats_.prepared_misses, stats_.prepared_peer_hits,
      "svc.cache.prepared.hits", "svc.cache.prepared.misses",
      "svc.cache.prepared.peer_hits",
      [&]() -> std::shared_ptr<const PreparedArtifact> {
        const PeerFetchFn fetch = peer_fetcher_copy();
        std::string blob;
        if (!fetch || !fetch("prepared", key, &blob)) return nullptr;
        try {
          auto artifact = std::make_shared<PreparedArtifact>();
          artifact->key = key;
          net::deserialize_prepared(blob, &artifact->design,
                                    &artifact->context);
          util::log_info() << "svc: prepared " << key << " served by a peer";
          return artifact;
        } catch (const std::exception& e) {
          util::log_warn() << "svc: corrupt peer prepared blob for " << key
                           << ": " << e.what();
          return nullptr;
        }
      },
      [&]() -> std::shared_ptr<const PreparedArtifact> {
        auto artifact = std::make_shared<PreparedArtifact>();
        artifact->key = key;
        artifact->design = design->design;  // copy; prepare_flow mutates it
        place::FlowOptions prep = flow;
        prep.cancel = {};  // shared across jobs; never cancel the artifact
        artifact->context = place::prepare_flow(artifact->design, prep);
        return artifact;
      });
}

std::shared_ptr<const WeightsArtifact> ArtifactCache::weights_for(
    const std::string& path) {
  const std::string key = "nn:" + hash_hex(hash_file(path, kFnvOffset));
  return resolve(
      weights_, weights_inflight_, key, stats_.weights_hits,
      stats_.weights_misses, stats_.weights_peer_hits,
      "svc.cache.weights.hits", "svc.cache.weights.misses",
      "svc.cache.weights.peer_hits",
      [&]() -> std::shared_ptr<const WeightsArtifact> {
        const PeerFetchFn fetch = peer_fetcher_copy();
        std::string blob;
        if (!fetch || !fetch("weights", key, &blob)) return nullptr;
        try {
          auto artifact = std::make_shared<WeightsArtifact>();
          artifact->key = key;
          artifact->parameters = net::deserialize_weights(blob);
          util::log_info() << "svc: weights " << key << " served by a peer";
          return artifact;
        } catch (const std::exception& e) {
          util::log_warn() << "svc: corrupt peer weights blob for " << key
                           << ": " << e.what();
          return nullptr;
        }
      },
      [&]() -> std::shared_ptr<const WeightsArtifact> {
        auto artifact = std::make_shared<WeightsArtifact>();
        artifact->key = key;
        artifact->parameters = nn::read_parameters_file(path);
        return artifact;
      });
}

std::shared_ptr<const PlacementArtifact> ArtifactCache::placement_for(
    const std::string& path) {
  const std::string key = "pl:" + hash_hex(hash_file(path, kFnvOffset));
  return resolve(
      placements_, placements_inflight_, key, stats_.placement_hits,
      stats_.placement_misses, stats_.placement_peer_hits,
      "svc.cache.placement.hits", "svc.cache.placement.misses",
      "svc.cache.placement.peer_hits",
      [&]() -> std::shared_ptr<const PlacementArtifact> {
        const PeerFetchFn fetch = peer_fetcher_copy();
        std::string blob;
        if (!fetch || !fetch("placement", key, &blob)) return nullptr;
        try {
          auto artifact = std::make_shared<PlacementArtifact>();
          artifact->key = key;
          artifact->entries = net::deserialize_placement(blob);
          util::log_info() << "svc: placement " << key << " served by a peer";
          return artifact;
        } catch (const std::exception& e) {
          util::log_warn() << "svc: corrupt peer placement blob for " << key
                           << ": " << e.what();
          return nullptr;
        }
      },
      [&]() -> std::shared_ptr<const PlacementArtifact> {
        auto artifact = std::make_shared<PlacementArtifact>();
        artifact->key = key;
        artifact->entries = io::read_pl(path);
        util::log_info() << "svc: cached placement " << key << " ("
                         << artifact->entries.size() << " entries)";
        return artifact;
      });
}

std::shared_ptr<const PreparedArtifact> ArtifactCache::prepared_regulate_for(
    const std::shared_ptr<const DesignArtifact>& design,
    const std::shared_ptr<const PlacementArtifact>& placement,
    const place::FlowOptions& flow) {
  // The regulate prepared artifact depends on the incumbent placement too
  // (clustering distances and trust-region anchors come from it), so its key
  // binds both content hashes; the "|regulate" suffix keeps it disjoint from
  // prepare_flow artifacts at the same design + grid.
  const std::string key = design->key + "|pl=" + placement->key +
                          "|grid=" + std::to_string(flow.grid_dim) +
                          "|regulate";
  return resolve(
      prepared_, prepared_inflight_, key, stats_.prepared_hits,
      stats_.prepared_misses, stats_.prepared_peer_hits,
      "svc.cache.prepared.hits", "svc.cache.prepared.misses",
      "svc.cache.prepared.peer_hits",
      [&]() -> std::shared_ptr<const PreparedArtifact> {
        const PeerFetchFn fetch = peer_fetcher_copy();
        std::string blob;
        if (!fetch || !fetch("prepared", key, &blob)) return nullptr;
        try {
          auto artifact = std::make_shared<PreparedArtifact>();
          artifact->key = key;
          net::deserialize_prepared(blob, &artifact->design,
                                    &artifact->context);
          util::log_info() << "svc: prepared " << key << " served by a peer";
          return artifact;
        } catch (const std::exception& e) {
          util::log_warn() << "svc: corrupt peer prepared blob for " << key
                           << ": " << e.what();
          return nullptr;
        }
      },
      [&]() -> std::shared_ptr<const PreparedArtifact> {
        auto artifact = std::make_shared<PreparedArtifact>();
        artifact->key = key;
        artifact->design = design->design;  // copy; incumbent applied below
        io::apply_placement(artifact->design, placement->entries);
        place::FlowOptions prep = flow;
        prep.cancel = {};  // shared across jobs; never cancel the artifact
        artifact->context =
            place::prepare_regulate_flow(artifact->design, prep);
        return artifact;
      });
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mp::svc
