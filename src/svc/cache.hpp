#pragma once
// Warm artifact cache of the placement service.  Four LRU pools keyed by
// content hashes hold the expensive, reusable prefixes of a job:
//   * designs      — parsed Bookshelf circuits / generated synthetic designs,
//                    keyed by the file bytes (not the path: an edited file
//                    re-parses) or the canonical benchgen spec;
//   * prepared     — {post-prepare_flow design, FlowContext} pairs for the
//                    RL flows, keyed by design key + grid dimension.  Since
//                    prepare_flow is deterministic, a job resumed from this
//                    artifact is bit-identical to a cold run (the
//                    *_prepared placer entry points, src/place/placer.hpp);
//   * weights      — pre-trained agent parameter files (nn::load_parameters),
//                    keyed by file bytes;
//   * placements   — parsed incumbent `.pl` files for ECO/regulate jobs,
//                    keyed by file bytes.  The regulate prepared artifact
//                    (prepare_regulate_flow, no initial GP) shares the
//                    prepared pool under a key that includes the placement
//                    key, so revising the placement re-prepares while the
//                    parsed base design stays warm.
// Entries are immutable shared snapshots: executors copy what they mutate,
// so concurrent readers need no locking beyond the lookup.  Hits and misses
// are counted through obs
// (svc.cache.{design,prepared,weights,placement}.{hits,misses})
// — the run report of a warm job shows zero misses, which is how the e2e
// test asserts cache effectiveness (docs/SERVICE.md).
//
// Concurrency: lookups take one short-held mutex; the expensive build
// (parse / prepare_flow / weight load) runs OUTSIDE it, so workers
// resolving different keys build in parallel.  Per-key in-flight entries
// deduplicate concurrent resolution of the SAME key: the first worker
// builds (one miss), later workers block on that build and share the
// artifact (one hit each) — never a duplicate build.

#include <condition_variable>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/annotations.hpp"
#include "io/bookshelf.hpp"
#include "netlist/design.hpp"
#include "nn/layers.hpp"
#include "place/flow.hpp"
#include "svc/job.hpp"

namespace mp::svc {

/// Bounded most-recently-used map; not thread-safe (ArtifactCache locks).
template <typename V>
class LruPool {
 public:
  explicit LruPool(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const V> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  void put(const std::string& key, std::shared_ptr<const V> value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  std::size_t size() const { return order_.size(); }

 private:
  std::size_t capacity_;
  std::list<std::pair<std::string, std::shared_ptr<const V>>> order_;
  std::unordered_map<
      std::string,
      typename std::list<std::pair<std::string, std::shared_ptr<const V>>>::iterator>
      index_;
};

struct DesignArtifact {
  std::string key;
  netlist::Design design;  ///< as loaded/generated, before any placement
};

struct PreparedArtifact {
  std::string key;
  netlist::Design design;        ///< after prepare_flow's initial placement
  place::FlowContext context;    ///< grid + clustering + coarse netlist
};

struct WeightsArtifact {
  std::string key;
  std::vector<nn::Tensor> parameters;
};

struct PlacementArtifact {
  std::string key;
  std::vector<io::PlEntry> entries;  ///< parsed incumbent `.pl` file
};

struct CacheStats {
  long long design_hits = 0, design_misses = 0;
  long long prepared_hits = 0, prepared_misses = 0;
  long long weights_hits = 0, weights_misses = 0;
  long long placement_hits = 0, placement_misses = 0;
  /// Subset of hits satisfied by a ring peer's cache (fleet replication)
  /// rather than this process's pools; a peer fetch is a hit, not a miss —
  /// the fleet-wide miss count for one artifact stays at one.
  long long design_peer_hits = 0;
  long long prepared_peer_hits = 0;
  long long weights_peer_hits = 0;
  long long placement_peer_hits = 0;
};

namespace detail {

/// One build in progress: later arrivals for the same key wait on `cv`.
template <typename V>
struct InFlight {
  std::mutex m MP_GUARDS(done, value, error);
  std::condition_variable cv MP_GUARDED_BY(m);
  bool done MP_GUARDED_BY(m) = false;
  std::shared_ptr<const V> value MP_GUARDED_BY(m);
  std::exception_ptr error MP_GUARDED_BY(m);
};

}  // namespace detail

class ArtifactCache {
 public:
  /// Optional peer source consulted before a local rebuild (fleet artifact
  /// replication, docs/DISTRIBUTED.md).  Called outside the cache mutex with
  /// kind "design" / "prepared" / "weights" / "placement"; returns true with
  /// *blob set to the net::wire serialization when some ring peer holds the
  /// key.  Must not call back into this cache.
  using PeerFetchFn = std::function<bool(
      const std::string& kind, const std::string& key, std::string* blob)>;

  explicit ArtifactCache(std::size_t designs = 8, std::size_t prepared = 8,
                         std::size_t weights = 4, std::size_t placements = 4);

  /// Installs (or clears, with an empty function) the peer source.  A blob a
  /// peer returns is decoded defensively: a corrupt payload logs and falls
  /// back to the local build, never poisons the pool.
  void set_peer_fetcher(PeerFetchFn fn);

  // Non-building lookups for serving fetch_artifact to ring peers: the
  // artifact if this process's pool holds the exact key, else nullptr.
  std::shared_ptr<const DesignArtifact> peek_design(const std::string& key);
  std::shared_ptr<const PreparedArtifact> peek_prepared(const std::string& key);
  std::shared_ptr<const WeightsArtifact> peek_weights(const std::string& key);
  std::shared_ptr<const PlacementArtifact> peek_placement(
      const std::string& key);

  /// Loads (Bookshelf) or generates (benchgen) the job's design, reusing a
  /// cached copy when the content hash matches.  Throws std::runtime_error
  /// on I/O or parse failure.
  std::shared_ptr<const DesignArtifact> design_for(const JobSpec& spec);

  /// Runs prepare_flow on a copy of `design` (or reuses the cached result
  /// for the same design + grid + flow preprocessing options).
  std::shared_ptr<const PreparedArtifact> prepared_for(
      const std::shared_ptr<const DesignArtifact>& design,
      const place::FlowOptions& flow);

  /// Loads an nn::save_parameters file, keyed by its bytes.
  std::shared_ptr<const WeightsArtifact> weights_for(const std::string& path);

  /// Parses a standalone `.pl` file (the ECO job's incumbent placement),
  /// keyed by its bytes.
  std::shared_ptr<const PlacementArtifact> placement_for(
      const std::string& path);

  /// Regulate (ECO) variant of prepared_for: applies `placement` onto a copy
  /// of the base design and runs place::prepare_regulate_flow — no initial
  /// GP, the incumbent IS the starting placement.  Shares the prepared pool
  /// and the "prepared" peer artifact kind; the key binds design, placement
  /// and grid, so a second ECO job on the same inputs skips preparation
  /// entirely while a revised placement re-prepares against the still-warm
  /// design.
  std::shared_ptr<const PreparedArtifact> prepared_regulate_for(
      const std::shared_ptr<const DesignArtifact>& design,
      const std::shared_ptr<const PlacementArtifact>& placement,
      const place::FlowOptions& flow);

  CacheStats stats() const;

 private:
  template <typename V>
  using InFlightMap =
      std::unordered_map<std::string, std::shared_ptr<detail::InFlight<V>>>;

  /// The hit/miss/dedup protocol shared by the three pools (cache.cpp).
  /// `peer` runs before `build` on the builder path: a non-null artifact is
  /// counted as a (peer) hit, a null one falls through to the miss + build.
  template <typename V, typename Peer, typename Build>
  std::shared_ptr<const V> resolve(LruPool<V>& pool, InFlightMap<V>& inflight,
                                   const std::string& key, long long& hits,
                                   long long& misses, long long& peer_hits,
                                   const char* hit_counter,
                                   const char* miss_counter,
                                   const char* peer_counter, Peer&& peer,
                                   Build&& build);

  template <typename V>
  std::shared_ptr<const V> peek(LruPool<V>& pool, const std::string& key);

  PeerFetchFn peer_fetcher_copy() const;

  mutable std::mutex mutex_ MP_GUARDS(designs_, prepared_, weights_,
                                      placements_, designs_inflight_,
                                      prepared_inflight_, weights_inflight_,
                                      placements_inflight_, stats_,
                                      peer_fetcher_);
  LruPool<DesignArtifact> designs_ MP_GUARDED_BY(mutex_);
  LruPool<PreparedArtifact> prepared_ MP_GUARDED_BY(mutex_);
  LruPool<WeightsArtifact> weights_ MP_GUARDED_BY(mutex_);
  LruPool<PlacementArtifact> placements_ MP_GUARDED_BY(mutex_);
  InFlightMap<DesignArtifact> designs_inflight_ MP_GUARDED_BY(mutex_);
  InFlightMap<PreparedArtifact> prepared_inflight_ MP_GUARDED_BY(mutex_);
  InFlightMap<WeightsArtifact> weights_inflight_ MP_GUARDED_BY(mutex_);
  InFlightMap<PlacementArtifact> placements_inflight_ MP_GUARDED_BY(mutex_);
  CacheStats stats_ MP_GUARDED_BY(mutex_);
  PeerFetchFn peer_fetcher_ MP_GUARDED_BY(mutex_);
};

}  // namespace mp::svc
